//! Cost of the full transparent BIST session (signature prediction phase,
//! transparent test phase, MISR compaction and comparison) as the memory
//! grows — the quantity that determines how much idle time a periodic test
//! pass consumes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use twm_bench::bench_memory;
use twm_bist::flow::run_scheme_session;
use twm_bist::Misr;
use twm_core::{TransparentScheme, TwmTa};
use twm_march::algorithms::march_c_minus;

const WIDTH: usize = 32;
const SIZES: [usize; 4] = [64, 256, 1024, 4096];

fn bench_bist_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("bist_flow");
    let transformed = TwmTa::new(WIDTH)
        .unwrap()
        .transform(&march_c_minus())
        .unwrap();
    for &words in &SIZES {
        let total_ops = transformed.total_operations(words);
        group.throughput(Throughput::Elements(total_ops as u64));
        group.bench_with_input(BenchmarkId::new("session", words), &words, |b, &words| {
            b.iter_batched(
                || bench_memory(words, WIDTH, 42),
                |mut memory| {
                    let outcome = run_scheme_session(
                        black_box(&transformed),
                        &mut memory,
                        Misr::standard(WIDTH),
                    )
                    .unwrap();
                    assert!(!outcome.fault_detected());
                    outcome
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bist_flow);
criterion_main!(benches);
