//! Throughput of the fault-coverage evaluator (the engine behind the
//! Section 5 experiment): faults simulated per second for the transparent
//! word-oriented March C− on a small embedded memory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use twm_core::{TransparentScheme, TwmTa};
use twm_coverage::universe::UniverseBuilder;
use twm_coverage::{ContentPolicy, CoverageEngine};
use twm_march::algorithms::march_c_minus;
use twm_mem::MemoryConfig;

fn bench_coverage(c: &mut Criterion) {
    let mut group = c.benchmark_group("coverage_evaluation");
    group.sample_size(20);
    for &(words, width) in &[(8usize, 4usize), (8, 8)] {
        let config = MemoryConfig::new(words, width).unwrap();
        let transformed = TwmTa::new(width)
            .unwrap()
            .transform(&march_c_minus())
            .unwrap();
        let faults = UniverseBuilder::new(config)
            .all_classes()
            .sample_per_class(200, 7)
            .build();
        group.throughput(Throughput::Elements(faults.len() as u64));
        let engine = CoverageEngine::builder(config)
            .test(transformed.transparent_test())
            .content(ContentPolicy::Random { seed: 11 })
            .build()
            .unwrap();
        group.bench_with_input(
            BenchmarkId::new("twmarch", format!("{words}x{width}")),
            &config,
            |b, _| {
                b.iter(|| engine.report(black_box(&faults)).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_coverage);
criterion_main!(benches);
