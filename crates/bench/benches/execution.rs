//! Run-time counterpart of the paper's Table 3: executing each scheme's
//! transparent word-oriented test on the memory simulator, for March C−
//! across word widths. The measured time tracks the operation counts, so
//! the ordering (proposed < Scheme 1 < Scheme 2/TOMT for wide words) and the
//! crossover between Scheme 1 and TOMT at small widths reproduce the table's
//! shape in wall-clock form.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use twm_bench::{bench_memory, proposed_test, scheme1_test};
use twm_bist::execute;
use twm_core::{TomtScheme, TransparentScheme};
use twm_march::algorithms::march_c_minus;

const WORDS: usize = 256;
const WIDTHS: [usize; 4] = [8, 16, 32, 64];

fn bench_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_execution");
    let bmarch = march_c_minus();
    for &width in &WIDTHS {
        let schemes: Vec<(&str, twm_march::MarchTest)> = vec![
            ("proposed", proposed_test(&bmarch, width)),
            ("scheme1", scheme1_test(&bmarch, width)),
            (
                "scheme2_tomt",
                TomtScheme::new(width)
                    .unwrap()
                    .transform(&bmarch)
                    .unwrap()
                    .transparent_test()
                    .clone(),
            ),
        ];
        for (name, test) in schemes {
            group.throughput(Throughput::Elements(test.total_operations(WORDS) as u64));
            group.bench_with_input(BenchmarkId::new(name, width), &width, |b, &width| {
                b.iter_batched(
                    || bench_memory(WORDS, width, 7),
                    |mut memory| {
                        let result = execute(black_box(&test), &mut memory).unwrap();
                        assert!(!result.detected());
                        result
                    },
                    criterion::BatchSize::SmallInput,
                );
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_execution);
criterion_main!(benches);
