//! The fault-simulation kernel and the coverage engine built on it:
//!
//! * single-write latency on the simulator — the fault-free word fast path
//!   (block-masked `u64` stores) versus writes to fault-indexed words, for
//!   memories up to 64K words;
//! * march-test execution throughput over memory size (the pre-lowered
//!   operation stream driving the write kernel);
//! * serial versus parallel fault-coverage evaluation throughput
//!   (faults/second) across the word widths of Table 3, on a ≥ 2000-fault
//!   universe — the experiment behind the paper's Section 5 at production
//!   scale;
//! * arena reuse versus fresh-per-fault memories on the 64K-word sweep —
//!   the A/B behind the `CoverageEngine`'s pooled
//!   [`twm_mem::FaultyMemory`] arenas and block-copy content restore;
//! * the bit-parallel 64-lane batched kernel versus the scalar
//!   one-execution-per-fault baseline (`lane_batching(false)`) on SAF/TF
//!   universes — the A/B behind [`twm_mem::PackedArena`].

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use twm_bench::{bench_memory, proposed_test, WIDTHS};
use twm_bist::{execute_with, ExecutionOptions};
use twm_coverage::universe::UniverseBuilder;
use twm_coverage::{ContentPolicy, CoverageEngine, EvaluationOptions, Strategy};
use twm_march::algorithms::march_c_minus;
use twm_mem::{BitAddress, Fault, MemoryConfig, SplitMix64, Transition, Word};

/// Memory sizes for the write-latency and execution sweeps (up to 64K
/// words).
const SIZES: [usize; 4] = [1 << 10, 1 << 12, 1 << 14, 1 << 16];

const WIDTH: usize = 32;

fn bench_single_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_write");
    group.sample_size(20);
    group.throughput(Throughput::Elements(1));
    for &words in &SIZES {
        // Fault-free fast path: no word has an index entry.
        group.bench_with_input(
            BenchmarkId::new("fault_free", words),
            &words,
            |b, &words| {
                let mut memory = bench_memory(words, WIDTH, 3);
                let value = Word::from_bits(0xDEAD_BEEF, WIDTH).unwrap();
                let mut rng = SplitMix64::new(11);
                b.iter(|| {
                    let address = rng.next_below(words);
                    memory
                        .write_word(black_box(address), black_box(value))
                        .unwrap()
                });
            },
        );
        // Indexed slow path: every write lands on a word carrying stuck-at,
        // transition and coupling faults, so the full mask kernel runs.
        group.bench_with_input(
            BenchmarkId::new("faulty_word", words),
            &words,
            |b, &words| {
                let target = words / 2;
                let faults = vec![
                    Fault::stuck_at(BitAddress::new(target, 0), true),
                    Fault::transition(BitAddress::new(target, 1), Transition::Rising),
                    Fault::coupling_idempotent(
                        BitAddress::new(target, 2),
                        BitAddress::new(target, 7),
                        Transition::Rising,
                        true,
                    ),
                ];
                let config = MemoryConfig::new(words, WIDTH).unwrap();
                let mut memory = twm_mem::FaultyMemory::with_faults(config, faults).unwrap();
                let mut toggle = false;
                b.iter(|| {
                    toggle = !toggle;
                    let value = if toggle {
                        Word::ones(WIDTH)
                    } else {
                        Word::zeros(WIDTH)
                    };
                    memory
                        .write_word(black_box(target), black_box(value))
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_execution_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("march_execution_scaling");
    group.sample_size(10);
    let test = proposed_test(&march_c_minus(), WIDTH);
    for &words in &SIZES {
        group.throughput(Throughput::Elements(test.total_operations(words) as u64));
        group.bench_with_input(
            BenchmarkId::new("twmarch_sweep", words),
            &words,
            |b, &words| {
                let mut memory = bench_memory(words, WIDTH, 17);
                b.iter(|| {
                    let result = execute_with(
                        black_box(&test),
                        &mut memory,
                        ExecutionOptions {
                            record_reads: false,
                            stop_at_first_mismatch: false,
                        },
                    )
                    .unwrap();
                    assert!(!result.detected());
                    result
                });
            },
        );
    }
    group.finish();
}

fn bench_evaluator(c: &mut Criterion) {
    let mut group = c.benchmark_group("coverage_throughput");
    group.sample_size(10);
    // 8 words keeps one fault-injection run short enough that the sweep over
    // all widths finishes in reasonable wall-clock time; the universe size
    // (5 classes x 400 samples = up to 2000 faults) is what the acceptance
    // experiment fixes.
    let words = 8usize;
    for &width in &WIDTHS {
        let config = MemoryConfig::new(words, width).unwrap();
        let faults = UniverseBuilder::new(config)
            .all_classes()
            .sample_per_class(400, 7)
            .build();
        let test = proposed_test(&march_c_minus(), width);
        let options = EvaluationOptions {
            content: ContentPolicy::Random { seed: 11 },
            contents_per_fault: 1,
        };
        group.throughput(Throughput::Elements(faults.len() as u64));
        // Engines are built once per configuration — lowering, content
        // generation and the arena pool are amortised across iterations,
        // which is the intended deployment shape.
        let serial = CoverageEngine::builder(config)
            .test(&test)
            .options(options)
            .strategy(Strategy::Serial)
            .build()
            .unwrap();
        let parallel = CoverageEngine::builder(config)
            .test(&test)
            .options(options)
            .strategy(Strategy::Auto)
            .build()
            .unwrap();
        group.bench_with_input(
            BenchmarkId::new("serial", format!("{words}x{width}x{}", faults.len())),
            &config,
            |b, _| {
                b.iter(|| serial.report(black_box(&faults)).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("parallel", format!("{words}x{width}x{}", faults.len())),
            &config,
            |b, _| {
                b.iter(|| parallel.report(black_box(&faults)).unwrap());
            },
        );
    }
    group.finish();
}

/// Engine-redesign A/B on the 64K-word sweep: the arena path (pooled
/// memories re-armed per fault, block-copy content restore, fault-local
/// footprint sweeps via `detect_lowered_at`) versus the complete
/// historical PR 1 evaluation path (`memory_reuse(false)`: fresh
/// `FaultyMemory` per fault, word-by-word restore, full-address sweep).
/// The footprint sweep dominates the gap at large memories; the arena
/// eliminates the per-fault allocation on top. Reports are bit-identical;
/// only the faults/second differ.
fn bench_engine_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_reuse");
    group.sample_size(10);
    let test = march_c_minus();
    for &words in &[1usize << 12, 1 << 14, 1 << 16] {
        let config = MemoryConfig::new(words, WIDTH).unwrap();
        // A modest universe keeps one iteration tractable at 64K words while
        // still exercising one full re-arm + restore per fault.
        let faults = UniverseBuilder::new(config)
            .stuck_at()
            .transition()
            .sample_per_class(16, 5)
            .build();
        let options = EvaluationOptions {
            content: ContentPolicy::Random { seed: 11 },
            contents_per_fault: 1,
        };
        let arena = CoverageEngine::builder(config)
            .test(&test)
            .options(options)
            .build()
            .unwrap();
        let fresh = CoverageEngine::builder(config)
            .test(&test)
            .options(options)
            .memory_reuse(false)
            .build()
            .unwrap();
        assert_eq!(
            arena.report(&faults).unwrap(),
            fresh.report(&faults).unwrap(),
            "modes must stay bit-identical"
        );
        group.throughput(Throughput::Elements(faults.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("fresh_per_fault", words),
            &config,
            |b, _| {
                b.iter(|| fresh.report(black_box(&faults)).unwrap());
            },
        );
        group.bench_with_input(BenchmarkId::new("arena", words), &config, |b, _| {
            b.iter(|| arena.report(black_box(&faults)).unwrap());
        });

        // Persistent-worker-pool A/B: identical parallel engines, one
        // keeping its window workers alive across reports (`thread_reuse`,
        // the default), one spawning scoped threads per window (the
        // historical behaviour). Reports are bit-identical; only thread
        // creation overhead differs.
        let pooled = CoverageEngine::builder(config)
            .test(&test)
            .options(options)
            .strategy(Strategy::Parallel { threads: 4 })
            .build()
            .unwrap();
        let spawning = CoverageEngine::builder(config)
            .test(&test)
            .options(options)
            .strategy(Strategy::Parallel { threads: 4 })
            .thread_reuse(false)
            .build()
            .unwrap();
        assert_eq!(
            pooled.report(&faults).unwrap(),
            spawning.report(&faults).unwrap(),
            "thread modes must stay bit-identical"
        );
        group.bench_with_input(
            BenchmarkId::new("spawn_per_window", words),
            &config,
            |b, _| {
                b.iter(|| spawning.report(black_box(&faults)).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("persistent_pool", words),
            &config,
            |b, _| {
                b.iter(|| pooled.report(black_box(&faults)).unwrap());
            },
        );
    }
    group.finish();
}

/// Bit-parallel lane-packing A/B: `CoverageEngine::report` over a SAF/TF
/// universe with the default 64-lane batched kernel
/// (`PackedArena<Packed64>` + `detect_lowered_batch`, one march execution
/// per 64 faults) versus the scalar one-execution-per-fault baseline
/// (`lane_batching(false)`). Reports are asserted bit-identical before
/// timing; only faults/second differ. Serial strategy keeps the A/B
/// algorithmic — thread fan-out is measured elsewhere.
fn bench_lane_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("lane_packing");
    group.sample_size(10);
    let test = march_c_minus();
    for &words in &[1usize << 10, 1 << 14] {
        let config = MemoryConfig::new(words, WIDTH).unwrap();
        let faults = UniverseBuilder::new(config)
            .stuck_at()
            .transition()
            .sample_per_class(128, 5)
            .build();
        let options = EvaluationOptions {
            content: ContentPolicy::Random { seed: 11 },
            contents_per_fault: 1,
        };
        let packed = CoverageEngine::builder(config)
            .test(&test)
            .options(options)
            .strategy(Strategy::Serial)
            .build()
            .unwrap();
        let scalar = CoverageEngine::builder(config)
            .test(&test)
            .options(options)
            .strategy(Strategy::Serial)
            .lane_batching(false)
            .build()
            .unwrap();
        assert_eq!(
            packed.report(&faults).unwrap(),
            scalar.report(&faults).unwrap(),
            "lane batching must stay bit-identical"
        );
        group.throughput(Throughput::Elements(faults.len() as u64));
        group.bench_with_input(BenchmarkId::new("scalar", words), &config, |b, _| {
            b.iter(|| scalar.report(black_box(&faults)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("packed64", words), &config, |b, _| {
            b.iter(|| packed.report(black_box(&faults)).unwrap());
        });
    }
    group.finish();
}

/// Cheap-first universe ordering A/B: `CoverageEngine::report` on a
/// deterministically shuffled mixed universe (all five fault classes, so
/// 1-word SAF/TF runs interleave with 2-word coupling runs), with the
/// default cheap-first scheduling versus strict in-order evaluation
/// (`schedule_cheap_first(false)`). Reports are bit-identical; only the
/// per-window thread balance can differ.
///
/// All-zero content keeps the per-fault work footprint-dominated (no
/// per-run image restore), the search inner loop's shape. The thread
/// count is pinned (4) so the scheduled path engages even where
/// `available_parallelism` probes low; on a single-core host both sides
/// necessarily time-share and the A/B reads as parity — the group then
/// still guards the scheduling against regressing throughput.
fn bench_universe_ordering(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    let mut group = c.benchmark_group("universe_ordering");
    group.sample_size(10);
    let test = march_c_minus();
    for &words in &[1usize << 6, 1 << 10] {
        let config = MemoryConfig::new(words, WIDTH).unwrap();
        let mut faults = UniverseBuilder::new(config)
            .all_classes()
            .sample_per_class(400, 7)
            .build();
        // Shuffle so every streaming window mixes cheap and expensive
        // faults — the adversarial case for contiguous per-thread chunks.
        faults.shuffle(&mut StdRng::seed_from_u64(23));
        let options = EvaluationOptions {
            content: ContentPolicy::Zeros,
            contents_per_fault: 1,
        };
        let cheap_first = CoverageEngine::builder(config)
            .test(&test)
            .options(options)
            .strategy(Strategy::Parallel { threads: 4 })
            .build()
            .unwrap();
        let in_order = CoverageEngine::builder(config)
            .test(&test)
            .options(options)
            .strategy(Strategy::Parallel { threads: 4 })
            .schedule_cheap_first(false)
            .build()
            .unwrap();
        assert_eq!(
            cheap_first.report(&faults).unwrap(),
            in_order.report(&faults).unwrap(),
            "scheduling must stay bit-identical"
        );
        group.throughput(Throughput::Elements(faults.len() as u64));
        group.bench_with_input(BenchmarkId::new("in_order", words), &config, |b, _| {
            b.iter(|| in_order.report(black_box(&faults)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("cheap_first", words), &config, |b, _| {
            b.iter(|| cheap_first.report(black_box(&faults)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_write,
    bench_execution_scaling,
    bench_evaluator,
    bench_engine_reuse,
    bench_lane_packing,
    bench_universe_ordering
);
criterion_main!(benches);
