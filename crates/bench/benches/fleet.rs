//! The fleet service's hot paths:
//!
//! * batched trail diagnosis throughput (devices/second) through a warm
//!   runtime cache — the steady-state cost of serving a fleet;
//! * per-device latency on a warm cache versus a cold one (fresh service,
//!   runtime rebuilt from the dictionary) — what the LRU engine/session
//!   cache actually buys;
//! * wire-format encode/decode of a whole batch request.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use twm_bist::{run_scheme_session_staged, Misr};
use twm_core::scheme::{SchemeId, SchemeRegistry};
use twm_coverage::{ContentPolicy, CoverageEngine, Strategy, UniverseBuilder};
use twm_fleet::{
    wire, DeviceReport, FleetConfig, FleetService, Request, Response, ShardKey, SignatureTrail,
};
use twm_march::algorithms::march_c_minus;
use twm_march::MarchTest;
use twm_mem::{BitAddress, Fault, FaultyMemory, MemoryConfig};
use twm_repair::{DictionaryOptions, SignatureDictionary};

const WORDS: usize = 16;
const WIDTH: usize = 8;
const SEED: u64 = 2005;
const BATCH: usize = 64;

fn config() -> MemoryConfig {
    MemoryConfig::new(WORDS, WIDTH).unwrap()
}

fn dictionary(source: &MarchTest) -> SignatureDictionary {
    let registry = SchemeRegistry::all(WIDTH).unwrap();
    let engine =
        CoverageEngine::for_scheme(registry.get(SchemeId::TwmTa).unwrap(), source, config())
            .unwrap()
            .content(ContentPolicy::Random { seed: SEED })
            .strategy(Strategy::Serial)
            .build()
            .unwrap();
    let universe = UniverseBuilder::new(config())
        .stuck_at()
        .transition()
        .build();
    SignatureDictionary::build(&engine, &universe, &DictionaryOptions::default()).unwrap()
}

fn trail(source: &MarchTest, faults: &[Fault]) -> SignatureTrail {
    let registry = SchemeRegistry::all(WIDTH).unwrap();
    let transform = registry.transform(SchemeId::TwmTa, source).unwrap();
    let mut memory = FaultyMemory::with_faults(config(), faults.to_vec()).unwrap();
    memory.fill_random(SEED);
    let staged = run_scheme_session_staged(&transform, &mut memory, Misr::standard(WIDTH)).unwrap();
    SignatureTrail::new(staged.signature_trail())
}

fn reports(source: &MarchTest, devices: usize) -> Vec<DeviceReport> {
    let shard = ShardKey::new(config(), SchemeId::TwmTa, source);
    (0..devices)
        .map(|index| {
            let faults = if index % 2 == 0 {
                Vec::new()
            } else {
                vec![Fault::stuck_at(
                    BitAddress::new(index % WORDS, index % WIDTH),
                    index % 3 == 0,
                )]
            };
            DeviceReport {
                device: format!("bench-{index:03}"),
                shard,
                trail: trail(source, &faults),
                spares: 1,
            }
        })
        .collect()
}

fn warm_service(source: &MarchTest, dictionary: &SignatureDictionary) -> FleetService {
    let service = FleetService::new(FleetConfig {
        strategy: Strategy::Serial,
        ..FleetConfig::default()
    })
    .unwrap();
    let registered = service.handle(Request::RegisterDictionary {
        source: source.clone(),
        dictionary: dictionary.clone(),
    });
    assert!(matches!(registered, Response::Registered { .. }));
    service
}

fn bench_batched_lookups(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_batch");
    group.sample_size(10);
    let source = march_c_minus();
    let dictionary = dictionary(&source);
    let service = warm_service(&source, &dictionary);
    let batch = reports(&source, BATCH);
    // Prime the runtime cache so the loop measures steady state.
    let primed = service.handle(Request::DiagnoseBatch {
        reports: batch.clone(),
    });
    assert!(matches!(primed, Response::Batch(_)));
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_with_input(
        BenchmarkId::new("warm_diagnose", BATCH),
        &batch,
        |b, batch| {
            b.iter(|| {
                service.handle(Request::DiagnoseBatch {
                    reports: black_box(batch.clone()),
                })
            });
        },
    );
    group.finish();
}

fn bench_cache_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_cache");
    group.sample_size(10);
    let source = march_c_minus();
    let dictionary = dictionary(&source);
    let single = reports(&source, 1);

    // Warm: the shard runtime is cached; only diagnosis work remains.
    let warm = warm_service(&source, &dictionary);
    let primed = warm.handle(Request::DiagnoseBatch {
        reports: single.clone(),
    });
    assert!(matches!(primed, Response::Batch(_)));
    group.bench_with_input(BenchmarkId::new("warm_device", 1), &single, |b, single| {
        b.iter(|| {
            warm.handle(Request::DiagnoseBatch {
                reports: black_box(single.clone()),
            })
        });
    });

    // Cold: a fresh service per iteration rebuilds registry, transforms
    // and engine before the same diagnosis.
    group.bench_with_input(BenchmarkId::new("cold_device", 1), &single, |b, single| {
        b.iter(|| {
            let cold = warm_service(&source, &dictionary);
            cold.handle(Request::DiagnoseBatch {
                reports: black_box(single.clone()),
            })
        });
    });
    group.finish();
}

fn bench_wire_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_wire");
    group.sample_size(10);
    let source = march_c_minus();
    let request = Request::DiagnoseBatch {
        reports: reports(&source, BATCH),
    };
    let bytes = wire::to_bytes(&request);
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode_batch", |b| {
        b.iter(|| wire::to_bytes(black_box(&request)));
    });
    group.bench_function("decode_batch", |b| {
        b.iter(|| wire::from_bytes::<Request>(black_box(&bytes)).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_batched_lookups,
    bench_cache_latency,
    bench_wire_codec
);
criterion_main!(benches);
