//! The repair subsystem's hot paths:
//!
//! * signature-dictionary build throughput (injections/second) over the
//!   8×32 SAF+TF universe, serial versus parallel — the deployment-time
//!   cost of making a scheme diagnosable;
//! * one adaptive localisation pass (dictionary lookup + follow-up scheme
//!   sessions + targeted probes) on a failing memory — the field-side
//!   latency from MISR mismatch to a ranked defect list;
//! * the post-repair verification session through the remap table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use twm_core::scheme::{SchemeId, SchemeRegistry};
use twm_coverage::{ContentPolicy, CoverageEngine, Strategy, UniverseBuilder};
use twm_march::algorithms::march_c_minus;
use twm_mem::{BitAddress, Fault, FaultSet, FaultyMemory, MemoryConfig, RepairableMemory};
use twm_repair::{
    verify_repair, DiagnosticSession, DictionaryOptions, RepairAllocator, SignatureDictionary,
};

const WORDS: usize = 8;
const WIDTH: usize = 32;
const SEED: u64 = 99;

fn scheme_engine(config: MemoryConfig) -> CoverageEngine {
    let registry = SchemeRegistry::comparison(WIDTH).unwrap();
    CoverageEngine::for_scheme(
        registry.get(SchemeId::TwmTa).unwrap(),
        &march_c_minus(),
        config,
    )
    .unwrap()
    .content(ContentPolicy::Random { seed: SEED })
    .build()
    .unwrap()
}

fn bench_dictionary_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("dictionary_build");
    group.sample_size(10);
    let config = MemoryConfig::new(WORDS, WIDTH).unwrap();
    let engine = scheme_engine(config);
    let universe = UniverseBuilder::new(config).stuck_at().transition().build();
    group.throughput(Throughput::Elements(universe.len() as u64));
    for (label, strategy) in [("serial", Strategy::Serial), ("parallel", Strategy::Auto)] {
        let options = DictionaryOptions {
            strategy,
            ..DictionaryOptions::default()
        };
        group.bench_with_input(
            BenchmarkId::new(label, universe.len()),
            &universe,
            |b, universe| {
                b.iter(|| {
                    SignatureDictionary::build(&engine, black_box(universe), &options).unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_localise_and_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("repair_flow");
    group.sample_size(10);
    let config = MemoryConfig::new(WORDS, WIDTH).unwrap();
    let engine = scheme_engine(config);
    let universe = UniverseBuilder::new(config).stuck_at().transition().build();
    let dictionary =
        SignatureDictionary::build(&engine, &universe, &DictionaryOptions::default()).unwrap();
    let registry = SchemeRegistry::comparison(WIDTH).unwrap();
    let session = DiagnosticSession::new(&registry, &march_c_minus())
        .unwrap()
        .with_dictionary(&dictionary)
        .unwrap();
    let fault = Fault::stuck_at(BitAddress::new(5, 17), true);

    group.throughput(Throughput::Elements(1));
    group.bench_function("localise", |b| {
        let mut memory = FaultyMemory::with_faults(config, FaultSet::from_faults([fault])).unwrap();
        memory.fill_random(SEED);
        b.iter(|| {
            let outcome = session.localise(black_box(&mut memory)).unwrap();
            assert!(!outcome.defects.is_empty());
            outcome
        });
    });

    group.bench_function("allocate", |b| {
        let mut memory = FaultyMemory::with_faults(config, FaultSet::from_faults([fault])).unwrap();
        memory.fill_random(SEED);
        let outcome = session.localise(&mut memory).unwrap();
        let allocator = RepairAllocator::default();
        b.iter(|| allocator.allocate(black_box(&outcome.defects), 2));
    });

    group.bench_function("verify_repaired", |b| {
        let mut base = FaultyMemory::with_faults(config, FaultSet::from_faults([fault])).unwrap();
        base.fill_random(SEED);
        let mut memory = RepairableMemory::new(base, 2).unwrap();
        memory.map_word(5, 0).unwrap();
        let transform = session.probe_transform();
        b.iter(|| {
            let verdict = verify_repair(
                transform,
                black_box(&mut memory),
                twm_bist::Misr::standard(WIDTH),
            )
            .unwrap();
            assert!(verdict.clean());
            verdict
        });
    });
    group.finish();
}

criterion_group!(benches, bench_dictionary_build, bench_localise_and_verify);
criterion_main!(benches);
