//! Throughput of the search subsystem's inner loop: candidates scored per
//! second through [`twm_search::Objective`], serial versus parallel batch
//! evaluation, plus one end-to-end greedy minimisation per width.
//!
//! The candidate batch is generated once per configuration from a fixed
//! seed (the same neighbourhood a beam generation would explore), so
//! iterations measure pure scoring cost: one `CoverageEngine::with_test`
//! sibling per candidate (shared prepared contents, fresh lowering), one
//! report over the SAF+TF universe, and the registry-driven transparent
//! cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use twm_core::scheme::SchemeRegistry;
use twm_coverage::{Strategy, UniverseBuilder};
use twm_march::algorithms::march_c_minus;
use twm_march::MarchTest;
use twm_mem::{MemoryConfig, SplitMix64};
use twm_search::{minimise_greedy, GreedyOptions, MutationModel, Objective, ObjectiveOptions};

const WORDS: usize = 16;
const WIDTHS: [usize; 3] = [8, 32, 128];
const BATCH: usize = 32;

fn objective(width: usize, strategy: Strategy) -> Objective {
    let config = MemoryConfig::new(WORDS, width).unwrap();
    let universe = UniverseBuilder::new(config).stuck_at().transition().build();
    Objective::new(
        config,
        universe,
        Some(SchemeRegistry::comparison(width).unwrap()),
        ObjectiveOptions {
            strategy,
            ..ObjectiveOptions::default()
        },
    )
    .unwrap()
}

/// A deterministic batch of mutated March C− candidates (the shape of one
/// beam generation).
fn candidate_batch() -> Vec<MarchTest> {
    let model = MutationModel::default();
    let mut rng = SplitMix64::new(7);
    let mut batch = Vec::with_capacity(BATCH);
    let mut current = march_c_minus();
    while batch.len() < BATCH {
        if let Some((_, candidate)) = model.propose(&current, &mut rng) {
            batch.push(candidate.clone());
            // Drift the base every few proposals so the batch is not one
            // test's immediate neighbourhood only.
            if batch.len() % 8 == 0 {
                current = candidate;
            }
        }
    }
    batch
}

fn bench_candidate_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_candidates");
    group.sample_size(10);
    let batch = candidate_batch();
    for &width in &WIDTHS {
        group.throughput(Throughput::Elements(batch.len() as u64));
        let serial = objective(width, Strategy::Serial);
        let parallel = objective(width, Strategy::Auto);
        group.bench_with_input(BenchmarkId::new("serial", width), &width, |b, _| {
            b.iter(|| serial.score_batch(black_box(&batch)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("parallel", width), &width, |b, _| {
            b.iter(|| parallel.score_batch(black_box(&batch)).unwrap());
        });
    }
    group.finish();
}

fn bench_greedy_minimisation(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_greedy");
    group.sample_size(10);
    for &width in &WIDTHS {
        let parallel = objective(width, Strategy::Auto);
        group.bench_with_input(BenchmarkId::new("march_c_minus", width), &width, |b, _| {
            b.iter(|| {
                let outcome = minimise_greedy(
                    &parallel,
                    black_box(&march_c_minus()),
                    &GreedyOptions::default(),
                )
                .unwrap();
                assert!(outcome.best.score.full_coverage());
                outcome
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_candidate_throughput,
    bench_greedy_minimisation
);
criterion_main!(benches);
