//! Wall-clock cost of the transformation algorithms themselves:
//! TWM_TA (the paper's Algorithm 1) versus Scheme 1's multi-background
//! expansion, for March C− and March U across the word widths of Table 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use twm_bench::WIDTHS;
use twm_core::{Scheme1, TransparentScheme, TwmTa};
use twm_march::algorithms::{march_c_minus, march_u};

fn bench_transformation(c: &mut Criterion) {
    let mut group = c.benchmark_group("transformation");
    for bmarch in [march_c_minus(), march_u()] {
        for &width in &WIDTHS {
            group.bench_with_input(
                BenchmarkId::new(format!("twm_ta/{}", bmarch.name()), width),
                &width,
                |b, &width| {
                    let scheme = TwmTa::new(width).unwrap();
                    b.iter(|| scheme.transform(black_box(&bmarch)).unwrap());
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("scheme1/{}", bmarch.name()), width),
                &width,
                |b, &width| {
                    let scheme = Scheme1::new(width).unwrap();
                    b.iter(|| scheme.transform(black_box(&bmarch)).unwrap());
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_transformation);
criterion_main!(benches);
