//! Perf-trajectory harness: measures the workspace's headline throughput
//! numbers with plain wall-clock timing and emits them as a `BENCH_<pr>.json`
//! artifact, so every PR's performance is comparable against the last
//! (ROADMAP open item 5 — the trajectory starts at PR 6).
//!
//! Metrics, chosen to cover each subsystem's hot loop:
//!
//! * `engine_reuse_64k` — coverage-engine faults/second on a 64K-word
//!   memory, scalar (`lane_batching(false)`, the PR 5 path) versus the
//!   bit-parallel 64-lane batched kernel, plus the speedup ratio;
//! * `march_execution` — raw march operations/second of one transparent
//!   sweep over the 64K-word memory;
//! * `search_candidates` — candidates scored/second through
//!   `Objective::score_batch` (the search inner loop);
//! * `dictionary_build` — fault injections/second of a signature-dictionary
//!   build (the repair deployment cost);
//! * `localise` — one adaptive localisation pass, in microseconds (the
//!   field-side diagnosis latency);
//! * `fleet_batch` — devices diagnosed/second through a warm
//!   `FleetService` runtime cache, plus per-device latency on a warm
//!   cache versus a cold one (fresh service, shard runtime rebuilt) and
//!   the warm-over-cold speedup the LRU cache buys;
//! * `dictionary_store` — the out-of-core dictionary backend:
//!   build-to-disk injections/second, on-disk bytes per indexed entry,
//!   cold (fresh pager, empty page cache) versus warm trail-lookup
//!   latency and the warm page-cache hit rate;
//! * `obs_overhead` — the observability tax: the 64K-word
//!   `engine_reuse` packed path timed with tracing disabled (the
//!   default one-atomic-load gate) versus enabled into the sampling
//!   profiler sink, reports asserted bit-identical across the A/B
//!   first. The profiler's per-span self-time aggregates from the
//!   enabled run land in the artifact's `profile` section, so every
//!   trajectory point says *where* the workload's time went.
//!
//! Usage: `perf_trajectory [--out PATH] [--assert-speedup X]
//! [--assert-fleet-speedup X] [--assert-obs-overhead PCT]`. With
//! `--assert-speedup`, the process exits non-zero unless the packed
//! kernel beats the scalar baseline by at least `X`×;
//! `--assert-fleet-speedup` does the same for the warm cache against
//! the cold build; `--assert-obs-overhead` fails the run when enabling
//! tracing costs more than `PCT`% on the engine-reuse path — CI uses
//! all three to keep the speedup and non-interference claims exercised
//! on every push.

use std::time::Instant;

use twm_bench::proposed_test;
use twm_bist::{execute_with, run_scheme_session_staged, ExecutionOptions, Misr};
use twm_core::scheme::{SchemeId, SchemeRegistry};
use twm_coverage::{ContentPolicy, CoverageEngine, EvaluationOptions, Strategy, UniverseBuilder};
use twm_fleet::{
    DeviceReport, FleetConfig, FleetService, Request, Response, ShardKey, SignatureTrail,
};
use twm_march::algorithms::march_c_minus;
use twm_march::MarchTest;
use twm_mem::{BitAddress, Fault, FaultSet, FaultyMemory, MemoryConfig, SplitMix64};
use twm_repair::{DiagnosticSession, DictionaryOptions, SignatureDictionary};
use twm_search::{MutationModel, Objective, ObjectiveOptions};
use twm_store::{PagedDictionary, StoreOptions};

/// The PR this trajectory point belongs to.
const PR: u32 = 10;

/// PR 5's measured `engine_reuse` arena throughput at 64K words
/// (faults/second) — the baseline the packed kernel is compared against.
const PR5_BASELINE_FAULTS_PER_SEC: f64 = 63_900.0;

/// Measures the mean seconds per call of `f`, running at least `min_iters`
/// times and at least `min_secs` of wall-clock (one untimed warmup first).
fn time_mean<F: FnMut()>(mut f: F, min_iters: u32, min_secs: f64) -> f64 {
    f();
    let mut iters = 0u32;
    let start = Instant::now();
    loop {
        f();
        iters += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if iters >= min_iters && elapsed >= min_secs {
            return elapsed / f64::from(iters);
        }
    }
}

struct EngineReuse {
    words: usize,
    width: usize,
    universe_faults: usize,
    scalar_faults_per_sec: f64,
    packed_faults_per_sec: f64,
    speedup: f64,
}

/// Coverage-engine faults/second at 64K words: the scalar PR 5 path versus
/// the 64-lane batched kernel, on the same SAF+TF universe and content.
/// Reports are asserted identical before timing.
fn measure_engine_reuse() -> EngineReuse {
    let words = 1usize << 16;
    let width = 32;
    let config = MemoryConfig::new(words, width).unwrap();
    let test = march_c_minus();
    let faults = UniverseBuilder::new(config)
        .stuck_at()
        .transition()
        .sample_per_class(256, 5)
        .build();
    let options = EvaluationOptions {
        content: ContentPolicy::Random { seed: 11 },
        contents_per_fault: 1,
    };
    let packed = CoverageEngine::builder(config)
        .test(&test)
        .options(options)
        .strategy(Strategy::Serial)
        .build()
        .unwrap();
    let scalar = CoverageEngine::builder(config)
        .test(&test)
        .options(options)
        .strategy(Strategy::Serial)
        .lane_batching(false)
        .build()
        .unwrap();
    assert_eq!(
        packed.report(&faults).unwrap(),
        scalar.report(&faults).unwrap(),
        "packed and scalar reports must stay bit-identical"
    );

    let scalar_secs = time_mean(|| drop(scalar.report(&faults).unwrap()), 2, 0.5);
    let packed_secs = time_mean(|| drop(packed.report(&faults).unwrap()), 5, 0.5);
    let scalar_rate = faults.len() as f64 / scalar_secs;
    let packed_rate = faults.len() as f64 / packed_secs;
    EngineReuse {
        words,
        width,
        universe_faults: faults.len(),
        scalar_faults_per_sec: scalar_rate,
        packed_faults_per_sec: packed_rate,
        speedup: packed_rate / scalar_rate,
    }
}

/// Raw march operations/second: one transparent sweep (the paper's TWM_TA
/// transform of March C−) over a fault-free 64K-word memory.
fn measure_march_ops() -> (usize, f64) {
    let words = 1usize << 16;
    let width = 32;
    let test = proposed_test(&march_c_minus(), width);
    let ops = test.total_operations(words);
    let config = MemoryConfig::new(words, width).unwrap();
    let mut memory = FaultyMemory::fault_free(config);
    memory.fill_random(17);
    let secs = time_mean(
        || {
            let result = execute_with(
                &test,
                &mut memory,
                ExecutionOptions {
                    record_reads: false,
                    stop_at_first_mismatch: false,
                },
            )
            .unwrap();
            assert!(!result.detected());
        },
        3,
        0.5,
    );
    (ops, ops as f64 / secs)
}

/// A deterministic batch of mutated March C− candidates (the shape of one
/// beam generation) — the same neighbourhood `benches/search.rs` scores.
fn candidate_batch(size: usize) -> Vec<MarchTest> {
    let model = MutationModel::default();
    let mut rng = SplitMix64::new(7);
    let mut batch = Vec::with_capacity(size);
    let mut current = march_c_minus();
    while batch.len() < size {
        if let Some((_, candidate)) = model.propose(&current, &mut rng) {
            batch.push(candidate.clone());
            if batch.len() % 8 == 0 {
                current = candidate;
            }
        }
    }
    batch
}

/// Search candidates scored/second: `Objective::score_batch` over a fixed
/// 32-candidate batch at 16×32 with the SAF+TF universe and registry cost.
fn measure_search_candidates() -> (usize, f64) {
    let width = 32;
    let config = MemoryConfig::new(16, width).unwrap();
    let universe = UniverseBuilder::new(config).stuck_at().transition().build();
    let objective = Objective::new(
        config,
        universe,
        Some(SchemeRegistry::comparison(width).unwrap()),
        ObjectiveOptions {
            strategy: Strategy::Serial,
            ..ObjectiveOptions::default()
        },
    )
    .unwrap();
    let batch = candidate_batch(32);
    let secs = time_mean(|| drop(objective.score_batch(&batch).unwrap()), 2, 0.5);
    (batch.len(), batch.len() as f64 / secs)
}

/// Dictionary build injections/second and one localisation pass latency, on
/// the 8×32 deployment shape of `benches/repair.rs`.
fn measure_repair() -> (usize, f64, f64) {
    let words = 8;
    let width = 32;
    let seed = 99;
    let config = MemoryConfig::new(words, width).unwrap();
    let registry = SchemeRegistry::comparison(width).unwrap();
    let engine = CoverageEngine::for_scheme(
        registry.get(SchemeId::TwmTa).unwrap(),
        &march_c_minus(),
        config,
    )
    .unwrap()
    .content(ContentPolicy::Random { seed })
    .build()
    .unwrap();
    let universe = UniverseBuilder::new(config).stuck_at().transition().build();
    let options = DictionaryOptions::default();
    let build_secs = time_mean(
        || drop(SignatureDictionary::build(&engine, &universe, &options).unwrap()),
        2,
        0.5,
    );

    let dictionary = SignatureDictionary::build(&engine, &universe, &options).unwrap();
    let session = DiagnosticSession::new(&registry, &march_c_minus())
        .unwrap()
        .with_dictionary(&dictionary)
        .unwrap();
    let fault = Fault::stuck_at(BitAddress::new(5, 17), true);
    let mut memory = FaultyMemory::with_faults(config, FaultSet::from_faults([fault])).unwrap();
    memory.fill_random(seed);
    let localise_secs = time_mean(
        || {
            let outcome = session.localise(&mut memory).unwrap();
            assert!(!outcome.defects.is_empty());
        },
        3,
        0.5,
    );
    (
        universe.len(),
        universe.len() as f64 / build_secs,
        localise_secs * 1e6,
    )
}

struct FleetBatch {
    words: usize,
    width: usize,
    batch: usize,
    devices_per_sec: f64,
    warm_device_us: f64,
    cold_device_us: f64,
    warm_speedup_vs_cold: f64,
}

/// Fleet-service throughput on the 16×8 deployment shape of
/// `benches/fleet.rs`: batched lookups/second through a warm runtime
/// cache, and per-device latency warm versus cold (fresh service, shard
/// runtime rebuilt from the registered dictionary before diagnosing).
fn measure_fleet() -> FleetBatch {
    let words = 16;
    let width = 8;
    let seed = 2005;
    let batch_size = 64;
    let config = MemoryConfig::new(words, width).unwrap();
    let source = march_c_minus();
    let shard = ShardKey::new(config, SchemeId::TwmTa, &source);

    let registry = SchemeRegistry::all(width).unwrap();
    let engine =
        CoverageEngine::for_scheme(registry.get(SchemeId::TwmTa).unwrap(), &source, config)
            .unwrap()
            .content(ContentPolicy::Random { seed })
            .strategy(Strategy::Serial)
            .build()
            .unwrap();
    let universe = UniverseBuilder::new(config).stuck_at().transition().build();
    let dictionary =
        SignatureDictionary::build(&engine, &universe, &DictionaryOptions::default()).unwrap();

    let transform = registry.transform(SchemeId::TwmTa, &source).unwrap();
    let trail = |faults: &[Fault]| {
        let mut memory =
            FaultyMemory::with_faults(config, FaultSet::from_faults(faults.to_vec())).unwrap();
        memory.fill_random(seed);
        let staged =
            run_scheme_session_staged(&transform, &mut memory, Misr::standard(width)).unwrap();
        SignatureTrail::new(staged.signature_trail())
    };
    let reports: Vec<DeviceReport> = (0..batch_size)
        .map(|index| {
            let faults = if index % 2 == 0 {
                Vec::new()
            } else {
                vec![Fault::stuck_at(
                    BitAddress::new(index % words, index % width),
                    index % 3 == 0,
                )]
            };
            DeviceReport {
                device: format!("perf-{index:03}"),
                shard,
                trail: trail(&faults),
                spares: 1,
            }
        })
        .collect();
    let single = reports[..1].to_vec();

    let fresh_service = || {
        let service = FleetService::new(FleetConfig {
            strategy: Strategy::Serial,
            ..FleetConfig::default()
        })
        .unwrap();
        let registered = service.handle(Request::RegisterDictionary {
            source: source.clone(),
            dictionary: dictionary.clone(),
        });
        assert!(matches!(registered, Response::Registered { .. }));
        service
    };
    let diagnose = |service: &FleetService, reports: &[DeviceReport]| {
        let response = service.handle(Request::DiagnoseBatch {
            reports: reports.to_vec(),
        });
        assert!(matches!(response, Response::Batch(_)));
    };

    let warm = fresh_service();
    diagnose(&warm, &reports); // prime the runtime cache
    let batch_secs = time_mean(|| diagnose(&warm, &reports), 5, 0.5);
    let warm_secs = time_mean(|| diagnose(&warm, &single), 10, 0.5);
    // Cold path: every iteration pays registration plus the shard-runtime
    // build (registry, scheme transforms, engine) before the diagnosis.
    let cold_secs = time_mean(
        || {
            let cold = fresh_service();
            diagnose(&cold, &single);
        },
        5,
        0.5,
    );
    FleetBatch {
        words,
        width,
        batch: batch_size,
        devices_per_sec: batch_size as f64 / batch_secs,
        warm_device_us: warm_secs * 1e6,
        cold_device_us: cold_secs * 1e6,
        warm_speedup_vs_cold: cold_secs / warm_secs,
    }
}

struct ObsOverhead {
    off_faults_per_sec: f64,
    on_faults_per_sec: f64,
    overhead_pct: f64,
    profile: twm_obs::ProfileReport,
}

/// The observability tax on the hottest instrumented path: the 64K-word
/// packed engine-reuse report, timed with the trace gate closed (the
/// default — each would-be span costs one relaxed atomic load) versus
/// open into the sampling profiler sink, which aggregates per-span
/// self-time as spans close. Metrics counters are always on in both
/// runs; the A/B isolates the cost of *enabling* tracing. The two
/// reports are asserted bit-identical before any timing — the
/// non-interference invariant, measured as well as property-tested —
/// and the profiler's aggregates over the timed iterations come back
/// as the artifact's `profile` section.
fn measure_obs_overhead() -> ObsOverhead {
    let config = MemoryConfig::new(1 << 16, 32).unwrap();
    let test = march_c_minus();
    let faults = UniverseBuilder::new(config)
        .stuck_at()
        .transition()
        .sample_per_class(256, 5)
        .build();
    let engine = CoverageEngine::builder(config)
        .test(&test)
        .options(EvaluationOptions {
            content: ContentPolicy::Random { seed: 11 },
            contents_per_fault: 1,
        })
        .strategy(Strategy::Serial)
        .build()
        .unwrap();

    twm_obs::trace::set_enabled(false);
    let off_report = engine.report(&faults).unwrap();
    let profiler = std::sync::Arc::new(twm_obs::ProfilerSink::new());
    twm_obs::trace::set_sink(profiler.clone());
    twm_obs::trace::set_enabled(true);
    let on_report = engine.report(&faults).unwrap();
    twm_obs::trace::set_enabled(false);
    assert_eq!(
        off_report, on_report,
        "reports must stay bit-identical with tracing on and off"
    );

    // Interleaved A/B: alternate one gate-closed and one gate-open
    // report per round, so slow machine drift (thermal throttling,
    // background load) lands on both arms equally instead of biasing
    // whichever block ran second. The gate flip itself is one atomic
    // store per round — noise-free at this granularity.
    profiler.reset(); // profile the measurement rounds, not the equality check
    let mut off_secs = 0.0f64;
    let mut on_secs = 0.0f64;
    let mut rounds = 0u64;
    while rounds < 5 || off_secs + on_secs < 1.0 {
        let start = Instant::now();
        drop(engine.report(&faults).unwrap());
        off_secs += start.elapsed().as_secs_f64();

        twm_obs::trace::set_enabled(true);
        let start = Instant::now();
        drop(engine.report(&faults).unwrap());
        on_secs += start.elapsed().as_secs_f64();
        twm_obs::trace::set_enabled(false);
        rounds += 1;
    }

    let per_arm = (rounds * faults.len() as u64) as f64;
    ObsOverhead {
        off_faults_per_sec: per_arm / off_secs,
        on_faults_per_sec: per_arm / on_secs,
        overhead_pct: (on_secs / off_secs - 1.0) * 100.0,
        profile: profiler.snapshot(),
    }
}

struct DictionaryStore {
    words: usize,
    width: usize,
    injections: usize,
    entries: usize,
    file_bytes: u64,
    bytes_per_entry: f64,
    build_injections_per_sec: f64,
    cold_lookup_us: f64,
    warm_lookup_us: f64,
    warm_hit_rate: f64,
}

/// Out-of-core dictionary backend on the 16×8 fleet deployment shape:
/// streaming build-to-disk throughput, on-disk density, and trail-lookup
/// latency cold (fresh pager, every page read from disk) versus warm
/// (LRU page cache primed), with the warm cache's hit rate.
fn measure_dictionary_store() -> DictionaryStore {
    let words = 16;
    let width = 8;
    let seed = 2005;
    let config = MemoryConfig::new(words, width).unwrap();
    let registry = SchemeRegistry::all(width).unwrap();
    let engine = CoverageEngine::for_scheme(
        registry.get(SchemeId::TwmTa).unwrap(),
        &march_c_minus(),
        config,
    )
    .unwrap()
    .content(ContentPolicy::Random { seed })
    .build()
    .unwrap();
    let universe = UniverseBuilder::new(config).stuck_at().transition().build();
    let options = DictionaryOptions::default();
    let path = std::env::temp_dir().join(format!("twm-perf-{}.twmstore", std::process::id()));
    let store = StoreOptions::default();

    let build_secs = time_mean(
        || {
            drop(
                PagedDictionary::build_to_disk(&engine, &universe, &options, &path, &store)
                    .unwrap(),
            );
        },
        2,
        0.5,
    );

    let paged =
        PagedDictionary::build_to_disk(&engine, &universe, &options, &path, &store).unwrap();
    let entries = paged.classes();
    let file_bytes = paged.file_bytes();
    let probe = paged
        .iter()
        .nth(entries / 2)
        .expect("dictionary has classes")
        .unwrap()
        .trail;

    // Cold: a fresh open pays the header/meta reads and every index and
    // payload page comes off disk — the latency a spilled fleet shard
    // sees on its first post-eviction diagnosis.
    let cold_secs = time_mean(
        || {
            let cold = PagedDictionary::open(&path, &store).unwrap();
            assert!(cold.lookup(&probe).unwrap().is_some());
        },
        10,
        0.5,
    );
    // Warm: the same lookup against a primed page cache.
    assert!(paged.lookup(&probe).unwrap().is_some());
    let warm_secs = time_mean(|| assert!(paged.lookup(&probe).unwrap().is_some()), 10, 0.5);
    let metrics = paged.cache_metrics();
    std::fs::remove_file(&path).expect("remove perf store");

    DictionaryStore {
        words,
        width,
        injections: universe.len(),
        entries,
        file_bytes,
        bytes_per_entry: file_bytes as f64 / entries as f64,
        build_injections_per_sec: universe.len() as f64 / build_secs,
        cold_lookup_us: cold_secs * 1e6,
        warm_lookup_us: warm_secs * 1e6,
        warm_hit_rate: metrics.hit_rate(),
    }
}

/// Renders the profiler's top self-time spans as a JSON array (span
/// names are static identifiers from our own instrumentation, so no
/// escaping is needed).
fn format_profile(profile: &twm_obs::ProfileReport, top: usize) -> String {
    let mut out = String::from("[");
    for (at, span) in profile.top(top).iter().enumerate() {
        if at > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n      {{\n        \"span\": \"{}\",\n        \"calls\": {},\n        \
             \"self_ns\": {},\n        \"total_ns\": {},\n        \"min_ns\": {},\n        \
             \"max_ns\": {}\n      }}",
            span.name, span.calls, span.self_ns, span.total_ns, span.min_ns, span.max_ns
        ));
    }
    out.push_str("\n    ]");
    out
}

fn main() {
    let mut out_path = String::from("BENCH_10.json");
    let mut assert_speedup: Option<f64> = None;
    let mut assert_fleet_speedup: Option<f64> = None;
    let mut assert_obs_overhead: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out_path = args.next().expect("--out requires a path");
            }
            "--assert-speedup" => {
                assert_speedup = Some(
                    args.next()
                        .expect("--assert-speedup requires a number")
                        .parse()
                        .expect("--assert-speedup requires a number"),
                );
            }
            "--assert-fleet-speedup" => {
                assert_fleet_speedup = Some(
                    args.next()
                        .expect("--assert-fleet-speedup requires a number")
                        .parse()
                        .expect("--assert-fleet-speedup requires a number"),
                );
            }
            "--assert-obs-overhead" => {
                assert_obs_overhead = Some(
                    args.next()
                        .expect("--assert-obs-overhead requires a percentage")
                        .parse()
                        .expect("--assert-obs-overhead requires a percentage"),
                );
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: perf_trajectory [--out PATH] [--assert-speedup X] \
                     [--assert-fleet-speedup X] [--assert-obs-overhead PCT]"
                );
                std::process::exit(2);
            }
        }
    }

    eprintln!("measuring engine_reuse (64K words, scalar vs packed)...");
    let reuse = measure_engine_reuse();
    eprintln!(
        "  scalar {:.1} faults/s, packed {:.1} faults/s ({:.1}x)",
        reuse.scalar_faults_per_sec, reuse.packed_faults_per_sec, reuse.speedup
    );
    eprintln!("measuring march execution throughput...");
    let (march_ops, march_rate) = measure_march_ops();
    eprintln!("  {march_rate:.0} ops/s");
    eprintln!("measuring search candidate scoring...");
    let (batch, candidate_rate) = measure_search_candidates();
    eprintln!("  {candidate_rate:.2} candidates/s");
    eprintln!("measuring dictionary build and localisation...");
    let (injections, injection_rate, localise_us) = measure_repair();
    eprintln!("  {injection_rate:.1} injections/s, localise {localise_us:.0} us");
    eprintln!("measuring fleet batched diagnosis (warm vs cold cache)...");
    let fleet = measure_fleet();
    eprintln!(
        "  {:.0} devices/s batched; warm {:.1} us vs cold {:.0} us per device ({:.0}x)",
        fleet.devices_per_sec,
        fleet.warm_device_us,
        fleet.cold_device_us,
        fleet.warm_speedup_vs_cold
    );
    eprintln!("measuring dictionary store (build-to-disk, cold vs warm lookup)...");
    let store = measure_dictionary_store();
    eprintln!(
        "  {:.1} injections/s to disk; {:.1} bytes/entry; lookup cold {:.1} us vs warm {:.1} us (hit rate {:.3})",
        store.build_injections_per_sec,
        store.bytes_per_entry,
        store.cold_lookup_us,
        store.warm_lookup_us,
        store.warm_hit_rate
    );
    eprintln!("measuring observability overhead (tracing off vs on, 64K engine reuse)...");
    let obs = measure_obs_overhead();
    eprintln!(
        "  off {:.1} faults/s, on {:.1} faults/s ({:+.2}%)",
        obs.off_faults_per_sec, obs.on_faults_per_sec, obs.overhead_pct
    );
    for span in obs.profile.top(3) {
        eprintln!(
            "  profile: {} x{} self {:.1} ms",
            span.name,
            span.calls,
            span.self_ns as f64 / 1e6
        );
    }

    // The artifact schema is tiny and append-only, so it is formatted by
    // hand rather than routed through the serde value model.
    let json = format!(
        r#"{{
  "schema": "twm-perf-trajectory/1",
  "pr": {pr},
  "baseline": {{
    "pr": 5,
    "engine_reuse_64k_faults_per_sec": {baseline:.1}
  }},
  "metrics": {{
    "engine_reuse_64k": {{
      "words": {words},
      "width": {width},
      "universe_faults": {universe_faults},
      "scalar_faults_per_sec": {scalar:.1},
      "packed_faults_per_sec": {packed:.1},
      "packed_speedup_vs_scalar": {speedup:.2},
      "packed_speedup_vs_pr5_baseline": {speedup_pr5:.2}
    }},
    "march_execution": {{
      "words": 65536,
      "width": 32,
      "ops_per_sweep": {march_ops},
      "ops_per_sec": {march_rate:.0}
    }},
    "search_candidates": {{
      "batch": {batch},
      "candidates_per_sec": {candidate_rate:.2}
    }},
    "dictionary_build": {{
      "universe_faults": {injections},
      "injections_per_sec": {injection_rate:.1}
    }},
    "localise": {{
      "latency_us": {localise_us:.0}
    }},
    "fleet_batch": {{
      "words": {fleet_words},
      "width": {fleet_width},
      "batch": {fleet_batch},
      "devices_per_sec": {fleet_rate:.0},
      "warm_device_latency_us": {fleet_warm:.1},
      "cold_build_latency_us": {fleet_cold:.1},
      "warm_speedup_vs_cold": {fleet_speedup:.1}
    }},
    "dictionary_store": {{
      "words": {store_words},
      "width": {store_width},
      "universe_faults": {store_injections},
      "entries": {store_entries},
      "file_bytes": {store_file_bytes},
      "bytes_per_entry": {store_bytes_per_entry:.1},
      "build_to_disk_injections_per_sec": {store_build_rate:.1},
      "cold_lookup_latency_us": {store_cold:.1},
      "warm_lookup_latency_us": {store_warm:.1},
      "warm_page_cache_hit_rate": {store_hit_rate:.4}
    }},
    "obs_overhead": {{
      "words": 65536,
      "width": 32,
      "obs_off_faults_per_sec": {obs_off:.1},
      "obs_on_faults_per_sec": {obs_on:.1},
      "overhead_pct": {obs_pct:.2}
    }}
  }},
  "profile": {{
    "workload": "engine_reuse_64k (packed, tracing into ProfilerSink)",
    "total_self_ns": {profile_total_ns},
    "open_parents": {profile_open},
    "top_spans_by_self_time": {profile_spans}
  }}
}}
"#,
        pr = PR,
        baseline = PR5_BASELINE_FAULTS_PER_SEC,
        words = reuse.words,
        width = reuse.width,
        universe_faults = reuse.universe_faults,
        scalar = reuse.scalar_faults_per_sec,
        packed = reuse.packed_faults_per_sec,
        speedup = reuse.speedup,
        speedup_pr5 = reuse.packed_faults_per_sec / PR5_BASELINE_FAULTS_PER_SEC,
        fleet_words = fleet.words,
        fleet_width = fleet.width,
        fleet_batch = fleet.batch,
        fleet_rate = fleet.devices_per_sec,
        fleet_warm = fleet.warm_device_us,
        fleet_cold = fleet.cold_device_us,
        fleet_speedup = fleet.warm_speedup_vs_cold,
        store_words = store.words,
        store_width = store.width,
        store_injections = store.injections,
        store_entries = store.entries,
        store_file_bytes = store.file_bytes,
        store_bytes_per_entry = store.bytes_per_entry,
        store_build_rate = store.build_injections_per_sec,
        store_cold = store.cold_lookup_us,
        store_warm = store.warm_lookup_us,
        store_hit_rate = store.warm_hit_rate,
        obs_off = obs.off_faults_per_sec,
        obs_on = obs.on_faults_per_sec,
        obs_pct = obs.overhead_pct,
        profile_total_ns = obs.profile.total_self_ns(),
        profile_open = obs.profile.open_parents,
        profile_spans = format_profile(&obs.profile, 10),
    );
    std::fs::write(&out_path, &json).expect("write trajectory artifact");
    println!("wrote {out_path}");

    if let Some(required) = assert_speedup {
        if reuse.speedup < required {
            eprintln!(
                "FAIL: packed kernel speedup {:.2}x is below the required {required}x",
                reuse.speedup
            );
            std::process::exit(1);
        }
        println!(
            "packed kernel speedup {:.2}x meets the required {required}x",
            reuse.speedup
        );
    }
    if let Some(required) = assert_fleet_speedup {
        if fleet.warm_speedup_vs_cold < required {
            eprintln!(
                "FAIL: warm fleet cache speedup {:.1}x is below the required {required}x",
                fleet.warm_speedup_vs_cold
            );
            std::process::exit(1);
        }
        println!(
            "warm fleet cache speedup {:.1}x meets the required {required}x",
            fleet.warm_speedup_vs_cold
        );
    }
    if let Some(limit) = assert_obs_overhead {
        if obs.overhead_pct > limit {
            eprintln!(
                "FAIL: tracing-enabled overhead {:+.2}% exceeds the allowed {limit}%",
                obs.overhead_pct
            );
            std::process::exit(1);
        }
        println!(
            "tracing-enabled overhead {:+.2}% stays within the allowed {limit}%",
            obs.overhead_pct
        );
    }
}
