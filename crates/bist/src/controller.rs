//! Periodic transparent testing in idle windows.
//!
//! Transparent tests are meant to run while the system does not need the
//! memory (Section 1 and 4 of the paper: "transparent tests usually are
//! executed in idle state of systems", and "shorter test time can reduce the
//! probability of interference of normal system operation"). This module
//! provides a small analytical/simulation model of that scheduling problem:
//!
//! * an [`IdleWindowModel`] describes the lengths (in memory operations) of
//!   the idle windows the system offers;
//! * [`schedule`] reports how many windows a test of a given length needs
//!   when it can be split at word boundaries, and how often it fits into a
//!   single window (no interference at all);
//! * [`PeriodicController`] walks a concrete transparent test through the
//!   windows of a model, executing whole per-word operation bursts so the
//!   memory is never left mid-word between windows.

use serde::{Deserialize, Serialize};

use twm_march::MarchTest;
use twm_mem::{AddressSequence, FaultyMemory, SplitMix64};

use crate::BistError;

/// Lengths (in memory operations) of the idle windows offered by the system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdleWindowModel {
    windows: Vec<usize>,
}

impl IdleWindowModel {
    /// Creates a model from explicit window lengths.
    ///
    /// # Errors
    ///
    /// Returns [`BistError::EmptyWindowModel`] if no windows are given.
    pub fn new(windows: Vec<usize>) -> Result<Self, BistError> {
        if windows.is_empty() {
            return Err(BistError::EmptyWindowModel);
        }
        Ok(Self { windows })
    }

    /// Creates a model of `count` pseudo-random window lengths uniformly
    /// drawn from `min..=max` operations, deterministic in `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`BistError::EmptyWindowModel`] if `count` is zero.
    pub fn random(count: usize, min: usize, max: usize, seed: u64) -> Result<Self, BistError> {
        let mut rng = SplitMix64::new(seed);
        let span = max.saturating_sub(min) + 1;
        let windows = (0..count).map(|_| min + rng.next_below(span)).collect();
        Self::new(windows)
    }

    /// The window lengths.
    #[must_use]
    pub fn windows(&self) -> &[usize] {
        &self.windows
    }
}

/// How a test of a given length maps onto an idle-window model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleReport {
    /// Total operations of the test (per full memory).
    pub test_operations: usize,
    /// Number of idle windows consumed to finish one full test pass
    /// (`None` if the model's windows are exhausted before completion).
    pub windows_used: Option<usize>,
    /// Fraction of windows in the model that could host the entire test on
    /// their own (no interference with normal operation at all).
    pub single_window_fit_fraction: f64,
    /// Total idle operations offered by the model.
    pub idle_capacity: usize,
}

/// Computes how a test of `test_operations` operations schedules onto the
/// idle-window model, assuming the test can be suspended and resumed at any
/// word boundary.
#[must_use]
pub fn schedule(test_operations: usize, model: &IdleWindowModel) -> ScheduleReport {
    let mut remaining = test_operations;
    let mut windows_used = None;
    for (index, &window) in model.windows.iter().enumerate() {
        if remaining <= window {
            windows_used = Some(index + 1);
            break;
        }
        remaining -= window;
    }
    let fitting = model
        .windows
        .iter()
        .filter(|&&w| w >= test_operations)
        .count();
    ScheduleReport {
        test_operations,
        windows_used,
        single_window_fit_fraction: fitting as f64 / model.windows.len() as f64,
        idle_capacity: model.windows.iter().sum(),
    }
}

/// Executes a transparent march test across idle windows, one whole word's
/// operation burst at a time, so normal operation never observes a word in a
/// partially tested state.
#[derive(Debug, Clone)]
pub struct PeriodicController {
    test: MarchTest,
}

/// Result of running a test to completion across idle windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeriodicRun {
    /// Idle windows consumed.
    pub windows_used: usize,
    /// Operations executed.
    pub operations: usize,
    /// Number of reads that mismatched the fault-free expectation.
    pub mismatches: usize,
    /// Whether the memory content was preserved end to end.
    pub content_preserved: bool,
}

impl PeriodicController {
    /// Creates a controller for the given transparent test.
    #[must_use]
    pub fn new(test: MarchTest) -> Self {
        Self { test }
    }

    /// The scheduled test.
    #[must_use]
    pub fn test(&self) -> &MarchTest {
        &self.test
    }

    /// Runs the test to completion on `memory`, consuming idle windows from
    /// the model in order (cycling if necessary). Each window executes as
    /// many whole per-word operation bursts as fit.
    ///
    /// # Errors
    ///
    /// Returns executor errors for unresolvable data or invalid addresses.
    pub fn run(
        &self,
        memory: &mut FaultyMemory,
        model: &IdleWindowModel,
    ) -> Result<PeriodicRun, BistError> {
        let content_before = memory.content();
        let initial_content = memory.content();
        let words = memory.words();

        // Flatten the test into per-word bursts: (element index, address).
        let mut bursts: Vec<(usize, usize)> = Vec::new();
        for (element_index, element) in self.test.elements().iter().enumerate() {
            for address in AddressSequence::new(words, element.order) {
                bursts.push((element_index, address));
            }
        }

        let mut mismatches = 0usize;
        let mut operations = 0usize;
        let mut windows_used = 0usize;
        let mut burst_index = 0usize;
        let mut window_cursor = 0usize;

        while burst_index < bursts.len() {
            let window = model.windows[window_cursor % model.windows.len()];
            window_cursor += 1;
            windows_used += 1;
            let mut budget = window;
            while burst_index < bursts.len() {
                let (element_index, address) = bursts[burst_index];
                let element = &self.test.elements()[element_index];
                if element.len() > budget {
                    break;
                }
                let initial = initial_content[address];
                for op in &element.ops {
                    let value = op.data.resolve(initial)?;
                    match op.kind {
                        twm_march::OpKind::Write => memory.write_word(address, value)?,
                        twm_march::OpKind::Read => {
                            let observed = memory.read_word(address)?;
                            if observed != value {
                                mismatches += 1;
                            }
                        }
                    }
                    operations += 1;
                    budget -= 1;
                }
                burst_index += 1;
            }
            // Guard against windows too small for even one burst: skip ahead
            // to the next window (counted, but no progress) — if every window
            // is too small the loop would never terminate, so give up.
            if budget == window
                && window < self.max_burst_len()
                && model.windows.iter().all(|&w| w < self.max_burst_len())
            {
                break;
            }
        }

        Ok(PeriodicRun {
            windows_used,
            operations,
            mismatches,
            content_preserved: memory.content() == content_before || burst_index < bursts.len(),
        })
    }

    fn max_burst_len(&self) -> usize {
        self.test
            .elements()
            .iter()
            .map(twm_march::MarchElement::len)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twm_core::{TransparentScheme, TwmTa};
    use twm_march::algorithms::march_c_minus;
    use twm_mem::MemoryBuilder;

    #[test]
    fn window_model_validation_and_randomness() {
        assert!(IdleWindowModel::new(vec![]).is_err());
        let model = IdleWindowModel::random(10, 5, 50, 3).unwrap();
        assert_eq!(model.windows().len(), 10);
        assert!(model.windows().iter().all(|&w| (5..=50).contains(&w)));
        let again = IdleWindowModel::random(10, 5, 50, 3).unwrap();
        assert_eq!(model, again);
    }

    #[test]
    fn schedule_counts_windows_and_fit_fraction() {
        let model = IdleWindowModel::new(vec![100, 50, 200, 400]).unwrap();
        let report = schedule(120, &model);
        assert_eq!(report.windows_used, Some(2));
        assert!((report.single_window_fit_fraction - 0.5).abs() < 1e-9);
        assert_eq!(report.idle_capacity, 750);

        let report = schedule(10_000, &model);
        assert_eq!(report.windows_used, None);
    }

    #[test]
    fn shorter_tests_fit_in_more_windows() {
        // The paper's motivation: the proposed scheme's shorter test fits in
        // idle windows that Scheme 1's longer test cannot use.
        let n = 64usize;
        let proposed = TwmTa::new(32)
            .unwrap()
            .transform(&march_c_minus())
            .unwrap()
            .transparent_test()
            .total_operations(n);
        let scheme1 = twm_core::Scheme1::new(32)
            .unwrap()
            .transform(&march_c_minus())
            .unwrap()
            .transparent_test()
            .total_operations(n);
        let model = IdleWindowModel::random(200, n * 20, n * 60, 7).unwrap();
        let report_proposed = schedule(proposed, &model);
        let report_scheme1 = schedule(scheme1, &model);
        assert!(
            report_proposed.single_window_fit_fraction > report_scheme1.single_window_fit_fraction
        );
    }

    #[test]
    fn periodic_run_completes_and_preserves_content() {
        let transformed = TwmTa::new(8).unwrap().transform(&march_c_minus()).unwrap();
        let controller = PeriodicController::new(transformed.transparent_test().clone());
        let mut mem = MemoryBuilder::new(16, 8).random_content(9).build().unwrap();
        let model = IdleWindowModel::new(vec![37, 11, 64]).unwrap();
        let run = controller.run(&mut mem, &model).unwrap();
        assert_eq!(
            run.operations,
            transformed.transparent_test().total_operations(16)
        );
        assert_eq!(run.mismatches, 0);
        assert!(run.content_preserved);
        assert!(run.windows_used >= 1);
    }

    #[test]
    fn windows_smaller_than_a_burst_terminate_gracefully() {
        let transformed = TwmTa::new(8).unwrap().transform(&march_c_minus()).unwrap();
        let controller = PeriodicController::new(transformed.transparent_test().clone());
        let mut mem = MemoryBuilder::new(4, 8).build().unwrap();
        let model = IdleWindowModel::new(vec![1, 2]).unwrap();
        let run = controller.run(&mut mem, &model).unwrap();
        assert_eq!(run.operations, 0);
    }
}
