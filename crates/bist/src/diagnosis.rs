//! Fault localisation from transparent-test read logs.
//!
//! Periodic transparent testing does not only ask *whether* the memory is
//! still healthy; when a test fails, the maintenance layer wants to know
//! *where* (which word, which bit) so it can map out the defect or retire
//! the block. This module turns the read records of an
//! [`crate::ExecutionResult`] into a per-cell diagnosis: how often each cell
//! disagreed with its fault-free expectation, whether its observations are
//! consistent with a stuck cell, and which words are affected.
//!
//! The diagnosis is deliberately conservative: from read data alone a
//! transition fault is indistinguishable from a stuck-at fault (the cell is
//! only ever *observed* at one value), and a coupling fault is attributed to
//! its victim cell — which is exactly the information a repair/retirement
//! flow needs.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use twm_mem::BitAddress;

use crate::executor::ExecutionResult;

/// Per-cell diagnosis evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuspectCell {
    /// The suspect cell.
    pub cell: BitAddress,
    /// Number of reads in which this cell disagreed with the fault-free
    /// expectation.
    pub mismatches: usize,
    /// Number of reads of this cell's word overall.
    pub observations: usize,
    /// If every observation of the cell returned the same value, that value
    /// — the signature of a stuck (or transition-faulty) cell.
    pub constant_observation: Option<bool>,
}

impl SuspectCell {
    /// Fraction of this cell's observations that mismatched.
    #[must_use]
    pub fn mismatch_rate(&self) -> f64 {
        if self.observations == 0 {
            0.0
        } else {
            self.mismatches as f64 / self.observations as f64
        }
    }
}

/// Result of diagnosing an execution.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DiagnosisReport {
    /// Cells that mismatched at least once, most-suspect first.
    pub suspects: Vec<SuspectCell>,
    /// Word addresses containing at least one suspect cell, ascending.
    pub faulty_words: Vec<usize>,
    /// Total number of mismatching reads in the execution.
    pub mismatching_reads: usize,
}

impl DiagnosisReport {
    /// Whether any cell was flagged.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.suspects.is_empty()
    }

    /// The most suspicious cell, if any.
    #[must_use]
    pub fn primary_suspect(&self) -> Option<&SuspectCell> {
        self.suspects.first()
    }

    /// The suspect entry for a cell, if the cell was flagged.
    #[must_use]
    pub fn suspect(&self, cell: BitAddress) -> Option<&SuspectCell> {
        self.suspects.iter().find(|suspect| suspect.cell == cell)
    }

    /// Fuses several diagnoses of the *same memory* into one report —
    /// evidence accumulation across follow-up runs (different transparent
    /// schemes exercise different patterns, so their reports flag
    /// overlapping but not identical suspect sets).
    ///
    /// Per-cell mismatch and observation counts are summed; a cell keeps a
    /// `constant_observation` only if every contributing report that
    /// flagged it observed the same constant value. Suspect ordering and
    /// word lists are rebuilt under the same rules as
    /// [`diagnose`], so a fusion of one report equals that report.
    #[must_use]
    pub fn fuse<'a, I: IntoIterator<Item = &'a DiagnosisReport>>(reports: I) -> DiagnosisReport {
        #[derive(Default)]
        struct Fused {
            mismatches: usize,
            observations: usize,
            constants: Vec<Option<bool>>,
        }

        let mut evidence: BTreeMap<BitAddress, Fused> = BTreeMap::new();
        let mut mismatching_reads = 0usize;
        for report in reports {
            mismatching_reads += report.mismatching_reads;
            for suspect in &report.suspects {
                let entry = evidence.entry(suspect.cell).or_default();
                entry.mismatches += suspect.mismatches;
                entry.observations += suspect.observations;
                entry.constants.push(suspect.constant_observation);
            }
        }

        let mut suspects: Vec<SuspectCell> = evidence
            .into_iter()
            .map(|(cell, fused)| SuspectCell {
                cell,
                mismatches: fused.mismatches,
                observations: fused.observations,
                constant_observation: match fused.constants.split_first() {
                    Some((&first, rest)) if rest.iter().all(|&c| c == first) => first,
                    _ => None,
                },
            })
            .collect();
        suspects.sort_by(|a, b| b.mismatches.cmp(&a.mismatches).then(a.cell.cmp(&b.cell)));

        let mut faulty_words: Vec<usize> = suspects.iter().map(|s| s.cell.word).collect();
        faulty_words.sort_unstable();
        faulty_words.dedup();

        DiagnosisReport {
            suspects,
            faulty_words,
            mismatching_reads,
        }
    }
}

/// Diagnoses an execution from its read records.
///
/// The execution must have been run with
/// [`crate::ExecutionOptions::record_reads`] enabled (the default); without
/// records the report is empty.
#[must_use]
pub fn diagnose(result: &ExecutionResult) -> DiagnosisReport {
    #[derive(Default)]
    struct CellEvidence {
        mismatches: usize,
        observations: usize,
        saw_zero: bool,
        saw_one: bool,
    }

    let mut evidence: BTreeMap<BitAddress, CellEvidence> = BTreeMap::new();
    let mut mismatching_reads = 0usize;

    for record in &result.reads {
        if record.is_mismatch() {
            mismatching_reads += 1;
        }
        let width = record.observed.width();
        for bit in 0..width {
            let cell = BitAddress::new(record.address, bit);
            let entry = evidence.entry(cell).or_default();
            entry.observations += 1;
            let observed = record.observed.bit(bit);
            if observed {
                entry.saw_one = true;
            } else {
                entry.saw_zero = true;
            }
            if observed != record.expected.bit(bit) {
                entry.mismatches += 1;
            }
        }
    }

    let mut suspects: Vec<SuspectCell> = evidence
        .into_iter()
        .filter(|(_, e)| e.mismatches > 0)
        .map(|(cell, e)| SuspectCell {
            cell,
            mismatches: e.mismatches,
            observations: e.observations,
            constant_observation: match (e.saw_zero, e.saw_one) {
                (true, false) => Some(false),
                (false, true) => Some(true),
                _ => None,
            },
        })
        .collect();
    suspects.sort_by(|a, b| b.mismatches.cmp(&a.mismatches).then(a.cell.cmp(&b.cell)));

    let mut faulty_words: Vec<usize> = suspects.iter().map(|s| s.cell.word).collect();
    faulty_words.sort_unstable();
    faulty_words.dedup();

    DiagnosisReport {
        suspects,
        faulty_words,
        mismatching_reads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::execute;
    use twm_core::{TransparentScheme, TwmTa};
    use twm_march::algorithms::march_c_minus;
    use twm_mem::{Fault, MemoryBuilder, Transition};

    fn transparent_test(width: usize) -> twm_march::MarchTest {
        TwmTa::new(width)
            .unwrap()
            .transform(&march_c_minus())
            .unwrap()
            .transparent_test()
            .clone()
    }

    #[test]
    fn clean_memory_yields_clean_diagnosis() {
        let mut memory = MemoryBuilder::new(16, 8).random_content(5).build().unwrap();
        let result = execute(&transparent_test(8), &mut memory).unwrap();
        let report = diagnose(&result);
        assert!(report.is_clean());
        assert!(report.primary_suspect().is_none());
        assert_eq!(report.mismatching_reads, 0);
    }

    #[test]
    fn stuck_at_fault_is_localised_to_the_exact_cell() {
        let cell = BitAddress::new(11, 6);
        let mut memory = MemoryBuilder::new(16, 8)
            .random_content(5)
            .fault(Fault::stuck_at(cell, true))
            .build()
            .unwrap();
        let result = execute(&transparent_test(8), &mut memory).unwrap();
        let report = diagnose(&result);
        assert_eq!(report.faulty_words, vec![11]);
        let primary = report.primary_suspect().unwrap();
        assert_eq!(primary.cell, cell);
        assert_eq!(primary.constant_observation, Some(true));
        assert!(primary.mismatch_rate() > 0.0);
    }

    #[test]
    fn transition_fault_is_localised_and_looks_stuck_from_read_data() {
        let cell = BitAddress::new(3, 0);
        // Start from all-zero content so the rising-blocked cell begins (and
        // therefore stays) at 0.
        let mut memory = MemoryBuilder::new(8, 4)
            .filled_with(twm_mem::Word::zeros(4))
            .fault(Fault::transition(cell, Transition::Rising))
            .build()
            .unwrap();
        let result = execute(&transparent_test(4), &mut memory).unwrap();
        let report = diagnose(&result);
        assert_eq!(report.faulty_words, vec![3]);
        let primary = report.primary_suspect().unwrap();
        assert_eq!(primary.cell, cell);
        // A cell that cannot rise is only ever observed at 0.
        assert_eq!(primary.constant_observation, Some(false));
    }

    #[test]
    fn coupling_fault_is_attributed_to_the_victim() {
        let aggressor = BitAddress::new(2, 1);
        let victim = BitAddress::new(9, 3);
        let mut memory = MemoryBuilder::new(16, 8)
            .random_content(23)
            .fault(Fault::coupling_inversion(
                aggressor,
                victim,
                Transition::Rising,
            ))
            .build()
            .unwrap();
        let result = execute(&transparent_test(8), &mut memory).unwrap();
        let report = diagnose(&result);
        assert!(report.faulty_words.contains(&victim.word));
        assert_eq!(report.primary_suspect().unwrap().cell, victim);
        // The aggressor itself behaves correctly and is not flagged.
        assert!(report.suspects.iter().all(|s| s.cell != aggressor));
    }

    #[test]
    fn multiple_faults_are_all_reported() {
        let a = BitAddress::new(0, 0);
        let b = BitAddress::new(7, 5);
        let mut memory = MemoryBuilder::new(8, 8)
            .random_content(31)
            .faults(vec![Fault::stuck_at(a, false), Fault::stuck_at(b, true)])
            .build()
            .unwrap();
        let result = execute(&transparent_test(8), &mut memory).unwrap();
        let report = diagnose(&result);
        assert_eq!(report.faulty_words, vec![0, 7]);
        let cells: Vec<BitAddress> = report.suspects.iter().map(|s| s.cell).collect();
        assert!(cells.contains(&a));
        assert!(cells.contains(&b));
    }

    #[test]
    fn fusing_reports_accumulates_evidence() {
        let cell = BitAddress::new(6, 2);
        let mut memory = MemoryBuilder::new(16, 8)
            .random_content(8)
            .fault(Fault::stuck_at(cell, true))
            .build()
            .unwrap();
        let first = diagnose(&execute(&transparent_test(8), &mut memory).unwrap());
        let second = diagnose(&execute(&transparent_test(8), &mut memory).unwrap());

        // A fusion of one report is that report.
        assert_eq!(DiagnosisReport::fuse([&first]), first);

        let fused = DiagnosisReport::fuse([&first, &second]);
        assert_eq!(fused.faulty_words, vec![6]);
        let suspect = fused.suspect(cell).unwrap();
        assert_eq!(
            suspect.mismatches,
            first.suspect(cell).unwrap().mismatches + second.suspect(cell).unwrap().mismatches
        );
        assert_eq!(suspect.constant_observation, Some(true));
        assert_eq!(
            fused.mismatching_reads,
            first.mismatching_reads + second.mismatching_reads
        );

        // Conflicting constant observations fuse to `None`.
        let flipped = DiagnosisReport {
            suspects: vec![SuspectCell {
                cell,
                mismatches: 1,
                observations: 2,
                constant_observation: Some(false),
            }],
            faulty_words: vec![cell.word],
            mismatching_reads: 1,
        };
        let conflicted = DiagnosisReport::fuse([&first, &flipped]);
        assert_eq!(conflicted.suspect(cell).unwrap().constant_observation, None);

        // Fusing nothing is clean.
        assert!(DiagnosisReport::fuse(std::iter::empty::<&DiagnosisReport>()).is_clean());
    }

    #[test]
    fn executions_without_records_diagnose_as_clean() {
        let mut memory = MemoryBuilder::new(4, 4)
            .fault(Fault::stuck_at(BitAddress::new(0, 0), true))
            .build()
            .unwrap();
        let result = crate::executor::execute_with(
            &transparent_test(4),
            &mut memory,
            crate::ExecutionOptions {
                record_reads: false,
                stop_at_first_mismatch: false,
            },
        )
        .unwrap();
        let report = diagnose(&result);
        assert!(report.is_clean());
    }
}
