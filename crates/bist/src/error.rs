use std::error::Error;
use std::fmt;

use twm_march::MarchError;
use twm_mem::MemError;

/// Errors produced by the BIST engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BistError {
    /// The march test references data that cannot be resolved for the
    /// memory's word width.
    March(MarchError),
    /// The memory rejected an access.
    Mem(MemError),
    /// The MISR width does not match the memory's word width.
    WidthMismatch {
        /// MISR width in bits.
        misr: usize,
        /// Memory word width in bits.
        memory: usize,
    },
    /// A pre-lowered test was executed on a memory of a different word
    /// width than it was lowered for.
    LoweredWidthMismatch {
        /// Width the test was lowered for.
        lowered: usize,
        /// Memory word width in bits.
        memory: usize,
    },
    /// An invalid MISR configuration (zero width or zero polynomial).
    InvalidMisr {
        /// Description of the problem.
        detail: String,
    },
    /// The idle-window model contains no windows.
    EmptyWindowModel,
}

impl fmt::Display for BistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BistError::March(err) => write!(f, "march error: {err}"),
            BistError::Mem(err) => write!(f, "memory error: {err}"),
            BistError::WidthMismatch { misr, memory } => {
                write!(
                    f,
                    "misr width {misr} does not match memory word width {memory}"
                )
            }
            BistError::LoweredWidthMismatch { lowered, memory } => {
                write!(
                    f,
                    "test lowered for width {lowered} executed on memory of word width {memory}"
                )
            }
            BistError::InvalidMisr { detail } => write!(f, "invalid misr configuration: {detail}"),
            BistError::EmptyWindowModel => write!(f, "idle-window model contains no windows"),
        }
    }
}

impl Error for BistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BistError::March(err) => Some(err),
            BistError::Mem(err) => Some(err),
            _ => None,
        }
    }
}

impl From<MarchError> for BistError {
    fn from(err: MarchError) -> Self {
        BistError::March(err)
    }
}

impl From<MemError> for BistError {
    fn from(err: MemError) -> Self {
        BistError::Mem(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let err: BistError = MarchError::EmptyTest.into();
        assert!(err.source().is_some());
        let err: BistError = MemError::EmptyMemory.into();
        assert!(err.source().is_some());
        let err = BistError::WidthMismatch {
            misr: 8,
            memory: 16,
        };
        assert!(err.source().is_none());
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn error_is_well_behaved() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<BistError>();
    }
}
