//! Execution of march tests on the fault-injected memory simulator.
//!
//! The executor resolves every operation's data against each word's *initial
//! content* (snapshotted before the test starts), sweeps addresses in the
//! order each march element prescribes, and records every read together with
//! the value a fault-free memory would have returned and the read's XOR
//! offset from the initial content. Downstream consumers decide how to judge
//! the result: the exact-compare oracle counts mismatches, the signature
//! flow compacts the (offset-compensated) read stream in a MISR.

use serde::{Deserialize, Serialize};

use twm_march::{MarchTest, OpKind};
use twm_mem::{AddressOrder, AddressSequence, Lanes, MemoryAccess, PackedArena, Word};

use crate::{BistError, LoweredTest};

/// One executed read operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadRecord {
    /// Word address that was read.
    pub address: usize,
    /// Value observed on the (possibly faulty) memory.
    pub observed: Word,
    /// Value a fault-free memory would have returned.
    pub expected: Word,
    /// XOR offset of the expected value from the word's initial content
    /// (the transparent data pattern resolved for this word width; all-zero
    /// for plain reads of the initial content).
    pub offset: Word,
}

impl ReadRecord {
    /// Whether the observed value differs from the fault-free expectation.
    #[must_use]
    pub fn is_mismatch(&self) -> bool {
        self.observed != self.expected
    }

    /// The value fed to the MISR during the test phase: the observed data
    /// compensated by the read's XOR offset, so a fault-free memory
    /// contributes its initial content for every read.
    #[must_use]
    pub fn compensated(&self) -> Word {
        self.observed ^ self.offset
    }
}

/// Options controlling [`execute_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionOptions {
    /// Record every read in [`ExecutionResult::reads`]. Disable for large
    /// fault-coverage sweeps where only the mismatch count matters.
    pub record_reads: bool,
    /// Stop executing as soon as the first mismatch is observed.
    pub stop_at_first_mismatch: bool,
}

impl Default for ExecutionOptions {
    fn default() -> Self {
        Self {
            record_reads: true,
            stop_at_first_mismatch: false,
        }
    }
}

/// The outcome of executing a march test.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionResult {
    /// Every read performed, in execution order (empty when
    /// [`ExecutionOptions::record_reads`] is disabled).
    pub reads: Vec<ReadRecord>,
    /// Number of reads whose observed value differed from the fault-free
    /// expectation.
    pub mismatches: usize,
    /// Total number of read operations performed.
    pub reads_performed: usize,
    /// Total number of write operations performed.
    pub writes_performed: usize,
    /// The memory content before the test started.
    pub initial_content: Vec<Word>,
    /// The memory content after the test finished.
    pub final_content: Vec<Word>,
}

impl ExecutionResult {
    /// Whether the exact-compare oracle flags a fault (any read mismatch).
    #[must_use]
    pub fn detected(&self) -> bool {
        self.mismatches > 0
    }

    /// Whether the memory content after the test equals the content before
    /// it (the transparency property).
    #[must_use]
    pub fn content_preserved(&self) -> bool {
        self.initial_content == self.final_content
    }

    /// Total number of operations performed.
    #[must_use]
    pub fn operations(&self) -> usize {
        self.reads_performed + self.writes_performed
    }
}

/// Executes a march test with default options.
///
/// The memory may be any [`MemoryAccess`] implementor — the plain
/// fault-injected simulator or a layered memory such as
/// [`twm_mem::RepairableMemory`], whose remap table serves repaired words
/// from spares.
///
/// # Errors
///
/// See [`execute_with`].
pub fn execute<M: MemoryAccess>(
    test: &MarchTest,
    memory: &mut M,
) -> Result<ExecutionResult, BistError> {
    execute_with(test, memory, ExecutionOptions::default())
}

/// Executes a march test on the given memory.
///
/// The memory's current content is taken as the initial content that
/// transparent data specifications refer to.
///
/// # Errors
///
/// Returns [`BistError::March`] if an operation's data cannot be resolved
/// for the memory's word width (for example a background index out of
/// range), or [`BistError::Mem`] for address errors.
pub fn execute_with<M: MemoryAccess>(
    test: &MarchTest,
    memory: &mut M,
    options: ExecutionOptions,
) -> Result<ExecutionResult, BistError> {
    let lowered = LoweredTest::new(test, memory.width())?;
    execute_lowered(&lowered, memory, options)
}

/// Executes a pre-lowered march test on the given memory.
///
/// Lower a test once with [`LoweredTest::new`] and call this for every
/// execution to amortise pattern resolution — the coverage evaluator uses
/// this to run the same test over thousands of fault-injected memories.
///
/// # Errors
///
/// Returns [`BistError::LoweredWidthMismatch`] if the test was lowered for
/// a different word width than the memory's, or [`BistError::Mem`] for
/// address errors.
pub fn execute_lowered<M: MemoryAccess>(
    test: &LoweredTest,
    memory: &mut M,
    options: ExecutionOptions,
) -> Result<ExecutionResult, BistError> {
    if test.width() != memory.width() {
        return Err(BistError::LoweredWidthMismatch {
            lowered: test.width(),
            memory: memory.width(),
        });
    }
    let initial_content = memory.content();
    let words = memory.words();

    let mut reads = Vec::new();
    let mut mismatches = 0usize;
    let mut reads_performed = 0usize;
    let mut writes_performed = 0usize;

    'elements: for element in test.elements() {
        for address in AddressSequence::new(words, element.order) {
            let initial = initial_content[address];
            for op in &element.ops {
                let value = op.value(initial);
                match op.kind {
                    OpKind::Write => {
                        memory.write_word(address, value)?;
                        writes_performed += 1;
                    }
                    OpKind::Read => {
                        let observed = memory.read_word(address)?;
                        reads_performed += 1;
                        let record = ReadRecord {
                            address,
                            observed,
                            expected: value,
                            offset: op.pattern,
                        };
                        if record.is_mismatch() {
                            mismatches += 1;
                        }
                        if options.record_reads {
                            reads.push(record);
                        }
                        if options.stop_at_first_mismatch && mismatches > 0 {
                            break 'elements;
                        }
                    }
                }
            }
        }
    }

    Ok(ExecutionResult {
        reads,
        mismatches,
        reads_performed,
        writes_performed,
        initial_content,
        final_content: memory.content(),
    })
}

/// Fault-local detection: executes a pre-lowered march test visiting only
/// the given addresses and reports whether any read mismatches the
/// fault-free expectation.
///
/// The exact-compare verdict of a full execution only depends on the words
/// a fault can touch: a word that hosts neither a faulty cell nor a
/// coupling aggressor (no [`twm_mem::FaultIndex`] entry) stores exactly
/// what the test writes, so its reads can never mismatch — and writing it
/// cannot disturb any other word. Restricting the sweep to the fault's
/// footprint therefore yields the **same detection verdict** as
/// [`execute_lowered`] with `stop_at_first_mismatch`, at
/// O(ops-per-word × footprint) instead of O(ops-per-word × memory) cost.
/// This is what lets the coverage engine evaluate single-fault injections
/// on production-sized memories at small-memory speed.
///
/// The argument extends to **multi-fault injections**: with several
/// simultaneous faults, the union of their word footprints
/// ([`twm_mem::FaultSet::word_footprint`]) still covers every word that can
/// misread or disturb another, so the union sweep is verdict-equivalent to
/// the full sweep (property-tested in `tests/multi_fault_local.rs`) — the
/// basis of the coverage engine's diagnosis-style `injection_detected`
/// queries.
///
/// `addresses` must be sorted ascending and cover every word the memory's
/// fault set touches as victim or aggressor (debug-asserted); each march
/// element visits them in its prescribed sweep direction.
///
/// # Errors
///
/// Returns [`BistError::LoweredWidthMismatch`] if the test was lowered for
/// a different word width than the memory's, or [`BistError::Mem`] for
/// address errors.
pub fn detect_lowered_at<M: MemoryAccess>(
    test: &LoweredTest,
    memory: &mut M,
    addresses: &[usize],
) -> Result<bool, BistError> {
    if test.width() != memory.width() {
        return Err(BistError::LoweredWidthMismatch {
            lowered: test.width(),
            memory: memory.width(),
        });
    }
    debug_assert!(addresses.windows(2).all(|pair| pair[0] < pair[1]));
    // Memories that expose a flat fault set (the plain simulator) assert
    // the footprint-coverage contract; layered memories return `None` and
    // the caller carries the obligation.
    debug_assert!(memory.fault_set().is_none_or(|faults| {
        faults.iter().all(|fault| {
            fault
                .cells()
                .iter()
                .all(|cell| addresses.binary_search(&cell.word).is_ok())
        })
    }));
    probe_lowered_at(test, memory, addresses)
}

/// Lane-parallel fault-local detection: runs a pre-lowered march test once
/// over a packed arena's footprint and returns a `u64` detection mask with
/// bit `i` set iff the fault armed in lane `i` was detected.
///
/// This is the batch form of [`detect_lowered_at`]: the arena holds up to
/// [`Lanes::COUNT`] single-bit faults, each lane carrying that fault's
/// divergent memory image as bit-planes, so one pass of the op stream
/// advances every lane at once. Per lane the evolution is exactly the
/// scalar fault-local sweep of that lane's own word:
///
/// * the arena's statically-enforced initial planes match what the scalar
///   path snapshots after `reset_with_fault`/`load_image`;
/// * writes apply the same stuck/transition mask algebra as
///   [`twm_mem::WordFaultMasks::effective_write`] (SAF/TF have no
///   aggressors, so the coupling terms vanish);
/// * read mismatches are masked to each slot's *owner* lanes, because the
///   scalar reference only sweeps the fault's own word — other footprint
///   words belong to other lanes' faults;
/// * accumulating mismatches by OR is existentially equivalent to the
///   scalar early return: reads never disturb content, so a mismatch once
///   seen stays attributable.
///
/// The sweep short-circuits once every armed lane has detected. The run
/// consumes the arena's current planes — [`twm_mem::PackedArena::arm`] or
/// [`twm_mem::PackedArena::reload`] before the next call.
///
/// # Errors
///
/// Returns [`BistError::LoweredWidthMismatch`] if the test was lowered for
/// a different word width than the arena's.
pub fn detect_lowered_batch<L: Lanes>(
    test: &LoweredTest,
    arena: &mut PackedArena<L>,
) -> Result<u64, BistError> {
    if test.width() != arena.width() {
        return Err(BistError::LoweredWidthMismatch {
            lowered: test.width(),
            memory: arena.width(),
        });
    }
    let slots = arena.slots();
    let all = arena.active_mask();
    let mut detected = 0u64;
    for element in test.elements() {
        for position in 0..slots {
            let slot = match element.order {
                AddressOrder::Ascending | AddressOrder::Any => position,
                AddressOrder::Descending => slots - 1 - position,
            };
            for op in &element.ops {
                match op.kind {
                    OpKind::Write => {
                        arena.write_word(slot, op.pattern.to_bits(), op.transparent);
                    }
                    OpKind::Read => {
                        detected |= L::to_mask(arena.read_mismatch(
                            slot,
                            op.pattern.to_bits(),
                            op.transparent,
                        ));
                    }
                }
            }
            if detected == all {
                return Ok(detected);
            }
        }
    }
    Ok(detected)
}

/// Targeted fault-local probe: executes a pre-lowered march test over only
/// the given addresses and reports whether any read mismatched.
///
/// This is [`detect_lowered_at`] **without** the footprint-coverage
/// contract: the probed addresses need not cover the memory's fault set,
/// so the verdict is only authoritative *for the probed words* — a `true`
/// means some probed word misbehaved under the test's patterns, a `false`
/// means the probed words (in isolation) passed. Diagnosis flows use this
/// to test a candidate defect's footprint on a memory whose true fault set
/// is exactly what is being estimated. Note that the probe executes writes
/// on the probed words, so the caller is responsible for
/// snapshotting/restoring content around a probe that may abort mid-test
/// (the sweep returns at the first mismatch).
///
/// `addresses` must be sorted ascending and duplicate-free.
///
/// # Errors
///
/// Same as [`detect_lowered_at`].
pub fn probe_lowered_at<M: MemoryAccess>(
    test: &LoweredTest,
    memory: &mut M,
    addresses: &[usize],
) -> Result<bool, BistError> {
    if test.width() != memory.width() {
        return Err(BistError::LoweredWidthMismatch {
            lowered: test.width(),
            memory: memory.width(),
        });
    }
    let initials = addresses
        .iter()
        .map(|&address| memory.peek_word(address))
        .collect::<Result<Vec<_>, _>>()?;

    for element in test.elements() {
        let sweep: &mut dyn Iterator<Item = (&usize, &Word)> = match element.order {
            AddressOrder::Ascending | AddressOrder::Any => {
                &mut addresses.iter().zip(initials.iter())
            }
            AddressOrder::Descending => &mut addresses.iter().zip(initials.iter()).rev(),
        };
        for (&address, &initial) in sweep {
            for op in &element.ops {
                let value = op.value(initial);
                match op.kind {
                    OpKind::Write => memory.write_word(address, value)?,
                    OpKind::Read => {
                        if memory.read_word(address)? != value {
                            return Ok(true);
                        }
                    }
                }
            }
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use twm_core::{TransparentScheme, TwmTa};
    use twm_march::algorithms::{march_c_minus, march_u};
    use twm_mem::{BitAddress, Fault, FaultyMemory, MemoryBuilder, MemoryConfig, Transition};

    fn bit_memory(cells: usize) -> FaultyMemory {
        FaultyMemory::fault_free(MemoryConfig::bit_oriented(cells).unwrap())
    }

    #[test]
    fn fault_free_bit_oriented_march_reports_no_mismatch() {
        let mut mem = bit_memory(16);
        let result = execute(&march_c_minus(), &mut mem).unwrap();
        assert!(!result.detected());
        assert_eq!(result.operations(), 10 * 16);
        assert_eq!(result.reads_performed, 5 * 16);
        // March C- ends with every cell at 0, which is also the starting
        // content of a zero-initialised memory.
        assert!(result.content_preserved());
    }

    #[test]
    fn nontransparent_march_destroys_random_content() {
        let mut mem = MemoryBuilder::new(16, 1).random_content(7).build().unwrap();
        let had_ones = mem.content().iter().any(|w| !w.is_zero());
        let result = execute(&march_c_minus(), &mut mem).unwrap();
        // The non-transparent test initialises every cell before reading, so
        // it reports no mismatches on a fault-free memory — but it wipes the
        // arbitrary content, which is exactly why transparent tests exist.
        assert!(had_ones);
        assert!(!result.detected());
        assert!(!result.content_preserved());
        assert!(mem.content().iter().all(|w| w.is_zero()));
    }

    #[test]
    fn transparent_test_preserves_arbitrary_content_and_reports_clean() {
        let transformed = TwmTa::new(8).unwrap().transform(&march_u()).unwrap();
        let mut mem = MemoryBuilder::new(32, 8)
            .random_content(99)
            .build()
            .unwrap();
        let before = mem.content();
        let result = execute(transformed.transparent_test(), &mut mem).unwrap();
        assert!(!result.detected());
        assert!(result.content_preserved());
        assert_eq!(mem.content(), before);
        assert_eq!(
            result.operations(),
            transformed.transparent_test().total_operations(32)
        );
    }

    #[test]
    fn stuck_at_fault_is_detected_by_the_exact_oracle() {
        let transformed = TwmTa::new(8).unwrap().transform(&march_c_minus()).unwrap();
        let mut mem = MemoryBuilder::new(16, 8)
            .random_content(3)
            .fault(Fault::stuck_at(BitAddress::new(5, 2), true))
            .build()
            .unwrap();
        let result = execute(transformed.transparent_test(), &mut mem).unwrap();
        assert!(result.detected());
    }

    #[test]
    fn transition_fault_is_detected_by_transparent_march() {
        let transformed = TwmTa::new(4).unwrap().transform(&march_c_minus()).unwrap();
        let mut mem = MemoryBuilder::new(8, 4)
            .random_content(11)
            .fault(Fault::transition(BitAddress::new(3, 1), Transition::Rising))
            .build()
            .unwrap();
        let result = execute(transformed.transparent_test(), &mut mem).unwrap();
        assert!(result.detected());
    }

    #[test]
    fn stop_at_first_mismatch_short_circuits() {
        let transformed = TwmTa::new(8).unwrap().transform(&march_c_minus()).unwrap();
        let build = || {
            MemoryBuilder::new(64, 8)
                .random_content(5)
                .fault(Fault::stuck_at(BitAddress::new(0, 0), true))
                .build()
                .unwrap()
        };
        let mut full_mem = build();
        let full = execute(transformed.transparent_test(), &mut full_mem).unwrap();
        let mut short_mem = build();
        let short = execute_with(
            transformed.transparent_test(),
            &mut short_mem,
            ExecutionOptions {
                record_reads: false,
                stop_at_first_mismatch: true,
            },
        )
        .unwrap();
        assert!(full.detected() && short.detected());
        assert!(short.operations() <= full.operations());
        assert!(short.reads.is_empty());
    }

    #[test]
    fn fault_local_detection_matches_full_execution() {
        // Every fault class, intra-word and inter-word, transparent and
        // literal tests: restricting the sweep to the fault's footprint
        // words must produce the same detection verdict as the full sweep.
        let width = 4;
        let transformed = TwmTa::new(width)
            .unwrap()
            .transform(&march_c_minus())
            .unwrap();
        let tests = [march_c_minus(), transformed.transparent_test().clone()];
        let a = BitAddress::new(3, 1);
        let b = BitAddress::new(7, 2);
        let same_word = BitAddress::new(3, 3);
        let faults = [
            Fault::stuck_at(a, true),
            Fault::stuck_at(b, false),
            Fault::transition(a, Transition::Rising),
            Fault::transition(b, Transition::Falling),
            Fault::coupling_idempotent(a, b, Transition::Rising, true),
            Fault::coupling_inversion(b, a, Transition::Falling),
            Fault::coupling_state(a, b, true, false),
            Fault::coupling_idempotent(a, same_word, Transition::Falling, false),
        ];
        for test in &tests {
            let lowered = LoweredTest::new(test, width).unwrap();
            for (seed, &fault) in faults.iter().enumerate() {
                let build = || {
                    let mut memory = MemoryBuilder::new(12, width).fault(fault).build().unwrap();
                    memory.fill_random(seed as u64);
                    memory
                };
                let mut footprint: Vec<usize> =
                    fault.cells().iter().map(|cell| cell.word).collect();
                footprint.sort_unstable();
                footprint.dedup();
                let full = execute_lowered(
                    &lowered,
                    &mut build(),
                    ExecutionOptions {
                        record_reads: false,
                        stop_at_first_mismatch: true,
                    },
                )
                .unwrap();
                let local = detect_lowered_at(&lowered, &mut build(), &footprint).unwrap();
                assert_eq!(
                    full.detected(),
                    local,
                    "verdicts diverge for {fault:?} under {}",
                    test.name()
                );
            }
        }
    }

    #[test]
    fn batch_detection_matches_scalar_fault_local_detection() {
        // One Packed64 batch of SAF/TF faults must report, per lane, the
        // same verdict as the scalar fault-local sweep — under the literal
        // March C− and under the paper's transparent transform, from both
        // all-zero and random content.
        use twm_mem::{BitStorage, Packed64, PackedArena, SplitMix64};

        let width = 8;
        let words = 16;
        let transformed = TwmTa::new(width)
            .unwrap()
            .transform(&march_c_minus())
            .unwrap();
        let tests = [march_c_minus(), transformed.transparent_test().clone()];

        let mut faults = Vec::new();
        for word in (0..words).step_by(2) {
            faults.push(Fault::stuck_at(BitAddress::new(word, word % width), true));
            faults.push(Fault::stuck_at(
                BitAddress::new(word, (word + 3) % width),
                false,
            ));
            faults.push(Fault::transition(
                BitAddress::new(word + 1, word % width),
                Transition::Rising,
            ));
            faults.push(Fault::transition(
                BitAddress::new(word + 1, (word + 5) % width),
                Transition::Falling,
            ));
        }
        assert!(faults.len() <= 64);

        let mut random = BitStorage::new(words, width).unwrap();
        let mut rng = SplitMix64::new(42);
        for word in 0..words {
            random.set_word_bits(word, rng.next_u64() as u128 & 0xFF);
        }
        let images: [Option<&BitStorage>; 2] = [None, Some(&random)];

        let config = MemoryConfig::new(words, width).unwrap();
        for test in &tests {
            let lowered = LoweredTest::new(test, width).unwrap();
            for image in images {
                let mut arena = PackedArena::<Packed64>::new(config);
                arena.arm(&faults, image).unwrap();
                let mask = detect_lowered_batch(&lowered, &mut arena).unwrap();
                for (lane, &fault) in faults.iter().enumerate() {
                    let mut memory = FaultyMemory::fault_free(config);
                    memory.reset_with_fault(fault).unwrap();
                    if let Some(image) = image {
                        memory.load_image(image).unwrap();
                    }
                    let word = fault.victim().word;
                    let scalar = detect_lowered_at(&lowered, &mut memory, &[word]).unwrap();
                    assert_eq!(
                        mask >> lane & 1 == 1,
                        scalar,
                        "lane {lane} ({fault:?}) diverged under {} with image={}",
                        test.name(),
                        image.is_some()
                    );
                }
            }
        }
    }

    #[test]
    fn batch_detection_rejects_width_mismatch() {
        use twm_mem::{Packed64, PackedArena};
        let lowered = LoweredTest::new(&march_c_minus(), 4).unwrap();
        let config = MemoryConfig::new(4, 8).unwrap();
        let mut arena = PackedArena::<Packed64>::new(config);
        arena
            .arm(&[Fault::stuck_at(BitAddress::new(0, 0), true)], None)
            .unwrap();
        assert!(matches!(
            detect_lowered_batch(&lowered, &mut arena),
            Err(BistError::LoweredWidthMismatch {
                lowered: 4,
                memory: 8
            })
        ));
    }

    #[test]
    fn read_records_expose_offsets_for_misr_compensation() {
        let transformed = TwmTa::new(4).unwrap().transform(&march_c_minus()).unwrap();
        let mut mem = MemoryBuilder::new(4, 4).random_content(1).build().unwrap();
        let initial = mem.content();
        let result = execute(transformed.transparent_test(), &mut mem).unwrap();
        // On a fault-free memory the compensated value of every read equals
        // the word's initial content.
        for record in &result.reads {
            assert_eq!(record.compensated(), initial[record.address]);
            assert!(!record.is_mismatch());
        }
    }

    #[test]
    fn background_resolution_errors_are_reported() {
        // An ATMarch built for 8-bit words references D3, which does not
        // exist for 4-bit words.
        let transformed = TwmTa::new(8).unwrap().transform(&march_c_minus()).unwrap();
        let mut narrow = MemoryBuilder::new(4, 4).build().unwrap();
        let result = execute(transformed.transparent_test(), &mut narrow);
        assert!(matches!(result, Err(BistError::March(_))));
    }
}
