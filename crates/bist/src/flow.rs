//! The two-phase transparent BIST session.
//!
//! A transparent BIST run has two phases:
//!
//! 1. **Signature prediction** — the read-only prediction test is executed
//!    and the raw read data (the untouched memory content) are compacted in
//!    a MISR, producing the *predicted* signature.
//! 2. **Transparent test** — the transparent march test is executed; each
//!    read's data is XOR-compensated by its known offset (so a fault-free
//!    memory contributes exactly the same stream of initial-content words as
//!    phase 1) and compacted in a second MISR, producing the *test*
//!    signature.
//!
//! A difference between the two signatures flags a fault. Because MISR
//! compaction can alias, the session also reports the exact-compare verdict
//! and whether the memory content was preserved.

use serde::{Deserialize, Serialize};

use twm_core::scheme::SchemeTransform;
use twm_march::MarchTest;
use twm_mem::{MemoryAccess, Word};

use crate::executor::{execute_with, ExecutionOptions, ExecutionResult};
use crate::misr::Misr;
use crate::BistError;

/// The outcome of a transparent BIST session.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionOutcome {
    /// Signature produced by the prediction phase.
    pub predicted_signature: Word,
    /// Signature produced by the transparent test phase.
    pub test_signature: Word,
    /// Number of reads whose observed value differed from the fault-free
    /// expectation during the test phase (exact-compare oracle).
    pub mismatches: usize,
    /// Whether the memory content after the session equals the content
    /// before it.
    pub content_preserved: bool,
    /// Operations executed in the prediction phase.
    pub prediction_operations: usize,
    /// Operations executed in the test phase.
    pub test_operations: usize,
}

impl SessionOutcome {
    /// Whether the signature comparison flags a fault.
    #[must_use]
    pub fn fault_detected(&self) -> bool {
        self.predicted_signature != self.test_signature
    }

    /// Whether the exact-compare oracle flags a fault.
    #[must_use]
    pub fn fault_detected_exact(&self) -> bool {
        self.mismatches > 0
    }

    /// Whether the signature comparison missed a fault the exact oracle saw
    /// (MISR aliasing).
    #[must_use]
    pub fn aliased(&self) -> bool {
        self.fault_detected_exact() && !self.fault_detected()
    }

    /// Total operations executed in both phases.
    #[must_use]
    pub fn total_operations(&self) -> usize {
        self.prediction_operations + self.test_operations
    }
}

/// Runs a complete transparent BIST session (prediction phase, test phase,
/// signature comparison) on the given memory.
///
/// The provided MISR is used as a template for both phases (each phase gets
/// a reset copy), so its width must match the memory's word width.
///
/// # Errors
///
/// Returns [`BistError::WidthMismatch`] if the MISR width differs from the
/// memory word width, and the executor's errors for unresolvable data or
/// invalid addresses.
pub fn run_transparent_session<M: MemoryAccess>(
    transparent_test: &MarchTest,
    prediction_test: &MarchTest,
    memory: &mut M,
    misr: Misr,
) -> Result<SessionOutcome, BistError> {
    run_transparent_session_staged(transparent_test, prediction_test, memory, misr)
        .map(|staged| staged.outcome)
}

/// A transparent BIST session together with its per-element signature trail
/// and the raw test-phase execution — the observation a diagnosis flow
/// fuses.
///
/// `element_signatures[i]` is the (cumulative) test-phase MISR signature
/// after absorbing every read of the transparent test's elements `0..=i`;
/// the last entry equals [`SessionOutcome::test_signature`]. The trail is a
/// much stronger fault discriminator than the final signature alone — two
/// faults whose final signatures collide rarely collide on every element
/// prefix — which is what the repair subsystem's signature dictionaries
/// key on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StagedSessionOutcome {
    /// The plain session outcome (identical to the unstaged flow's).
    pub outcome: SessionOutcome,
    /// Cumulative test-phase MISR signature after each transparent-test
    /// element.
    pub element_signatures: Vec<Word>,
    /// The transparent-test phase execution, reads recorded — the input to
    /// [`crate::diagnosis::diagnose`].
    pub test_execution: ExecutionResult,
}

impl StagedSessionOutcome {
    /// The signature trail as a key: every element signature in order,
    /// preceded by the predicted signature (faults can corrupt the
    /// prediction phase too, and that corruption is diagnostic evidence).
    #[must_use]
    pub fn signature_trail(&self) -> Vec<Word> {
        let mut trail = Vec::with_capacity(1 + self.element_signatures.len());
        trail.push(self.outcome.predicted_signature);
        trail.extend_from_slice(&self.element_signatures);
        trail
    }
}

/// [`run_transparent_session`] with the per-element signature trail and the
/// test-phase execution kept — the session hook behind signature
/// dictionaries and diagnosis fusion.
///
/// # Errors
///
/// Same as [`run_transparent_session`].
pub fn run_transparent_session_staged<M: MemoryAccess>(
    transparent_test: &MarchTest,
    prediction_test: &MarchTest,
    memory: &mut M,
    misr: Misr,
) -> Result<StagedSessionOutcome, BistError> {
    if misr.width() != memory.width() {
        return Err(BistError::WidthMismatch {
            misr: misr.width(),
            memory: memory.width(),
        });
    }
    let content_before = memory.content();

    // Phase 1: signature prediction — raw read data.
    let mut prediction_misr = misr.clone();
    prediction_misr.reset();
    let prediction = execute_with(
        prediction_test,
        memory,
        ExecutionOptions {
            record_reads: true,
            stop_at_first_mismatch: false,
        },
    )?;
    for record in &prediction.reads {
        prediction_misr.absorb(record.observed);
    }

    // Phase 2: transparent test — offset-compensated read data, with the
    // MISR state snapshotted at every element boundary.
    let mut test_misr = misr;
    test_misr.reset();
    let test = execute_with(
        transparent_test,
        memory,
        ExecutionOptions {
            record_reads: true,
            stop_at_first_mismatch: false,
        },
    )?;
    let element_signatures = absorb_by_element(
        &mut test_misr,
        transparent_test,
        memory.words(),
        &test,
        |record| record.compensated(),
    );

    let content_after = memory.content();

    Ok(StagedSessionOutcome {
        outcome: SessionOutcome {
            predicted_signature: prediction_misr.signature(),
            test_signature: test_misr.signature(),
            mismatches: test.mismatches,
            content_preserved: content_before == content_after,
            prediction_operations: prediction.operations(),
            test_operations: test.operations(),
        },
        element_signatures,
        test_execution: test,
    })
}

/// Absorbs an execution's reads into `misr` element by element, returning
/// the cumulative signature at each element boundary. The read stream of a
/// full (non-short-circuited) execution visits each element's reads
/// contiguously — `reads-per-address × words` records per element.
fn absorb_by_element(
    misr: &mut Misr,
    test: &MarchTest,
    words: usize,
    execution: &ExecutionResult,
    data: impl Fn(&crate::ReadRecord) -> Word,
) -> Vec<Word> {
    let mut signatures = Vec::with_capacity(test.element_count());
    let mut cursor = 0usize;
    for element in test.elements() {
        let reads = element.length().reads * words;
        for record in &execution.reads[cursor..cursor + reads] {
            misr.absorb(data(record));
        }
        cursor += reads;
        signatures.push(misr.signature());
    }
    debug_assert_eq!(cursor, execution.reads.len());
    signatures
}

/// Runs the BIST session described by any [`SchemeTransform`] on the given
/// memory — the scheme-generic entry point of the flow.
///
/// For schemes with a signature-prediction test this is exactly
/// [`run_transparent_session`] over the transform's two tests. For schemes
/// with concurrent (code-based) checking and no prediction phase — TOMT —
/// the transparent test is executed once and the *predicted* signature is
/// compacted from the fault-free expected data of every read (what the code
/// checker would accept), so [`SessionOutcome::fault_detected`] still
/// models the checker flagging a corrupted word;
/// [`SessionOutcome::prediction_operations`] is 0 because no prediction
/// pass touches the memory.
///
/// # Errors
///
/// Same as [`run_transparent_session`].
pub fn run_scheme_session<M: MemoryAccess>(
    transform: &SchemeTransform,
    memory: &mut M,
    misr: Misr,
) -> Result<SessionOutcome, BistError> {
    run_scheme_session_staged(transform, memory, misr).map(|staged| staged.outcome)
}

/// [`run_scheme_session`] with the per-element signature trail and the
/// test-phase execution kept — see [`StagedSessionOutcome`].
///
/// For prediction-free (concurrent-checking) schemes the predicted
/// signature is compacted from the fault-free expected data, exactly as in
/// the unstaged flow, and the element trail covers the single test pass.
///
/// # Errors
///
/// Same as [`run_transparent_session`].
pub fn run_scheme_session_staged<M: MemoryAccess>(
    transform: &SchemeTransform,
    memory: &mut M,
    misr: Misr,
) -> Result<StagedSessionOutcome, BistError> {
    if let Some(prediction) = transform.signature_prediction() {
        return run_transparent_session_staged(
            transform.transparent_test(),
            prediction,
            memory,
            misr,
        );
    }
    if misr.width() != memory.width() {
        return Err(BistError::WidthMismatch {
            misr: misr.width(),
            memory: memory.width(),
        });
    }
    let content_before = memory.content();
    let mut predicted_misr = misr.clone();
    predicted_misr.reset();
    let mut test_misr = misr;
    test_misr.reset();
    let test = execute_with(
        transform.transparent_test(),
        memory,
        ExecutionOptions {
            record_reads: true,
            stop_at_first_mismatch: false,
        },
    )?;
    for record in &test.reads {
        // The concurrent checker knows the fault-free expected word for
        // every read; compensate both streams identically so a fault-free
        // memory produces matching signatures.
        predicted_misr.absorb(record.expected ^ record.offset);
    }
    let element_signatures = absorb_by_element(
        &mut test_misr,
        transform.transparent_test(),
        memory.words(),
        &test,
        |record| record.compensated(),
    );
    let content_after = memory.content();
    Ok(StagedSessionOutcome {
        outcome: SessionOutcome {
            predicted_signature: predicted_misr.signature(),
            test_signature: test_misr.signature(),
            mismatches: test.mismatches,
            content_preserved: content_before == content_after,
            prediction_operations: 0,
            test_operations: test.operations(),
        },
        element_signatures,
        test_execution: test,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use twm_core::scheme::{SchemeId, SchemeRegistry, TransparentScheme, TwmTa};
    use twm_march::algorithms::{march_c_minus, march_u};
    use twm_mem::{BitAddress, Fault, MemoryBuilder, Transition};

    fn transformed(width: usize) -> SchemeTransform {
        TwmTa::new(width)
            .unwrap()
            .transform(&march_c_minus())
            .unwrap()
    }

    #[test]
    fn fault_free_memory_passes_and_content_is_preserved() {
        let t = transformed(8);
        let mut mem = MemoryBuilder::new(64, 8)
            .random_content(1234)
            .build()
            .unwrap();
        let before = mem.content();
        let outcome = run_scheme_session(&t, &mut mem, Misr::standard(8)).unwrap();
        assert!(!outcome.fault_detected());
        assert!(!outcome.fault_detected_exact());
        assert!(outcome.content_preserved);
        assert!(!outcome.aliased());
        assert_eq!(mem.content(), before);
        assert_eq!(
            outcome.test_operations,
            t.transparent_test().total_operations(64)
        );
        assert_eq!(
            outcome.prediction_operations,
            t.signature_prediction().unwrap().total_operations(64)
        );
    }

    #[test]
    fn stuck_at_fault_changes_the_signature() {
        let t = transformed(8);
        let mut mem = MemoryBuilder::new(32, 8)
            .random_content(77)
            .fault(Fault::stuck_at(BitAddress::new(9, 4), false))
            .build()
            .unwrap();
        let outcome = run_scheme_session(&t, &mut mem, Misr::standard(8)).unwrap();
        assert!(outcome.fault_detected_exact());
        assert!(
            outcome.fault_detected(),
            "signature comparison should flag the fault"
        );
    }

    #[test]
    fn coupling_fault_between_words_is_detected() {
        let t = TwmTa::new(4).unwrap().transform(&march_u()).unwrap();
        let mut mem = MemoryBuilder::new(16, 4)
            .random_content(5)
            .fault(Fault::coupling_idempotent(
                BitAddress::new(2, 1),
                BitAddress::new(10, 3),
                Transition::Rising,
                true,
            ))
            .build()
            .unwrap();
        let outcome = run_scheme_session(&t, &mut mem, Misr::standard(4)).unwrap();
        assert!(outcome.fault_detected_exact());
    }

    #[test]
    fn misr_width_must_match_memory_width() {
        let t = transformed(8);
        let mut mem = MemoryBuilder::new(8, 8).build().unwrap();
        let result = run_scheme_session(&t, &mut mem, Misr::standard(16));
        assert!(matches!(result, Err(BistError::WidthMismatch { .. })));
    }

    #[test]
    fn signatures_are_reproducible_across_sessions() {
        let t = transformed(8);
        let run = || {
            let mut mem = MemoryBuilder::new(16, 8)
                .random_content(42)
                .build()
                .unwrap();
            run_scheme_session(&t, &mut mem, Misr::standard(8)).unwrap()
        };
        let first = run();
        let second = run();
        assert_eq!(first.predicted_signature, second.predicted_signature);
        assert_eq!(first.test_signature, second.test_signature);
    }

    #[test]
    fn concurrent_checking_scheme_runs_without_a_prediction_phase() {
        let registry = SchemeRegistry::all(8).unwrap();
        let tomt = registry
            .get(SchemeId::Tomt)
            .unwrap()
            .transform(&march_c_minus())
            .unwrap();
        assert!(tomt.signature_prediction().is_none());

        let mut healthy = MemoryBuilder::new(16, 8).random_content(3).build().unwrap();
        let before = healthy.content();
        let outcome = run_scheme_session(&tomt, &mut healthy, Misr::standard(8)).unwrap();
        assert!(!outcome.fault_detected());
        assert!(!outcome.fault_detected_exact());
        assert!(outcome.content_preserved);
        assert_eq!(outcome.prediction_operations, 0);
        assert_eq!(
            outcome.test_operations,
            tomt.transparent_test().total_operations(16)
        );
        assert_eq!(healthy.content(), before);

        let mut faulty = MemoryBuilder::new(16, 8)
            .random_content(3)
            .fault(Fault::stuck_at(BitAddress::new(4, 2), true))
            .build()
            .unwrap();
        let outcome = run_scheme_session(&tomt, &mut faulty, Misr::standard(8)).unwrap();
        assert!(outcome.fault_detected_exact());
        assert!(outcome.fault_detected());
    }

    #[test]
    fn staged_session_agrees_with_the_unstaged_flow() {
        let registry = SchemeRegistry::all(8).unwrap();
        for scheme in registry.iter() {
            let transform = scheme.transform(&march_c_minus()).unwrap();
            let build = |fault: Option<Fault>| {
                let mut builder = MemoryBuilder::new(16, 8).random_content(21);
                if let Some(fault) = fault {
                    builder = builder.fault(fault);
                }
                builder.build().unwrap()
            };
            let fault = Fault::stuck_at(BitAddress::new(7, 3), true);
            for injected in [None, Some(fault)] {
                let plain = run_scheme_session(&transform, &mut build(injected), Misr::standard(8))
                    .unwrap();
                let staged =
                    run_scheme_session_staged(&transform, &mut build(injected), Misr::standard(8))
                        .unwrap();
                assert_eq!(staged.outcome, plain, "{} outcome drifted", scheme.name());
                // One cumulative signature per transparent-test element,
                // ending at the final test signature.
                assert_eq!(
                    staged.element_signatures.len(),
                    transform.transparent_test().element_count()
                );
                assert_eq!(
                    *staged.element_signatures.last().unwrap(),
                    plain.test_signature
                );
                let trail = staged.signature_trail();
                assert_eq!(trail[0], plain.predicted_signature);
                assert_eq!(trail.len(), staged.element_signatures.len() + 1);
                // The kept execution carries the read records a diagnosis
                // fuses.
                assert_eq!(
                    staged.test_execution.reads.len(),
                    staged.test_execution.reads_performed
                );
                assert_eq!(staged.test_execution.detected(), injected.is_some());
            }
        }
    }

    #[test]
    fn staged_trail_distinguishes_faults_with_distinct_evidence() {
        // Two different faults on the same memory shape and content should
        // (for this configuration) produce different signature trails —
        // the discrimination the repair dictionary keys on.
        let t = transformed(8);
        let run = |fault: Fault| {
            let mut memory = MemoryBuilder::new(16, 8)
                .random_content(4)
                .fault(fault)
                .build()
                .unwrap();
            run_scheme_session_staged(&t, &mut memory, Misr::standard(8))
                .unwrap()
                .signature_trail()
        };
        let a = run(Fault::stuck_at(BitAddress::new(2, 1), true));
        let b = run(Fault::stuck_at(BitAddress::new(9, 6), false));
        assert_ne!(a, b);
    }

    #[test]
    fn scheme_session_matches_the_two_phase_flow_for_predicting_schemes() {
        let t = transformed(8);
        let mut via_scheme = MemoryBuilder::new(16, 8).random_content(9).build().unwrap();
        let mut via_pair = MemoryBuilder::new(16, 8).random_content(9).build().unwrap();
        let a = run_scheme_session(&t, &mut via_scheme, Misr::standard(8)).unwrap();
        let b = run_transparent_session(
            t.transparent_test(),
            t.signature_prediction().unwrap(),
            &mut via_pair,
            Misr::standard(8),
        )
        .unwrap();
        assert_eq!(a, b);
    }
}
