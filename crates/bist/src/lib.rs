//! # twm-bist — transparent BIST engine
//!
//! This crate is the run-time half of the reproduction: it executes march
//! tests (transparent or not) against the fault-injected memory simulator of
//! [`twm_mem`], compacts read streams in a [`Misr`] signature register, runs
//! the two-phase *signature prediction → transparent test → compare* flow of
//! transparent BIST, and models the periodic idle-window scheduling that
//! motivates the paper's push for shorter transparent tests.
//!
//! * [`executor`] — runs a [`twm_march::MarchTest`] on a
//!   [`twm_mem::FaultyMemory`], recording every read with its expected
//!   fault-free value and its XOR offset from the initial content.
//! * [`lowered`] — pre-lowered operation streams: a test's symbolic data
//!   patterns resolved once per (test, width) pair, so repeated executions
//!   (fault-coverage sweeps) skip per-address pattern resolution entirely.
//! * [`misr`] — a multiple-input signature register (LFSR-based) with
//!   configurable feedback polynomial.
//! * [`flow`] — the transparent BIST session: prediction phase, test phase,
//!   signature comparison and content-preservation check.
//! * [`controller`] — periodic testing in idle windows: how many idle
//!   windows a test needs and how likely it is to complete without
//!   interfering with normal operation.
//! * [`diagnosis`] — localisation of the defective words and bits from the
//!   read records of a failing run.
//!
//! ```
//! use twm_bist::flow::run_scheme_session;
//! use twm_bist::misr::Misr;
//! use twm_core::scheme::{SchemeId, SchemeRegistry};
//! use twm_march::algorithms::march_c_minus;
//! use twm_mem::{FaultyMemory, MemoryConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Any registered scheme's transform runs through the same session API.
//! let registry = SchemeRegistry::all(8)?;
//! let transformed = registry.transform(SchemeId::TwmTa, &march_c_minus())?;
//! let mut memory = FaultyMemory::fault_free(MemoryConfig::new(64, 8)?);
//! memory.fill_random(42);
//!
//! let outcome = run_scheme_session(&transformed, &mut memory, Misr::standard(8))?;
//! assert!(!outcome.fault_detected());          // fault-free memory
//! assert!(outcome.content_preserved);          // transparent test restored content
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod controller;
pub mod diagnosis;
mod error;
pub mod executor;
pub mod flow;
pub mod lowered;
pub mod misr;

pub use diagnosis::{diagnose, DiagnosisReport, SuspectCell};
pub use error::BistError;
pub use executor::{
    detect_lowered_at, detect_lowered_batch, execute, execute_lowered, execute_with,
    probe_lowered_at, ExecutionOptions, ExecutionResult, ReadRecord,
};
pub use flow::{
    run_scheme_session, run_scheme_session_staged, run_transparent_session,
    run_transparent_session_staged, SessionOutcome, StagedSessionOutcome,
};
pub use lowered::{LoweredElement, LoweredOp, LoweredTest};
pub use misr::Misr;
