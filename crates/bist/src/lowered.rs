//! Pre-lowered march operation streams.
//!
//! A [`twm_march::MarchTest`] stores *symbolic* data specifications
//! (`D_k`, `c ⊕ D_k`, …) that must be resolved against a word width — and,
//! for transparent data, against each word's initial content. The
//! interpreting executor used to re-resolve every operation's pattern for
//! every address of every element, which made pattern resolution (an
//! O(width) bit-building loop for backgrounds) the inner-loop hot spot of
//! fault-coverage sweeps.
//!
//! A [`LoweredTest`] resolves every pattern exactly once per (test, width)
//! pair: each operation becomes a concrete [`Word`] plus a transparency
//! flag, so executing an operation at an address is a single XOR against the
//! word's initial content. Lower once with [`LoweredTest::new`], execute any
//! number of times with [`crate::executor::execute_lowered`] — which is how
//! the coverage evaluator amortises lowering across thousands of
//! fault-injection runs.

use serde::{Deserialize, Serialize};

use twm_march::{MarchError, MarchTest, OpKind};
use twm_mem::{AddressOrder, Word};

/// One march operation with its data pattern resolved for a fixed width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoweredOp {
    /// Whether the operation reads or writes.
    pub kind: OpKind,
    /// Whether the data is transparent (XORed with the word's initial
    /// content) or literal.
    pub transparent: bool,
    /// The resolved data pattern. For a transparent operation this is the
    /// XOR offset from the initial content; for a literal operation it is
    /// the value itself.
    pub pattern: Word,
}

impl LoweredOp {
    /// The concrete data value for a word whose initial content is
    /// `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `initial` has a different width than the lowered pattern;
    /// [`LoweredTest`] guarantees matching widths for its own memory.
    #[must_use]
    pub fn value(&self, initial: Word) -> Word {
        if self.transparent {
            initial ^ self.pattern
        } else {
            self.pattern
        }
    }
}

/// One march element with all operations lowered.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoweredElement {
    /// Address sweep order.
    pub order: AddressOrder,
    /// Lowered operations applied at each address, in order.
    pub ops: Vec<LoweredOp>,
}

/// A march test lowered to a flat, width-resolved operation stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoweredTest {
    name: String,
    width: usize,
    elements: Vec<LoweredElement>,
}

impl LoweredTest {
    /// Lowers a march test for the given word width, resolving every data
    /// pattern once.
    ///
    /// # Errors
    ///
    /// Returns the same [`MarchError`]s pattern resolution produces — an
    /// out-of-range background index or an unsupported width. Lowering
    /// errors up front replaces the historical behaviour of failing midway
    /// through execution.
    pub fn new(test: &MarchTest, width: usize) -> Result<Self, MarchError> {
        let elements = test
            .elements()
            .iter()
            .map(|element| {
                let ops = element
                    .ops
                    .iter()
                    .map(|op| {
                        Ok(LoweredOp {
                            kind: op.kind,
                            transparent: op.data.is_transparent(),
                            pattern: op.data.pattern().resolve(width)?,
                        })
                    })
                    .collect::<Result<Vec<_>, MarchError>>()?;
                Ok(LoweredElement {
                    order: element.order,
                    ops,
                })
            })
            .collect::<Result<Vec<_>, MarchError>>()?;
        Ok(Self {
            name: test.name().to_string(),
            width,
            elements,
        })
    }

    /// The name of the source test.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The word width the test was lowered for.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The lowered elements, in order.
    #[must_use]
    pub fn elements(&self) -> &[LoweredElement] {
        &self.elements
    }

    /// Number of operations applied per address across all elements — the
    /// lowered counterpart of [`MarchTest::operations_per_word`].
    #[must_use]
    pub fn operations_per_word(&self) -> usize {
        self.elements.iter().map(|element| element.ops.len()).sum()
    }

    /// Total number of operations when executed over a memory with `words`
    /// addresses.
    #[must_use]
    pub fn total_operations(&self, words: usize) -> usize {
        self.operations_per_word() * words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twm_march::algorithms::march_c_minus;
    use twm_march::{DataPattern, DataSpec, MarchElement, Operation};

    #[test]
    fn lowering_resolves_patterns_once() {
        let test = MarchTest::new(
            "t",
            vec![MarchElement::ascending(vec![
                Operation::write(DataSpec::TransparentXor(DataPattern::Background(1))),
                Operation::read(DataSpec::Literal(DataPattern::Ones)),
            ])],
        )
        .unwrap();
        let lowered = LoweredTest::new(&test, 8).unwrap();
        assert_eq!(lowered.width(), 8);
        assert_eq!(lowered.name(), "t");
        let ops = &lowered.elements()[0].ops;
        assert!(ops[0].transparent);
        assert_eq!(ops[0].pattern.to_bits(), 0b0101_0101);
        assert!(!ops[1].transparent);
        assert!(ops[1].pattern.is_ones());

        let initial = Word::from_bits(0b1100_0011, 8).unwrap();
        assert_eq!(ops[0].value(initial).to_bits(), 0b1100_0011 ^ 0b0101_0101);
        assert_eq!(ops[1].value(initial), Word::ones(8));
    }

    #[test]
    fn lowering_fails_on_unresolvable_backgrounds() {
        let test = MarchTest::new(
            "t",
            vec![MarchElement::ascending(vec![Operation::read(
                DataSpec::Literal(DataPattern::Background(3)),
            )])],
        )
        .unwrap();
        // D3 does not exist for 4-bit words.
        assert!(LoweredTest::new(&test, 4).is_err());
        assert!(LoweredTest::new(&test, 8).is_ok());
    }

    #[test]
    fn lowering_preserves_element_structure() {
        let test = march_c_minus();
        let lowered = LoweredTest::new(&test, 1).unwrap();
        assert_eq!(lowered.elements().len(), test.element_count());
        assert_eq!(lowered.operations_per_word(), test.operations_per_word());
        assert_eq!(lowered.total_operations(16), test.total_operations(16));
        for (lowered_el, el) in lowered.elements().iter().zip(test.elements()) {
            assert_eq!(lowered_el.order, el.order);
            assert_eq!(lowered_el.ops.len(), el.ops.len());
        }
    }
}
