//! Multiple-input signature register (MISR).
//!
//! Transparent BIST compacts the data returned by read operations into a
//! signature instead of comparing each read against a stored expected value.
//! The signature produced by the transparent test phase is compared with the
//! signature predicted in a preceding read-only phase; a mismatch flags a
//! fault. Like every LFSR-based compactor a MISR is subject to *aliasing*
//! (an erroneous stream can map to the fault-free signature), which is why
//! the library also offers an exact-compare oracle for coverage analysis.

use serde::{Deserialize, Serialize};

use twm_mem::Word;

use crate::BistError;

/// An LFSR-based multiple-input signature register of configurable width.
///
/// ```
/// use twm_bist::Misr;
/// use twm_mem::Word;
///
/// # fn main() -> Result<(), twm_bist::BistError> {
/// let mut a = Misr::standard(8);
/// let mut b = Misr::standard(8);
/// for value in [0x12u128, 0x34, 0x56] {
///     a.absorb(Word::from_bits(value, 8).unwrap());
/// }
/// for value in [0x12u128, 0x34, 0x57] {       // one bit differs
///     b.absorb(Word::from_bits(value, 8).unwrap());
/// }
/// assert_ne!(a.signature(), b.signature());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Misr {
    state: u128,
    width: usize,
    polynomial: u128,
    absorbed: u64,
}

impl Misr {
    /// Creates a MISR with an explicit feedback polynomial (tap mask).
    ///
    /// # Errors
    ///
    /// Returns [`BistError::InvalidMisr`] if the width is zero or above the
    /// supported maximum, or if the polynomial is zero or has taps outside
    /// the register width.
    pub fn new(width: usize, polynomial: u128) -> Result<Self, BistError> {
        if width == 0 || width > twm_mem::MAX_WORD_WIDTH {
            return Err(BistError::InvalidMisr {
                detail: format!("unsupported register width {width}"),
            });
        }
        let mask = Word::ones(width).to_bits();
        if polynomial == 0 {
            return Err(BistError::InvalidMisr {
                detail: "feedback polynomial must be non-zero".into(),
            });
        }
        if polynomial & !mask != 0 {
            return Err(BistError::InvalidMisr {
                detail: format!(
                    "feedback polynomial 0x{polynomial:x} has taps outside width {width}"
                ),
            });
        }
        Ok(Self {
            state: 0,
            width,
            polynomial,
            absorbed: 0,
        })
    }

    /// Creates a MISR with a default feedback polynomial for the width.
    ///
    /// Widely used primitive polynomials are chosen for the common word
    /// widths (4, 8, 16, 32, 64); other widths fall back to `x^w + x + 1`
    /// style taps, which is sufficient for simulation purposes.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or above the supported maximum; use
    /// [`Misr::new`] for a fallible constructor.
    #[must_use]
    pub fn standard(width: usize) -> Self {
        let polynomial: u128 = match width {
            1 => 0x1,
            2 => 0x3,
            3 => 0x3,
            4 => 0x9,     // x^4 + x + 1 (taps at 3 and 0)
            8 => 0x8E,    // x^8 + x^4 + x^3 + x^2 + 1
            16 => 0xD008, // CRC-16-ish taps
            32 => 0x8020_0003,
            64 => 0x8000_0000_0000_001B,
            w => (1u128 << (w - 1)) | 0x3,
        };
        Self::new(width, polynomial).expect("standard polynomial is valid")
    }

    /// Register width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of words absorbed since the last reset.
    #[must_use]
    pub fn absorbed(&self) -> u64 {
        self.absorbed
    }

    /// Clears the register state.
    pub fn reset(&mut self) {
        self.state = 0;
        self.absorbed = 0;
    }

    /// Absorbs one data word.
    ///
    /// # Panics
    ///
    /// Panics if the word width differs from the register width.
    pub fn absorb(&mut self, word: Word) {
        assert_eq!(
            word.width(),
            self.width,
            "misr width {} does not match data width {}",
            self.width,
            word.width()
        );
        let mask = Word::ones(self.width).to_bits();
        let feedback = (self.state >> (self.width - 1)) & 1;
        let mut next = (self.state << 1) & mask;
        if feedback == 1 {
            next ^= self.polynomial;
        }
        next ^= word.to_bits();
        self.state = next & mask;
        self.absorbed += 1;
    }

    /// The current signature.
    #[must_use]
    pub fn signature(&self) -> Word {
        Word::from_bits(self.state, self.width).expect("state is masked to a valid width")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word(bits: u128, width: usize) -> Word {
        Word::from_bits(bits, width).unwrap()
    }

    #[test]
    fn construction_validates_parameters() {
        assert!(Misr::new(0, 1).is_err());
        assert!(Misr::new(8, 0).is_err());
        assert!(Misr::new(8, 0x1FF).is_err());
        assert!(Misr::new(8, 0x8E).is_ok());
        for width in [1usize, 2, 3, 4, 8, 16, 32, 64, 100, 128] {
            assert_eq!(Misr::standard(width).width(), width);
        }
    }

    #[test]
    fn identical_streams_produce_identical_signatures() {
        let stream: Vec<u128> = vec![0x01, 0xFF, 0x55, 0xAA, 0x13];
        let mut a = Misr::standard(8);
        let mut b = Misr::standard(8);
        for &value in &stream {
            a.absorb(word(value, 8));
            b.absorb(word(value, 8));
        }
        assert_eq!(a.signature(), b.signature());
        assert_eq!(a.absorbed(), stream.len() as u64);
    }

    #[test]
    fn single_bit_difference_changes_the_signature() {
        let mut a = Misr::standard(16);
        let mut b = Misr::standard(16);
        for i in 0..100u128 {
            a.absorb(word(i, 16));
            b.absorb(word(if i == 57 { i ^ 0x0400 } else { i }, 16));
        }
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn order_of_inputs_matters() {
        let mut a = Misr::standard(8);
        let mut b = Misr::standard(8);
        a.absorb(word(0x12, 8));
        a.absorb(word(0x34, 8));
        b.absorb(word(0x34, 8));
        b.absorb(word(0x12, 8));
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn reset_restores_the_initial_state() {
        let mut misr = Misr::standard(8);
        misr.absorb(word(0xAB, 8));
        assert_ne!(misr.signature(), Word::zeros(8));
        misr.reset();
        assert_eq!(misr.signature(), Word::zeros(8));
        assert_eq!(misr.absorbed(), 0);
    }

    #[test]
    #[should_panic(expected = "does not match data width")]
    fn absorbing_the_wrong_width_panics() {
        Misr::standard(8).absorb(word(0, 16));
    }

    #[test]
    fn aliasing_is_possible_but_rare() {
        // Exhaustively flip one word in a short stream: the signature must
        // differ from the reference for every single-word corruption (single
        // errors never alias in an LFSR-based MISR).
        let stream: Vec<u128> = (0..32).map(|i| (i * 37) % 256).collect();
        let mut reference = Misr::standard(8);
        for &v in &stream {
            reference.absorb(word(v, 8));
        }
        for position in 0..stream.len() {
            for bit in 0..8 {
                let mut corrupted = Misr::standard(8);
                for (i, &v) in stream.iter().enumerate() {
                    let value = if i == position { v ^ (1 << bit) } else { v };
                    corrupted.absorb(word(value, 8));
                }
                assert_ne!(
                    corrupted.signature(),
                    reference.signature(),
                    "single-bit corruption at word {position} bit {bit} aliased"
                );
            }
        }
    }
}
