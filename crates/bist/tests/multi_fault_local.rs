//! Property test for multi-fault fault-local detection: for a memory
//! carrying *several* simultaneous faults, sweeping only the union of the
//! faults' word footprints ([`twm_mem::FaultSet::word_footprint`]) must
//! produce the same detection verdict as a full-address sweep — the
//! diagnosis-style generalisation of the single-fault property the coverage
//! engine relies on.

use proptest::prelude::*;

use twm_bist::{detect_lowered_at, execute_lowered, ExecutionOptions, LoweredTest};
use twm_core::{TransparentScheme, TwmTa};
use twm_march::algorithms::{march_c_minus, march_u, mats_plus};
use twm_mem::{BitAddress, Fault, FaultSet, FaultyMemory, MemoryConfig, Transition};

const WORDS: usize = 12;
const WIDTH: usize = 4;

fn arb_cell() -> impl Strategy<Value = BitAddress> {
    (0..WORDS, 0..WIDTH).prop_map(|(word, bit)| BitAddress::new(word, bit))
}

/// Forces the victim apart from the aggressor (coupling faults need two
/// distinct cells) while keeping the pair deterministic in the inputs.
fn apart(aggressor: BitAddress, victim: BitAddress) -> BitAddress {
    if aggressor == victim {
        BitAddress::new(victim.word, (victim.bit + 1) % WIDTH)
    } else {
        victim
    }
}

fn transition(rising: bool) -> Transition {
    if rising {
        Transition::Rising
    } else {
        Transition::Falling
    }
}

/// One fault drawn from every modelled class, anywhere in the memory.
fn arb_fault() -> impl Strategy<Value = Fault> {
    prop_oneof![
        (arb_cell(), any::<bool>()).prop_map(|(c, v)| Fault::stuck_at(c, v)),
        (arb_cell(), any::<bool>()).prop_map(|(c, r)| Fault::transition(c, transition(r))),
        (arb_cell(), arb_cell(), any::<bool>(), any::<bool>()).prop_map(|(a, v, r, val)| {
            Fault::coupling_idempotent(a, apart(a, v), transition(r), val)
        }),
        (arb_cell(), arb_cell(), any::<bool>()).prop_map(|(a, v, r)| Fault::coupling_inversion(
            a,
            apart(a, v),
            transition(r)
        )),
        (arb_cell(), arb_cell(), any::<bool>(), any::<bool>())
            .prop_map(|(a, v, av, vv)| Fault::coupling_state(a, apart(a, v), av, vv)),
    ]
}

fn arb_test() -> impl Strategy<Value = twm_march::MarchTest> {
    prop_oneof![
        Just(march_c_minus()),
        Just(mats_plus()),
        Just(
            TwmTa::new(WIDTH)
                .unwrap()
                .transform(&march_u())
                .unwrap()
                .transparent_test()
                .clone()
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The union-footprint sweep is verdict-equivalent to the full sweep for
    /// any multi-fault injection, test and content.
    #[test]
    fn union_footprint_sweep_matches_full_sweep(
        faults in prop::collection::vec(arb_fault(), 1..5),
        test in arb_test(),
        seed in any::<u64>(),
    ) {
        let config = MemoryConfig::new(WORDS, WIDTH).unwrap();
        let set = FaultSet::from_faults(faults.clone());
        let footprint = set.word_footprint();
        prop_assert!(!footprint.is_empty());

        let lowered = LoweredTest::new(&test, WIDTH).unwrap();
        let build = || {
            let mut memory = FaultyMemory::with_faults(config, set.clone()).unwrap();
            memory.fill_random(seed);
            memory
        };

        let full = execute_lowered(
            &lowered,
            &mut build(),
            ExecutionOptions {
                record_reads: false,
                stop_at_first_mismatch: true,
            },
        )
        .unwrap();
        let local = detect_lowered_at(&lowered, &mut build(), &footprint).unwrap();
        prop_assert_eq!(
            full.detected(),
            local,
            "verdicts diverge for {:?} under {}",
            faults,
            test.name()
        );
    }
}
