//! Construction of the ATMarch test added by the paper's Algorithm 1.
//!
//! After the transparent solid-background test (TSMarch) has exercised all
//! inter-word fault conditions, the word-oriented memory still needs the
//! intra-word coupling-fault conditions excited. ATMarch does this with one
//! march element per standard data background `D_k` (`k = 1 … ⌈log₂W⌉`):
//!
//! ```text
//! ⇕( r_c, w_{c⊕D_k}, r_{c⊕D_k}, w_c, r_c )
//! ```
//!
//! followed by a single closing element. When the word content after TSMarch
//! equals the initial content the closing element is a plain `⇕(r_c)`; when
//! it is the complement, every element operates on `c̄` instead and the
//! closing element `⇕(r_c̄, w_c)` also restores the content (the two branches
//! of Algorithm 1).

use twm_march::background::background_degree;
use twm_march::{DataPattern, DataSpec, MarchElement, MarchTest, Operation};

use crate::CoreError;

/// Smallest word width for which a word-oriented transformation is
/// meaningful.
pub const MIN_WORD_WIDTH: usize = 2;

fn check_width(width: usize) -> Result<(), CoreError> {
    if !(MIN_WORD_WIDTH..=twm_mem::MAX_WORD_WIDTH).contains(&width) {
        return Err(CoreError::InvalidWidth { width });
    }
    Ok(())
}

/// The ATMarch element for data background `D_k`.
///
/// `content_inverted` selects whether the element operates relative to the
/// initial content (`false`) or to its complement (`true`).
///
/// # Errors
///
/// Returns [`CoreError::InvalidWidth`] for an unsupported width and
/// [`CoreError::March`] if `k` is not a valid background index for the width.
pub fn atmarch_element(
    width: usize,
    k: usize,
    content_inverted: bool,
) -> Result<MarchElement, CoreError> {
    check_width(width)?;
    // Validate the background index for this width.
    twm_march::background::data_background(width, k)?;

    let (base, flipped) = if content_inverted {
        (DataPattern::Ones, DataPattern::BackgroundComplement(k))
    } else {
        (DataPattern::Zeros, DataPattern::Background(k))
    };
    let base = DataSpec::TransparentXor(base);
    let flipped = DataSpec::TransparentXor(flipped);
    Ok(MarchElement::any_order(vec![
        Operation::read(base),
        Operation::write(flipped),
        Operation::read(flipped),
        Operation::write(base),
        Operation::read(base),
    ]))
}

/// The complete ATMarch test for a `width`-bit word memory.
///
/// `content_inverted` corresponds to the branch of Algorithm 1 taken when
/// the content after TSMarch is the complement of the initial content; the
/// closing element then restores the content.
///
/// # Errors
///
/// Returns [`CoreError::InvalidWidth`] for an unsupported width.
pub fn atmarch(width: usize, content_inverted: bool) -> Result<MarchTest, CoreError> {
    check_width(width)?;
    let degree = background_degree(width);
    let mut elements = Vec::with_capacity(degree + 1);
    for k in 1..=degree {
        elements.push(atmarch_element(width, k, content_inverted)?);
    }
    let closing = if content_inverted {
        MarchElement::any_order(vec![
            Operation::read(DataSpec::TransparentXor(DataPattern::Ones)),
            Operation::write(DataSpec::TransparentXor(DataPattern::Zeros)),
        ])
    } else {
        MarchElement::any_order(vec![Operation::read(DataSpec::TransparentXor(
            DataPattern::Zeros,
        ))])
    };
    elements.push(closing);
    Ok(MarchTest::new(format!("ATMarch (W={width})"), elements)?)
}

/// Per-word operation count of ATMarch: `5·⌈log₂W⌉ + 1` (or `+ 2` for the
/// inverted-content branch).
#[must_use]
pub fn atmarch_length(width: usize, content_inverted: bool) -> usize {
    5 * background_degree(width) + if content_inverted { 2 } else { 1 }
}

/// The *non-transparent* counterpart of ATMarch used in the paper's fault
/// coverage analysis (Section 5, there called AMarch): one element
/// `⇕(r0, w D_k, r D_k, w0, r0)` per standard background, plus a closing
/// read of the all-zero background. Concatenated after the solid-background
/// march test it forms the non-transparent word-oriented march test whose
/// coverage the transparent TWMarch is shown to preserve.
///
/// # Errors
///
/// Returns [`CoreError::InvalidWidth`] for an unsupported width.
pub fn amarch(width: usize) -> Result<MarchTest, CoreError> {
    check_width(width)?;
    let degree = background_degree(width);
    let mut elements = Vec::with_capacity(degree + 1);
    for k in 1..=degree {
        let zero = DataSpec::Literal(DataPattern::Zeros);
        let background = DataSpec::Literal(DataPattern::Background(k));
        elements.push(MarchElement::any_order(vec![
            Operation::read(zero),
            Operation::write(background),
            Operation::read(background),
            Operation::write(zero),
            Operation::read(zero),
        ]));
    }
    elements.push(MarchElement::any_order(vec![Operation::read(
        DataSpec::Literal(DataPattern::Zeros),
    )]));
    Ok(MarchTest::new(format!("AMarch (W={width})"), elements)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_bit_atmarch_matches_paper_example() {
        // Section 4: for 8-bit words ATMarch uses D1 = 01010101,
        // D2 = 00110011, D3 = 00001111, five operations each, plus one
        // closing read — 16 operations per word.
        let test = atmarch(8, false).unwrap();
        assert_eq!(test.element_count(), 4);
        assert_eq!(test.length().operations, 16);
        assert_eq!(test.length().reads, 10);
        assert_eq!(test.length().writes, 6);
        assert_eq!(
            test.to_string(),
            "⇕(rc,wc^D1,rc^D1,wc,rc); ⇕(rc,wc^D2,rc^D2,wc,rc); ⇕(rc,wc^D3,rc^D3,wc,rc); ⇕(rc)"
        );
        assert!(test.is_transparent());
    }

    #[test]
    fn inverted_branch_restores_content() {
        let test = atmarch(4, true).unwrap();
        // 2 backgrounds for 4-bit words, 5 ops each, plus a 2-op restore.
        assert_eq!(test.length().operations, 12);
        let last = test.elements().last().unwrap();
        assert_eq!(last.len(), 2);
        assert!(last.ops[0].is_read());
        assert!(last.ops[1].is_write());
        assert_eq!(
            last.ops[1].data,
            DataSpec::TransparentXor(DataPattern::Zeros)
        );
    }

    #[test]
    fn length_helper_matches_constructed_tests() {
        for width in [2usize, 4, 8, 16, 32, 64, 128] {
            for inverted in [false, true] {
                let test = atmarch(width, inverted).unwrap();
                assert_eq!(
                    test.length().operations,
                    atmarch_length(width, inverted),
                    "width {width} inverted {inverted}"
                );
            }
        }
    }

    #[test]
    fn element_data_uses_the_requested_background() {
        let element = atmarch_element(16, 3, false).unwrap();
        assert_eq!(
            element.ops[1].data,
            DataSpec::TransparentXor(DataPattern::Background(3))
        );
        let element = atmarch_element(16, 3, true).unwrap();
        assert_eq!(
            element.ops[1].data,
            DataSpec::TransparentXor(DataPattern::BackgroundComplement(3))
        );
    }

    #[test]
    fn amarch_is_the_nontransparent_counterpart() {
        let transparent = atmarch(8, false).unwrap();
        let plain = amarch(8).unwrap();
        assert_eq!(plain.length().operations, transparent.length().operations);
        assert_eq!(plain.length().reads, transparent.length().reads);
        assert!(!plain.is_transparent());
        assert!(plain.elements().iter().all(|e| !e.is_empty()));
        assert_eq!(
            plain.to_string(),
            "⇕(r0,wD1,rD1,w0,r0); ⇕(r0,wD2,rD2,w0,r0); ⇕(r0,wD3,rD3,w0,r0); ⇕(r0)"
        );
    }

    #[test]
    fn invalid_widths_and_backgrounds_are_rejected() {
        assert!(matches!(
            atmarch(1, false),
            Err(CoreError::InvalidWidth { .. })
        ));
        assert!(matches!(
            atmarch(256, false),
            Err(CoreError::InvalidWidth { .. })
        ));
        assert!(atmarch_element(8, 4, false).is_err());
        assert!(atmarch_element(8, 0, false).is_err());
    }
}
