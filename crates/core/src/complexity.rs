//! Test-length accounting: the closed forms behind the paper's Tables 2
//! and 3 and the exact operation counts of the generated tests.
//!
//! Notation (an `N × W` memory, a bit-oriented march with `M` operations of
//! which `Q` are reads, `L = ⌈log₂W⌉`):
//!
//! | Scheme | TCM (test) | TCP (prediction) |
//! |---|---|---|
//! | Scheme 1 \[12\] | `M·(L+1)·N` | `Q·(L+1)·N` |
//! | Scheme 2 \[13\] (TOMT) | `(8·W+2)·N` | — |
//! | This work (TWM_TA) | `(M + 5·L)·N` | `(Q + 2·L)·N` |
//!
//! The closed forms are reconstructed from the paper's own worked numbers
//! (the formulas in the source text are partially garbled); the exact counts
//! of the generated tests are reported alongside so any divergence is
//! visible. All values returned here are *per word* — multiply by `N` for
//! the totals the paper quotes.

use serde::{Deserialize, Serialize};

use twm_march::background::background_degree;
use twm_march::{MarchTest, TestLength};

use crate::scheme1::Scheme1Transformer;
use crate::tomt::{tomt_tcm_per_word, tomt_tcp_per_word};
use crate::twm_ta::TwmTransformer;
use crate::CoreError;

/// Per-word complexity of one scheme: test length (TCM) and signature
/// prediction length (TCP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemeComplexity {
    /// Operations per word of the transparent test (TCM / N).
    pub tcm: usize,
    /// Operations per word of the signature-prediction test (TCP / N).
    pub tcp: usize,
}

impl SchemeComplexity {
    /// Combined per-word test complexity (TCM + TCP, as the paper compares).
    #[must_use]
    pub fn total(&self) -> usize {
        self.tcm + self.tcp
    }
}

/// Closed-form complexity of Scheme 1 (reference \[12\]).
#[must_use]
pub fn scheme1_formula(length: TestLength, width: usize) -> SchemeComplexity {
    let passes = background_degree(width) + 1;
    SchemeComplexity {
        tcm: length.operations * passes,
        tcp: length.reads * passes,
    }
}

/// Closed-form complexity of Scheme 2 (TOMT, reference \[13\]).
#[must_use]
pub fn scheme2_formula(width: usize) -> SchemeComplexity {
    SchemeComplexity {
        tcm: tomt_tcm_per_word(width),
        tcp: tomt_tcp_per_word(width),
    }
}

/// Closed-form complexity of the proposed scheme (TWM_TA): `TCM = M + 5·L`,
/// `TCP = Q + 2·L`.
#[must_use]
pub fn proposed_formula(length: TestLength, width: usize) -> SchemeComplexity {
    let log2w = background_degree(width);
    SchemeComplexity {
        tcm: length.operations + 5 * log2w,
        tcp: length.reads + 2 * log2w,
    }
}

/// Exact per-word complexity of the proposed scheme, measured on the
/// generated TWMarch and its prediction test.
///
/// # Errors
///
/// Returns the errors of [`TwmTransformer::transform`].
pub fn proposed_exact(bmarch: &MarchTest, width: usize) -> Result<SchemeComplexity, CoreError> {
    let transformed = TwmTransformer::new(width)?.transform(bmarch)?;
    Ok(SchemeComplexity {
        tcm: transformed.transparent_test().operations_per_word(),
        tcp: transformed.signature_prediction().operations_per_word(),
    })
}

/// Exact per-word complexity of Scheme 1, measured on the generated
/// transparent multi-background test.
///
/// # Errors
///
/// Returns the errors of [`Scheme1Transformer::transform`].
pub fn scheme1_exact(bmarch: &MarchTest, width: usize) -> Result<SchemeComplexity, CoreError> {
    let transformed = Scheme1Transformer::new(width)?.transform(bmarch)?;
    Ok(SchemeComplexity {
        tcm: transformed.transparent_test().operations_per_word(),
        tcp: transformed.signature_prediction().operations_per_word(),
    })
}

/// One row of the paper's Table 3: a march test at a given word width,
/// compared across the three schemes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Name of the bit-oriented march test.
    pub test_name: String,
    /// Word width in bits.
    pub width: usize,
    /// Closed-form complexity of Scheme 1 \[12\].
    pub scheme1: SchemeComplexity,
    /// Closed-form complexity of Scheme 2 (TOMT) \[13\].
    pub scheme2: SchemeComplexity,
    /// Closed-form complexity of the proposed scheme.
    pub proposed: SchemeComplexity,
    /// Exact complexity of the proposed scheme measured on the generated
    /// test.
    pub proposed_exact: SchemeComplexity,
    /// Exact complexity of Scheme 1 measured on the generated test.
    pub scheme1_exact: SchemeComplexity,
}

/// Builds the rows of the paper's Table 3 for the given tests and word
/// widths.
///
/// # Errors
///
/// Returns transformation errors for inputs that are not valid bit-oriented
/// march tests.
pub fn table3_rows(tests: &[MarchTest], widths: &[usize]) -> Result<Vec<ComparisonRow>, CoreError> {
    let mut rows = Vec::with_capacity(tests.len() * widths.len());
    for test in tests {
        for &width in widths {
            rows.push(ComparisonRow {
                test_name: test.name().to_string(),
                width,
                scheme1: scheme1_formula(test.length(), width),
                scheme2: scheme2_formula(width),
                proposed: proposed_formula(test.length(), width),
                proposed_exact: proposed_exact(test, width)?,
                scheme1_exact: scheme1_exact(test, width)?,
            });
        }
    }
    Ok(rows)
}

/// The headline comparison of the paper (Sections 1, 5 and 6): total
/// complexity of the proposed scheme relative to Schemes 1 and 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeadlineComparison {
    /// Word width in bits.
    pub width: usize,
    /// Total per-word complexity (TCM + TCP) of the proposed scheme.
    pub proposed_total: usize,
    /// Total per-word complexity of Scheme 1 \[12\].
    pub scheme1_total: usize,
    /// Total per-word complexity of Scheme 2 \[13\].
    pub scheme2_total: usize,
    /// `proposed_total / scheme1_total`.
    pub ratio_vs_scheme1: f64,
    /// `proposed_total / scheme2_total`.
    pub ratio_vs_scheme2: f64,
}

/// Computes the headline comparison for a bit-oriented march test and word
/// width using the closed-form complexities.
#[must_use]
pub fn headline(bmarch: &MarchTest, width: usize) -> HeadlineComparison {
    let length = bmarch.length();
    let proposed = proposed_formula(length, width).total();
    let scheme1 = scheme1_formula(length, width).total();
    let scheme2 = scheme2_formula(width).total();
    HeadlineComparison {
        width,
        proposed_total: proposed,
        scheme1_total: scheme1,
        scheme2_total: scheme2,
        ratio_vs_scheme1: proposed as f64 / scheme1 as f64,
        ratio_vs_scheme2: proposed as f64 / scheme2 as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twm_march::algorithms::{march_c_minus, march_u};

    #[test]
    fn table2_closed_forms_for_march_c_minus_at_32_bits() {
        let length = march_c_minus().length();
        assert_eq!(length.operations, 10);
        assert_eq!(length.reads, 5);

        let s1 = scheme1_formula(length, 32);
        assert_eq!(s1.tcm, 60);
        assert_eq!(s1.tcp, 30);

        let s2 = scheme2_formula(32);
        assert_eq!(s2.tcm, 258);
        assert_eq!(s2.tcp, 0);

        let proposed = proposed_formula(length, 32);
        assert_eq!(proposed.tcm, 35);
        assert_eq!(proposed.tcp, 15);
    }

    #[test]
    fn headline_ratios_match_the_paper() {
        // "... only about 56% or 19% time complexity of the transparent
        // word-oriented test converted by the scheme [12] or [13]".
        let comparison = headline(&march_c_minus(), 32);
        assert_eq!(comparison.proposed_total, 50);
        assert_eq!(comparison.scheme1_total, 90);
        assert_eq!(comparison.scheme2_total, 258);
        assert!((comparison.ratio_vs_scheme1 - 0.556).abs() < 0.01);
        assert!((comparison.ratio_vs_scheme2 - 0.194).abs() < 0.01);
    }

    #[test]
    fn proposed_exact_matches_formula_for_read_terminated_tests() {
        for width in [16usize, 32, 64, 128] {
            let exact = proposed_exact(&march_c_minus(), width).unwrap();
            let formula = proposed_formula(march_c_minus().length(), width);
            assert_eq!(exact.tcm, formula.tcm, "width {width}");
        }
    }

    #[test]
    fn proposed_exact_for_march_u_accounts_for_the_appended_read() {
        // March U ends with a write, so the exact TCM is one more than the
        // closed form (the appended read of Algorithm 1's step 2).
        let exact = proposed_exact(&march_u(), 8).unwrap();
        let formula = proposed_formula(march_u().length(), 8);
        assert_eq!(exact.tcm, 29);
        assert_eq!(formula.tcm, 28);
        assert_eq!(exact.tcm, formula.tcm + 1);
    }

    #[test]
    fn table3_rows_cover_all_requested_cells() {
        let tests = vec![march_c_minus(), march_u()];
        let widths = [16usize, 32, 64, 128];
        let rows = table3_rows(&tests, &widths).unwrap();
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert!(row.proposed.total() < row.scheme1.total());
            assert!(row.proposed.total() < row.scheme2.total());
            assert!(row.proposed_exact.tcm >= row.proposed.tcm);
        }
        // Spot-check the March U / 64-bit cell: TCM = 13 + 30 = 43,
        // TCP = 6 + 12 = 18.
        let cell = rows
            .iter()
            .find(|r| r.test_name == "March U" && r.width == 64)
            .unwrap();
        assert_eq!(cell.proposed.tcm, 43);
        assert_eq!(cell.proposed.tcp, 18);
        assert_eq!(cell.scheme1.tcm, 13 * 7);
        assert_eq!(cell.scheme2.tcm, 8 * 64 + 2);
    }

    #[test]
    fn proposed_advantage_grows_with_word_width() {
        let length = march_c_minus().length();
        let mut previous_ratio = f64::MAX;
        for width in [4usize, 8, 16, 32, 64, 128] {
            let ratio = proposed_formula(length, width).total() as f64
                / scheme1_formula(length, width).total() as f64;
            assert!(
                ratio < previous_ratio,
                "ratio did not shrink at width {width}"
            );
            previous_ratio = ratio;
        }
    }
}
