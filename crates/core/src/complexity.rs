//! Test-length accounting: the closed forms behind the paper's Tables 2
//! and 3 and the exact operation counts of the generated tests.
//!
//! Notation (an `N × W` memory, a bit-oriented march with `M` operations of
//! which `Q` are reads, `L = ⌈log₂W⌉`):
//!
//! | Scheme | TCM (test) | TCP (prediction) |
//! |---|---|---|
//! | Scheme 1 \[12\] | `M·(L+1)·N` | `Q·(L+1)·N` |
//! | Scheme 2 \[13\] (TOMT) | `(8·W+2)·N` | — |
//! | This work (TWM_TA) | `(M + 5·L)·N` | `(Q + 2·L)·N` |
//!
//! The closed forms are reconstructed from the paper's own worked numbers
//! (the formulas in the source text are partially garbled); the exact counts
//! of the generated tests are reported alongside so any divergence is
//! visible. All values returned here are *per word* — multiply by `N` for
//! the totals the paper quotes.
//!
//! The table builders ([`table3_rows`], [`headline`]) are data-driven: they
//! pull every scheme from a [`SchemeRegistry`] and ask it for its
//! closed-form and exact complexity through the
//! [`crate::scheme::TransparentScheme`] trait, so a newly registered scheme
//! shows up in the comparison without touching this module. The `*_formula`
//! free functions remain as the shared arithmetic the scheme
//! implementations delegate to.

use serde::{Deserialize, Serialize};

use twm_march::background::background_degree;
use twm_march::{MarchTest, TestLength};

use crate::scheme::{SchemeId, SchemeRegistry, TransparentScheme, TwmTa};
use crate::CoreError;

/// Per-word complexity of one scheme: test length (TCM) and signature
/// prediction length (TCP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemeComplexity {
    /// Operations per word of the transparent test (TCM / N).
    pub tcm: usize,
    /// Operations per word of the signature-prediction test (TCP / N).
    pub tcp: usize,
}

impl SchemeComplexity {
    /// Combined per-word test complexity (TCM + TCP, as the paper compares).
    #[must_use]
    pub fn total(&self) -> usize {
        self.tcm + self.tcp
    }
}

/// Closed-form complexity of the classical Nicolaidis transformation: the
/// initialization write is absorbed by the arbitrary initial content
/// (`TCM = M − 1` for tests with a one-operation initialization element and
/// read-led elements), and the prediction is the read-only projection
/// (`TCP = Q`).
#[must_use]
pub fn nicolaidis_formula(length: TestLength) -> SchemeComplexity {
    SchemeComplexity {
        tcm: length.operations.saturating_sub(1),
        tcp: length.reads,
    }
}

/// Closed-form complexity of Scheme 1 (reference \[12\]).
#[must_use]
pub fn scheme1_formula(length: TestLength, width: usize) -> SchemeComplexity {
    let passes = background_degree(width) + 1;
    SchemeComplexity {
        tcm: length.operations * passes,
        tcp: length.reads * passes,
    }
}

/// Closed-form complexity of Scheme 2 (TOMT, reference \[13\]).
#[must_use]
pub fn scheme2_formula(width: usize) -> SchemeComplexity {
    SchemeComplexity {
        tcm: crate::tomt::tcm_per_word(width),
        tcp: crate::tomt::tcp_per_word(width),
    }
}

/// Closed-form complexity of the proposed scheme (TWM_TA): `TCM = M + 5·L`,
/// `TCP = Q + 2·L`.
#[must_use]
pub fn proposed_formula(length: TestLength, width: usize) -> SchemeComplexity {
    let log2w = background_degree(width);
    SchemeComplexity {
        tcm: length.operations + 5 * log2w,
        tcp: length.reads + 2 * log2w,
    }
}

/// Exact per-word complexity of the proposed scheme, measured on the
/// generated TWMarch and its prediction test.
///
/// # Errors
///
/// Returns the errors of [`crate::scheme::TwmTa::transform`].
pub fn proposed_exact(bmarch: &MarchTest, width: usize) -> Result<SchemeComplexity, CoreError> {
    Ok(TwmTa::new(width)?.transform(bmarch)?.exact_complexity())
}

/// Exact per-word complexity of Scheme 1, measured on the generated
/// transparent multi-background test.
///
/// # Errors
///
/// Returns the errors of [`crate::scheme::Scheme1::transform`].
pub fn scheme1_exact(bmarch: &MarchTest, width: usize) -> Result<SchemeComplexity, CoreError> {
    Ok(crate::scheme::Scheme1::new(width)?
        .transform(bmarch)?
        .exact_complexity())
}

/// One scheme's cell in a comparison row: the closed-form model next to the
/// exact complexity measured on the generated tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemeCell {
    /// The scheme this cell belongs to.
    pub scheme: SchemeId,
    /// Closed-form per-word complexity (the paper's Table 2 model).
    pub closed_form: SchemeComplexity,
    /// Exact per-word complexity of the generated tests.
    pub exact: SchemeComplexity,
}

/// One row of the paper's Table 3: a march test at a given word width,
/// compared across every scheme of a registry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Name of the bit-oriented march test.
    pub test_name: String,
    /// Word width in bits.
    pub width: usize,
    /// One cell per registered scheme, in registry order.
    pub cells: Vec<SchemeCell>,
}

impl ComparisonRow {
    /// The cell of a particular scheme, if it is part of the comparison.
    #[must_use]
    pub fn cell(&self, id: SchemeId) -> Option<&SchemeCell> {
        self.cells.iter().find(|cell| cell.scheme == id)
    }
}

/// Builds one comparison row per (test, width) cell of the paper's Table 3,
/// using the [`SchemeRegistry::comparison`] registry (Scheme 1, TOMT,
/// TWM_TA) at each width.
///
/// # Errors
///
/// Returns transformation errors for inputs that are not valid bit-oriented
/// march tests, and [`CoreError::InvalidWidth`] for unsupported widths.
pub fn table3_rows(tests: &[MarchTest], widths: &[usize]) -> Result<Vec<ComparisonRow>, CoreError> {
    let registries = widths
        .iter()
        .map(|&width| SchemeRegistry::comparison(width))
        .collect::<Result<Vec<_>, CoreError>>()?;
    let mut rows = Vec::with_capacity(tests.len() * widths.len());
    for test in tests {
        for registry in &registries {
            rows.push(comparison_row(registry, test)?);
        }
    }
    Ok(rows)
}

/// Builds the comparison row of one source test across every scheme of a
/// registry.
///
/// # Errors
///
/// Returns the schemes' transformation errors.
pub fn comparison_row(
    registry: &SchemeRegistry,
    test: &MarchTest,
) -> Result<ComparisonRow, CoreError> {
    let cells = registry
        .iter()
        .map(|scheme| {
            Ok(SchemeCell {
                scheme: scheme.id(),
                closed_form: scheme.closed_form(test.length()),
                exact: scheme.transform(test)?.exact_complexity(),
            })
        })
        .collect::<Result<Vec<_>, CoreError>>()?;
    Ok(ComparisonRow {
        test_name: test.name().to_string(),
        width: registry.width(),
        cells,
    })
}

/// The headline comparison of the paper (Sections 1, 5 and 6): total
/// complexity of the proposed scheme relative to Schemes 1 and 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeadlineComparison {
    /// Word width in bits.
    pub width: usize,
    /// Total per-word complexity (TCM + TCP) of the proposed scheme.
    pub proposed_total: usize,
    /// Total per-word complexity of Scheme 1 \[12\].
    pub scheme1_total: usize,
    /// Total per-word complexity of Scheme 2 \[13\].
    pub scheme2_total: usize,
    /// `proposed_total / scheme1_total`.
    pub ratio_vs_scheme1: f64,
    /// `proposed_total / scheme2_total`.
    pub ratio_vs_scheme2: f64,
}

/// Computes the headline comparison for a bit-oriented march test from the
/// closed forms of a registry's [`SchemeId::Scheme1`], [`SchemeId::Tomt`]
/// and [`SchemeId::TwmTa`] entries.
///
/// # Errors
///
/// Returns [`CoreError::MissingScheme`] if the registry lacks one of the
/// three compared schemes.
pub fn headline(
    registry: &SchemeRegistry,
    bmarch: &MarchTest,
) -> Result<HeadlineComparison, CoreError> {
    let length = bmarch.length();
    let total = |id: SchemeId| -> Result<usize, CoreError> {
        Ok(registry
            .get(id)
            .ok_or(CoreError::MissingScheme { id })?
            .closed_form(length)
            .total())
    };
    let proposed = total(SchemeId::TwmTa)?;
    let scheme1 = total(SchemeId::Scheme1)?;
    let scheme2 = total(SchemeId::Tomt)?;
    Ok(HeadlineComparison {
        width: registry.width(),
        proposed_total: proposed,
        scheme1_total: scheme1,
        scheme2_total: scheme2,
        ratio_vs_scheme1: proposed as f64 / scheme1 as f64,
        ratio_vs_scheme2: proposed as f64 / scheme2 as f64,
    })
}

/// Convenience form of [`headline`]: builds the comparison registry for
/// `width` internally.
///
/// # Errors
///
/// Returns [`CoreError::InvalidWidth`] for unsupported widths.
pub fn headline_at(bmarch: &MarchTest, width: usize) -> Result<HeadlineComparison, CoreError> {
    headline(&SchemeRegistry::comparison(width)?, bmarch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use twm_march::algorithms::{march_c_minus, march_u};

    #[test]
    fn table2_closed_forms_for_march_c_minus_at_32_bits() {
        let length = march_c_minus().length();
        assert_eq!(length.operations, 10);
        assert_eq!(length.reads, 5);

        let s1 = scheme1_formula(length, 32);
        assert_eq!(s1.tcm, 60);
        assert_eq!(s1.tcp, 30);

        let s2 = scheme2_formula(32);
        assert_eq!(s2.tcm, 258);
        assert_eq!(s2.tcp, 0);

        let proposed = proposed_formula(length, 32);
        assert_eq!(proposed.tcm, 35);
        assert_eq!(proposed.tcp, 15);

        let nicolaidis = nicolaidis_formula(length);
        assert_eq!(nicolaidis.tcm, 9);
        assert_eq!(nicolaidis.tcp, 5);
    }

    #[test]
    fn headline_ratios_match_the_paper() {
        // "... only about 56% or 19% time complexity of the transparent
        // word-oriented test converted by the scheme [12] or [13]".
        let comparison = headline_at(&march_c_minus(), 32).unwrap();
        assert_eq!(comparison.proposed_total, 50);
        assert_eq!(comparison.scheme1_total, 90);
        assert_eq!(comparison.scheme2_total, 258);
        assert!((comparison.ratio_vs_scheme1 - 0.556).abs() < 0.01);
        assert!((comparison.ratio_vs_scheme2 - 0.194).abs() < 0.01);
    }

    #[test]
    fn headline_requires_the_compared_schemes() {
        let registry = SchemeRegistry::empty(32).unwrap();
        assert!(matches!(
            headline(&registry, &march_c_minus()),
            Err(CoreError::MissingScheme { .. })
        ));
    }

    #[test]
    fn proposed_exact_matches_formula_for_read_terminated_tests() {
        for width in [16usize, 32, 64, 128] {
            let exact = proposed_exact(&march_c_minus(), width).unwrap();
            let formula = proposed_formula(march_c_minus().length(), width);
            assert_eq!(exact.tcm, formula.tcm, "width {width}");
        }
    }

    #[test]
    fn proposed_exact_for_march_u_accounts_for_the_appended_read() {
        // March U ends with a write, so the exact TCM is one more than the
        // closed form (the appended read of Algorithm 1's step 2).
        let exact = proposed_exact(&march_u(), 8).unwrap();
        let formula = proposed_formula(march_u().length(), 8);
        assert_eq!(exact.tcm, 29);
        assert_eq!(formula.tcm, 28);
        assert_eq!(exact.tcm, formula.tcm + 1);
    }

    #[test]
    fn table3_rows_cover_all_requested_cells() {
        let tests = vec![march_c_minus(), march_u()];
        let widths = [16usize, 32, 64, 128];
        let rows = table3_rows(&tests, &widths).unwrap();
        assert_eq!(rows.len(), 8);
        for row in &rows {
            let proposed = row.cell(SchemeId::TwmTa).unwrap();
            let scheme1 = row.cell(SchemeId::Scheme1).unwrap();
            let scheme2 = row.cell(SchemeId::Tomt).unwrap();
            assert!(proposed.closed_form.total() < scheme1.closed_form.total());
            assert!(proposed.closed_form.total() < scheme2.closed_form.total());
            assert!(proposed.exact.tcm >= proposed.closed_form.tcm);
        }
        // Spot-check the March U / 64-bit cell: TCM = 13 + 30 = 43,
        // TCP = 6 + 12 = 18.
        let cell_row = rows
            .iter()
            .find(|r| r.test_name == "March U" && r.width == 64)
            .unwrap();
        let proposed = cell_row.cell(SchemeId::TwmTa).unwrap();
        assert_eq!(proposed.closed_form.tcm, 43);
        assert_eq!(proposed.closed_form.tcp, 18);
        assert_eq!(
            cell_row.cell(SchemeId::Scheme1).unwrap().closed_form.tcm,
            13 * 7
        );
        assert_eq!(
            cell_row.cell(SchemeId::Tomt).unwrap().closed_form.tcm,
            8 * 64 + 2
        );
    }

    #[test]
    fn comparison_rows_follow_registry_membership() {
        let registry = SchemeRegistry::all(16).unwrap();
        let row = comparison_row(&registry, &march_c_minus()).unwrap();
        assert_eq!(row.cells.len(), 4);
        assert_eq!(row.width, 16);
        assert!(row.cell(SchemeId::Nicolaidis).is_some());
        let registry = SchemeRegistry::comparison(16).unwrap();
        let row = comparison_row(&registry, &march_c_minus()).unwrap();
        assert!(row.cell(SchemeId::Nicolaidis).is_none());
    }

    #[test]
    fn proposed_advantage_grows_with_word_width() {
        let length = march_c_minus().length();
        let mut previous_ratio = f64::MAX;
        for width in [4usize, 8, 16, 32, 64, 128] {
            let ratio = proposed_formula(length, width).total() as f64
                / scheme1_formula(length, width).total() as f64;
            assert!(
                ratio < previous_ratio,
                "ratio did not shrink at width {width}"
            );
            previous_ratio = ratio;
        }
    }
}
