use std::error::Error;
use std::fmt;

use twm_march::MarchError;

/// Errors produced by the transparent-test transformations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// The input march test is not bit-oriented, but the transformation
    /// requires a bit-oriented march test.
    NotBitOriented {
        /// Name of the offending test.
        test: String,
    },
    /// The word width is not usable for a word-oriented transformation.
    InvalidWidth {
        /// The requested width.
        width: usize,
    },
    /// The march test reads a value inconsistent with the state left by its
    /// own preceding operations, so its expected values cannot be tracked.
    InconsistentMarch {
        /// Index of the offending element.
        element: usize,
        /// Index of the offending operation within the element.
        operation: usize,
        /// Description of the expected versus tracked data.
        detail: String,
    },
    /// An underlying march-framework error.
    March(MarchError),
    /// A [`crate::scheme::SchemeRegistry`] lookup asked for a scheme that is
    /// not registered.
    MissingScheme {
        /// The requested scheme identifier.
        id: crate::scheme::SchemeId,
    },
    /// A scheme was registered into a [`crate::scheme::SchemeRegistry`] built
    /// for a different word width.
    SchemeWidthMismatch {
        /// Word width of the registry.
        registry: usize,
        /// Word width of the offending scheme.
        scheme: usize,
    },
    /// A scheme with the same identifier is already registered.
    DuplicateScheme {
        /// The duplicated scheme identifier.
        id: crate::scheme::SchemeId,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NotBitOriented { test } => {
                write!(f, "march test '{test}' is not bit-oriented")
            }
            CoreError::InvalidWidth { width } => {
                write!(
                    f,
                    "word width {width} is not usable for a word-oriented transformation"
                )
            }
            CoreError::InconsistentMarch {
                element,
                operation,
                detail,
            } => write!(
                f,
                "march test is inconsistent at element {element}, operation {operation}: {detail}"
            ),
            CoreError::March(err) => write!(f, "march framework error: {err}"),
            CoreError::MissingScheme { id } => {
                write!(f, "scheme {id} is not registered in this registry")
            }
            CoreError::SchemeWidthMismatch { registry, scheme } => write!(
                f,
                "scheme targets {scheme}-bit words but the registry is built for {registry}-bit words"
            ),
            CoreError::DuplicateScheme { id } => {
                write!(f, "scheme {id} is already registered")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::March(err) => Some(err),
            _ => None,
        }
    }
}

impl From<MarchError> for CoreError {
    fn from(err: MarchError) -> Self {
        CoreError::March(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let err = CoreError::March(MarchError::EmptyTest);
        assert!(err.to_string().contains("march framework error"));
        assert!(err.source().is_some());

        let err = CoreError::NotBitOriented { test: "X".into() };
        assert!(err.to_string().contains("not bit-oriented"));
        assert!(err.source().is_none());
    }

    #[test]
    fn conversion_from_march_error() {
        let err: CoreError = MarchError::EmptyTest.into();
        assert_eq!(err, CoreError::March(MarchError::EmptyTest));
    }

    #[test]
    fn error_is_well_behaved() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<CoreError>();
    }
}
