//! # twm-core — transparent word-oriented march test transformation
//!
//! This crate implements the contribution of *"An Efficient Transparent Test
//! Scheme for Embedded Word-Oriented Memories"* (Li, Tseng, Wey — DATE 2005)
//! together with the baseline schemes it is compared against:
//!
//! * [`nicolaidis`] — the classical transformation of a march test into a
//!   *transparent* march test (Nicolaidis, ITC'92 / IEEE ToC'96): every
//!   datum becomes an XOR combination of the word's initial content, reads
//!   are inserted where needed, and the signature-prediction test is the
//!   read-only projection.
//! * [`scheme1`] — the word-oriented baseline of reference \[12\]: the
//!   transparent bit-oriented test repeated over the `⌈log₂W⌉ + 1` standard
//!   data backgrounds.
//! * [`tomt`] — a complexity/behavioural stand-in for TOMT (reference
//!   \[13\]), the second baseline of the paper's comparison tables.
//! * [`twm_ta`] — **the paper's Algorithm 1 (TWM_TA)**: solid-background
//!   SMarch, its transparent version TSMarch, the added ATMarch built from
//!   the `D_k` data backgrounds, the complete transparent word-oriented
//!   march test TWMarch, and its signature-prediction test.
//! * [`complexity`] — closed-form and exact test-length accounting used to
//!   regenerate the paper's Tables 2 and 3 and the 56 % / 19 % headline
//!   comparison.
//! * [`verify`] — structural checks (transparency, content restoration).
//!
//! ```
//! use twm_march::algorithms::march_u;
//! use twm_core::TwmTransformer;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's worked example: March U on a memory with 8-bit words has
//! // a transparent word-oriented test of 29 operations per word.
//! let transformed = TwmTransformer::new(8)?.transform(&march_u())?;
//! assert_eq!(transformed.transparent_test().operations_per_word(), 29);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod atmarch;
pub mod complexity;
mod error;
pub mod nicolaidis;
pub mod scheme1;
pub mod tomt;
pub mod twm_ta;
pub mod verify;

pub use error::CoreError;
pub use nicolaidis::{to_transparent, TransparentTransform};
pub use scheme1::{Scheme1Transform, Scheme1Transformer};
pub use twm_ta::{TwmTransformed, TwmTransformer};
