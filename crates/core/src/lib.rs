//! # twm-core — transparent word-oriented march test transformation
//!
//! This crate implements the contribution of *"An Efficient Transparent Test
//! Scheme for Embedded Word-Oriented Memories"* (Li, Tseng, Wey — DATE 2005)
//! together with the baseline schemes it is compared against, behind **one
//! transformation surface**: the [`scheme::TransparentScheme`] trait and the
//! [`scheme::SchemeRegistry`].
//!
//! * [`scheme`] — the trait, the common [`scheme::SchemeTransform`]
//!   artifact, the registry, and the four implementations:
//!   [`scheme::NicolaidisScheme`] (ITC'92 / ToC'96),
//!   [`scheme::Scheme1`] (reference \[12\]),
//!   [`scheme::TomtScheme`] (reference \[13\]) and
//!   [`scheme::TwmTa`] — **the paper's Algorithm 1**.
//! * [`nicolaidis`] — the classical transparent-transformation rules the
//!   schemes build on: every datum becomes an XOR combination of the word's
//!   initial content, reads are inserted where needed, and the
//!   signature-prediction test is the read-only projection.
//! * [`atmarch`] — the added transparent march test of Algorithm 1 (one
//!   element per standard data background `D_k`).
//! * [`scheme1`], [`tomt`], [`twm_ta`] — the per-scheme construction
//!   internals behind the registry entries.
//! * [`complexity`] — closed-form and exact test-length accounting used to
//!   regenerate the paper's Tables 2 and 3 and the 56 % / 19 % headline
//!   comparison, driven by registry entries.
//! * [`verify`] — structural checks (transparency, content restoration).
//!
//! ```
//! use twm_core::scheme::{SchemeId, SchemeRegistry};
//! use twm_march::algorithms::march_u;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's worked example: March U on a memory with 8-bit words has
//! // a transparent word-oriented test of 29 operations per word.
//! let registry = SchemeRegistry::all(8)?;
//! let transformed = registry.transform(SchemeId::TwmTa, &march_u())?;
//! assert_eq!(transformed.transparent_test().operations_per_word(), 29);
//!
//! // Every registered scheme is driven through the same surface.
//! for scheme in registry.iter() {
//!     assert!(scheme.transform(&march_u())?.transparent_test().is_transparent());
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod atmarch;
pub mod complexity;
mod error;
pub mod nicolaidis;
pub mod scheme;
pub mod scheme1;
pub mod tomt;
pub mod twm_ta;
pub mod verify;

/// Shared transform-entry guard: every scheme consumes bit-oriented
/// march tests only.
pub(crate) fn require_bit_oriented(bmarch: &twm_march::MarchTest) -> Result<(), CoreError> {
    if bmarch.is_bit_oriented() {
        Ok(())
    } else {
        Err(CoreError::NotBitOriented {
            test: bmarch.name().to_string(),
        })
    }
}

pub use complexity::SchemeComplexity;
pub use error::CoreError;
pub use nicolaidis::{to_transparent, TransparentTransform};
pub use scheme::{
    NicolaidisScheme, Restoration, Scheme1, SchemeId, SchemeRegistry, SchemeStage, SchemeTransform,
    TomtScheme, TransparentScheme, TwmTa,
};
