//! The classical transparent-march transformation (Nicolaidis).
//!
//! The rules (Section 3 of the paper, originally from Nicolaidis ITC'92 and
//! IEEE Trans. Computers 1996) convert an ordinary march test into a
//! *transparent* one that preserves the memory's initial content:
//!
//! 1. If the first operation of a march element is a write, insert a read at
//!    the beginning of the element. If the test starts with a pure
//!    initialization element (writes only), remove it — the arbitrary
//!    initial content plays the role of the initialization data.
//! 2. Replace every datum `a` by `a ⊕ c`, where `c` is the word's initial
//!    content: `w0 → w c`, `w1 → w c̄`, `r0 → r c`, `r1 → r c̄` (and, for
//!    word-oriented tests, background data `b → c ⊕ b`).
//! 3. If the transformed test would leave the memory holding the complement
//!    (more generally: a non-identity XOR) of its initial content, append a
//!    read-then-write-back element that restores it.
//! 4. The *signature prediction* test is obtained by deleting every write
//!    operation.
//!
//! The implementation works for bit-oriented tests and for word-oriented
//! tests whose data are the standard backgrounds, which is what Scheme 1
//! (reference \[12\]) needs.

use twm_march::{DataPattern, DataSpec, MarchElement, MarchTest, Operation};

use crate::CoreError;

/// Options controlling [`to_transparent_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransparentOptions {
    /// Whether to append a restore element when the test would otherwise
    /// leave the memory holding a non-identity XOR of its initial content
    /// (rule 3). The paper's TWM_TA disables this and lets its ATMarch
    /// closing element perform the restoration instead.
    pub restore_content: bool,
}

impl Default for TransparentOptions {
    fn default() -> Self {
        Self {
            restore_content: true,
        }
    }
}

/// Result of the transparent transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransparentTransform {
    transparent: MarchTest,
    prediction: MarchTest,
    removed_initialization: bool,
    prepended_reads: usize,
    appended_restore: bool,
    final_state: DataPattern,
}

impl TransparentTransform {
    /// The transparent march test.
    #[must_use]
    pub fn transparent_test(&self) -> &MarchTest {
        &self.transparent
    }

    /// The signature-prediction test (read-only projection, rule 4).
    #[must_use]
    pub fn signature_prediction(&self) -> &MarchTest {
        &self.prediction
    }

    /// Whether a leading initialization element was removed (rule 1).
    #[must_use]
    pub fn removed_initialization(&self) -> bool {
        self.removed_initialization
    }

    /// Number of reads inserted at the head of elements that started with a
    /// write (rule 1).
    #[must_use]
    pub fn prepended_reads(&self) -> usize {
        self.prepended_reads
    }

    /// Whether a restore element was appended (rule 3).
    #[must_use]
    pub fn appended_restore(&self) -> bool {
        self.appended_restore
    }

    /// The XOR offset of the memory content relative to its initial content
    /// after the transparent test completes. [`DataPattern::Zeros`] means the
    /// content is fully restored.
    #[must_use]
    pub fn final_state(&self) -> DataPattern {
        self.final_state
    }
}

/// Tracked per-element state of a march test in its own data domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateTrack {
    /// The data value (pattern) each cell/word holds when each element
    /// starts, as established by the preceding operations. `None` means the
    /// value is not yet defined (no prior read or write).
    pub before_elements: Vec<Option<DataPattern>>,
    /// The value held after the last operation of the test.
    pub final_state: Option<DataPattern>,
    /// The value established by the test's own initialization (the first
    /// write or, if the test starts with a read, that read's expected data).
    pub initial_state: Option<DataPattern>,
    /// Whether the last operation of the test is a write.
    pub ends_with_write: bool,
}

/// Tracks the value every cell/word holds between operations of a
/// (non-transparent) march test, verifying that every read expects the value
/// actually left by the preceding operations.
///
/// # Errors
///
/// Returns [`CoreError::InconsistentMarch`] if a read's expected data does
/// not match the tracked value, or [`CoreError::NotBitOriented`] if the test
/// contains transparent data specifications.
pub fn track_states(march: &MarchTest) -> Result<StateTrack, CoreError> {
    let mut state: Option<DataPattern> = None;
    let mut initial_state: Option<DataPattern> = None;
    let mut before_elements = Vec::with_capacity(march.element_count());
    let mut ends_with_write = false;

    for (element_index, element) in march.elements().iter().enumerate() {
        before_elements.push(state);
        for (op_index, op) in element.ops.iter().enumerate() {
            let pattern = match op.data {
                DataSpec::Literal(p) => p,
                DataSpec::TransparentXor(_) => {
                    return Err(CoreError::NotBitOriented {
                        test: march.name().to_string(),
                    })
                }
            };
            match op.kind {
                twm_march::OpKind::Read => {
                    match state {
                        None => state = Some(pattern),
                        Some(current) if current == pattern => {}
                        Some(current) => {
                            return Err(CoreError::InconsistentMarch {
                                element: element_index,
                                operation: op_index,
                                detail: format!(
                                    "read expects {pattern} but the tracked value is {current}"
                                ),
                            })
                        }
                    }
                    ends_with_write = false;
                }
                twm_march::OpKind::Write => {
                    state = Some(pattern);
                    ends_with_write = true;
                }
            }
            if initial_state.is_none() {
                initial_state = Some(pattern);
            }
        }
    }

    Ok(StateTrack {
        before_elements,
        final_state: state,
        initial_state,
        ends_with_write,
    })
}

/// Applies the transparent transformation with default options (content is
/// always restored, rule 3 enabled).
///
/// # Errors
///
/// See [`to_transparent_with`].
pub fn to_transparent(march: &MarchTest) -> Result<TransparentTransform, CoreError> {
    to_transparent_with(march, TransparentOptions::default())
}

/// Applies the transparent transformation with explicit options.
///
/// # Errors
///
/// * [`CoreError::NotBitOriented`] if the input already contains transparent
///   data.
/// * [`CoreError::InconsistentMarch`] if the input's reads do not match the
///   values its own writes establish, or if its initialization value is not
///   expressible relative to the all-zero background (the transformation
///   supports tests initialised to the all-0 or all-1 background).
/// * [`CoreError::March`] for structural errors (an input with no read
///   operations cannot produce a prediction test).
pub fn to_transparent_with(
    march: &MarchTest,
    options: TransparentOptions,
) -> Result<TransparentTransform, CoreError> {
    let track = track_states(march)?;

    // Re-base data so that the initialization value corresponds to the
    // untouched initial content `c`. Tests initialised to all-1 are handled
    // by complementing every pattern.
    let rebase = match track.initial_state {
        None | Some(DataPattern::Zeros) => Rebase::Identity,
        Some(DataPattern::Ones) => Rebase::Complement,
        Some(other) => {
            return Err(CoreError::InconsistentMarch {
                element: 0,
                operation: 0,
                detail: format!(
                    "initialization value {other} is not supported; initialise with all-0 or all-1"
                ),
            })
        }
    };

    let elements = march.elements();
    let drop_first = elements
        .first()
        .map(MarchElement::is_write_only)
        .unwrap_or(false);

    let mut transparent_elements = Vec::new();
    let mut prepended_reads = 0usize;

    for (index, element) in elements.iter().enumerate() {
        if index == 0 && drop_first {
            continue;
        }
        let mut ops = Vec::with_capacity(element.len() + 1);
        if element.first_op().map(|op| op.is_write()).unwrap_or(false) {
            let state = track.before_elements[index].unwrap_or(DataPattern::Zeros);
            ops.push(Operation::read(DataSpec::TransparentXor(
                rebase.apply(state)?,
            )));
            prepended_reads += 1;
        }
        for op in &element.ops {
            let pattern = match op.data {
                DataSpec::Literal(p) => p,
                DataSpec::TransparentXor(_) => unreachable!("checked by track_states"),
            };
            let spec = DataSpec::TransparentXor(rebase.apply(pattern)?);
            ops.push(Operation {
                kind: op.kind,
                data: spec,
            });
        }
        transparent_elements.push(MarchElement::new(element.order, ops));
    }

    // Rule 3: restore the content if the test leaves it XOR-shifted.
    let final_state = rebase.apply(track.final_state.unwrap_or(DataPattern::Zeros))?;
    let mut appended_restore = false;
    if options.restore_content && final_state != DataPattern::Zeros {
        transparent_elements.push(MarchElement::any_order(vec![
            Operation::read(DataSpec::TransparentXor(final_state)),
            Operation::write(DataSpec::TransparentXor(DataPattern::Zeros)),
        ]));
        appended_restore = true;
    }

    let transparent_name = format!("Transparent {}", march.name());
    let transparent = MarchTest::new(transparent_name.clone(), transparent_elements)?;
    let prediction = transparent.reads_only(&format!("{transparent_name} (prediction)"))?;

    Ok(TransparentTransform {
        transparent,
        prediction,
        removed_initialization: drop_first,
        prepended_reads,
        appended_restore,
        final_state: if appended_restore {
            DataPattern::Zeros
        } else {
            final_state
        },
    })
}

#[derive(Debug, Clone, Copy)]
enum Rebase {
    Identity,
    Complement,
}

impl Rebase {
    fn apply(self, pattern: DataPattern) -> Result<DataPattern, CoreError> {
        match self {
            Rebase::Identity => Ok(pattern),
            Rebase::Complement => pattern.complemented().ok_or(CoreError::InconsistentMarch {
                element: 0,
                operation: 0,
                detail: format!("pattern {pattern} has no closed-form complement"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twm_march::algorithms::{march_c_minus, march_u, mats_plus};
    use twm_march::{MarchElement as El, Operation as Op};

    #[test]
    fn march_c_minus_matches_paper_tmarch() {
        // Section 3 of the paper: TMarch C- =
        // ⇑(rc,w~c); ⇑(r~c,wc); ⇓(rc,w~c); ⇓(r~c,wc); ⇕(rc).
        let result = to_transparent(&march_c_minus()).unwrap();
        assert_eq!(
            result.transparent_test().to_string(),
            "⇑(rc,w~c); ⇑(r~c,wc); ⇓(rc,w~c); ⇓(r~c,wc); ⇕(rc)"
        );
        assert!(result.removed_initialization());
        assert_eq!(result.prepended_reads(), 0);
        assert!(!result.appended_restore());
        assert_eq!(result.transparent_test().length().operations, 9);
        assert_eq!(result.transparent_test().length().reads, 5);
        // Signature prediction = reads only.
        assert_eq!(
            result.signature_prediction().to_string(),
            "⇑(rc); ⇑(r~c); ⇓(rc); ⇓(r~c); ⇕(rc)"
        );
    }

    #[test]
    fn transformation_is_transparent_for_all_library_tests() {
        for march in twm_march::algorithms::all() {
            let result = to_transparent(&march).unwrap();
            assert!(
                result.transparent_test().is_transparent(),
                "{}",
                march.name()
            );
            assert_eq!(result.final_state(), DataPattern::Zeros, "{}", march.name());
        }
    }

    #[test]
    fn restore_is_added_when_content_ends_inverted() {
        // ⇕(w0); ⇑(r0,w1) leaves every cell at 1, i.e. the complement of its
        // transparent initial content.
        let march = MarchTest::new(
            "invert",
            vec![
                El::any_order(vec![Op::w0()]),
                El::ascending(vec![Op::r0(), Op::w1()]),
            ],
        )
        .unwrap();
        let restored = to_transparent(&march).unwrap();
        assert!(restored.appended_restore());
        assert_eq!(restored.final_state(), DataPattern::Zeros);
        assert_eq!(
            restored.transparent_test().to_string(),
            "⇑(rc,w~c); ⇕(r~c,wc)"
        );

        let unrestored = to_transparent_with(
            &march,
            TransparentOptions {
                restore_content: false,
            },
        )
        .unwrap();
        assert!(!unrestored.appended_restore());
        assert_eq!(unrestored.final_state(), DataPattern::Ones);
        assert_eq!(unrestored.transparent_test().to_string(), "⇑(rc,w~c)");
    }

    #[test]
    fn write_leading_elements_get_a_read_prepended() {
        // The second element starts with a write: a read of the tracked value
        // must be inserted in front of it.
        let march = MarchTest::new(
            "w-lead",
            vec![
                El::any_order(vec![Op::w0()]),
                El::ascending(vec![Op::r0(), Op::w1()]),
                El::descending(vec![Op::w0()]),
                El::any_order(vec![Op::r0()]),
            ],
        )
        .unwrap();
        let result = to_transparent(&march).unwrap();
        assert_eq!(result.prepended_reads(), 1);
        assert_eq!(
            result.transparent_test().to_string(),
            "⇑(rc,w~c); ⇓(r~c,wc); ⇕(rc)"
        );
    }

    #[test]
    fn all_one_initialization_is_rebased() {
        // A test initialised with w1 is handled by complementing patterns so
        // that the first read still expects the untouched content.
        let march = MarchTest::new(
            "init1",
            vec![
                El::any_order(vec![Op::w1()]),
                El::ascending(vec![Op::r1(), Op::w0()]),
                El::descending(vec![Op::r0(), Op::w1()]),
                El::any_order(vec![Op::r1()]),
            ],
        )
        .unwrap();
        let result = to_transparent(&march).unwrap();
        assert_eq!(
            result.transparent_test().to_string(),
            "⇑(rc,w~c); ⇓(r~c,wc); ⇕(rc)"
        );
    }

    #[test]
    fn inconsistent_march_is_rejected() {
        let march = MarchTest::new(
            "bad",
            vec![
                El::any_order(vec![Op::w0()]),
                El::ascending(vec![Op::r1(), Op::w0()]),
            ],
        )
        .unwrap();
        assert!(matches!(
            to_transparent(&march),
            Err(CoreError::InconsistentMarch { .. })
        ));
    }

    #[test]
    fn transparent_input_is_rejected() {
        let march =
            MarchTest::new("already", vec![El::ascending(vec![Op::read_content()])]).unwrap();
        assert!(matches!(
            to_transparent(&march),
            Err(CoreError::NotBitOriented { .. })
        ));
    }

    #[test]
    fn state_tracking_reports_shape() {
        let track = track_states(&march_u()).unwrap();
        assert_eq!(track.initial_state, Some(DataPattern::Zeros));
        assert_eq!(track.final_state, Some(DataPattern::Zeros));
        assert!(track.ends_with_write);

        let track = track_states(&mats_plus()).unwrap();
        assert!(track.ends_with_write);
        assert_eq!(track.before_elements.len(), 3);
        assert_eq!(track.before_elements[1], Some(DataPattern::Zeros));
        assert_eq!(track.before_elements[2], Some(DataPattern::Ones));
    }
}
