//! One transformation surface for every transparent test scheme.
//!
//! The DATE 2005 paper compares four ways of obtaining a transparent test
//! for a word-oriented memory: the classical Nicolaidis transformation
//! (ITC'92 / ToC'96), the multi-background *Scheme 1* of reference \[12\],
//! the *TOMT* walk of reference \[13\] and the paper's own TWM_TA. This
//! module gives all of them one API:
//!
//! * [`TransparentScheme`] — the trait every scheme implements: one
//!   `transform(&MarchTest)` entry point returning a common
//!   [`SchemeTransform`] artifact, plus the closed-form complexity model
//!   behind the paper's Table 2.
//! * [`SchemeTransform`] — the common artifact: the transparent
//!   word-oriented test, the signature-prediction test (when the scheme has
//!   one), named intermediate stages (SMarch/TSMarch/ATMarch, the
//!   word-oriented expansion), the background structure, restoration
//!   metadata and exact + closed-form complexity.
//! * [`SchemeRegistry`] — [`SchemeId`] → boxed scheme, with the
//!   [`SchemeRegistry::all`] / [`SchemeRegistry::comparison`] constructors,
//!   so cross-scheme workloads (the paper's tables, coverage grids, test
//!   generation searches) enumerate schemes data-driven instead of
//!   hand-wiring four incompatible concrete types.
//!
//! ```
//! use twm_core::scheme::{SchemeId, SchemeRegistry};
//! use twm_march::algorithms::march_c_minus;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let registry = SchemeRegistry::all(32)?;
//! for scheme in registry.iter() {
//!     let t = scheme.transform(&march_c_minus())?;
//!     assert!(t.transparent_test().is_transparent());
//! }
//! // The paper's worked number: TWM_TA needs 35 ops/word for March C-, W=32.
//! let twm = registry.get(SchemeId::TwmTa).unwrap();
//! let t = twm.transform(&march_c_minus())?;
//! assert_eq!(t.exact_complexity().tcm, 35);
//! # Ok(())
//! # }
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

use twm_march::{MarchTest, TestLength};

use crate::complexity::{
    nicolaidis_formula, proposed_formula, scheme1_formula, scheme2_formula, SchemeComplexity,
};
use crate::{require_bit_oriented, scheme1, tomt, twm_ta, CoreError};

/// Identifier of a transformation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SchemeId {
    /// The classical Nicolaidis transparent transformation (ITC'92 / ToC'96)
    /// applied to the bit-oriented test on solid backgrounds.
    Nicolaidis,
    /// Scheme 1 of the paper (reference \[12\]): the test repeated over the
    /// `⌈log₂W⌉ + 1` standard data backgrounds, then made transparent.
    Scheme1,
    /// Scheme 2 of the paper (reference \[13\]): the TOMT-like bit walk with
    /// concurrent (code-based) checking instead of a signature.
    Tomt,
    /// The paper's Algorithm 1 (TWM_TA): TSMarch + ATMarch.
    TwmTa,
}

impl SchemeId {
    /// Every identifier, in registry order.
    #[must_use]
    pub fn all() -> [SchemeId; 4] {
        [
            SchemeId::Nicolaidis,
            SchemeId::Scheme1,
            SchemeId::Tomt,
            SchemeId::TwmTa,
        ]
    }

    /// The identifiers of the paper's Tables 2/3 comparison, in table order.
    #[must_use]
    pub fn comparison() -> [SchemeId; 3] {
        [SchemeId::Scheme1, SchemeId::Tomt, SchemeId::TwmTa]
    }
}

impl fmt::Display for SchemeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SchemeId::Nicolaidis => "Nicolaidis",
            SchemeId::Scheme1 => "Scheme 1",
            SchemeId::Tomt => "TOMT",
            SchemeId::TwmTa => "TWM_TA",
        };
        f.write_str(name)
    }
}

/// Human-readable closed forms of a scheme's complexity (the paper's
/// Table 2 rendering; `N` words, `M` operations, `Q` reads,
/// `L = ⌈log₂W⌉`).
///
/// Serialize-only: the formulas are `&'static str` compile-time constants,
/// which can be written to a wire but not reconstructed from one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SchemeFormulas {
    /// Closed form of the transparent test length (TCM).
    pub tcm: &'static str,
    /// Closed form of the signature-prediction length (TCP); `"-"` for
    /// schemes without a prediction phase.
    pub tcp: &'static str,
}

/// How a scheme's transparent test restores the memory content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Restoration {
    /// Whether operations were appended purely to restore the content (the
    /// Nicolaidis rule-3 restore element, or the write of ATMarch's
    /// inverted-branch closing element).
    pub appended_restore: bool,
    /// Whether the content was the complement of the initial content before
    /// the final restore/closing element executed.
    pub content_inverted: bool,
}

/// A named intermediate artifact of a transformation (for example TWM_TA's
/// SMarch/TSMarch/ATMarch stages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeStage {
    /// Stage name — see the `STAGE_*` constants on [`SchemeTransform`].
    pub name: &'static str,
    /// The stage's march test.
    pub test: MarchTest,
}

/// The common artifact every [`TransparentScheme`] produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeTransform {
    scheme: SchemeId,
    width: usize,
    source_name: String,
    transparent: MarchTest,
    prediction: Option<MarchTest>,
    stages: Vec<SchemeStage>,
    backgrounds: usize,
    restoration: Restoration,
    closed_form: SchemeComplexity,
}

impl SchemeTransform {
    /// Stage name of TWM_TA's solid-background SMarch.
    pub const STAGE_SMARCH: &'static str = "SMarch";
    /// Stage name of TWM_TA's transparent solid-background TSMarch.
    pub const STAGE_TSMARCH: &'static str = "TSMarch";
    /// Stage name of TWM_TA's added transparent ATMarch.
    pub const STAGE_ATMARCH: &'static str = "ATMarch";
    /// Stage name of Scheme 1's non-transparent multi-background expansion.
    pub const STAGE_WORD_ORIENTED: &'static str = "word-oriented";

    /// The scheme that produced this transform.
    #[must_use]
    pub fn scheme(&self) -> SchemeId {
        self.scheme
    }

    /// The word width the transformation targets.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Name of the source bit-oriented march test.
    #[must_use]
    pub fn source_name(&self) -> &str {
        &self.source_name
    }

    /// The transparent word-oriented march test.
    #[must_use]
    pub fn transparent_test(&self) -> &MarchTest {
        &self.transparent
    }

    /// The signature-prediction test — the read-only projection of the
    /// transparent test. `None` for schemes with concurrent (code-based)
    /// checking, such as TOMT.
    #[must_use]
    pub fn signature_prediction(&self) -> Option<&MarchTest> {
        self.prediction.as_ref()
    }

    /// The named intermediate stages of the transformation, in construction
    /// order (empty for single-step schemes).
    #[must_use]
    pub fn stages(&self) -> &[SchemeStage] {
        &self.stages
    }

    /// Looks up an intermediate stage by name (see the `STAGE_*` constants).
    #[must_use]
    pub fn stage(&self, name: &str) -> Option<&MarchTest> {
        self.stages
            .iter()
            .find(|stage| stage.name == name)
            .map(|stage| &stage.test)
    }

    /// Number of distinct data backgrounds the transparent test exercises
    /// (Scheme 1: `⌈log₂W⌉ + 1` whole passes; TWM_TA: the solid background
    /// plus `⌈log₂W⌉` ATMarch backgrounds; TOMT: one walking mask per bit).
    #[must_use]
    pub fn backgrounds(&self) -> usize {
        self.backgrounds
    }

    /// How the transparent test restores the memory content.
    #[must_use]
    pub fn restoration(&self) -> Restoration {
        self.restoration
    }

    /// The scheme's closed-form per-word complexity for the source test
    /// (the paper's Table 2 model).
    #[must_use]
    pub fn closed_form(&self) -> SchemeComplexity {
        self.closed_form
    }

    /// Exact per-word complexity measured on the generated tests: TCM from
    /// the transparent test, TCP from the prediction test (0 when absent).
    #[must_use]
    pub fn exact_complexity(&self) -> SchemeComplexity {
        SchemeComplexity {
            tcm: self.transparent.operations_per_word(),
            tcp: self
                .prediction
                .as_ref()
                .map_or(0, MarchTest::operations_per_word),
        }
    }

    /// Total operations of a complete session (transparent test plus
    /// prediction phase) over a memory with `words` addresses.
    #[must_use]
    pub fn total_operations(&self, words: usize) -> usize {
        self.exact_complexity().total() * words
    }
}

/// A transparent-test transformation scheme for a fixed word width.
///
/// Implementations are registered in a [`SchemeRegistry`] and consumed
/// generically: `twm-coverage` builds engines and comparison grids from
/// `&dyn TransparentScheme`, `twm-bist` runs any [`SchemeTransform`]
/// session, and the conformance suite checks every registered scheme
/// against the paper-level invariants (transparency, content restoration,
/// read-only prediction projection).
pub trait TransparentScheme: fmt::Debug + Send + Sync {
    /// The scheme's identifier.
    fn id(&self) -> SchemeId;

    /// Human-readable scheme name.
    fn name(&self) -> &'static str;

    /// The word width this scheme instance targets.
    fn width(&self) -> usize;

    /// Closed-form per-word complexity for a source test of the given
    /// length (the paper's Table 2 model).
    fn closed_form(&self, length: TestLength) -> SchemeComplexity;

    /// The Table 2 closed forms as display strings.
    fn formulas(&self) -> SchemeFormulas;

    /// Transforms a bit-oriented march test into this scheme's transparent
    /// word-oriented artifact.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NotBitOriented`] if the input is not bit-oriented.
    /// * [`CoreError::InconsistentMarch`] if the input's reads are
    ///   inconsistent with its own writes.
    /// * [`CoreError::March`] for structural errors.
    fn transform(&self, bmarch: &MarchTest) -> Result<SchemeTransform, CoreError>;
}

/// The classical Nicolaidis transparent transformation as a scheme: the
/// bit-oriented test's solid data survive at any word width, so the
/// transform is the rule set of [`crate::nicolaidis`] applied directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NicolaidisScheme {
    width: usize,
}

impl NicolaidisScheme {
    /// Creates the scheme for `width`-bit words (any supported width,
    /// including 1 for bit-oriented memories).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidWidth`] for zero or oversized widths.
    pub fn new(width: usize) -> Result<Self, CoreError> {
        if !(1..=twm_mem::MAX_WORD_WIDTH).contains(&width) {
            return Err(CoreError::InvalidWidth { width });
        }
        Ok(Self { width })
    }
}

impl TransparentScheme for NicolaidisScheme {
    fn id(&self) -> SchemeId {
        SchemeId::Nicolaidis
    }

    fn name(&self) -> &'static str {
        "Nicolaidis transparent"
    }

    fn width(&self) -> usize {
        self.width
    }

    fn closed_form(&self, length: TestLength) -> SchemeComplexity {
        nicolaidis_formula(length)
    }

    fn formulas(&self) -> SchemeFormulas {
        SchemeFormulas {
            tcm: "(M-1)*N",
            tcp: "Q*N",
        }
    }

    fn transform(&self, bmarch: &MarchTest) -> Result<SchemeTransform, CoreError> {
        require_bit_oriented(bmarch)?;
        let transform = crate::nicolaidis::to_transparent(bmarch)?;
        Ok(SchemeTransform {
            scheme: SchemeId::Nicolaidis,
            width: self.width,
            source_name: bmarch.name().to_string(),
            transparent: transform.transparent_test().clone(),
            prediction: Some(transform.signature_prediction().clone()),
            stages: Vec::new(),
            backgrounds: 1,
            restoration: Restoration {
                appended_restore: transform.appended_restore(),
                content_inverted: transform.appended_restore(),
            },
            closed_form: nicolaidis_formula(bmarch.length()),
        })
    }
}

/// Scheme 1 (reference \[12\]) as a [`TransparentScheme`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheme1 {
    width: usize,
}

impl Scheme1 {
    /// Creates the scheme for `width`-bit words.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidWidth`] for widths below 2 or above the
    /// supported maximum.
    pub fn new(width: usize) -> Result<Self, CoreError> {
        scheme1::check_width(width)?;
        Ok(Self { width })
    }
}

impl TransparentScheme for Scheme1 {
    fn id(&self) -> SchemeId {
        SchemeId::Scheme1
    }

    fn name(&self) -> &'static str {
        "Scheme 1 (multi-background Nicolaidis)"
    }

    fn width(&self) -> usize {
        self.width
    }

    fn closed_form(&self, length: TestLength) -> SchemeComplexity {
        scheme1_formula(length, self.width)
    }

    fn formulas(&self) -> SchemeFormulas {
        SchemeFormulas {
            tcm: "M*(L+1)*N",
            tcp: "Q*(L+1)*N",
        }
    }

    fn transform(&self, bmarch: &MarchTest) -> Result<SchemeTransform, CoreError> {
        let parts = scheme1::transform_parts(self.width, bmarch)?;
        Ok(SchemeTransform {
            scheme: SchemeId::Scheme1,
            width: self.width,
            source_name: bmarch.name().to_string(),
            transparent: parts.transparent,
            prediction: Some(parts.prediction),
            stages: vec![SchemeStage {
                name: SchemeTransform::STAGE_WORD_ORIENTED,
                test: parts.word_test,
            }],
            backgrounds: parts.passes,
            restoration: Restoration {
                appended_restore: parts.appended_restore,
                content_inverted: false,
            },
            closed_form: scheme1_formula(bmarch.length(), self.width),
        })
    }
}

/// Scheme 2 — the TOMT-like walk (reference \[13\]) as a
/// [`TransparentScheme`]. The walk is independent of the source march test
/// (TOMT always exercises every bit of every word); the source only names
/// the comparison the transform belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TomtScheme {
    width: usize,
}

impl TomtScheme {
    /// Creates the scheme for `width`-bit words.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidWidth`] for widths below 2 or above the
    /// supported maximum.
    pub fn new(width: usize) -> Result<Self, CoreError> {
        scheme1::check_width(width)?;
        Ok(Self { width })
    }
}

impl TransparentScheme for TomtScheme {
    fn id(&self) -> SchemeId {
        SchemeId::Tomt
    }

    fn name(&self) -> &'static str {
        "Scheme 2 (TOMT-like walk)"
    }

    fn width(&self) -> usize {
        self.width
    }

    fn closed_form(&self, _length: TestLength) -> SchemeComplexity {
        scheme2_formula(self.width)
    }

    fn formulas(&self) -> SchemeFormulas {
        SchemeFormulas {
            tcm: "(8W+2)*N",
            tcp: "-",
        }
    }

    fn transform(&self, bmarch: &MarchTest) -> Result<SchemeTransform, CoreError> {
        require_bit_oriented(bmarch)?;
        let walk = tomt::walk_test(self.width)?;
        Ok(SchemeTransform {
            scheme: SchemeId::Tomt,
            width: self.width,
            source_name: bmarch.name().to_string(),
            transparent: walk,
            // TOMT relies on concurrent code checking, not on a signature:
            // there is no prediction phase.
            prediction: None,
            stages: Vec::new(),
            backgrounds: self.width,
            restoration: Restoration {
                appended_restore: false,
                content_inverted: false,
            },
            closed_form: scheme2_formula(self.width),
        })
    }
}

/// The paper's Algorithm 1 (TWM_TA) as a [`TransparentScheme`]. The
/// SMarch/TSMarch/ATMarch intermediates are published as transform stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwmTa {
    width: usize,
}

impl TwmTa {
    /// Creates the scheme for `width`-bit words.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidWidth`] for widths below 2 or above the
    /// supported maximum.
    pub fn new(width: usize) -> Result<Self, CoreError> {
        scheme1::check_width(width)?;
        Ok(Self { width })
    }
}

impl TransparentScheme for TwmTa {
    fn id(&self) -> SchemeId {
        SchemeId::TwmTa
    }

    fn name(&self) -> &'static str {
        "TWM_TA (this work)"
    }

    fn width(&self) -> usize {
        self.width
    }

    fn closed_form(&self, length: TestLength) -> SchemeComplexity {
        proposed_formula(length, self.width)
    }

    fn formulas(&self) -> SchemeFormulas {
        SchemeFormulas {
            tcm: "(M+5L)*N",
            tcp: "(Q+2L)*N",
        }
    }

    fn transform(&self, bmarch: &MarchTest) -> Result<SchemeTransform, CoreError> {
        let parts = twm_ta::transform_parts(self.width, bmarch)?;
        Ok(SchemeTransform {
            scheme: SchemeId::TwmTa,
            width: self.width,
            source_name: bmarch.name().to_string(),
            transparent: parts.twmarch,
            prediction: Some(parts.prediction),
            stages: vec![
                SchemeStage {
                    name: SchemeTransform::STAGE_SMARCH,
                    test: parts.smarch,
                },
                SchemeStage {
                    name: SchemeTransform::STAGE_TSMARCH,
                    test: parts.tsmarch,
                },
                SchemeStage {
                    name: SchemeTransform::STAGE_ATMARCH,
                    test: parts.atmarch,
                },
            ],
            backgrounds: twm_march::background::standard_background_count(self.width),
            restoration: Restoration {
                appended_restore: parts.content_inverted,
                content_inverted: parts.content_inverted,
            },
            closed_form: proposed_formula(bmarch.length(), self.width),
        })
    }
}

/// A set of [`TransparentScheme`]s for one word width, addressable by
/// [`SchemeId`] and iterable in registration order.
#[derive(Debug)]
pub struct SchemeRegistry {
    width: usize,
    schemes: Vec<Box<dyn TransparentScheme>>,
}

impl SchemeRegistry {
    /// Creates an empty registry for `width`-bit words.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidWidth`] for zero or oversized widths.
    pub fn empty(width: usize) -> Result<Self, CoreError> {
        if !(1..=twm_mem::MAX_WORD_WIDTH).contains(&width) {
            return Err(CoreError::InvalidWidth { width });
        }
        Ok(Self {
            width,
            schemes: Vec::new(),
        })
    }

    /// Every implemented scheme for `width`-bit words: Nicolaidis,
    /// Scheme 1, TOMT and TWM_TA, in that order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidWidth`] for widths below 2 or above the
    /// supported maximum (the word-oriented schemes need at least 2 bits).
    pub fn all(width: usize) -> Result<Self, CoreError> {
        let mut registry = Self::comparison(width)?;
        registry.schemes.insert(
            0,
            Box::new(NicolaidisScheme::new(width)?) as Box<dyn TransparentScheme>,
        );
        Ok(registry)
    }

    /// The schemes of the paper's Tables 2/3 comparison: Scheme 1, TOMT
    /// (Scheme 2) and TWM_TA, in table order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidWidth`] for widths below 2 or above the
    /// supported maximum.
    pub fn comparison(width: usize) -> Result<Self, CoreError> {
        let mut registry = Self::empty(width)?;
        registry.register(Box::new(Scheme1::new(width)?))?;
        registry.register(Box::new(TomtScheme::new(width)?))?;
        registry.register(Box::new(TwmTa::new(width)?))?;
        Ok(registry)
    }

    /// The word width every registered scheme targets.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of registered schemes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.schemes.len()
    }

    /// Whether the registry holds no schemes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.schemes.is_empty()
    }

    /// Registers a scheme.
    ///
    /// # Errors
    ///
    /// * [`CoreError::SchemeWidthMismatch`] if the scheme targets a
    ///   different word width than the registry.
    /// * [`CoreError::DuplicateScheme`] if a scheme with the same id is
    ///   already registered.
    pub fn register(&mut self, scheme: Box<dyn TransparentScheme>) -> Result<(), CoreError> {
        if scheme.width() != self.width {
            return Err(CoreError::SchemeWidthMismatch {
                registry: self.width,
                scheme: scheme.width(),
            });
        }
        if self.get(scheme.id()).is_some() {
            return Err(CoreError::DuplicateScheme { id: scheme.id() });
        }
        self.schemes.push(scheme);
        Ok(())
    }

    /// Looks a scheme up by id.
    #[must_use]
    pub fn get(&self, id: SchemeId) -> Option<&dyn TransparentScheme> {
        self.schemes
            .iter()
            .find(|scheme| scheme.id() == id)
            .map(AsRef::as_ref)
    }

    /// Iterates over the registered schemes in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn TransparentScheme> {
        self.schemes.iter().map(AsRef::as_ref)
    }

    /// The registered ids, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = SchemeId> + '_ {
        self.schemes.iter().map(|scheme| scheme.id())
    }

    /// Transforms a source test with the scheme registered under `id`.
    ///
    /// # Errors
    ///
    /// [`CoreError::MissingScheme`] if `id` is not registered, otherwise
    /// the scheme's transformation errors.
    pub fn transform(
        &self,
        id: SchemeId,
        bmarch: &MarchTest,
    ) -> Result<SchemeTransform, CoreError> {
        self.get(id)
            .ok_or(CoreError::MissingScheme { id })?
            .transform(bmarch)
    }

    /// Transforms a source test with every registered scheme, in
    /// registration order.
    ///
    /// # Errors
    ///
    /// Returns the first scheme's transformation error.
    pub fn transform_all(&self, bmarch: &MarchTest) -> Result<Vec<SchemeTransform>, CoreError> {
        self.iter().map(|scheme| scheme.transform(bmarch)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twm_march::algorithms::{march_c_minus, march_u};

    #[test]
    fn registry_constructors_register_the_expected_schemes() {
        let all = SchemeRegistry::all(8).unwrap();
        assert_eq!(all.len(), 4);
        assert_eq!(
            all.ids().collect::<Vec<_>>(),
            SchemeId::all().to_vec(),
            "registry order"
        );
        let comparison = SchemeRegistry::comparison(8).unwrap();
        assert_eq!(
            comparison.ids().collect::<Vec<_>>(),
            SchemeId::comparison().to_vec()
        );
        assert!(SchemeRegistry::all(1).is_err());
        assert!(SchemeRegistry::comparison(999).is_err());
    }

    #[test]
    fn registry_rejects_width_mismatch_and_duplicates() {
        let mut registry = SchemeRegistry::empty(8).unwrap();
        assert!(registry.is_empty());
        assert!(matches!(
            registry.register(Box::new(TwmTa::new(16).unwrap())),
            Err(CoreError::SchemeWidthMismatch {
                registry: 8,
                scheme: 16
            })
        ));
        registry.register(Box::new(TwmTa::new(8).unwrap())).unwrap();
        assert!(matches!(
            registry.register(Box::new(TwmTa::new(8).unwrap())),
            Err(CoreError::DuplicateScheme {
                id: SchemeId::TwmTa
            })
        ));
        assert!(matches!(
            registry.transform(SchemeId::Tomt, &march_u()),
            Err(CoreError::MissingScheme { id: SchemeId::Tomt })
        ));
    }

    #[test]
    fn twm_ta_transform_carries_the_algorithm_stages() {
        let scheme = TwmTa::new(8).unwrap();
        let t = scheme.transform(&march_u()).unwrap();
        assert_eq!(t.scheme(), SchemeId::TwmTa);
        assert_eq!(t.width(), 8);
        assert_eq!(t.source_name(), "March U");
        assert_eq!(t.stages().len(), 3);
        assert!(t
            .stage(SchemeTransform::STAGE_SMARCH)
            .unwrap()
            .name()
            .starts_with("SMarch"));
        assert_eq!(
            t.stage(SchemeTransform::STAGE_TSMARCH)
                .unwrap()
                .operations_per_word(),
            13
        );
        assert_eq!(
            t.stage(SchemeTransform::STAGE_ATMARCH)
                .unwrap()
                .operations_per_word(),
            16
        );
        assert_eq!(t.exact_complexity().tcm, 29);
        assert_eq!(t.backgrounds(), 4); // solid + D1..D3
        assert!(!t.restoration().content_inverted);
    }

    #[test]
    fn scheme1_transform_exposes_the_word_oriented_stage() {
        let scheme = Scheme1::new(4).unwrap();
        let t = scheme.transform(&march_c_minus()).unwrap();
        assert_eq!(t.backgrounds(), 3);
        assert_eq!(
            t.stage(SchemeTransform::STAGE_WORD_ORIENTED)
                .unwrap()
                .length()
                .operations,
            30
        );
        assert!(t.restoration().appended_restore);
        assert_eq!(
            t.signature_prediction().unwrap().length().writes,
            0,
            "prediction is read-only"
        );
    }

    #[test]
    fn tomt_has_no_prediction_phase_and_ignores_the_source_structure() {
        let scheme = TomtScheme::new(8).unwrap();
        let from_c = scheme.transform(&march_c_minus()).unwrap();
        let from_u = scheme.transform(&march_u()).unwrap();
        assert!(from_c.signature_prediction().is_none());
        assert_eq!(from_c.transparent_test(), from_u.transparent_test());
        assert_eq!(from_c.exact_complexity().tcm, 8 * 8 + 2);
        assert_eq!(from_c.exact_complexity().tcp, 0);
        assert_eq!(from_c.total_operations(10), (8 * 8 + 2) * 10);
    }

    #[test]
    fn nicolaidis_scheme_matches_the_classical_transformation() {
        let scheme = NicolaidisScheme::new(1).unwrap();
        let t = scheme.transform(&march_c_minus()).unwrap();
        assert_eq!(
            t.transparent_test().to_string(),
            "⇑(rc,w~c); ⇑(r~c,wc); ⇓(rc,w~c); ⇓(r~c,wc); ⇕(rc)"
        );
        assert_eq!(t.closed_form().tcm, 9);
        assert_eq!(t.closed_form().tcp, 5);
        assert_eq!(t.exact_complexity(), t.closed_form());
        assert!(t.stages().is_empty());
        assert!(t.stage(SchemeTransform::STAGE_ATMARCH).is_none());
    }

    #[test]
    fn closed_forms_match_the_table2_model() {
        let registry = SchemeRegistry::comparison(32).unwrap();
        let length = march_c_minus().length();
        let s1 = registry.get(SchemeId::Scheme1).unwrap().closed_form(length);
        assert_eq!((s1.tcm, s1.tcp), (60, 30));
        let s2 = registry.get(SchemeId::Tomt).unwrap().closed_form(length);
        assert_eq!((s2.tcm, s2.tcp), (258, 0));
        let twm = registry.get(SchemeId::TwmTa).unwrap().closed_form(length);
        assert_eq!((twm.tcm, twm.tcp), (35, 15));
        for scheme in registry.iter() {
            assert!(!scheme.formulas().tcm.is_empty());
        }
    }

    #[test]
    fn non_bit_oriented_inputs_are_rejected_by_every_scheme() {
        let registry = SchemeRegistry::all(8).unwrap();
        let transparent = registry
            .transform(SchemeId::TwmTa, &march_c_minus())
            .unwrap()
            .transparent_test()
            .clone();
        for scheme in registry.iter() {
            assert!(
                matches!(
                    scheme.transform(&transparent),
                    Err(CoreError::NotBitOriented { .. })
                ),
                "{}",
                scheme.name()
            );
        }
    }
}
