//! Scheme 1 — the word-oriented transparent baseline of reference \[12\].
//!
//! The classical way to test a word-oriented memory with a bit-oriented
//! march test is to repeat the test once per standard data background
//! (all-0, `D₁`, `D₂`, …, `D_{⌈log₂W⌉}`), writing the background or its
//! complement where the bit-oriented test writes 0 or 1. Nicolaidis'
//! transparent transformation is then applied to the whole multi-background
//! word test. This is the scheme the DATE 2005 paper calls *Scheme 1* and
//! compares against in Tables 2 and 3; its complexity grows with
//! `(⌈log₂W⌉ + 1)` whole passes of the original test, whereas the paper's
//! TWM_TA only adds `5·⌈log₂W⌉ + 1` operations in total.
//!
//! The scheme-level entry point is [`crate::scheme::Scheme1`], which exposes
//! this transformation through the common
//! [`crate::scheme::TransparentScheme`] surface. (The concrete
//! `Scheme1Transformer` / `Scheme1Transform` wrapper pair went through a
//! deprecation cycle and has been removed; see the MIGRATION table in the
//! repository's `CHANGES.md`.)

use twm_march::background::{background_degree, standard_background_count};
use twm_march::{DataPattern, DataSpec, MarchElement, MarchTest, Operation};

use crate::atmarch::MIN_WORD_WIDTH;
use crate::nicolaidis::to_transparent;
use crate::CoreError;

/// The intermediate and final artifacts of a Scheme 1 transformation —
/// shared by the [`crate::scheme::Scheme1`] scheme and the deprecated
/// wrapper types.
pub(crate) struct Scheme1Parts {
    pub word_test: MarchTest,
    pub transparent: MarchTest,
    pub prediction: MarchTest,
    pub passes: usize,
    pub appended_restore: bool,
}

pub(crate) fn check_width(width: usize) -> Result<(), CoreError> {
    if !(MIN_WORD_WIDTH..=twm_mem::MAX_WORD_WIDTH).contains(&width) {
        return Err(CoreError::InvalidWidth { width });
    }
    Ok(())
}

/// Builds the (non-transparent) word-oriented march test: the source test
/// repeated once per standard data background.
pub(crate) fn word_oriented(width: usize, bmarch: &MarchTest) -> Result<MarchTest, CoreError> {
    check_width(width)?;
    crate::require_bit_oriented(bmarch)?;
    let degree = background_degree(width);
    let mut elements = Vec::new();
    for pass in 0..=degree {
        let (zero_pattern, one_pattern) = if pass == 0 {
            (DataPattern::Zeros, DataPattern::Ones)
        } else {
            (
                DataPattern::Background(pass),
                DataPattern::BackgroundComplement(pass),
            )
        };
        for element in bmarch.elements() {
            let ops: Vec<Operation> = element
                .ops
                .iter()
                .map(|op| {
                    let pattern = match op.data {
                        DataSpec::Literal(DataPattern::Zeros) => zero_pattern,
                        DataSpec::Literal(DataPattern::Ones) => one_pattern,
                        // `is_bit_oriented` guarantees only the two solid
                        // patterns occur.
                        _ => unreachable!("bit-oriented test"),
                    };
                    Operation {
                        kind: op.kind,
                        data: DataSpec::Literal(pattern),
                    }
                })
                .collect();
            elements.push(MarchElement::new(element.order, ops));
        }
    }
    Ok(MarchTest::new(
        format!("Word-oriented {} (W={})", bmarch.name(), width),
        elements,
    )?)
}

/// Applies the full Scheme 1 transformation: multi-background expansion,
/// then the classical transparent transformation.
pub(crate) fn transform_parts(width: usize, bmarch: &MarchTest) -> Result<Scheme1Parts, CoreError> {
    let word_test = word_oriented(width, bmarch)?;
    let transparent = to_transparent(&word_test)?;
    let name = format!("Scheme 1 transparent {} (W={})", bmarch.name(), width);
    let transparent_test = transparent.transparent_test().renamed(name.clone());
    let prediction = transparent
        .signature_prediction()
        .renamed(format!("{name} (prediction)"));
    Ok(Scheme1Parts {
        word_test,
        transparent: transparent_test,
        prediction,
        passes: standard_background_count(width),
        appended_restore: transparent.appended_restore(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use twm_march::algorithms::{march_c_minus, march_u};

    #[test]
    fn four_bit_march_c_minus_uses_three_backgrounds() {
        // Section 3's example: March C- on 4-bit words runs with the
        // backgrounds 0000, 0101 and 0011.
        let parts = transform_parts(4, &march_c_minus()).unwrap();
        assert_eq!(parts.passes, 3);
        // The word-oriented test repeats the 10-operation test three times.
        assert_eq!(parts.word_test.length().operations, 30);
        assert!(parts.transparent.is_transparent());
    }

    #[test]
    fn transparent_length_tracks_the_formula_shape() {
        // Scheme 1 complexity is close to M·(log2W + 1): the first pass loses
        // its initialization element (-1), every later pass keeps its
        // initialization element but gains a prepended read (+1 each), and a
        // final 2-operation restore element brings the content back from the
        // last background. For March C- (1-op initialization, read-first
        // elements) the exact count is therefore M·passes + passes.
        let parts = transform_parts(32, &march_c_minus()).unwrap();
        let m = march_c_minus().length().operations;
        assert_eq!(parts.passes, 6);
        assert!(parts.appended_restore);
        assert_eq!(
            parts.transparent.operations_per_word(),
            m * parts.passes + parts.passes
        );
    }

    #[test]
    fn prediction_is_read_only_projection() {
        let parts = transform_parts(8, &march_u()).unwrap();
        assert_eq!(parts.prediction.length().writes, 0);
        assert_eq!(
            parts.prediction.length().reads,
            parts.transparent.length().reads
        );
    }

    #[test]
    fn proposed_scheme_is_shorter_for_every_library_test() {
        // The whole point of the paper: TWM_TA produces shorter transparent
        // word-oriented tests than Scheme 1.
        for width in [8usize, 32, 128] {
            for march in twm_march::algorithms::all() {
                let s1 = transform_parts(width, &march).unwrap();
                let twm = crate::twm_ta::transform_parts(width, &march).unwrap();
                assert!(
                    twm.twmarch.operations_per_word() < s1.transparent.operations_per_word(),
                    "{} at width {width}",
                    march.name()
                );
            }
        }
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(transform_parts(1, &march_c_minus()).is_err());
        let transparent = to_transparent(&march_c_minus())
            .unwrap()
            .transparent_test()
            .clone();
        assert!(matches!(
            transform_parts(8, &transparent),
            Err(CoreError::NotBitOriented { .. })
        ));
    }
}
