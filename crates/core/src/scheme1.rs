//! Scheme 1 — the word-oriented transparent baseline of reference \[12\].
//!
//! The classical way to test a word-oriented memory with a bit-oriented
//! march test is to repeat the test once per standard data background
//! (all-0, `D₁`, `D₂`, …, `D_{⌈log₂W⌉}`), writing the background or its
//! complement where the bit-oriented test writes 0 or 1. Nicolaidis'
//! transparent transformation is then applied to the whole multi-background
//! word test. This is the scheme the DATE 2005 paper calls *Scheme 1* and
//! compares against in Tables 2 and 3; its complexity grows with
//! `(⌈log₂W⌉ + 1)` whole passes of the original test, whereas the paper's
//! TWM_TA only adds `5·⌈log₂W⌉ + 1` operations in total.

use twm_march::background::{background_degree, standard_background_count};
use twm_march::{DataPattern, DataSpec, MarchElement, MarchTest, Operation};

use crate::atmarch::MIN_WORD_WIDTH;
use crate::nicolaidis::to_transparent;
use crate::CoreError;

/// Transformer implementing Scheme 1 (reference \[12\]) for a fixed word
/// width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheme1Transformer {
    width: usize,
}

impl Scheme1Transformer {
    /// Creates a Scheme 1 transformer for `width`-bit words.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidWidth`] for widths below 2 or above the
    /// supported maximum.
    pub fn new(width: usize) -> Result<Self, CoreError> {
        if !(MIN_WORD_WIDTH..=twm_mem::MAX_WORD_WIDTH).contains(&width) {
            return Err(CoreError::InvalidWidth { width });
        }
        Ok(Self { width })
    }

    /// The word width this transformer targets.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Builds the (non-transparent) word-oriented march test: the source test
    /// repeated once per standard data background.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotBitOriented`] if the input is not bit-oriented.
    pub fn word_oriented(&self, bmarch: &MarchTest) -> Result<MarchTest, CoreError> {
        if !bmarch.is_bit_oriented() {
            return Err(CoreError::NotBitOriented {
                test: bmarch.name().to_string(),
            });
        }
        let degree = background_degree(self.width);
        let mut elements = Vec::new();
        for pass in 0..=degree {
            let (zero_pattern, one_pattern) = if pass == 0 {
                (DataPattern::Zeros, DataPattern::Ones)
            } else {
                (
                    DataPattern::Background(pass),
                    DataPattern::BackgroundComplement(pass),
                )
            };
            for element in bmarch.elements() {
                let ops: Vec<Operation> = element
                    .ops
                    .iter()
                    .map(|op| {
                        let pattern = match op.data {
                            DataSpec::Literal(DataPattern::Zeros) => zero_pattern,
                            DataSpec::Literal(DataPattern::Ones) => one_pattern,
                            // `is_bit_oriented` guarantees only the two solid
                            // patterns occur.
                            _ => unreachable!("bit-oriented test"),
                        };
                        Operation {
                            kind: op.kind,
                            data: DataSpec::Literal(pattern),
                        }
                    })
                    .collect();
                elements.push(MarchElement::new(element.order, ops));
            }
        }
        Ok(MarchTest::new(
            format!("Word-oriented {} (W={})", bmarch.name(), self.width),
            elements,
        )?)
    }

    /// Transforms a bit-oriented march test into Scheme 1's transparent
    /// word-oriented march test.
    ///
    /// # Errors
    ///
    /// Returns the errors of [`Scheme1Transformer::word_oriented`] and of the
    /// underlying transparent transformation.
    pub fn transform(&self, bmarch: &MarchTest) -> Result<Scheme1Transform, CoreError> {
        let word_test = self.word_oriented(bmarch)?;
        let transparent = to_transparent(&word_test)?;
        let name = format!("Scheme 1 transparent {} (W={})", bmarch.name(), self.width);
        let transparent_test = transparent.transparent_test().renamed(name.clone());
        let prediction = transparent
            .signature_prediction()
            .renamed(format!("{name} (prediction)"));
        Ok(Scheme1Transform {
            width: self.width,
            source_name: bmarch.name().to_string(),
            passes: standard_background_count(self.width),
            word_test,
            transparent: transparent_test,
            prediction,
        })
    }
}

/// The result of applying Scheme 1 to a bit-oriented march test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheme1Transform {
    width: usize,
    source_name: String,
    passes: usize,
    word_test: MarchTest,
    transparent: MarchTest,
    prediction: MarchTest,
}

impl Scheme1Transform {
    /// The word width the transformation targets.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Name of the source bit-oriented march test.
    #[must_use]
    pub fn source_name(&self) -> &str {
        &self.source_name
    }

    /// Number of data-background passes (`⌈log₂W⌉ + 1`).
    #[must_use]
    pub fn passes(&self) -> usize {
        self.passes
    }

    /// The non-transparent multi-background word-oriented march test.
    #[must_use]
    pub fn word_oriented_test(&self) -> &MarchTest {
        &self.word_test
    }

    /// Scheme 1's transparent word-oriented march test.
    #[must_use]
    pub fn transparent_test(&self) -> &MarchTest {
        &self.transparent
    }

    /// The signature-prediction test.
    #[must_use]
    pub fn signature_prediction(&self) -> &MarchTest {
        &self.prediction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twm_march::algorithms::{march_c_minus, march_u};

    #[test]
    fn four_bit_march_c_minus_uses_three_backgrounds() {
        // Section 3's example: March C- on 4-bit words runs with the
        // backgrounds 0000, 0101 and 0011.
        let transformer = Scheme1Transformer::new(4).unwrap();
        let result = transformer.transform(&march_c_minus()).unwrap();
        assert_eq!(result.passes(), 3);
        // The word-oriented test repeats the 10-operation test three times.
        assert_eq!(result.word_oriented_test().length().operations, 30);
        assert!(result.transparent_test().is_transparent());
    }

    #[test]
    fn transparent_length_tracks_the_formula_shape() {
        // Scheme 1 complexity is close to M·(log2W + 1): the first pass loses
        // its initialization element (-1), every later pass keeps its
        // initialization element but gains a prepended read (+1 each), and a
        // final 2-operation restore element brings the content back from the
        // last background. For March C- (1-op initialization, read-first
        // elements) the exact count is therefore M·passes + passes.
        let transformer = Scheme1Transformer::new(32).unwrap();
        let result = transformer.transform(&march_c_minus()).unwrap();
        let m = march_c_minus().length().operations;
        let passes = result.passes();
        assert_eq!(passes, 6);
        assert_eq!(
            result.transparent_test().operations_per_word(),
            m * passes + passes
        );
    }

    #[test]
    fn prediction_is_read_only_projection() {
        let transformer = Scheme1Transformer::new(8).unwrap();
        let result = transformer.transform(&march_u()).unwrap();
        assert_eq!(result.signature_prediction().length().writes, 0);
        assert_eq!(
            result.signature_prediction().length().reads,
            result.transparent_test().length().reads
        );
    }

    #[test]
    fn proposed_scheme_is_shorter_for_every_library_test() {
        // The whole point of the paper: TWM_TA produces shorter transparent
        // word-oriented tests than Scheme 1.
        for width in [8usize, 32, 128] {
            let scheme1 = Scheme1Transformer::new(width).unwrap();
            let proposed = crate::TwmTransformer::new(width).unwrap();
            for march in twm_march::algorithms::all() {
                let s1 = scheme1.transform(&march).unwrap();
                let twm = proposed.transform(&march).unwrap();
                assert!(
                    twm.transparent_test().operations_per_word()
                        < s1.transparent_test().operations_per_word(),
                    "{} at width {width}",
                    march.name()
                );
            }
        }
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(Scheme1Transformer::new(1).is_err());
        let transformer = Scheme1Transformer::new(8).unwrap();
        let transparent = to_transparent(&march_c_minus())
            .unwrap()
            .transparent_test()
            .clone();
        assert!(matches!(
            transformer.transform(&transparent),
            Err(CoreError::NotBitOriented { .. })
        ));
    }
}
