//! Scheme 2 — a stand-in for TOMT (Thaller & Steininger, reference \[13\]).
//!
//! TOMT is a transparent *online* memory test for word-oriented memories
//! protected by parity or Hamming codes: it walks every bit of every word
//! with read–modify–write operations and relies on the code checker instead
//! of a signature, so it needs no signature-prediction phase but performs a
//! number of operations per word that grows linearly with the word width.
//!
//! The original hardware (code checkers, dedicated controller) is outside the
//! scope of this reproduction; what the DATE 2005 paper compares against is
//! TOMT's *test length*. The scheme-level entry point is
//! [`crate::scheme::TomtScheme`], which exposes the walk test and the
//! `8·W + 2` complexity through the common [`crate::scheme::TransparentScheme`]
//! surface (this constant reproduces the paper's "≈19 % for March C−,
//! W = 32" headline; the exact constant is not legible in the source text
//! and is recorded as an assumption in EXPERIMENTS.md). (The deprecated
//! `tomt_tcm_per_word` / `tomt_tcp_per_word` / `tomt_like_test` wrapper
//! functions have been removed; see the MIGRATION table in the repository's
//! `CHANGES.md`.)

use twm_march::{DataPattern, DataSpec, MarchElement, MarchTest, Operation};

use crate::atmarch::MIN_WORD_WIDTH;
use crate::CoreError;

/// Per-word operation count of the TOMT walk: `8·W + 2`.
pub(crate) fn tcm_per_word(width: usize) -> usize {
    8 * width + 2
}

/// TOMT has no signature-prediction phase (concurrent error detection).
pub(crate) fn tcp_per_word(_width: usize) -> usize {
    0
}

/// Builds the synthetic transparent word-oriented walk test with TOMT's
/// per-word operation count (`8·W + 2`): for every bit of the word,
/// read–flip–read–restore in both polarities, plus a closing double read.
pub(crate) fn walk_test(width: usize) -> Result<MarchTest, CoreError> {
    if !(MIN_WORD_WIDTH..=twm_mem::MAX_WORD_WIDTH).contains(&width) {
        return Err(CoreError::InvalidWidth { width });
    }
    let mut elements = Vec::with_capacity(width + 1);
    for bit in 0..width {
        let mask = DataPattern::Custom(1u128 << bit);
        let content = DataSpec::TransparentXor(DataPattern::Zeros);
        let flipped = DataSpec::TransparentXor(mask);
        elements.push(MarchElement::any_order(vec![
            Operation::read(content),
            Operation::write(flipped),
            Operation::read(flipped),
            Operation::write(content),
            Operation::read(content),
            Operation::write(flipped),
            Operation::read(flipped),
            Operation::write(content),
        ]));
    }
    elements.push(MarchElement::any_order(vec![
        Operation::read(DataSpec::TransparentXor(DataPattern::Zeros)),
        Operation::read(DataSpec::TransparentXor(DataPattern::Zeros)),
    ]));
    Ok(MarchTest::new(
        format!("TOMT-like walk (W={width})"),
        elements,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_word_length_matches_the_formula() {
        for width in [2usize, 4, 8, 16, 32, 64, 128] {
            let test = walk_test(width).unwrap();
            assert_eq!(test.length().operations, tcm_per_word(width));
        }
    }

    #[test]
    fn reproduction_of_headline_ratio_constant() {
        // The paper's headline: for March C- and 32-bit words the proposed
        // scheme needs about 19 % of Scheme 2's operations.
        let proposed_total = 35 + 15; // TCM + TCP closed forms
        let tomt_total = tcm_per_word(32) + tcp_per_word(32);
        let ratio = proposed_total as f64 / tomt_total as f64;
        assert!((ratio - 0.19).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn test_is_transparent_and_width_checked() {
        let test = walk_test(8).unwrap();
        assert!(test.is_transparent());
        assert!(matches!(walk_test(1), Err(CoreError::InvalidWidth { .. })));
        assert!(matches!(
            walk_test(999),
            Err(CoreError::InvalidWidth { .. })
        ));
    }

    #[test]
    fn no_prediction_phase() {
        assert_eq!(tcp_per_word(64), 0);
    }
}
