//! TWM_TA — the paper's Algorithm 1.
//!
//! The transparent word-oriented march transformation algorithm converts a
//! bit-oriented march test (BMarch) into a transparent word-oriented march
//! test (TWMarch) for a memory with `W`-bit words:
//!
//! 1. Replace the bit data `0`/`1` of BMarch with the solid all-0 / all-1
//!    word backgrounds, giving **SMarch** (structurally identical to BMarch
//!    in this library, because the all-0/all-1 patterns resolve to any word
//!    width).
//! 2. If the last operation of SMarch is a write, append a read.
//! 3. Transform SMarch into the transparent **TSMarch** with the classical
//!    rules ([`crate::nicolaidis`]) — *without* the final restore element,
//!    which Algorithm 1 delegates to ATMarch's closing element.
//! 4. Append **ATMarch** ([`crate::atmarch`]): one element per standard data
//!    background `D_k`, plus a closing element that also restores the
//!    content when TSMarch left it complemented.
//! 5. **TWMarch** = TSMarch ; ATMarch. The signature-prediction test is its
//!    read-only projection.
//!
//! The scheme-level entry point is [`crate::scheme::TwmTa`], which exposes
//! this algorithm through the common [`crate::scheme::TransparentScheme`]
//! surface (the SMarch/TSMarch/ATMarch stages are published as
//! [`crate::scheme::SchemeTransform`] stages). (The concrete
//! `TwmTransformer` / `TwmTransformed` wrapper pair went through a
//! deprecation cycle and has been removed; see the MIGRATION table in the
//! repository's `CHANGES.md`.)

use twm_march::{DataPattern, MarchElement, MarchTest, Operation};

use crate::atmarch::{atmarch, MIN_WORD_WIDTH};
use crate::nicolaidis::{to_transparent_with, track_states, TransparentOptions};
use crate::CoreError;

/// The intermediate and final artifacts of Algorithm 1, consumed by the
/// [`crate::scheme::TwmTa`] scheme.
pub(crate) struct TwmParts {
    pub smarch: MarchTest,
    pub tsmarch: MarchTest,
    pub atmarch: MarchTest,
    pub twmarch: MarchTest,
    pub prediction: MarchTest,
    pub content_inverted: bool,
}

/// Runs the paper's Algorithm 1 for a bit-oriented march test and word
/// width.
pub(crate) fn transform_parts(width: usize, bmarch: &MarchTest) -> Result<TwmParts, CoreError> {
    if !(MIN_WORD_WIDTH..=twm_mem::MAX_WORD_WIDTH).contains(&width) {
        return Err(CoreError::InvalidWidth { width });
    }
    crate::require_bit_oriented(bmarch)?;

    // Step 1: solid data backgrounds. The all-0/all-1 patterns of the
    // bit-oriented test already denote solid word backgrounds, so SMarch
    // is structurally the same test under a new name.
    let track = track_states(bmarch)?;
    let mut smarch = bmarch.renamed(format!("SMarch ({})", bmarch.name()));

    // Step 2: if the last operation is a write, append a read of the
    // value that write left behind.
    if track.ends_with_write {
        let final_pattern = track.final_state.unwrap_or(DataPattern::Zeros);
        smarch = smarch.with_element(MarchElement::any_order(vec![Operation::read(
            twm_march::DataSpec::Literal(final_pattern),
        )]));
    }

    // Step 3: transparent transformation, without the restore element
    // (ATMarch's closing element takes care of restoration).
    let transparent = to_transparent_with(
        &smarch,
        TransparentOptions {
            restore_content: false,
        },
    )?;
    let tsmarch = transparent
        .transparent_test()
        .renamed(format!("TSMarch ({})", bmarch.name()));

    // Step 4: the branch of Algorithm 1 depends on whether TSMarch left
    // the content equal to the initial content or complemented.
    let content_inverted = match transparent.final_state() {
        DataPattern::Zeros => false,
        DataPattern::Ones => true,
        other => {
            let detail = format!(
                "TSMarch leaves the content XOR-shifted by {other}, which TWM_TA does not support"
            );
            return Err(CoreError::InconsistentMarch {
                element: 0,
                operation: 0,
                detail,
            });
        }
    };
    let atmarch_test = atmarch(width, content_inverted)?;

    // Step 5: TWMarch and its signature prediction.
    let twmarch = tsmarch.concatenated(
        &atmarch_test,
        format!("TWMarch ({}, W={})", bmarch.name(), width),
    );
    let prediction = twmarch.reads_only(&format!(
        "TWMarch prediction ({}, W={})",
        bmarch.name(),
        width
    ))?;

    Ok(TwmParts {
        smarch,
        tsmarch,
        atmarch: atmarch_test,
        twmarch,
        prediction,
        content_inverted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use twm_march::algorithms::{march_c_minus, march_lr, march_u, mats_plus};

    #[test]
    fn march_u_8_bit_matches_paper_worked_example() {
        // Section 4: the transparent word-oriented March U for 8-bit words
        // has complexity 29 operations per word.
        let parts = transform_parts(8, &march_u()).unwrap();
        assert_eq!(parts.tsmarch.length().operations, 13);
        assert_eq!(parts.atmarch.length().operations, 16);
        assert_eq!(parts.twmarch.operations_per_word(), 29);
        assert!(!parts.content_inverted);
        assert_eq!(
            parts.tsmarch.to_string(),
            "⇑(rc,w~c,r~c,wc); ⇑(rc,w~c); ⇓(r~c,wc,rc,w~c); ⇓(r~c,wc); ⇕(rc)"
        );
    }

    #[test]
    fn march_c_minus_32_bit_matches_closed_form() {
        // TCM = M + 5·log2(W) = 10 + 25 = 35 for March C- and 32-bit words.
        let parts = transform_parts(32, &march_c_minus()).unwrap();
        assert_eq!(parts.twmarch.operations_per_word(), 35);
        // The prediction test is the read-only projection.
        assert_eq!(parts.prediction.length().writes, 0);
        assert_eq!(
            parts.prediction.length().reads,
            parts.twmarch.length().reads
        );
    }

    #[test]
    fn transformation_outputs_are_transparent() {
        for march in twm_march::algorithms::all() {
            let parts = transform_parts(16, &march).unwrap();
            assert!(parts.twmarch.is_transparent(), "{}", march.name());
            assert!(parts.prediction.is_transparent(), "{}", march.name());
        }
    }

    #[test]
    fn smarch_appends_read_only_when_needed() {
        // March U ends with a write: one read appended.
        let parts = transform_parts(8, &march_u()).unwrap();
        assert_eq!(
            parts.smarch.length().operations,
            march_u().length().operations + 1
        );
        // March C- ends with a read: nothing appended.
        let parts = transform_parts(8, &march_c_minus()).unwrap();
        assert_eq!(
            parts.smarch.length().operations,
            march_c_minus().length().operations
        );
        // MATS+ ends with a write as well.
        let parts = transform_parts(8, &mats_plus()).unwrap();
        assert_eq!(
            parts.smarch.length().operations,
            mats_plus().length().operations + 1
        );
    }

    #[test]
    fn complexity_follows_m_plus_5_log2_w_for_read_terminated_tests() {
        // For tests satisfying the paper's assumptions (initialization write,
        // read-first elements, read-terminated), TCM = M + 5·log2(W).
        for width in [4usize, 8, 16, 32, 64, 128] {
            let log2w = twm_march::background::background_degree(width);
            for march in [march_c_minus(), march_lr()] {
                let parts = transform_parts(width, &march).unwrap();
                assert_eq!(
                    parts.twmarch.operations_per_word(),
                    march.length().operations + 5 * log2w,
                    "{} at width {width}",
                    march.name()
                );
            }
        }
    }

    #[test]
    fn rejects_invalid_widths_and_non_bit_oriented_inputs() {
        assert!(matches!(
            transform_parts(1, &march_u()),
            Err(CoreError::InvalidWidth { .. })
        ));
        assert!(matches!(
            transform_parts(129, &march_u()),
            Err(CoreError::InvalidWidth { .. })
        ));

        let transparent = crate::nicolaidis::to_transparent(&march_c_minus())
            .unwrap()
            .transparent_test()
            .clone();
        assert!(matches!(
            transform_parts(8, &transparent),
            Err(CoreError::NotBitOriented { .. })
        ));
    }

    #[test]
    fn stage_names_and_invalid_widths() {
        let parts = transform_parts(16, &march_u()).unwrap();
        assert!(parts.smarch.name().starts_with("SMarch"));
        assert!(parts.tsmarch.name().starts_with("TSMarch"));
        assert!(parts.atmarch.name().starts_with("ATMarch"));
        assert!(parts.twmarch.name().starts_with("TWMarch"));
        assert!(parts.prediction.name().contains("prediction"));
        assert!(!parts.content_inverted);
    }
}
