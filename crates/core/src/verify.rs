//! Structural verification of transparent march tests.
//!
//! Two properties make a march test *transparent*:
//!
//! 1. every operation's data is expressed relative to the word's initial
//!    content (an XOR offset), so no information about the content is
//!    required up front; and
//! 2. the net effect of the writes leaves every word holding its initial
//!    content when the test completes.
//!
//! [`check_transparent`] verifies both statically (without running the test
//! on a memory); the BIST executor additionally verifies restoration
//! dynamically in the integration tests.

use twm_march::{DataPattern, DataSpec, MarchTest, OpKind};

use crate::CoreError;

/// Whether every operation's data is transparent (an XOR offset of the
/// initial content).
#[must_use]
pub fn all_data_transparent(test: &MarchTest) -> bool {
    test.is_transparent()
}

/// The XOR offset of the memory content relative to its initial content
/// after the test completes, tracked structurally.
///
/// # Errors
///
/// * [`CoreError::NotBitOriented`] if the test contains non-transparent
///   (literal) data.
/// * [`CoreError::InconsistentMarch`] if a read expects an offset different
///   from the one established by the preceding writes.
pub fn final_content_offset(test: &MarchTest) -> Result<DataPattern, CoreError> {
    let mut state = DataPattern::Zeros;
    for (element_index, element) in test.elements().iter().enumerate() {
        for (op_index, op) in element.ops.iter().enumerate() {
            let pattern = match op.data {
                DataSpec::TransparentXor(p) => p,
                DataSpec::Literal(_) => {
                    return Err(CoreError::NotBitOriented {
                        test: test.name().to_string(),
                    })
                }
            };
            match op.kind {
                OpKind::Read => {
                    if pattern != state {
                        return Err(CoreError::InconsistentMarch {
                            element: element_index,
                            operation: op_index,
                            detail: format!(
                                "read expects offset {pattern} but the tracked offset is {state}"
                            ),
                        });
                    }
                }
                OpKind::Write => state = pattern,
            }
        }
    }
    Ok(state)
}

/// Checks that a march test is transparent: all data relative to the initial
/// content, reads consistent with the preceding writes, and the content
/// restored at the end.
///
/// # Errors
///
/// Returns the errors of [`final_content_offset`], or
/// [`CoreError::InconsistentMarch`] if the final content offset is not zero
/// (the content would not be restored).
pub fn check_transparent(test: &MarchTest) -> Result<(), CoreError> {
    let offset = final_content_offset(test)?;
    if offset != DataPattern::Zeros {
        return Err(CoreError::InconsistentMarch {
            element: test.element_count().saturating_sub(1),
            operation: 0,
            detail: format!("test leaves the content XOR-shifted by {offset}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::SchemeRegistry;
    use twm_march::algorithms::all;
    use twm_march::{MarchElement as El, MarchTest, Operation as Op};

    #[test]
    fn every_registered_scheme_passes_the_structural_check() {
        for march in all() {
            for width in [4usize, 8, 32] {
                for scheme in SchemeRegistry::all(width).unwrap().iter() {
                    let transformed = scheme.transform(&march).unwrap();
                    check_transparent(transformed.transparent_test()).unwrap_or_else(|e| {
                        panic!("{} for {} W={width}: {e}", scheme.name(), march.name())
                    });
                }
            }
        }
    }

    #[test]
    fn non_restoring_test_is_rejected() {
        let test = MarchTest::new(
            "leaves complement",
            vec![El::ascending(vec![
                Op::read_content(),
                Op::write_content_complement(),
            ])],
        )
        .unwrap();
        assert!(all_data_transparent(&test));
        assert_eq!(final_content_offset(&test).unwrap(), DataPattern::Ones);
        assert!(check_transparent(&test).is_err());
    }

    #[test]
    fn literal_data_is_rejected() {
        let test = MarchTest::new("literal", vec![El::ascending(vec![Op::r0()])]).unwrap();
        assert!(!all_data_transparent(&test));
        assert!(matches!(
            final_content_offset(&test),
            Err(CoreError::NotBitOriented { .. })
        ));
    }

    #[test]
    fn inconsistent_read_offset_is_rejected() {
        let test = MarchTest::new(
            "inconsistent",
            vec![El::ascending(vec![
                Op::read_content_complement(),
                Op::write_content(),
            ])],
        )
        .unwrap();
        assert!(matches!(
            final_content_offset(&test),
            Err(CoreError::InconsistentMarch { .. })
        ));
    }
}
