//! Generic conformance suite for the `TransparentScheme` trait: every
//! registered scheme must produce paper-level artifacts — a structurally
//! transparent test, restored content, a read-only signature-prediction
//! projection, and complexity accounting consistent with its closed form.
//!
//! Any scheme added to [`SchemeRegistry::all`] is covered automatically;
//! the dynamic (simulator-backed) half of the suite lives in the workspace
//! root's `tests/scheme_conformance.rs`.

use twm_core::scheme::{SchemeId, SchemeRegistry, SchemeTransform};
use twm_core::verify::{check_transparent, final_content_offset};
use twm_march::{algorithms, DataPattern, MarchTest};

const WIDTHS: [usize; 5] = [4, 8, 16, 32, 128];

fn for_every_transform(mut check: impl FnMut(SchemeId, usize, &MarchTest, &SchemeTransform)) {
    for width in WIDTHS {
        let registry = SchemeRegistry::all(width).unwrap();
        for march in algorithms::all() {
            for scheme in registry.iter() {
                let transform = scheme.transform(&march).unwrap_or_else(|e| {
                    panic!("{} {} W={width}: {e}", scheme.name(), march.name())
                });
                check(scheme.id(), width, &march, &transform);
            }
        }
    }
}

#[test]
fn every_scheme_produces_a_structurally_transparent_test() {
    for_every_transform(|id, width, march, transform| {
        check_transparent(transform.transparent_test())
            .unwrap_or_else(|e| panic!("{id} {} W={width}: {e}", march.name()));
    });
}

#[test]
fn every_scheme_restores_the_content_offset_to_zero() {
    for_every_transform(|id, width, march, transform| {
        let offset = final_content_offset(transform.transparent_test())
            .unwrap_or_else(|e| panic!("{id} {} W={width}: {e}", march.name()));
        assert_eq!(
            offset,
            DataPattern::Zeros,
            "{id} {} W={width}",
            march.name()
        );
    });
}

#[test]
fn every_prediction_test_is_the_read_only_projection() {
    for_every_transform(|id, width, march, transform| {
        if let Some(prediction) = transform.signature_prediction() {
            assert_eq!(
                prediction.length().writes,
                0,
                "{id} {} W={width}: prediction contains writes",
                march.name()
            );
            assert_eq!(
                prediction.length().reads,
                transform.transparent_test().length().reads,
                "{id} {} W={width}: prediction is not the full read projection",
                march.name()
            );
            assert!(
                prediction.is_transparent(),
                "{id} {} W={width}",
                march.name()
            );
        } else {
            // Only concurrent-checking schemes may omit the prediction phase.
            assert_eq!(id, SchemeId::Tomt);
        }
    });
}

#[test]
fn exact_complexity_accounts_for_the_generated_tests() {
    for_every_transform(|id, width, march, transform| {
        let exact = transform.exact_complexity();
        assert_eq!(
            exact.tcm,
            transform.transparent_test().operations_per_word(),
            "{id} {} W={width}",
            march.name()
        );
        assert_eq!(
            exact.tcp,
            transform
                .signature_prediction()
                .map_or(0, MarchTest::operations_per_word),
            "{id} {} W={width}",
            march.name()
        );
        // The closed form models the generated tests up to per-pass
        // bookkeeping: a prepended read per background pass (Scheme 1), the
        // one appended read of write-terminated sources and the
        // inverted-branch restore write (TWM_TA / Nicolaidis). Bound the
        // drift accordingly so a formula regression is caught while the
        // known slack passes.
        let closed = transform.closed_form();
        let slack = transform.backgrounds() + 2;
        assert!(
            exact.tcm + slack >= closed.tcm && exact.tcm <= closed.tcm + slack,
            "{id} {} W={width}: exact {} vs closed form {}",
            march.name(),
            exact.tcm,
            closed.tcm
        );
    });
}

#[test]
fn transform_metadata_is_consistent() {
    for_every_transform(|id, width, march, transform| {
        assert_eq!(transform.scheme(), id);
        assert_eq!(transform.width(), width);
        assert_eq!(transform.source_name(), march.name());
        assert!(transform.backgrounds() >= 1);
        for stage in transform.stages() {
            assert!(
                transform.stage(stage.name).is_some(),
                "{id}: stage {} not addressable",
                stage.name
            );
        }
    });
}
