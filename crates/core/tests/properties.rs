//! Property-based tests for the transformation algorithms.

use proptest::prelude::*;

use twm_core::complexity::{proposed_formula, scheme1_formula};
use twm_core::verify::check_transparent;
use twm_core::{to_transparent, Scheme1, TransparentScheme, TwmTa};
use twm_march::background::background_degree;
use twm_march::{algorithms, MarchElement, MarchTest, Operation};

/// Generates structurally valid bit-oriented march tests: an initialization
/// element followed by read-first elements whose reads match the value left
/// by the preceding operations.
fn arb_consistent_march() -> impl Strategy<Value = MarchTest> {
    // Each element is described by a sequence of "flip" decisions: starting
    // from the tracked state, read it, then perform 1..3 writes alternating
    // the value.
    prop::collection::vec((any::<bool>(), 1usize..4), 1..6).prop_map(|descriptors| {
        let mut elements = vec![MarchElement::any_order(vec![Operation::w0()])];
        let mut state = false;
        for (descending, writes) in descriptors {
            let mut ops = vec![if state {
                Operation::r1()
            } else {
                Operation::r0()
            }];
            for _ in 0..writes {
                state = !state;
                ops.push(if state {
                    Operation::w1()
                } else {
                    Operation::w0()
                });
            }
            let element = if descending {
                MarchElement::descending(ops)
            } else {
                MarchElement::ascending(ops)
            };
            elements.push(element);
        }
        MarchTest::new("generated", elements).expect("valid elements")
    })
}

fn arb_width() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(2usize),
        Just(4),
        Just(8),
        Just(16),
        Just(32),
        Just(64),
        Just(128)
    ]
}

proptest! {
    /// The classical transparent transformation always yields a structurally
    /// transparent, content-restoring test whose prediction is write-free.
    #[test]
    fn nicolaidis_transform_is_structurally_transparent(march in arb_consistent_march()) {
        let result = to_transparent(&march).unwrap();
        prop_assert!(check_transparent(result.transparent_test()).is_ok());
        prop_assert_eq!(result.signature_prediction().length().writes, 0);
    }

    /// TWM_TA output is structurally transparent for every generated test
    /// and width, and its length never exceeds M + 1 + 5·log2(W) + 1.
    #[test]
    fn twm_ta_output_is_transparent_and_bounded(
        march in arb_consistent_march(),
        width in arb_width(),
    ) {
        let transformed = TwmTa::new(width).unwrap().transform(&march).unwrap();
        prop_assert!(check_transparent(transformed.transparent_test()).is_ok());
        let m = march.length().operations;
        let log2w = background_degree(width);
        let tcm = transformed.transparent_test().operations_per_word();
        // Closed form M + 5·log2(W), plus at most one appended read and one
        // extra restore operation in the inverted-content branch.
        prop_assert!(tcm >= m - 1 + 5 * log2w);
        prop_assert!(tcm <= m + 2 + 5 * log2w);
        // The prediction test is exactly the reads of the transparent test.
        prop_assert_eq!(
            transformed.signature_prediction().unwrap().length().reads,
            transformed.transparent_test().length().reads
        );
    }

    /// The proposed scheme beats Scheme 1 whenever the bit-oriented test is
    /// non-trivial. In the closed-form model the exact break-even point is
    /// M + Q = 7·L / L = 7: TWM_TA adds a fixed 7·log2(W) operations while
    /// Scheme 1 multiplies the whole test by log2(W)+1, so the proposed
    /// scheme wins exactly when M + Q > 7 — which every practical march test
    /// satisfies (MATS+ is the shortest at M + Q = 7).
    #[test]
    fn proposed_beats_scheme1_on_generated_tests(
        march in arb_consistent_march(),
        width in prop_oneof![Just(8usize), Just(32), Just(128)],
    ) {
        let length = march.length();
        prop_assume!(length.operations + length.reads > 8);
        let formula_proposed = proposed_formula(length, width).total();
        let formula_scheme1 = scheme1_formula(length, width).total();
        prop_assert!(formula_proposed < formula_scheme1);

        let proposed = TwmTa::new(width).unwrap().transform(&march).unwrap();
        let scheme1 = Scheme1::new(width).unwrap().transform(&march).unwrap();
        prop_assert!(
            proposed.transparent_test().operations_per_word()
                < scheme1.transparent_test().operations_per_word()
        );
    }

    /// Transforming any library algorithm twice gives identical output
    /// (the transformation is deterministic).
    #[test]
    fn transformation_is_deterministic(index in 0usize..11, width in arb_width()) {
        let all = algorithms::all();
        let march = &all[index % all.len()];
        let a = TwmTa::new(width).unwrap().transform(march).unwrap();
        let b = TwmTa::new(width).unwrap().transform(march).unwrap();
        prop_assert_eq!(a, b);
    }
}
