//! MISR aliasing analysis.
//!
//! Transparent BIST schemes that compare a predicted signature with the test
//! signature (Nicolaidis' scheme and the paper's TWM_TA) can *alias*: a
//! faulty read stream may compact to the fault-free signature, so the fault
//! escapes even though some read returned a wrong value. Aliasing is the
//! stated motivation for the signature-free schemes the paper cites (DPSC,
//! TOMT). This module quantifies it: every fault of a universe is evaluated
//! with both the exact-compare oracle and the full two-phase signature flow,
//! and the faults whose detection is lost to compaction are reported.

use serde::{Deserialize, Serialize};

use twm_bist::Misr;
use twm_march::MarchTest;
use twm_mem::{Fault, MemoryConfig};

use crate::evaluator::EvaluationOptions;
use crate::{CoverageEngine, CoverageError, Strategy};

/// Result of comparing exact-compare detection with signature detection over
/// a fault universe.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AliasingReport {
    /// Faults evaluated.
    pub total: usize,
    /// Faults detected by the exact-compare oracle (at least one wrong read).
    pub detected_exact: usize,
    /// Faults detected by the signature comparison.
    pub detected_signature: usize,
    /// Faults that produced wrong reads but whose signature still matched
    /// the prediction (aliased).
    pub aliased: Vec<Fault>,
}

impl AliasingReport {
    /// Fraction of exact-detected faults lost to aliasing.
    #[must_use]
    pub fn aliasing_rate(&self) -> f64 {
        if self.detected_exact == 0 {
            0.0
        } else {
            self.aliased.len() as f64 / self.detected_exact as f64
        }
    }
}

/// Evaluates signature aliasing of a transparent test over a fault list.
///
/// For every fault, an arena memory is initialised according to `options`,
/// the fault is injected, and the full two-phase session (prediction test,
/// transparent test, MISR comparison) is run with a copy of `misr`.
///
/// Convenience wrapper over [`CoverageEngine::aliasing`]: a throwaway
/// engine is built per call, so repeated scans should construct the engine
/// once and call its verb directly.
///
/// # Errors
///
/// Returns [`CoverageError::EmptyUniverse`] for an empty fault list and the
/// underlying memory/BIST errors otherwise.
pub fn aliasing_report(
    transparent_test: &MarchTest,
    prediction_test: &MarchTest,
    faults: &[Fault],
    config: MemoryConfig,
    misr: &Misr,
    options: EvaluationOptions,
) -> Result<AliasingReport, CoverageError> {
    CoverageEngine::builder(config)
        .test(transparent_test)
        .options(options)
        .strategy(Strategy::Serial)
        .build()?
        .aliasing(prediction_test, misr, faults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::UniverseBuilder;
    use crate::ContentPolicy;
    use twm_core::{TransparentScheme, TwmTa};
    use twm_march::algorithms::march_c_minus;

    #[test]
    fn signature_detection_tracks_exact_detection_for_single_faults() {
        let width = 8;
        let config = MemoryConfig::new(8, width).unwrap();
        let transformed = TwmTa::new(width)
            .unwrap()
            .transform(&march_c_minus())
            .unwrap();
        let faults = UniverseBuilder::new(config)
            .stuck_at()
            .transition()
            .coupling_inversion()
            .sample_per_class(60, 13)
            .build();
        let report = aliasing_report(
            transformed.transparent_test(),
            transformed.signature_prediction().unwrap(),
            &faults,
            config,
            &Misr::standard(width),
            EvaluationOptions {
                content: ContentPolicy::Random { seed: 404 },
                contents_per_fault: 1,
            },
        )
        .unwrap();
        assert_eq!(report.total, faults.len());
        // Every sampled SAF/TF/CFin produces at least one wrong read.
        assert_eq!(report.detected_exact, faults.len());
        // The signature flow should lose at most a tiny fraction to aliasing
        // (typically none for single faults with a decent polynomial).
        assert!(
            report.aliasing_rate() < 0.05,
            "rate = {}",
            report.aliasing_rate()
        );
        assert!(report.detected_signature >= report.detected_exact - report.aliased.len());
    }

    #[test]
    fn empty_universe_is_rejected() {
        let config = MemoryConfig::new(4, 4).unwrap();
        let transformed = TwmTa::new(4).unwrap().transform(&march_c_minus()).unwrap();
        let result = aliasing_report(
            transformed.transparent_test(),
            transformed.signature_prediction().unwrap(),
            &[],
            config,
            &Misr::standard(4),
            EvaluationOptions::default(),
        );
        assert!(matches!(result, Err(CoverageError::EmptyUniverse)));
    }
}
