//! The reusable, streaming fault-coverage engine.
//!
//! [`CoverageEngine`] is the single evaluation surface of this crate: built
//! once per `(memory shape, march test)` pair, it owns everything that can
//! be amortised across fault-injection runs —
//!
//! * the [pre-lowered](twm_bist::LoweredTest) operation stream of the test,
//! * the pre-generated pseudo-random initial contents,
//! * and a pool of reusable [`FaultyMemory`] arenas, re-armed per fault via
//!   [`FaultyMemory::reset_with_fault`] so repeated evaluations allocate no
//!   per-fault memories.
//!
//! The engine exposes three verbs:
//!
//! * [`CoverageEngine::report`] — evaluate a fault universe into a
//!   [`CoverageReport`], bit-identical to the historical
//!   `evaluate_parallel` / `evaluate_serial` output for any thread count;
//! * [`CoverageEngine::verdicts`] — a streaming iterator of per-fault
//!   [`FaultVerdict`]s with bounded memory, for universes that do not fit
//!   in memory (the universe is consumed lazily, a bounded window at a
//!   time, and verdicts are yielded in universe order);
//! * [`CoverageEngine::compare`] — fault-by-fault comparison against a
//!   second engine, producing an [`EquivalenceReport`] (the paper's
//!   Section 5 theorem check).
//!
//! Signature-aliasing analysis ([`CoverageEngine::aliasing`]) and the
//! Figure 1 state-traversal analyses ([`CoverageEngine::cell_pair_states`],
//! [`CoverageEngine::intra_word_pair_states`]) are routed through the same
//! engine, so every experiment in the workspace shares one amortised setup.
//!
//! # Example
//!
//! ```
//! use twm_coverage::{ContentPolicy, CoverageEngine, Strategy, UniverseBuilder};
//! use twm_march::algorithms::march_c_minus;
//! use twm_mem::MemoryConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = MemoryConfig::new(16, 1)?;
//! let engine = CoverageEngine::builder(config)
//!     .test(&march_c_minus())
//!     .content(ContentPolicy::Random { seed: 7 })
//!     .strategy(Strategy::Parallel { threads: 2 })
//!     .build()?;
//! let faults = UniverseBuilder::new(config).stuck_at().transition().build();
//! let report = engine.report(&faults)?;
//! assert_eq!(report.total_coverage(), 1.0);
//! // The same engine instance evaluates any number of universes.
//! let more = UniverseBuilder::new(config).coupling_inversion().build();
//! assert_eq!(engine.report(&more)?.total_coverage(), 1.0);
//! # Ok(())
//! # }
//! ```

use std::borrow::Borrow;
use std::collections::VecDeque;
use std::sync::OnceLock;
use std::sync::{Arc, Mutex};
use std::time::Instant;

#[cfg(feature = "parallel")]
use crate::pool::WorkerPool;

use serde::{Deserialize, Serialize};

use twm_bist::flow::run_transparent_session;
use twm_bist::{
    detect_lowered_at, detect_lowered_batch, execute_lowered, ExecutionOptions, LoweredTest, Misr,
};
use twm_core::scheme::{SchemeTransform, TransparentScheme};
use twm_march::MarchTest;
use twm_mem::{
    BitStorage, Fault, FaultClass, FaultSet, FaultyMemory, Lanes, MemoryConfig, Packed64,
    PackedArena, Word,
};

use crate::equivalence::Disagreement;
use crate::states::{
    analyze_cell_pair, analyze_intra_word_pair, IntraWordPairCoverage, PairStateCoverage,
};
use crate::{
    AliasingReport, ContentPolicy, CoverageError, CoverageReport, EquivalenceReport,
    EvaluationOptions,
};

/// How the engine schedules fault-injection runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Evaluate on the calling thread only — the bit-exact reference path.
    Serial,
    /// Fan out across worker threads, probing
    /// `std::thread::available_parallelism` for the count. The
    /// `TWM_COVERAGE_THREADS` environment variable remains supported as a
    /// documented deployment fallback and overrides the probe when set to a
    /// positive integer; an explicit [`Strategy::Parallel`] beats both.
    ///
    /// Without the `parallel` crate feature this resolves to one worker
    /// (serial execution) at build time.
    #[default]
    Auto,
    /// Fan out across exactly `threads` worker threads.
    ///
    /// `threads == 0` is rejected by [`CoverageEngineBuilder::build`] with
    /// [`CoverageError::ZeroThreads`] — there is no silent clamp. Without
    /// the `parallel` crate feature the engine executes serially regardless
    /// (the feature is a compile-time capability, not a runtime setting).
    Parallel {
        /// Number of worker threads; must be non-zero.
        threads: usize,
    },
}

impl Strategy {
    /// Resolves the strategy to a concrete worker count (1 = serial). This
    /// is the resolution [`CoverageEngineBuilder::build`] performs, exposed
    /// so other schedulers (for example `twm-search`'s batched candidate
    /// evaluation) can fan out consistently with the engine.
    ///
    /// # Errors
    ///
    /// Returns [`CoverageError::ZeroThreads`] for
    /// [`Strategy::Parallel`]` { threads: 0 }`.
    pub fn worker_threads(self) -> Result<usize, CoverageError> {
        match self {
            Strategy::Serial => Ok(1),
            Strategy::Parallel { threads: 0 } => Err(CoverageError::ZeroThreads),
            #[cfg(feature = "parallel")]
            Strategy::Parallel { threads } => Ok(threads),
            #[cfg(feature = "parallel")]
            Strategy::Auto => Ok(std::env::var("TWM_COVERAGE_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
                })),
            #[cfg(not(feature = "parallel"))]
            Strategy::Parallel { .. } | Strategy::Auto => Ok(1),
        }
    }
}

/// The verdict of one fault-injection run: was the fault detected?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultVerdict {
    /// The injected fault.
    pub fault: Fault,
    /// Whether the test detected it (under every tried initial content).
    pub detected: bool,
}

/// Builder for [`CoverageEngine`] — see [`CoverageEngine::builder`].
#[derive(Debug, Clone)]
pub struct CoverageEngineBuilder {
    config: MemoryConfig,
    test: Option<MarchTest>,
    transform: Option<SchemeTransform>,
    options: EvaluationOptions,
    strategy: Strategy,
    reuse_memory: bool,
    cheap_first: bool,
    reuse_threads: bool,
    lane_batching: bool,
}

impl CoverageEngineBuilder {
    /// The march test to evaluate. Required; the test is lowered for the
    /// memory width once, at [`CoverageEngineBuilder::build`] time.
    #[must_use]
    pub fn test(mut self, test: &MarchTest) -> Self {
        self.test = Some(test.clone());
        self.transform = None;
        self
    }

    /// Evaluates a transformation scheme's transparent test: `source` is
    /// transformed through `scheme` right away (so transformation errors
    /// surface here, not at build time) and the resulting
    /// [`SchemeTransform`] is kept on the engine
    /// ([`CoverageEngine::scheme_transform`]) for callers that need the
    /// prediction test or the transformation metadata.
    ///
    /// # Errors
    ///
    /// * [`CoverageError::SchemeWidthMismatch`] if the scheme targets a
    ///   different word width than the memory configuration.
    /// * [`CoverageError::Core`] if the transformation fails.
    pub fn scheme(
        mut self,
        scheme: &dyn TransparentScheme,
        source: &MarchTest,
    ) -> Result<Self, CoverageError> {
        if scheme.width() != self.config.width() {
            return Err(CoverageError::SchemeWidthMismatch {
                scheme: scheme.width(),
                memory: self.config.width(),
            });
        }
        let transform = scheme.transform(source)?;
        self.test = Some(transform.transparent_test().clone());
        self.transform = Some(transform);
        Ok(self)
    }

    /// Initial-content policy for every fault-injection run (default:
    /// deterministic pseudo-random, see [`EvaluationOptions::default`]).
    #[must_use]
    pub fn content(mut self, content: ContentPolicy) -> Self {
        self.options.content = content;
        self
    }

    /// Number of different initial contents to try per fault (a fault
    /// counts as detected only if it is detected for **every** content).
    /// Only meaningful for [`ContentPolicy::Random`].
    #[must_use]
    pub fn contents_per_fault(mut self, contents_per_fault: usize) -> Self {
        self.options.contents_per_fault = contents_per_fault;
        self
    }

    /// Sets both content options at once from an [`EvaluationOptions`].
    #[must_use]
    pub fn options(mut self, options: EvaluationOptions) -> Self {
        self.options = options;
        self
    }

    /// Execution strategy (default: [`Strategy::Auto`]).
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Whether workers re-arm pooled [`FaultyMemory`] arenas instead of
    /// building a fresh memory per fault (default: `true`).
    ///
    /// Disabling this restores the **complete** historical (pre-engine)
    /// evaluation path, not just the allocation behaviour: a fresh memory
    /// per fault, word-by-word content restore, and a full-address sweep
    /// per run (the arena path sweeps only the fault's footprint words via
    /// [`twm_bist::detect_lowered_at`], which is the dominant saving on
    /// large memories). It exists as the A/B baseline for the
    /// `engine_reuse` benchmark and produces bit-identical reports either
    /// way (property-tested).
    #[must_use]
    pub fn memory_reuse(mut self, reuse: bool) -> Self {
        self.reuse_memory = reuse;
        self
    }

    /// Whether [`CoverageEngine::report`] may evaluate cheap-to-detect
    /// faults first (default: `true`).
    ///
    /// The parallel streaming windows split each window into contiguous
    /// per-thread chunks; on a mixed universe an unlucky chunk of wide-
    /// footprint coupling faults stalls the whole window barrier. With this
    /// enabled, `report` evaluates the universe in ascending estimated-cost
    /// order (fault-local sweep footprint, then fault class) and merges the
    /// verdicts back into **universe order**, so the produced report stays
    /// bit-identical either way — only the wall-clock differs (measured in
    /// the `universe_ordering` group of `benches/fault_sim.rs`). Streaming
    /// [`CoverageEngine::verdicts`] is never reordered.
    #[must_use]
    pub fn schedule_cheap_first(mut self, cheap_first: bool) -> Self {
        self.cheap_first = cheap_first;
        self
    }

    /// Whether parallel streaming windows run on a **persistent** worker
    /// pool instead of spawning fresh scoped threads per window (default:
    /// `true`).
    ///
    /// The pool is created lazily on the first parallel window, holds
    /// `threads − 1` workers (the calling thread evaluates one chunk
    /// itself), and is shared with every [`CoverageEngine::with_test`]
    /// sibling — so candidate-scoring loops pay thread creation once, not
    /// once per candidate per window. Verdicts stay merged in window order
    /// either way, so reports are **bit-identical** for both settings
    /// (property-tested in `tests/engine_streaming.rs`); only wall-clock
    /// differs (A/B-measured in the `engine_reuse` group of
    /// `benches/fault_sim.rs`). Disabling restores the historical
    /// spawn-per-window behaviour as the A/B baseline.
    #[must_use]
    pub fn thread_reuse(mut self, reuse: bool) -> Self {
        self.reuse_threads = reuse;
        self
    }

    /// Whether [`CoverageEngine::report`] may evaluate single-bit faults
    /// in bit-parallel lane batches (default: `true`).
    ///
    /// With this enabled, `report` packs the universe's SAF/TF faults into
    /// [`twm_mem::PackedArena`] batches of up to 64 lanes, runs the lowered
    /// op stream **once per batch** ([`twm_bist::detect_lowered_batch`])
    /// instead of once per fault, routes the remainder (coupling faults)
    /// through the scalar fault-local path, and merges all verdicts back in
    /// **universe order** — so the produced report stays bit-identical to
    /// the scalar path for any strategy (property-tested in
    /// `tests/packed_equivalence.rs`); only the wall-clock differs
    /// (A/B-measured in the `lane_packing` group of
    /// `benches/fault_sim.rs`). Streaming [`CoverageEngine::verdicts`] and
    /// [`CoverageEngine::compare`] never batch. Disabling restores the
    /// one-fault-per-execution behaviour as the A/B baseline; batching is
    /// also bypassed when [`CoverageEngineBuilder::schedule_cheap_first`]
    /// or [`CoverageEngineBuilder::memory_reuse`] are disabled, since those
    /// knobs pin the historical evaluation paths.
    #[must_use]
    pub fn lane_batching(mut self, batching: bool) -> Self {
        self.lane_batching = batching;
        self
    }

    /// Finalises the engine: lowers the test, pre-generates the initial
    /// contents and resolves the worker-thread count.
    ///
    /// # Errors
    ///
    /// * [`CoverageError::MissingTest`] if no test was supplied.
    /// * [`CoverageError::ZeroThreads`] for
    ///   [`Strategy::Parallel`]` { threads: 0 }`.
    /// * [`CoverageError::Bist`] if the test cannot be lowered for the
    ///   memory width (for example a background index out of range).
    pub fn build(self) -> Result<CoverageEngine, CoverageError> {
        let test = self.test.ok_or(CoverageError::MissingTest)?;
        let threads = self.strategy.worker_threads()?;
        let lowered =
            LoweredTest::new(&test, self.config.width()).map_err(twm_bist::BistError::from)?;
        let (content_words, content_images) =
            prepared_contents(self.config, self.options, self.reuse_memory);
        Ok(CoverageEngine {
            config: self.config,
            test,
            transform: self.transform,
            lowered,
            options: self.options,
            content_words: Arc::new(content_words),
            content_images: Arc::new(content_images),
            threads,
            reuse_memory: self.reuse_memory,
            cheap_first: self.cheap_first,
            reuse_threads: self.reuse_threads,
            lane_batching: self.lane_batching,
            pool: Mutex::new(Vec::new()),
            #[cfg(feature = "parallel")]
            scratch: Mutex::new(Vec::new()),
            #[cfg(feature = "parallel")]
            workers: Arc::new(OnceLock::new()),
        })
    }
}

/// The initial contents every fault-injection run starts from: one content
/// per round for the random policy, or none for the all-zero policy (a
/// reset memory is already zeroed). A content is kept in the form its
/// engine mode restores from — raw [`BitStorage`] images for the arena
/// path (O(blocks) copies via [`FaultyMemory::load_image`]) or word
/// vectors for the historical fresh-per-fault path (word-by-word
/// [`FaultyMemory::load`]); the unused form is never materialised.
///
/// Generated through [`FaultyMemory::fill_random`] itself so shared
/// contents can never drift from what a per-fault fill would produce.
pub(crate) fn prepared_contents(
    config: MemoryConfig,
    options: EvaluationOptions,
    as_images: bool,
) -> (Vec<Vec<Word>>, Vec<BitStorage>) {
    let mut words = Vec::new();
    let mut images = Vec::new();
    if let ContentPolicy::Random { seed } = options.content {
        let mut scratch = FaultyMemory::fault_free(config);
        for round in 0..options.contents_per_fault.max(1) {
            scratch.fill_random(seed.wrapping_add(round as u64));
            if as_images {
                images.push(scratch.snapshot());
            } else {
                words.push(scratch.content());
            }
        }
    }
    (words, images)
}

/// Number of faults pulled from the universe per worker thread per
/// streaming window: large enough to amortise fan-out, small enough that
/// [`CoverageEngine::verdicts`] stays bounded-memory.
const STREAM_CHUNK: usize = 32;

/// Number of faults a parallel worker claims per steal from a streaming
/// window's shared atomic cursor: small enough that a ragged tail of
/// expensive faults rebalances across workers (the historical contiguous
/// 32-fault chunks stalled the window barrier on an unlucky chunk), large
/// enough to keep cursor contention negligible.
#[cfg(feature = "parallel")]
const STEAL_GRAIN: usize = 4;

/// Process-wide engine counters in the [`twm_obs::global`] registry.
/// Counting is batched (one `add` per report leg or per worker drain,
/// never per fault in an inner loop) so instrumentation stays inside
/// the measured overhead bound; none of it influences verdicts.
struct EngineObs {
    /// `report` calls completed (either outcome).
    reports: twm_obs::Counter,
    /// Wall time of each `report` call.
    report_latency: twm_obs::Histogram,
    /// Lane batches resolved by one packed march execution.
    packed_batches: twm_obs::Counter,
    /// Faults evaluated through packed lanes.
    packed_faults: twm_obs::Counter,
    /// Faults evaluated on the scalar fault-local path of a batched
    /// report.
    scalar_faults: twm_obs::Counter,
    /// Work items claimed from a shared steal cursor (batched-report
    /// items and streaming-window grains). Only the parallel feature
    /// has a cursor to steal from.
    #[cfg_attr(not(feature = "parallel"), allow(dead_code))]
    window_steals: twm_obs::Counter,
    /// Streaming windows evaluated by `verdicts`.
    verdict_windows: twm_obs::Counter,
    /// Arena memories currently idle in the engine pools (checked in,
    /// ready for checkout) — pool depth across all engines.
    pool_idle_arenas: twm_obs::Gauge,
}

fn engine_obs() -> &'static EngineObs {
    static OBS: OnceLock<EngineObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let registry = twm_obs::global();
        EngineObs {
            reports: registry.counter("twm_coverage_reports_total", &[]),
            report_latency: registry.histogram(
                "twm_coverage_report_latency_ns",
                &[],
                &twm_obs::latency_bounds(),
            ),
            packed_batches: registry.counter("twm_coverage_packed_batches_total", &[]),
            packed_faults: registry.counter("twm_coverage_packed_faults_total", &[]),
            scalar_faults: registry.counter("twm_coverage_scalar_faults_total", &[]),
            window_steals: registry.counter("twm_coverage_window_steals_total", &[]),
            verdict_windows: registry.counter("twm_coverage_verdict_windows_total", &[]),
            pool_idle_arenas: registry.gauge("twm_coverage_pool_idle_arenas", &[]),
        }
    })
}

/// One parallel worker's slot-tagged verdict output for a streaming window:
/// `(window slot, verdict)` pairs, merged back in slot order so work-stealing
/// never changes the stream. Pooled on the engine across windows.
#[cfg(feature = "parallel")]
type VerdictScratch = Vec<(usize, Result<bool, CoverageError>)>;

/// Estimated relative cost of one fault-injection run, used by
/// [`CoverageEngine::report`]'s cheap-first evaluation order: the
/// fault-local sweep visits the fault's word footprint, so a two-word
/// (inter-word coupling) fault costs roughly twice a single-word fault;
/// within a footprint size, stuck-at faults mismatch on the earliest read
/// (`stop_at_first_mismatch` exits early) while coupling faults need their
/// excitation sequence first, so classes break ties.
fn fault_cost_rank(fault: &Fault) -> u32 {
    let footprint = match fault.aggressor() {
        Some(aggressor) if aggressor.word != fault.victim().word => 2u32,
        _ => 1,
    };
    footprint * 8 + fault.class() as u32
}

/// A reusable fault-coverage evaluation engine for one
/// `(memory shape, march test)` pair.
///
/// See the [module docs](self) for the design and an example. The engine is
/// `Sync`: one instance may serve concurrent evaluations, sharing its arena
/// pool.
#[derive(Debug)]
pub struct CoverageEngine {
    config: MemoryConfig,
    test: MarchTest,
    /// The scheme transform the engine was built from, when constructed via
    /// [`CoverageEngine::for_scheme`] / [`CoverageEngineBuilder::scheme`].
    transform: Option<SchemeTransform>,
    lowered: LoweredTest,
    options: EvaluationOptions,
    /// Initial contents as word vectors — populated only in the historical
    /// fresh-per-fault mode, which restores word by word. Shared (`Arc`) so
    /// [`CoverageEngine::with_test`] siblings reuse one generation.
    content_words: Arc<Vec<Vec<Word>>>,
    /// Initial contents as raw storage images — populated in arena mode,
    /// restored with block copies. Shared like `content_words`.
    content_images: Arc<Vec<BitStorage>>,
    threads: usize,
    reuse_memory: bool,
    cheap_first: bool,
    reuse_threads: bool,
    lane_batching: bool,
    /// Checked-in arena memories, re-armed per fault by workers. Bounded by
    /// the maximum number of concurrent checkouts (≤ worker threads).
    pool: Mutex<Vec<FaultyMemory>>,
    /// Checked-in per-worker verdict scratch buffers for parallel streaming
    /// windows, so long verdict streams reallocate nothing per window.
    /// Bounded like `pool`.
    #[cfg(feature = "parallel")]
    scratch: Mutex<Vec<VerdictScratch>>,
    /// Persistent window workers, created lazily on the first parallel
    /// window and shared (`Arc`) with [`CoverageEngine::with_test`]
    /// siblings so candidate loops amortise thread creation too.
    #[cfg(feature = "parallel")]
    workers: Arc<OnceLock<WorkerPool>>,
}

impl CoverageEngine {
    /// Starts a builder for the given memory shape.
    #[must_use]
    pub fn builder(config: MemoryConfig) -> CoverageEngineBuilder {
        CoverageEngineBuilder {
            config,
            test: None,
            transform: None,
            options: EvaluationOptions::default(),
            strategy: Strategy::default(),
            reuse_memory: true,
            cheap_first: true,
            reuse_threads: true,
            lane_batching: true,
        }
    }

    /// Builds a sibling engine for a **different march test** over the same
    /// memory shape, content policy and strategy — the cheap re-build path
    /// for candidate-scoring loops (`twm-search` evaluates thousands of
    /// mutated tests against one universe).
    ///
    /// Only the new test is lowered; the pre-generated initial contents are
    /// shared with this engine (`Arc`), so no content regeneration or copy
    /// happens per candidate. The sibling starts with an empty arena pool
    /// and carries no scheme transform.
    ///
    /// # Errors
    ///
    /// Returns [`CoverageError::Bist`] if `test` cannot be lowered for the
    /// memory width.
    pub fn with_test(&self, test: &MarchTest) -> Result<CoverageEngine, CoverageError> {
        let lowered =
            LoweredTest::new(test, self.config.width()).map_err(twm_bist::BistError::from)?;
        Ok(CoverageEngine {
            config: self.config,
            test: test.clone(),
            transform: None,
            lowered,
            options: self.options,
            content_words: Arc::clone(&self.content_words),
            content_images: Arc::clone(&self.content_images),
            threads: self.threads,
            reuse_memory: self.reuse_memory,
            cheap_first: self.cheap_first,
            reuse_threads: self.reuse_threads,
            lane_batching: self.lane_batching,
            pool: Mutex::new(Vec::new()),
            #[cfg(feature = "parallel")]
            scratch: Mutex::new(Vec::new()),
            #[cfg(feature = "parallel")]
            workers: Arc::clone(&self.workers),
        })
    }

    /// Builds a sibling engine for a **different transformation scheme**
    /// (and source test) over the same memory shape, content policy and
    /// strategy — the cheap re-build path for engine caches that serve many
    /// scheme workloads per memory shape (`twm-fleet` rebuilds evicted
    /// shard engines through this).
    ///
    /// Like [`CoverageEngine::with_test`], only the new transparent test is
    /// lowered and the pre-generated initial contents are shared (`Arc`);
    /// unlike `with_test`, the sibling **carries the scheme transform**, so
    /// it can seed signature-dictionary builds and staged sessions.
    ///
    /// # Errors
    ///
    /// * [`CoverageError::SchemeWidthMismatch`] if the scheme targets a
    ///   different word width than the engine's memory configuration.
    /// * [`CoverageError::Core`] if the transformation fails.
    /// * [`CoverageError::Bist`] if the transparent test cannot be lowered.
    pub fn with_scheme(
        &self,
        scheme: &dyn TransparentScheme,
        source: &MarchTest,
    ) -> Result<CoverageEngine, CoverageError> {
        if scheme.width() != self.config.width() {
            return Err(CoverageError::SchemeWidthMismatch {
                scheme: scheme.width(),
                memory: self.config.width(),
            });
        }
        let transform = scheme.transform(source)?;
        let mut sibling = self.with_test(transform.transparent_test())?;
        sibling.transform = Some(transform);
        Ok(sibling)
    }

    /// Starts a builder whose test is produced by a transformation scheme:
    /// the scheme-generic constructor behind cross-scheme workloads
    /// (`source` is transformed immediately; content policy, strategy and
    /// the other builder knobs remain settable before `build`).
    ///
    /// ```
    /// use twm_core::scheme::{SchemeId, SchemeRegistry};
    /// use twm_coverage::{ContentPolicy, CoverageEngine, UniverseBuilder};
    /// use twm_march::algorithms::march_c_minus;
    /// use twm_mem::MemoryConfig;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let config = MemoryConfig::new(16, 4)?;
    /// let registry = SchemeRegistry::all(4)?;
    /// let engine = CoverageEngine::for_scheme(
    ///     registry.get(SchemeId::TwmTa).unwrap(),
    ///     &march_c_minus(),
    ///     config,
    /// )?
    /// .content(ContentPolicy::Random { seed: 1 })
    /// .build()?;
    /// let faults = UniverseBuilder::new(config).stuck_at().transition().build();
    /// assert_eq!(engine.report(&faults)?.total_coverage(), 1.0);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// See [`CoverageEngineBuilder::scheme`].
    pub fn for_scheme(
        scheme: &dyn TransparentScheme,
        source: &MarchTest,
        config: MemoryConfig,
    ) -> Result<CoverageEngineBuilder, CoverageError> {
        Self::builder(config).scheme(scheme, source)
    }

    /// The scheme transform the engine evaluates, when it was built through
    /// [`CoverageEngine::for_scheme`] / [`CoverageEngineBuilder::scheme`].
    #[must_use]
    pub fn scheme_transform(&self) -> Option<&SchemeTransform> {
        self.transform.as_ref()
    }

    /// The memory shape the engine evaluates against.
    #[must_use]
    pub fn config(&self) -> MemoryConfig {
        self.config
    }

    /// The march test under evaluation.
    #[must_use]
    pub fn test(&self) -> &MarchTest {
        &self.test
    }

    /// The pre-lowered operation stream shared by every run.
    #[must_use]
    pub fn lowered(&self) -> &LoweredTest {
        &self.lowered
    }

    /// The content options every run uses.
    #[must_use]
    pub fn options(&self) -> EvaluationOptions {
        self.options
    }

    /// The resolved worker-thread count (1 = serial).
    #[must_use]
    pub fn worker_threads(&self) -> usize {
        self.threads
    }

    /// Evaluates the fault coverage of the engine's test over a universe.
    ///
    /// The produced report is **bit-identical** to the single-threaded
    /// reference for any worker-thread count — verdicts are merged back in
    /// universe order (property-tested in `tests/engine_streaming.rs`).
    ///
    /// # Errors
    ///
    /// * [`CoverageError::EmptyUniverse`] if `universe` is empty.
    /// * [`CoverageError::Mem`] if a fault does not fit the memory shape
    ///   (the error of the earliest offending fault in universe order).
    /// * [`CoverageError::Bist`] if the test cannot be executed on the
    ///   memory.
    pub fn report(&self, universe: &[Fault]) -> Result<CoverageReport, CoverageError> {
        let mut span = twm_obs::span("coverage.report");
        span.field("universe", universe.len());
        let start = Instant::now();
        let result = self.report_inner(universe);
        let obs = engine_obs();
        obs.reports.incr();
        obs.report_latency
            .observe(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        span.field("outcome", if result.is_ok() { "ok" } else { "error" });
        result
    }

    fn report_inner(&self, universe: &[Fault]) -> Result<CoverageReport, CoverageError> {
        if universe.is_empty() {
            return Err(CoverageError::EmptyUniverse);
        }
        if self.lane_batching && self.cheap_first && self.reuse_memory && universe.len() > 1 {
            if let Some(report) = self.report_batched(universe)? {
                return Ok(report);
            }
            // Too few packable faults to batch, or an injection error
            // occurred; fall through to the scalar paths (which carry the
            // documented earliest-error semantics).
        }
        if self.cheap_first && self.threads > 1 && universe.len() > 1 {
            if let Some(report) = self.report_cheap_first(universe)? {
                return Ok(report);
            }
            // An injection error occurred somewhere in the (reordered)
            // universe; fall through to the in-order path so the error of
            // the earliest offending fault in universe order is returned,
            // as documented. Errors are deterministic properties of a
            // (fault, memory shape) pair, so the re-run hits one too.
        }
        let mut report = CoverageReport::new(self.test.name());
        for verdict in self.verdicts(universe) {
            let verdict = verdict?;
            report.record(verdict.fault, verdict.detected);
        }
        Ok(report)
    }

    /// The cheap-first evaluation order behind [`CoverageEngine::report`]:
    /// faults are evaluated in ascending estimated-cost order so the
    /// contiguous per-thread chunks of each streaming window carry
    /// comparable work, and verdicts are merged back in universe order
    /// (the report is bit-identical to the in-order path, property-tested
    /// in `tests/engine_streaming.rs`). Returns `Ok(None)` when a fault
    /// fails to inject, deferring to the in-order path for its documented
    /// earliest-error semantics.
    fn report_cheap_first(
        &self,
        universe: &[Fault],
    ) -> Result<Option<CoverageReport>, CoverageError> {
        let mut order: Vec<usize> = (0..universe.len()).collect();
        order.sort_by_key(|&i| (fault_cost_rank(&universe[i]), i));
        let permuted: Vec<Fault> = order.iter().map(|&i| universe[i]).collect();
        let mut detected = vec![false; universe.len()];
        for (&slot, verdict) in order.iter().zip(self.verdicts(&permuted)) {
            match verdict {
                Ok(v) => detected[slot] = v.detected,
                Err(_) => return Ok(None),
            }
        }
        let mut report = CoverageReport::new(self.test.name());
        for (&fault, &hit) in universe.iter().zip(&detected) {
            report.record(fault, hit);
        }
        Ok(Some(report))
    }

    /// The bit-parallel evaluation path behind [`CoverageEngine::report`]:
    /// single-bit faults (SAF/TF) are packed into
    /// [`PackedArena`]`<`[`Packed64`]`>` lane batches — sorted by victim
    /// word so each batch's footprint stays compact — and each batch is
    /// resolved by **one** march execution
    /// ([`twm_bist::detect_lowered_batch`]); coupling faults take the
    /// scalar fault-local path in cheap-first order. Under a parallel
    /// strategy, batches and scalar chunks form one work queue that
    /// workers drain by stealing from an atomic cursor. Verdicts are
    /// merged back in **universe order**, so the report is bit-identical
    /// to every scalar path (property-tested in
    /// `tests/packed_equivalence.rs`).
    ///
    /// Returns `Ok(None)` when fewer than two faults are packable (the
    /// scalar paths are not worse there) or when any fault fails to
    /// inject, deferring to the in-order path for its documented
    /// earliest-error semantics.
    fn report_batched(&self, universe: &[Fault]) -> Result<Option<CoverageReport>, CoverageError> {
        let mut packed: Vec<usize> = Vec::new();
        let mut scalar: Vec<usize> = Vec::new();
        for (i, fault) in universe.iter().enumerate() {
            match fault.class() {
                FaultClass::Saf | FaultClass::Tf => packed.push(i),
                _ => scalar.push(i),
            }
        }
        if packed.len() < 2 {
            return Ok(None);
        }
        // Word-major batches keep each arena's footprint (and so its
        // bit-plane count) small; the index tiebreak keeps the grouping
        // deterministic.
        packed.sort_by_key(|&i| (universe[i].victim().word, i));
        scalar.sort_by_key(|&i| (fault_cost_rank(&universe[i]), i));
        let batches: Vec<&[usize]> = packed.chunks(Packed64::COUNT).collect();
        let obs = engine_obs();
        obs.packed_batches.add(batches.len() as u64);
        obs.packed_faults.add(packed.len() as u64);
        obs.scalar_faults.add(scalar.len() as u64);

        let mut detected: Vec<Option<bool>> = vec![None; universe.len()];
        if self.threads <= 1 {
            if self
                .batched_serial(universe, &batches, &scalar, &mut detected)
                .is_err()
            {
                return Ok(None);
            }
        } else {
            #[cfg(feature = "parallel")]
            {
                if !self.batched_parallel(universe, &batches, &scalar, &mut detected) {
                    return Ok(None);
                }
            }
            #[cfg(not(feature = "parallel"))]
            {
                unreachable!("threads resolve to 1 without the parallel feature")
            }
        }

        let mut report = CoverageReport::new(self.test.name());
        for (&fault, hit) in universe.iter().zip(&detected) {
            report.record(fault, hit.expect("every universe slot evaluated"));
        }
        Ok(Some(report))
    }

    /// Serial leg of [`CoverageEngine::report_batched`]: one packed arena
    /// for every lane batch, one pooled scalar arena for the remainder.
    fn batched_serial(
        &self,
        universe: &[Fault],
        batches: &[&[usize]],
        scalar: &[usize],
        detected: &mut [Option<bool>],
    ) -> Result<(), CoverageError> {
        let mut arena = PackedArena::<Packed64>::new(self.config);
        let mut faults = Vec::with_capacity(Packed64::COUNT);
        for batch in batches {
            let mask = self.batch_detected(&mut arena, universe, batch, &mut faults)?;
            for (lane, &slot) in batch.iter().enumerate() {
                detected[slot] = Some(mask >> lane & 1 == 1);
            }
        }
        let mut scalar_arena = self.checkout();
        let result = (|| {
            for &slot in scalar {
                detected[slot] = Some(self.fault_detected(&mut scalar_arena, universe[slot])?);
            }
            Ok(())
        })();
        self.checkin(scalar_arena);
        result
    }

    /// Parallel leg of [`CoverageEngine::report_batched`]: lane batches and
    /// scalar chunks form one item queue that the workers drain by stealing
    /// from an atomic cursor, each tagging its verdicts with their universe
    /// slots so the merge is order-independent. Returns `false` if any
    /// fault errored (the whole pass is then discarded).
    #[cfg(feature = "parallel")]
    fn batched_parallel(
        &self,
        universe: &[Fault],
        batches: &[&[usize]],
        scalar: &[usize],
        detected: &mut [Option<bool>],
    ) -> bool {
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

        let scalar_chunks: Vec<&[usize]> = scalar.chunks(STEAL_GRAIN.max(1)).collect();
        let total = batches.len() + scalar_chunks.len();
        let workers = self.threads.min(total).max(1);
        let cursor = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        let cursor = &cursor;
        let failed = &failed;
        let batches = &batches;
        let scalar_chunks = &scalar_chunks;
        let jobs: Vec<_> = (0..workers)
            .map(|_| {
                move || {
                    let mut arena: Option<PackedArena<Packed64>> = None;
                    let mut scalar_arena: Option<FaultyMemory> = None;
                    let mut faults = Vec::new();
                    let mut out: Vec<(usize, bool)> = Vec::new();
                    let mut steals = 0u64;
                    while !failed.load(Ordering::Relaxed) {
                        let item = cursor.fetch_add(1, Ordering::Relaxed);
                        if item >= total {
                            break;
                        }
                        steals += 1;
                        let outcome = if item < batches.len() {
                            let batch = batches[item];
                            let arena = arena
                                .get_or_insert_with(|| PackedArena::<Packed64>::new(self.config));
                            self.batch_detected(arena, universe, batch, &mut faults)
                                .map(|mask| {
                                    out.extend(
                                        batch
                                            .iter()
                                            .enumerate()
                                            .map(|(lane, &slot)| (slot, mask >> lane & 1 == 1)),
                                    );
                                })
                        } else {
                            let chunk = scalar_chunks[item - batches.len()];
                            if scalar_arena.is_none() {
                                scalar_arena = self.checkout();
                            }
                            chunk.iter().try_for_each(|&slot| {
                                self.fault_detected(&mut scalar_arena, universe[slot])
                                    .map(|hit| out.push((slot, hit)))
                            })
                        };
                        if outcome.is_err() {
                            failed.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                    engine_obs().window_steals.add(steals);
                    self.checkin(scalar_arena);
                    out
                }
            })
            .collect();
        let per_worker: Vec<Vec<(usize, bool)>> = if self.reuse_threads {
            self.workers().run(jobs)
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = jobs.into_iter().map(|job| scope.spawn(job)).collect();
                handles
                    .into_iter()
                    .map(|handle| handle.join().expect("coverage worker panicked"))
                    .collect()
            })
        };
        if failed.load(Ordering::Relaxed) {
            return false;
        }
        for (slot, hit) in per_worker.into_iter().flatten() {
            detected[slot] = Some(hit);
        }
        true
    }

    /// Whether each fault of one lane batch is detected (under every tried
    /// initial content): bit `i` of the returned mask is lane `i`'s
    /// verdict. The arena is re-armed for the batch; subsequent content
    /// rounds only reload the data planes. Masks from the content rounds
    /// are ANDed — detected means detected under **every** content, same
    /// as the scalar path — with an early exit once no lane survives.
    fn batch_detected(
        &self,
        arena: &mut PackedArena<Packed64>,
        universe: &[Fault],
        batch: &[usize],
        faults: &mut Vec<Fault>,
    ) -> Result<u64, CoverageError> {
        faults.clear();
        faults.extend(batch.iter().map(|&slot| universe[slot]));
        if self.content_images.is_empty() {
            arena.arm(faults, None)?;
            return Ok(detect_lowered_batch(&self.lowered, arena)?);
        }
        let mut mask = u64::MAX;
        for (round, image) in self.content_images.iter().enumerate() {
            if round == 0 {
                arena.arm(faults, Some(image))?;
            } else {
                arena.reload(Some(image))?;
            }
            mask &= detect_lowered_batch(&self.lowered, arena)?;
            if mask == 0 {
                break;
            }
        }
        Ok(mask)
    }

    /// Streams per-fault verdicts over a universe without materialising a
    /// report — the bounded-memory path for universes that do not fit in
    /// memory.
    ///
    /// The universe may be any iterator of faults (owned or borrowed); it
    /// is consumed lazily, one bounded window at a time (serial strategy:
    /// one fault at a time; parallel: `threads ×` [a small constant] faults
    /// per window), and verdicts are yielded **in universe order**. An
    /// empty universe yields an empty stream — only [`CoverageEngine::report`]
    /// treats emptiness as an error.
    ///
    /// Each item is a `Result`: a fault that cannot be injected or executed
    /// yields an `Err` at its position in the stream, and the stream ends
    /// after the first error.
    pub fn verdicts<I>(&self, universe: I) -> Verdicts<'_, I::IntoIter>
    where
        I: IntoIterator,
        I::Item: Borrow<Fault>,
    {
        Verdicts {
            engine: self,
            universe: universe.into_iter(),
            buffer: VecDeque::new(),
            window: Vec::new(),
            slots: Vec::new(),
            arena: None,
            poisoned: false,
        }
    }

    /// Compares the engine's test against a second engine fault by fault
    /// over the same universe — the coverage-equivalence experiment of the
    /// paper's Section 5.
    ///
    /// Each engine evaluates under its own content policy; the theorem is
    /// stated for a transparent test under arbitrary content
    /// ([`ContentPolicy::Random`]) against a non-transparent test that
    /// initialises the memory itself ([`ContentPolicy::Zeros`]).
    ///
    /// # Errors
    ///
    /// * [`CoverageError::ConfigMismatch`] if the engines evaluate against
    ///   different memory shapes.
    /// * [`CoverageError::EmptyUniverse`] for an empty universe, and the
    ///   per-fault errors of [`CoverageEngine::report`] otherwise.
    pub fn compare(
        &self,
        second: &CoverageEngine,
        universe: &[Fault],
    ) -> Result<EquivalenceReport, CoverageError> {
        if self.config != second.config {
            return Err(CoverageError::ConfigMismatch);
        }
        if universe.is_empty() {
            return Err(CoverageError::EmptyUniverse);
        }
        let mut first_report = CoverageReport::new(self.test.name());
        let mut second_report = CoverageReport::new(second.test.name());
        let mut disagreements = Vec::new();
        for (by_first, by_second) in self.verdicts(universe).zip(second.verdicts(universe)) {
            let by_first = by_first?;
            let by_second = by_second?;
            first_report.record(by_first.fault, by_first.detected);
            second_report.record(by_second.fault, by_second.detected);
            if by_first.detected != by_second.detected {
                disagreements.push(Disagreement {
                    fault: by_first.fault,
                    detected_by_first: by_first.detected,
                    detected_by_second: by_second.detected,
                });
            }
        }
        Ok(EquivalenceReport {
            first: first_report,
            second: second_report,
            disagreements,
        })
    }

    /// Evaluates MISR-signature aliasing of the engine's (transparent) test
    /// over a universe: every fault is run through the full two-phase
    /// session (prediction test, transparent test, MISR comparison) with a
    /// copy of `misr`, on an arena memory initialised under the engine's
    /// content policy.
    ///
    /// # Errors
    ///
    /// Returns [`CoverageError::EmptyUniverse`] for an empty universe and
    /// the underlying memory/BIST errors otherwise.
    pub fn aliasing(
        &self,
        prediction_test: &MarchTest,
        misr: &Misr,
        universe: &[Fault],
    ) -> Result<AliasingReport, CoverageError> {
        if universe.is_empty() {
            return Err(CoverageError::EmptyUniverse);
        }
        let mut report = AliasingReport::default();
        let mut arena = self.checkout();
        let result = (|| {
            for &fault in universe {
                let memory = self.arm(&mut arena, fault)?;
                if let Some(image) = self.content_images.first() {
                    memory.load_image(image)?;
                } else if let Some(words) = self.content_words.first() {
                    memory.load(words)?;
                }
                let outcome =
                    run_transparent_session(&self.test, prediction_test, memory, misr.clone())?;
                report.total += 1;
                if outcome.fault_detected_exact() {
                    report.detected_exact += 1;
                }
                if outcome.fault_detected() {
                    report.detected_signature += 1;
                }
                if outcome.aliased() {
                    report.aliased.push(fault);
                }
                if !self.reuse_memory {
                    arena = None;
                }
            }
            Ok(report)
        })();
        self.checkin(arena);
        result
    }

    /// The Figure 1(a) state-traversal analysis for a pair of cells of the
    /// engine's memory, run over the engine's (bit-oriented) test.
    ///
    /// # Errors
    ///
    /// See [`analyze_cell_pair`]; the engine supplies its own test and cell
    /// count.
    pub fn cell_pair_states(
        &self,
        lower: usize,
        higher: usize,
    ) -> Result<PairStateCoverage, CoverageError> {
        analyze_cell_pair(&self.test, lower, higher, self.config.cells())
    }

    /// The Figure 1(b) intra-word pair analysis for two bits of a word,
    /// starting from `initial` content, run over the engine's word-oriented
    /// test.
    ///
    /// # Errors
    ///
    /// See [`analyze_intra_word_pair`].
    pub fn intra_word_pair_states(
        &self,
        bit_a: usize,
        bit_b: usize,
        initial: Word,
    ) -> Result<IntraWordPairCoverage, CoverageError> {
        analyze_intra_word_pair(&self.test, bit_a, bit_b, initial)
    }

    /// Whether a *set* of simultaneously injected faults is detected by the
    /// engine's test (under every tried initial content) — the
    /// diagnosis-style multi-fault counterpart of a per-fault verdict.
    ///
    /// The sweep visits only the union of the faults' word footprints
    /// ([`FaultSet::word_footprint`]), which is verdict-equivalent to a
    /// full-address sweep (property-tested in
    /// `crates/bist/tests/multi_fault_local.rs` and against the historical
    /// full-sweep path in `tests/engine_streaming.rs`).
    ///
    /// # Errors
    ///
    /// * [`CoverageError::EmptyUniverse`] if `faults` is empty.
    /// * [`CoverageError::Mem`] if a fault does not fit the memory shape.
    /// * [`CoverageError::Bist`] if the test cannot be executed.
    pub fn injection_detected(&self, faults: &[Fault]) -> Result<bool, CoverageError> {
        if faults.is_empty() {
            return Err(CoverageError::EmptyUniverse);
        }
        let set = FaultSet::from_faults(faults.iter().copied());
        if !self.reuse_memory {
            // Historical full-sweep path: fresh memory per content round.
            let exec = ExecutionOptions {
                record_reads: false,
                stop_at_first_mismatch: true,
            };
            if self.content_words.is_empty() {
                let mut memory = FaultyMemory::with_faults(self.config, set)?;
                return Ok(execute_lowered(&self.lowered, &mut memory, exec)?.detected());
            }
            for words in self.content_words.iter() {
                let mut memory = FaultyMemory::with_faults(self.config, set.clone())?;
                memory.load(words)?;
                if !execute_lowered(&self.lowered, &mut memory, exec)?.detected() {
                    return Ok(false);
                }
            }
            return Ok(true);
        }

        let footprint = set.word_footprint();
        let mut arena = self.checkout();
        let result = (|| {
            let memory = arena.as_mut().expect("arena mode checked out a memory");
            if self.content_images.is_empty() {
                memory.reset_with_faults(set)?;
                return Ok(detect_lowered_at(&self.lowered, memory, &footprint)?);
            }
            for image in self.content_images.iter() {
                memory.reset_with_faults(set.clone())?;
                memory.load_image(image)?;
                if !detect_lowered_at(&self.lowered, memory, &footprint)? {
                    return Ok(false);
                }
            }
            Ok(true)
        })();
        self.checkin(arena);
        result
    }

    /// Checks an arena memory out of the pool (or decides to run in the
    /// historical fresh-per-fault mode when reuse is disabled).
    fn checkout(&self) -> Option<FaultyMemory> {
        if !self.reuse_memory {
            return None;
        }
        let mut pool = self.pool.lock().expect("arena pool lock poisoned");
        let memory = pool.pop();
        if memory.is_some() {
            engine_obs().pool_idle_arenas.decr();
        }
        Some(memory.unwrap_or_else(|| FaultyMemory::fault_free(self.config)))
    }

    /// Returns an arena memory to the pool.
    fn checkin(&self, arena: Option<FaultyMemory>) {
        if let Some(memory) = arena {
            self.pool
                .lock()
                .expect("arena pool lock poisoned")
                .push(memory);
            engine_obs().pool_idle_arenas.incr();
        }
    }

    /// Produces a memory carrying exactly `fault` on zeroed content: the
    /// arena is re-armed in place, or a fresh memory is built when reuse is
    /// disabled. Either way the result is indistinguishable from
    /// [`FaultyMemory::with_faults`] over the same fault.
    fn arm<'a>(
        &self,
        arena: &'a mut Option<FaultyMemory>,
        fault: Fault,
    ) -> Result<&'a mut FaultyMemory, CoverageError> {
        match arena {
            Some(memory) => {
                memory.reset_with_fault(fault)?;
                Ok(memory)
            }
            None => {
                *arena = Some(FaultyMemory::with_faults(
                    self.config,
                    FaultSet::from_faults([fault]),
                )?);
                Ok(arena.as_mut().expect("just inserted"))
            }
        }
    }

    /// Whether one fault is detected (under every tried initial content),
    /// using the engine's lowered test, shared contents and the given arena
    /// slot.
    fn fault_detected(
        &self,
        arena: &mut Option<FaultyMemory>,
        fault: Fault,
    ) -> Result<bool, CoverageError> {
        match arena {
            Some(memory) => self.detected_arena(memory, fault),
            None => self.detected_fresh(fault),
        }
    }

    /// Arena-mode detection: the pooled memory is re-armed per fault, the
    /// shared content restored with a block copy, and only the fault's
    /// footprint words are swept ([`twm_bist::detect_lowered_at`] — a word
    /// no fault touches can neither misread nor disturb anything, so the
    /// verdict equals a full sweep's at a fraction of the cost).
    fn detected_arena(
        &self,
        memory: &mut FaultyMemory,
        fault: Fault,
    ) -> Result<bool, CoverageError> {
        // The footprint is at most two words: the victim's and, for
        // coupling faults, the aggressor's — sorted, deduplicated, and
        // built without per-fault allocation.
        let victim = fault.victim().word;
        let mut footprint = [victim; 2];
        let words = match fault.aggressor() {
            Some(aggressor) if aggressor.word != victim => {
                footprint = [victim.min(aggressor.word), victim.max(aggressor.word)];
                2
            }
            _ => 1,
        };
        let footprint = &footprint[..words];

        if self.content_images.is_empty() {
            memory.reset_with_fault(fault)?;
            return Ok(detect_lowered_at(&self.lowered, memory, footprint)?);
        }
        for image in self.content_images.iter() {
            memory.reset_with_fault(fault)?;
            memory.load_image(image)?;
            if !detect_lowered_at(&self.lowered, memory, footprint)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// The historical fresh-per-fault detection path: a new memory is built
    /// per run, the content rebuilt word by word, and the full address
    /// space swept. Kept behind [`CoverageEngineBuilder::memory_reuse`]
    /// `(false)` as the A/B baseline; bit-identical verdicts to
    /// [`CoverageEngine::report`]'s arena path are property-tested.
    fn detected_fresh(&self, fault: Fault) -> Result<bool, CoverageError> {
        let exec = ExecutionOptions {
            record_reads: false,
            stop_at_first_mismatch: true,
        };
        if self.content_words.is_empty() {
            let mut memory =
                FaultyMemory::with_faults(self.config, FaultSet::from_faults([fault]))?;
            let result = execute_lowered(&self.lowered, &mut memory, exec)?;
            return Ok(result.detected());
        }
        for words in self.content_words.iter() {
            let mut memory =
                FaultyMemory::with_faults(self.config, FaultSet::from_faults([fault]))?;
            memory.load(words)?;
            let result = execute_lowered(&self.lowered, &mut memory, exec)?;
            if !result.detected() {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Evaluates one bounded window of faults into `slots` (index `i` gets
    /// fault `i`'s result), fanning across the worker threads when the
    /// engine is parallel.
    ///
    /// Parallel windows are drained by **work stealing**: workers claim
    /// [`STEAL_GRAIN`]-sized runs of the window from a shared atomic
    /// cursor, so a ragged tail of expensive faults rebalances instead of
    /// stalling the window barrier behind one unlucky contiguous chunk
    /// (the historical fixed per-thread split). Each worker tags results
    /// with their window slots, so the slot-indexed merge is identical for
    /// any steal interleaving — verdict order never depends on timing.
    ///
    /// `slots` is cleared and refilled; the caller owns it so streaming
    /// windows reuse one allocation. Worker-side result buffers come from
    /// the engine's persistent scratch pool for the same reason.
    fn evaluate_window_into(
        &self,
        window: &[Fault],
        slots: &mut Vec<Option<Result<bool, CoverageError>>>,
    ) {
        slots.clear();
        slots.resize_with(window.len(), || None);
        engine_obs().verdict_windows.incr();
        let threads = self.threads.min(window.len()).max(1);
        if threads <= 1 {
            let mut arena = self.checkout();
            for (slot, &fault) in window.iter().enumerate() {
                slots[slot] = Some(self.fault_detected(&mut arena, fault));
            }
            self.checkin(arena);
            return;
        }
        #[cfg(feature = "parallel")]
        {
            use std::sync::atomic::{AtomicUsize, Ordering};

            let cursor = AtomicUsize::new(0);
            let cursor = &cursor;
            let jobs: Vec<_> = (0..threads)
                .map(|_| {
                    move || {
                        let mut arena = self.checkout();
                        let mut out = self.take_scratch();
                        let mut steals = 0u64;
                        loop {
                            let start = cursor.fetch_add(STEAL_GRAIN, Ordering::Relaxed);
                            if start >= window.len() {
                                break;
                            }
                            steals += 1;
                            let end = (start + STEAL_GRAIN).min(window.len());
                            for (offset, &fault) in window[start..end].iter().enumerate() {
                                out.push((start + offset, self.fault_detected(&mut arena, fault)));
                            }
                        }
                        engine_obs().window_steals.add(steals);
                        self.checkin(arena);
                        out
                    }
                })
                .collect();
            let per_worker: Vec<VerdictScratch> = if self.reuse_threads {
                // Persistent pool: workers live across windows (and across
                // `with_test` siblings).
                self.workers().run(jobs)
            } else {
                // Historical spawn-per-window baseline (A/B in the
                // `engine_reuse` bench group).
                std::thread::scope(|scope| {
                    let handles: Vec<_> = jobs.into_iter().map(|job| scope.spawn(job)).collect();
                    handles
                        .into_iter()
                        .map(|handle| handle.join().expect("coverage worker panicked"))
                        .collect()
                })
            };
            for mut out in per_worker {
                for (slot, result) in out.drain(..) {
                    slots[slot] = Some(result);
                }
                self.return_scratch(out);
            }
        }
        #[cfg(not(feature = "parallel"))]
        {
            unreachable!("threads resolve to 1 without the parallel feature")
        }
    }

    /// Checks a verdict scratch buffer out of the persistent pool.
    #[cfg(feature = "parallel")]
    fn take_scratch(&self) -> VerdictScratch {
        self.scratch
            .lock()
            .expect("scratch pool lock poisoned")
            .pop()
            .unwrap_or_default()
    }

    /// Returns a (cleared) verdict scratch buffer to the persistent pool.
    #[cfg(feature = "parallel")]
    fn return_scratch(&self, mut buffer: VerdictScratch) {
        buffer.clear();
        self.scratch
            .lock()
            .expect("scratch pool lock poisoned")
            .push(buffer);
    }

    /// The engine's persistent window workers, created on first use.
    #[cfg(feature = "parallel")]
    fn workers(&self) -> &WorkerPool {
        self.workers
            .get_or_init(|| WorkerPool::new(self.threads.saturating_sub(1)))
    }
}

/// Streaming per-fault verdict iterator — see [`CoverageEngine::verdicts`].
///
/// Holds at most one bounded window of pending verdicts; dropping the
/// iterator mid-stream returns its arena memory to the engine's pool.
#[derive(Debug)]
pub struct Verdicts<'e, I> {
    engine: &'e CoverageEngine,
    universe: I,
    buffer: VecDeque<Result<FaultVerdict, CoverageError>>,
    /// The current window's faults, reused across refills so long streams
    /// allocate one window, not one per window.
    window: Vec<Fault>,
    /// Slot-indexed window results, reused like `window`.
    slots: Vec<Option<Result<bool, CoverageError>>>,
    /// Arena held across `next()` calls on the serial path, so one-at-a-time
    /// streaming still reuses a single memory.
    arena: Option<FaultyMemory>,
    /// Set after yielding an error; the stream is over.
    poisoned: bool,
}

impl<I> Verdicts<'_, I>
where
    I: Iterator,
    I::Item: Borrow<Fault>,
{
    /// Pulls and evaluates the next window of faults from the universe.
    fn refill(&mut self) {
        if self.engine.threads <= 1 {
            // Serial: stream strictly one fault at a time with a held arena.
            if let Some(fault) = self.universe.next() {
                let fault = *fault.borrow();
                if self.arena.is_none() {
                    self.arena = self.engine.checkout();
                }
                let verdict = self
                    .engine
                    .fault_detected(&mut self.arena, fault)
                    .map(|detected| FaultVerdict { fault, detected });
                self.buffer.push_back(verdict);
            }
            return;
        }
        self.window.clear();
        self.window.extend(
            self.universe
                .by_ref()
                .take(self.engine.threads * STREAM_CHUNK)
                .map(|fault| *fault.borrow()),
        );
        if self.window.is_empty() {
            return;
        }
        self.engine
            .evaluate_window_into(&self.window, &mut self.slots);
        self.buffer.extend(
            self.window
                .iter()
                .zip(self.slots.drain(..))
                .map(|(&fault, result)| {
                    result
                        .expect("every window slot evaluated")
                        .map(|detected| FaultVerdict { fault, detected })
                }),
        );
    }
}

impl<I> Iterator for Verdicts<'_, I>
where
    I: Iterator,
    I::Item: Borrow<Fault>,
{
    type Item = Result<FaultVerdict, CoverageError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.poisoned {
            return None;
        }
        if self.buffer.is_empty() {
            self.refill();
        }
        let item = self.buffer.pop_front();
        if matches!(item, Some(Err(_))) {
            self.poisoned = true;
            self.buffer.clear();
        }
        item
    }
}

impl<I> Drop for Verdicts<'_, I> {
    fn drop(&mut self) {
        self.engine.checkin(self.arena.take());
    }
}
