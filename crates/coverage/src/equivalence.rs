//! Coverage-equivalence check (the paper's Section 5 theorem).
//!
//! The paper proves that the transparent word-oriented march test produced
//! by TWM_TA (TWMarch = TSMarch + ATMarch) preserves the fault coverage of
//! the corresponding *non-transparent* word-oriented march test
//! (SMarch + AMarch). Because a transparent test operates relative to the
//! arbitrary initial content, an individual fault instance may be detected
//! under one content and escape under another — but over a fault universe
//! that is *closed under content translation* (every polarity/transition
//! variant of every cell pair is present), the number of detected faults per
//! class is identical. This module measures exactly that.
//!
//! One caveat the paper's abstract analysis glosses over and the bit-true
//! simulation makes visible: a *state* coupling fault (CFst) whose aggressor
//! rests at its activating value has already corrupted the victim before the
//! transparent test starts. The transparent test adopts that corrupted
//! content as its reference, so its CFst detection set differs from the
//! non-transparent test's (in both directions, depending on the idle
//! content). The equivalence therefore holds exactly for SAF, TF, CFid and
//! CFin, and approximately (within a few per cent) for CFst; see
//! EXPERIMENTS.md for the measured numbers.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use twm_march::MarchTest;
use twm_mem::{Fault, FaultClass, MemoryConfig};

use crate::evaluator::EvaluationOptions;
use crate::{CoverageEngine, CoverageError, CoverageReport, Strategy};

/// Per-fault disagreement between two tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Disagreement {
    /// The fault in question.
    pub fault: Fault,
    /// Whether the first test detected it.
    pub detected_by_first: bool,
    /// Whether the second test detected it.
    pub detected_by_second: bool,
}

/// Result of comparing the coverage of two march tests over the same fault
/// universe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EquivalenceReport {
    /// Coverage report of the first test.
    pub first: CoverageReport,
    /// Coverage report of the second test.
    pub second: CoverageReport,
    /// Faults on which the two tests disagree.
    pub disagreements: Vec<Disagreement>,
}

impl EquivalenceReport {
    /// Whether the per-class detected counts are identical (the coverage
    /// equivalence the paper proves).
    #[must_use]
    pub fn class_counts_equal(&self) -> bool {
        let counts = |report: &CoverageReport| -> BTreeMap<FaultClass, (usize, usize)> {
            report
                .per_class
                .iter()
                .map(|(class, c)| (*class, (c.total, c.detected)))
                .collect()
        };
        counts(&self.first) == counts(&self.second)
    }

    /// Whether the per-class detected counts are identical for the given
    /// fault classes.
    #[must_use]
    pub fn class_counts_equal_for(&self, classes: &[FaultClass]) -> bool {
        classes.iter().all(|class| {
            let first = self.first.per_class.get(class).copied().unwrap_or_default();
            let second = self
                .second
                .per_class
                .get(class)
                .copied()
                .unwrap_or_default();
            (first.total, first.detected) == (second.total, second.detected)
        })
    }

    /// Absolute difference in coverage fraction for one fault class.
    #[must_use]
    pub fn class_coverage_gap(&self, class: FaultClass) -> f64 {
        (self.first.class_coverage(class) - self.second.class_coverage(class)).abs()
    }

    /// Whether the two tests agree on every individual fault.
    #[must_use]
    pub fn fault_by_fault_equal(&self) -> bool {
        self.disagreements.is_empty()
    }
}

/// Compares the fault coverage of two march tests over the same fault list
/// and memory configuration.
///
/// Each test is evaluated under its own options; the paper's theorem is
/// stated for a transparent test under arbitrary content
/// ([`crate::ContentPolicy::Random`]) against a non-transparent test that
/// initialises the memory itself ([`crate::ContentPolicy::Zeros`]).
///
/// # Errors
///
/// Returns [`CoverageError::EmptyUniverse`] for an empty fault list and the
/// evaluator's errors for tests that cannot run on the configuration.
pub fn coverage_equivalence(
    first: &MarchTest,
    second: &MarchTest,
    faults: &[Fault],
    config: MemoryConfig,
    first_options: EvaluationOptions,
    second_options: EvaluationOptions,
) -> Result<EquivalenceReport, CoverageError> {
    if faults.is_empty() {
        return Err(CoverageError::EmptyUniverse);
    }
    // One engine per test amortises the per-run setup: each test is lowered
    // once and its initial contents generated once, shared across every
    // fault-injection run. The serial strategy keeps this convenience
    // wrapper deterministic and dependency-light; build the engines with an
    // explicit parallel strategy to fan the comparison out.
    let first_engine = CoverageEngine::builder(config)
        .test(first)
        .options(first_options)
        .strategy(Strategy::Serial)
        .build()?;
    let second_engine = CoverageEngine::builder(config)
        .test(second)
        .options(second_options)
        .strategy(Strategy::Serial)
        .build()?;
    first_engine.compare(&second_engine, faults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{CouplingScope, UniverseBuilder};
    use twm_core::atmarch::amarch;
    use twm_core::{TransparentScheme, TwmTa};
    use twm_march::algorithms::{march_c_minus, mats_plus};

    fn config(words: usize, width: usize) -> MemoryConfig {
        MemoryConfig::new(words, width).unwrap()
    }

    /// The non-transparent word-oriented counterpart of TWMarch:
    /// SMarch (the bit-oriented test on solid backgrounds) followed by
    /// AMarch.
    fn nontransparent_counterpart(bmarch: &MarchTest, width: usize) -> MarchTest {
        bmarch.concatenated(
            &amarch(width).unwrap(),
            format!("{} + AMarch (W={width})", bmarch.name()),
        )
    }

    #[test]
    fn twmarch_preserves_word_oriented_coverage_counts() {
        // The paper's Section 5 theorem, measured: per-class detected counts
        // of the transparent TWMarch equal those of the non-transparent
        // word-oriented march test, over a translation-closed fault universe.
        let width = 4;
        let c = config(6, width);
        let transformed = TwmTa::new(width)
            .unwrap()
            .transform(&march_c_minus())
            .unwrap();
        let counterpart = nontransparent_counterpart(&march_c_minus(), width);
        // Full enumeration over intra-word and adjacent-word pairs is closed
        // under content translation (every variant of every pair is present).
        let faults = UniverseBuilder::new(c).all_classes().build();
        // The transparent test runs on arbitrary content; the non-transparent
        // test initialises the memory itself and is evaluated from all-zero
        // content. Under content translation these settings correspond, so
        // per-class detected counts must be identical.
        let report = coverage_equivalence(
            transformed.transparent_test(),
            &counterpart,
            &faults,
            c,
            EvaluationOptions {
                content: crate::ContentPolicy::Random { seed: 2024 },
                contents_per_fault: 1,
            },
            EvaluationOptions {
                content: crate::ContentPolicy::Zeros,
                contents_per_fault: 1,
            },
        )
        .unwrap();
        // Exact equality for the fault classes whose detection is purely
        // operation-driven.
        assert!(
            report.class_counts_equal_for(&[
                FaultClass::Saf,
                FaultClass::Tf,
                FaultClass::Cfid,
                FaultClass::Cfin,
            ]),
            "per-class counts differ:\n{}\n{}",
            report.first,
            report.second
        );
        // State coupling faults that are active in the idle state corrupt
        // the content before the transparent test starts; the detection sets
        // then differ slightly in both directions (see module docs). The
        // coverage gap stays small.
        assert!(
            report.class_coverage_gap(FaultClass::Cfst) < 0.05,
            "CFst coverage gap too large:\n{}\n{}",
            report.first,
            report.second
        );
        // Inter-word coupling faults are covered identically and completely.
        assert_eq!(report.first.inter_word.fraction(), 1.0);
        assert_eq!(report.second.inter_word.fraction(), 1.0);
    }

    #[test]
    fn equivalence_report_flags_genuinely_different_tests() {
        // MATS+ and March C- are not coverage-equivalent over coupling
        // faults; the report must say so.
        let c = config(8, 1);
        let faults = UniverseBuilder::new(c)
            .coupling_idempotent()
            .coupling_scope(CouplingScope::AllPairs)
            .sample_per_class(100, 5)
            .build();
        let report = coverage_equivalence(
            &mats_plus(),
            &march_c_minus(),
            &faults,
            c,
            EvaluationOptions::default(),
            EvaluationOptions::default(),
        )
        .unwrap();
        assert!(!report.class_counts_equal());
        assert!(!report.fault_by_fault_equal());
        assert!(!report.disagreements.is_empty());
    }

    #[test]
    fn empty_universe_is_rejected() {
        let c = config(2, 2);
        let result = coverage_equivalence(
            &mats_plus(),
            &march_c_minus(),
            &[],
            c,
            EvaluationOptions::default(),
            EvaluationOptions::default(),
        );
        assert!(matches!(result, Err(CoverageError::EmptyUniverse)));
    }
}
