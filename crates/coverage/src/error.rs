use std::error::Error;
use std::fmt;

use twm_bist::BistError;
use twm_core::CoreError;
use twm_mem::MemError;

/// Errors produced by the coverage evaluator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoverageError {
    /// The fault list is empty, so no coverage can be computed.
    EmptyUniverse,
    /// An underlying BIST-engine error.
    Bist(BistError),
    /// An underlying memory error.
    Mem(MemError),
    /// The analysed test is not usable for the requested analysis.
    UnsupportedTest {
        /// Description of the problem.
        detail: String,
    },
    /// A [`crate::CoverageEngine`] builder was finalised without a test.
    MissingTest,
    /// An explicit worker-thread count of zero was requested
    /// ([`crate::Strategy::Parallel`] with `threads == 0`).
    ZeroThreads,
    /// Two engines over different memory shapes were asked to compare.
    ConfigMismatch,
    /// A transformation scheme failed to produce its transparent test.
    Core(CoreError),
    /// A scheme built for one word width was asked to evaluate against a
    /// memory of another width.
    SchemeWidthMismatch {
        /// Word width the scheme targets.
        scheme: usize,
        /// Word width of the memory configuration.
        memory: usize,
    },
}

impl fmt::Display for CoverageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverageError::EmptyUniverse => write!(f, "fault universe contains no faults"),
            CoverageError::Bist(err) => write!(f, "bist error: {err}"),
            CoverageError::Mem(err) => write!(f, "memory error: {err}"),
            CoverageError::UnsupportedTest { detail } => {
                write!(f, "unsupported test for this analysis: {detail}")
            }
            CoverageError::MissingTest => {
                write!(f, "coverage engine built without a march test")
            }
            CoverageError::ZeroThreads => {
                write!(f, "explicit worker-thread count must be non-zero")
            }
            CoverageError::ConfigMismatch => {
                write!(f, "engines evaluate against different memory shapes")
            }
            CoverageError::Core(err) => write!(f, "scheme transformation error: {err}"),
            CoverageError::SchemeWidthMismatch { scheme, memory } => write!(
                f,
                "scheme targets {scheme}-bit words but the memory has {memory}-bit words"
            ),
        }
    }
}

impl Error for CoverageError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoverageError::Bist(err) => Some(err),
            CoverageError::Mem(err) => Some(err),
            CoverageError::Core(err) => Some(err),
            _ => None,
        }
    }
}

impl From<BistError> for CoverageError {
    fn from(err: BistError) -> Self {
        CoverageError::Bist(err)
    }
}

impl From<MemError> for CoverageError {
    fn from(err: MemError) -> Self {
        CoverageError::Mem(err)
    }
}

impl From<CoreError> for CoverageError {
    fn from(err: CoreError) -> Self {
        CoverageError::Core(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let err: CoverageError = MemError::EmptyMemory.into();
        assert!(err.source().is_some());
        let err: CoverageError = BistError::EmptyWindowModel.into();
        assert!(err.to_string().contains("bist error"));
        let err: CoverageError = CoreError::InvalidWidth { width: 1 }.into();
        assert!(err.to_string().contains("scheme transformation error"));
        assert!(err.source().is_some());
        assert!(!CoverageError::EmptyUniverse.to_string().is_empty());
    }

    #[test]
    fn error_is_well_behaved() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<CoverageError>();
    }
}
