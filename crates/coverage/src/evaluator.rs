//! Fault-coverage evaluation by fault injection and test execution.
//!
//! Each fault is injected into a fresh memory with deterministic
//! pseudo-random content (transparent tests must work for *any* initial
//! content, so the content is part of the experiment), the march test is
//! executed, and the exact-compare oracle decides whether the fault was
//! detected. Per-class results are aggregated into a
//! [`crate::CoverageReport`].
//!
//! ## Execution strategy
//!
//! Every fault-injection run is independent, so the evaluator amortises the
//! per-run setup once per evaluation — the march test is
//! [pre-lowered](twm_bist::LoweredTest) for the memory width and the
//! pseudo-random initial contents are generated once and shared — and then
//! fans the fault universe across worker threads ([`evaluate_parallel`],
//! enabled by the default `parallel` feature). Faults are partitioned into
//! contiguous chunks and results merged back in universe order, so the
//! produced [`crate::CoverageReport`] is **bit-identical** to the serial
//! path ([`evaluate_serial`]) regardless of thread count. The worker count
//! follows `std::thread::available_parallelism`, overridable with the
//! `TWM_COVERAGE_THREADS` environment variable.

use twm_bist::{execute_lowered, execute_with, ExecutionOptions, LoweredTest};
use twm_march::MarchTest;
use twm_mem::{Fault, FaultSet, FaultyMemory, MemoryConfig, Word};

use crate::{CoverageError, CoverageReport};

/// How the memory is initialised before each fault-injection run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentPolicy {
    /// All-zero initial content — the natural setting for non-transparent
    /// march tests, which initialise the memory themselves.
    Zeros,
    /// Deterministic pseudo-random initial content derived from a seed — the
    /// setting transparent tests are designed for (they must work for any
    /// content).
    Random {
        /// Seed for the pseudo-random content.
        seed: u64,
    },
}

/// Options controlling the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvaluationOptions {
    /// Initial memory content policy.
    pub content: ContentPolicy,
    /// Number of different initial contents to try per fault; a fault counts
    /// as detected if it is detected for **every** tried content (the
    /// transparent test must not rely on a lucky content). Only meaningful
    /// for [`ContentPolicy::Random`].
    pub contents_per_fault: usize,
}

impl Default for EvaluationOptions {
    fn default() -> Self {
        Self {
            content: ContentPolicy::Random { seed: 0x7773_4D43 },
            contents_per_fault: 1,
        }
    }
}

/// Evaluates the fault coverage of a march test with default options.
///
/// # Errors
///
/// See [`evaluate_with`].
pub fn evaluate(
    test: &MarchTest,
    faults: &[Fault],
    config: MemoryConfig,
    content_seed: u64,
) -> Result<CoverageReport, CoverageError> {
    evaluate_with(
        test,
        faults,
        config,
        EvaluationOptions {
            content: ContentPolicy::Random { seed: content_seed },
            ..EvaluationOptions::default()
        },
    )
}

/// Evaluates the fault coverage of a march test over an explicit fault list.
///
/// Routes to [`evaluate_parallel`] when the `parallel` feature is enabled
/// (the default) and to [`evaluate_serial`] otherwise; both produce
/// bit-identical reports.
///
/// # Errors
///
/// * [`CoverageError::EmptyUniverse`] if `faults` is empty.
/// * [`CoverageError::Mem`] if a fault does not fit the memory shape.
/// * [`CoverageError::Bist`] if the test cannot be executed on the memory
///   (for example a background index out of range for the word width).
pub fn evaluate_with(
    test: &MarchTest,
    faults: &[Fault],
    config: MemoryConfig,
    options: EvaluationOptions,
) -> Result<CoverageReport, CoverageError> {
    #[cfg(feature = "parallel")]
    {
        evaluate_parallel(test, faults, config, options)
    }
    #[cfg(not(feature = "parallel"))]
    {
        evaluate_serial(test, faults, config, options)
    }
}

/// The initial contents every fault-injection run starts from: one content
/// per round for the random policy, or none for the all-zero policy (a
/// freshly built memory is already zeroed).
///
/// Generated through [`FaultyMemory::fill_random`] itself so shared
/// contents can never drift from what a per-fault fill would produce.
pub(crate) fn prepared_contents(
    config: MemoryConfig,
    options: EvaluationOptions,
) -> Vec<Vec<Word>> {
    match options.content {
        ContentPolicy::Zeros => Vec::new(),
        ContentPolicy::Random { seed } => {
            let mut scratch = FaultyMemory::fault_free(config);
            (0..options.contents_per_fault.max(1))
                .map(|round| {
                    scratch.fill_random(seed.wrapping_add(round as u64));
                    scratch.content()
                })
                .collect()
        }
    }
}

/// Whether a single fault is detected, using a pre-lowered test and shared
/// pre-generated initial contents.
pub(crate) fn fault_detected_prepared(
    test: &LoweredTest,
    fault: Fault,
    config: MemoryConfig,
    contents: &[Vec<Word>],
) -> Result<bool, CoverageError> {
    let options = ExecutionOptions {
        record_reads: false,
        stop_at_first_mismatch: true,
    };
    if contents.is_empty() {
        let mut memory = FaultyMemory::with_faults(config, FaultSet::from_faults([fault]))?;
        let result = execute_lowered(test, &mut memory, options)?;
        return Ok(result.detected());
    }
    for content in contents {
        let mut memory = FaultyMemory::with_faults(config, FaultSet::from_faults([fault]))?;
        memory.load(content)?;
        let result = execute_lowered(test, &mut memory, options)?;
        if !result.detected() {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Evaluates the fault coverage on the calling thread only.
///
/// This is the reference implementation [`evaluate_parallel`] must agree
/// with bit for bit; it still benefits from the pre-lowered test and the
/// shared initial contents.
///
/// # Errors
///
/// See [`evaluate_with`].
pub fn evaluate_serial(
    test: &MarchTest,
    faults: &[Fault],
    config: MemoryConfig,
    options: EvaluationOptions,
) -> Result<CoverageReport, CoverageError> {
    if faults.is_empty() {
        return Err(CoverageError::EmptyUniverse);
    }
    let lowered = LoweredTest::new(test, config.width()).map_err(twm_bist::BistError::from)?;
    let contents = prepared_contents(config, options);
    let mut report = CoverageReport::new(test.name());
    for &fault in faults {
        let detected = fault_detected_prepared(&lowered, fault, config, &contents)?;
        report.record(fault, detected);
    }
    Ok(report)
}

/// Number of worker threads to use: `TWM_COVERAGE_THREADS` when set,
/// otherwise the machine's available parallelism.
#[cfg(feature = "parallel")]
fn worker_threads() -> usize {
    std::env::var("TWM_COVERAGE_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
}

/// Evaluates the fault coverage by fanning the fault universe across worker
/// threads.
///
/// The march test is lowered once and the pseudo-random initial contents
/// are generated once; workers share both by reference and simulate
/// contiguous chunks of the universe. Detection verdicts are merged back in
/// universe order, so the report is bit-identical to [`evaluate_serial`]
/// for any thread count.
///
/// # Errors
///
/// See [`evaluate_with`]. When several faults would error, the error of the
/// earliest fault in universe order is returned, matching the serial path.
#[cfg(feature = "parallel")]
pub fn evaluate_parallel(
    test: &MarchTest,
    faults: &[Fault],
    config: MemoryConfig,
    options: EvaluationOptions,
) -> Result<CoverageReport, CoverageError> {
    evaluate_parallel_with_threads(test, faults, config, options, worker_threads())
}

/// [`evaluate_parallel`] with an explicit worker-thread count, bypassing
/// `TWM_COVERAGE_THREADS` and the available-parallelism probe. The report
/// is bit-identical to [`evaluate_serial`] for any `threads` value.
///
/// # Errors
///
/// See [`evaluate_with`].
#[cfg(feature = "parallel")]
pub fn evaluate_parallel_with_threads(
    test: &MarchTest,
    faults: &[Fault],
    config: MemoryConfig,
    options: EvaluationOptions,
    threads: usize,
) -> Result<CoverageReport, CoverageError> {
    if faults.is_empty() {
        return Err(CoverageError::EmptyUniverse);
    }
    let threads = threads.max(1).min(faults.len());
    if threads <= 1 {
        return evaluate_serial(test, faults, config, options);
    }

    let lowered = LoweredTest::new(test, config.width()).map_err(twm_bist::BistError::from)?;
    let contents = prepared_contents(config, options);
    let chunk_size = faults.len().div_ceil(threads);

    let chunk_results: Vec<Result<Vec<bool>, CoverageError>> = std::thread::scope(|scope| {
        let lowered = &lowered;
        let contents = &contents;
        let handles: Vec<_> = faults
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|&fault| fault_detected_prepared(lowered, fault, config, contents))
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("coverage worker panicked"))
            .collect()
    });

    let mut report = CoverageReport::new(test.name());
    let mut fault_iter = faults.iter();
    for chunk in chunk_results {
        for detected in chunk? {
            let &fault = fault_iter.next().expect("one verdict per fault");
            report.record(fault, detected);
        }
    }
    Ok(report)
}

/// Whether a single fault is detected by the test (under every tried initial
/// content).
///
/// # Errors
///
/// Same as [`evaluate_with`].
pub fn fault_detected(
    test: &MarchTest,
    fault: Fault,
    config: MemoryConfig,
    options: EvaluationOptions,
) -> Result<bool, CoverageError> {
    let tries = match options.content {
        ContentPolicy::Zeros => 1,
        ContentPolicy::Random { .. } => options.contents_per_fault.max(1),
    };
    for round in 0..tries {
        let mut memory = FaultyMemory::with_faults(config, FaultSet::from_faults([fault]))?;
        if let ContentPolicy::Random { seed } = options.content {
            memory.fill_random(seed.wrapping_add(round as u64));
        }
        let result = execute_with(
            test,
            &mut memory,
            ExecutionOptions {
                record_reads: false,
                stop_at_first_mismatch: true,
            },
        )?;
        if !result.detected() {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{CouplingScope, UniverseBuilder};
    use twm_core::TwmTransformer;
    use twm_march::algorithms::{march_c_minus, mats_plus};
    use twm_mem::FaultClass;

    fn config(words: usize, width: usize) -> MemoryConfig {
        MemoryConfig::new(words, width).unwrap()
    }

    #[test]
    fn empty_universe_is_rejected() {
        let result = evaluate(&march_c_minus(), &[], config(4, 1), 1);
        assert!(matches!(result, Err(CoverageError::EmptyUniverse)));
    }

    #[test]
    fn bit_oriented_march_c_minus_covers_saf_tf_and_cf() {
        let c = config(12, 1);
        let faults = UniverseBuilder::new(c)
            .all_classes()
            .coupling_scope(CouplingScope::AllPairs)
            .sample_per_class(120, 3)
            .build();
        let report = evaluate(&march_c_minus(), &faults, c, 5).unwrap();
        for class in FaultClass::all() {
            assert_eq!(
                report.class_coverage(class),
                1.0,
                "March C- must cover 100% of {class}: {report}"
            );
        }
    }

    #[test]
    fn mats_plus_misses_coupling_faults_march_c_minus_catches() {
        // MATS+ is not a coupling-fault test; the evaluator must show that.
        let c = config(10, 1);
        let faults = UniverseBuilder::new(c)
            .coupling_idempotent()
            .coupling_scope(CouplingScope::AllPairs)
            .sample_per_class(150, 11)
            .build();
        let mats = evaluate(&mats_plus(), &faults, c, 5).unwrap();
        let march_c = evaluate(&march_c_minus(), &faults, c, 5).unwrap();
        assert!(mats.class_coverage(FaultClass::Cfid) < 1.0);
        assert_eq!(march_c.class_coverage(FaultClass::Cfid), 1.0);
    }

    #[test]
    fn transparent_word_oriented_test_covers_word_memory_faults() {
        let width = 4;
        let c = config(8, width);
        let transformed = TwmTransformer::new(width)
            .unwrap()
            .transform(&march_c_minus())
            .unwrap();
        let faults = UniverseBuilder::new(c)
            .all_classes()
            .sample_per_class(80, 21)
            .build();
        let report = evaluate_with(
            transformed.transparent_test(),
            &faults,
            c,
            EvaluationOptions {
                content: ContentPolicy::Random { seed: 17 },
                contents_per_fault: 2,
            },
        )
        .unwrap();
        assert_eq!(report.class_coverage(FaultClass::Saf), 1.0, "{report}");
        assert_eq!(report.class_coverage(FaultClass::Tf), 1.0, "{report}");
        // Inter-word coupling faults behave exactly like the bit-oriented
        // case, so the transparent test detects every sampled instance.
        assert_eq!(report.inter_word.fraction(), 1.0, "{report}");
        // Intra-word coupling coverage is bounded by what the word-oriented
        // (non-transparent) march test itself achieves; the equivalence with
        // that bound is checked in the `equivalence` module.
        assert!(report.intra_word.fraction() > 0.5, "{report}");
    }

    #[test]
    fn tsmarch_alone_misses_intra_word_coupling_faults() {
        // Without ATMarch the solid-background transparent test cannot excite
        // couplings between bits of the same word: this is the gap ATMarch
        // closes (Section 5 of the paper).
        let width = 4;
        let c = config(8, width);
        let transformed = TwmTransformer::new(width)
            .unwrap()
            .transform(&march_c_minus())
            .unwrap();
        let faults = UniverseBuilder::new(c)
            .coupling_idempotent()
            .coupling_scope(CouplingScope::SameWord)
            .sample_per_class(60, 9)
            .build();
        let tsmarch_only = evaluate(transformed.tsmarch(), &faults, c, 23).unwrap();
        let full = evaluate(transformed.transparent_test(), &faults, c, 23).unwrap();
        assert!(tsmarch_only.intra_word.fraction() < 1.0);
        assert!(
            full.intra_word.fraction() > tsmarch_only.intra_word.fraction(),
            "ATMarch must add intra-word CF coverage: {} vs {}",
            full.intra_word.fraction(),
            tsmarch_only.intra_word.fraction()
        );
    }
}
