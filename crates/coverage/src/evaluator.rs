//! Fault-coverage evaluation by fault injection and test execution.
//!
//! Each fault is injected into a memory with deterministic pseudo-random
//! content (transparent tests must work for *any* initial content, so the
//! content is part of the experiment), the march test is executed, and the
//! exact-compare oracle decides whether the fault was detected. Per-class
//! results are aggregated into a [`crate::CoverageReport`].
//!
//! ## Evaluation lives in the engine
//!
//! All evaluation flows through [`crate::CoverageEngine`] (see
//! [`crate::engine`]): built once per `(memory shape, march test)`, the
//! engine owns the pre-lowered operation stream, the pre-generated initial
//! contents and a pool of reusable memory arenas, and exposes
//! [`report`](crate::CoverageEngine::report) /
//! [`verdicts`](crate::CoverageEngine::verdicts) /
//! [`compare`](crate::CoverageEngine::compare). The historical `evaluate*`
//! free-function zoo was deprecated when the engine landed and has been
//! removed; see the MIGRATION table in the repository's `CHANGES.md` for
//! the one-line replacements.
//!
//! This module defines the option types the engine consumes —
//! [`ContentPolicy`] and [`EvaluationOptions`] — plus the one-off
//! [`fault_detected`] query.

use serde::{Deserialize, Serialize};

use twm_bist::{execute_with, ExecutionOptions};
use twm_march::MarchTest;
use twm_mem::{Fault, FaultSet, FaultyMemory, MemoryConfig};

use crate::CoverageError;

/// How the memory is initialised before each fault-injection run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContentPolicy {
    /// All-zero initial content — the natural setting for non-transparent
    /// march tests, which initialise the memory themselves.
    Zeros,
    /// Deterministic pseudo-random initial content derived from a seed — the
    /// setting transparent tests are designed for (they must work for any
    /// content).
    Random {
        /// Seed for the pseudo-random content.
        seed: u64,
    },
}

/// Options controlling the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvaluationOptions {
    /// Initial memory content policy.
    pub content: ContentPolicy,
    /// Number of different initial contents to try per fault; a fault counts
    /// as detected if it is detected for **every** tried content (the
    /// transparent test must not rely on a lucky content). Only meaningful
    /// for [`ContentPolicy::Random`].
    pub contents_per_fault: usize,
}

impl Default for EvaluationOptions {
    fn default() -> Self {
        Self {
            content: ContentPolicy::Random { seed: 0x7773_4D43 },
            contents_per_fault: 1,
        }
    }
}

/// Whether a single fault is detected by the test (under every tried initial
/// content).
///
/// A one-off query that interprets the symbolic test directly; for sweeps
/// over many faults, build a [`crate::CoverageEngine`] and stream
/// [`verdicts`](crate::CoverageEngine::verdicts) instead.
///
/// # Errors
///
/// Same as [`crate::CoverageEngine::report`].
pub fn fault_detected(
    test: &MarchTest,
    fault: Fault,
    config: MemoryConfig,
    options: EvaluationOptions,
) -> Result<bool, CoverageError> {
    let tries = match options.content {
        ContentPolicy::Zeros => 1,
        ContentPolicy::Random { .. } => options.contents_per_fault.max(1),
    };
    for round in 0..tries {
        let mut memory = FaultyMemory::with_faults(config, FaultSet::from_faults([fault]))?;
        if let ContentPolicy::Random { seed } = options.content {
            memory.fill_random(seed.wrapping_add(round as u64));
        }
        let result = execute_with(
            test,
            &mut memory,
            ExecutionOptions {
                record_reads: false,
                stop_at_first_mismatch: true,
            },
        )?;
        if !result.detected() {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{CouplingScope, UniverseBuilder};
    use crate::CoverageEngine;
    use twm_core::{TransparentScheme, TwmTa};
    use twm_march::algorithms::{march_c_minus, mats_plus};
    use twm_mem::FaultClass;

    fn config(words: usize, width: usize) -> MemoryConfig {
        MemoryConfig::new(words, width).unwrap()
    }

    fn engine(test: &MarchTest, c: MemoryConfig, seed: u64) -> CoverageEngine {
        CoverageEngine::builder(c)
            .test(test)
            .content(ContentPolicy::Random { seed })
            .build()
            .unwrap()
    }

    #[test]
    fn empty_universe_is_rejected() {
        let result = engine(&march_c_minus(), config(4, 1), 1).report(&[]);
        assert!(matches!(result, Err(CoverageError::EmptyUniverse)));
    }

    #[test]
    fn bit_oriented_march_c_minus_covers_saf_tf_and_cf() {
        let c = config(12, 1);
        let faults = UniverseBuilder::new(c)
            .all_classes()
            .coupling_scope(CouplingScope::AllPairs)
            .sample_per_class(120, 3)
            .build();
        let report = engine(&march_c_minus(), c, 5).report(&faults).unwrap();
        for class in FaultClass::all() {
            assert_eq!(
                report.class_coverage(class),
                1.0,
                "March C- must cover 100% of {class}: {report}"
            );
        }
    }

    #[test]
    fn mats_plus_misses_coupling_faults_march_c_minus_catches() {
        // MATS+ is not a coupling-fault test; the evaluator must show that.
        let c = config(10, 1);
        let faults = UniverseBuilder::new(c)
            .coupling_idempotent()
            .coupling_scope(CouplingScope::AllPairs)
            .sample_per_class(150, 11)
            .build();
        let mats = engine(&mats_plus(), c, 5).report(&faults).unwrap();
        let march_c = engine(&march_c_minus(), c, 5).report(&faults).unwrap();
        assert!(mats.class_coverage(FaultClass::Cfid) < 1.0);
        assert_eq!(march_c.class_coverage(FaultClass::Cfid), 1.0);
    }

    #[test]
    fn transparent_word_oriented_test_covers_word_memory_faults() {
        let width = 4;
        let c = config(8, width);
        let transformed = TwmTa::new(width)
            .unwrap()
            .transform(&march_c_minus())
            .unwrap();
        let faults = UniverseBuilder::new(c)
            .all_classes()
            .sample_per_class(80, 21)
            .build();
        let report = CoverageEngine::builder(c)
            .test(transformed.transparent_test())
            .content(ContentPolicy::Random { seed: 17 })
            .contents_per_fault(2)
            .build()
            .unwrap()
            .report(&faults)
            .unwrap();
        assert_eq!(report.class_coverage(FaultClass::Saf), 1.0, "{report}");
        assert_eq!(report.class_coverage(FaultClass::Tf), 1.0, "{report}");
        // Inter-word coupling faults behave exactly like the bit-oriented
        // case, so the transparent test detects every sampled instance.
        assert_eq!(report.inter_word.fraction(), 1.0, "{report}");
        // Intra-word coupling coverage is bounded by what the word-oriented
        // (non-transparent) march test itself achieves; the equivalence with
        // that bound is checked in the `equivalence` module.
        assert!(report.intra_word.fraction() > 0.5, "{report}");
    }

    #[test]
    fn tsmarch_alone_misses_intra_word_coupling_faults() {
        // Without ATMarch the solid-background transparent test cannot excite
        // couplings between bits of the same word: this is the gap ATMarch
        // closes (Section 5 of the paper).
        let width = 4;
        let c = config(8, width);
        let transformed = TwmTa::new(width)
            .unwrap()
            .transform(&march_c_minus())
            .unwrap();
        let faults = UniverseBuilder::new(c)
            .coupling_idempotent()
            .coupling_scope(CouplingScope::SameWord)
            .sample_per_class(60, 9)
            .build();
        let tsmarch_only = engine(
            transformed
                .stage(twm_core::SchemeTransform::STAGE_TSMARCH)
                .unwrap(),
            c,
            23,
        )
        .report(&faults)
        .unwrap();
        let full = engine(transformed.transparent_test(), c, 23)
            .report(&faults)
            .unwrap();
        assert!(tsmarch_only.intra_word.fraction() < 1.0);
        assert!(
            full.intra_word.fraction() > tsmarch_only.intra_word.fraction(),
            "ATMarch must add intra-word CF coverage: {} vs {}",
            full.intra_word.fraction(),
            tsmarch_only.intra_word.fraction()
        );
    }
}
