//! # twm-coverage — fault-universe enumeration and coverage evaluation
//!
//! The DATE 2005 paper's central quality claim (Section 5) is that the
//! transparent word-oriented march test produced by TWM_TA detects exactly
//! the same functional faults as the corresponding *non-transparent*
//! word-oriented march test — stuck-at faults, transition faults and all
//! three coupling-fault types, both inside a word and between words. This
//! crate turns that analytical argument into a simulation experiment:
//!
//! * [`universe`] — enumerate (or sample) the fault universe of a memory
//!   configuration, class by class;
//! * [`engine`] — the [`CoverageEngine`]: run a march test against every
//!   fault of a universe and report the per-class coverage, stream
//!   per-fault verdicts, or compare two tests fault by fault;
//! * [`equivalence`] — the coverage-equivalence report types (the coverage
//!   theorem check, produced by [`CoverageEngine::compare`]);
//! * [`states`] — the state-traversal analysis behind Figure 1: which
//!   two-cell states and coupling-fault excitation conditions a test covers,
//!   and which intra-word bit-pair write/read combinations a word-oriented
//!   test exercises.
//! * [`aliasing`] — how much detection the MISR signature comparison loses
//!   to aliasing compared with the exact-compare oracle (the motivation the
//!   paper cites for signature-free schemes such as TOMT).
//! * [`matrix`] — [`scheme_matrix`]: the paper's whole scheme comparison
//!   (complexity, fault-free session cost, coverage) over every scheme of a
//!   [`twm_core::SchemeRegistry`] in one call.
//!
//! ## The `CoverageEngine`
//!
//! All evaluation flows through one reusable object. Build it once per
//! `(memory shape, march test)` pair; it owns the pre-lowered operation
//! stream, the pre-generated pseudo-random initial contents, and a pool of
//! reusable [`twm_mem::FaultyMemory`] arenas re-armed per fault — so
//! repeated evaluations over different universes allocate no per-fault
//! memories:
//!
//! ```
//! use twm_coverage::{ContentPolicy, CoverageEngine, UniverseBuilder};
//! use twm_core::scheme::{SchemeId, SchemeRegistry};
//! use twm_march::algorithms::march_c_minus;
//! use twm_mem::MemoryConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = MemoryConfig::new(16, 4)?;
//! let registry = SchemeRegistry::all(4)?;
//! let engine = CoverageEngine::for_scheme(
//!     registry.get(SchemeId::TwmTa).unwrap(),
//!     &march_c_minus(),
//!     config,
//! )?
//! .content(ContentPolicy::Random { seed: 1 })
//! .build()?;
//!
//! let faults = UniverseBuilder::new(config).stuck_at().transition().build();
//! let report = engine.report(&faults)?;
//! assert_eq!(report.total_coverage(), 1.0);     // all SAFs and TFs detected
//!
//! // Streaming verdicts: bounded memory for universes that do not fit RAM.
//! let escaped = engine
//!     .verdicts(&faults)
//!     .filter(|v| v.as_ref().is_ok_and(|v| !v.detected))
//!     .count();
//! assert_eq!(escaped, 0);
//! # Ok(())
//! # }
//! ```
//!
//! ## Execution strategy and the `parallel` feature
//!
//! Fault-injection runs are independent, so the engine fans the universe
//! across worker threads when the `parallel` feature is enabled (it is on
//! by default). The strategy is explicit on the builder:
//! [`Strategy::Serial`], [`Strategy::Parallel`]` { threads }` (zero is
//! rejected with [`CoverageError::ZeroThreads`], never clamped), or the
//! default [`Strategy::Auto`] — available parallelism, overridable with the
//! documented `TWM_COVERAGE_THREADS` environment-variable fallback.
//! Verdicts are merged back in universe order, so the produced
//! [`CoverageReport`] is **bit-identical** to the serial reference for any
//! thread count (property-tested in `tests/engine_streaming.rs`).
//!
//! ## Migrating from the free-function API
//!
//! The historical free functions (`evaluate`, `evaluate_with`,
//! `evaluate_serial`, `evaluate_parallel`,
//! `evaluate_parallel_with_threads`) went through a deprecation cycle and
//! have been **removed**; see the MIGRATION table in the repository's
//! `CHANGES.md` for the one-line engine replacements.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aliasing;
pub mod engine;
pub mod equivalence;
mod error;
pub mod evaluator;
pub mod matrix;
#[cfg(feature = "parallel")]
mod pool;
pub mod report;
pub mod states;
pub mod universe;

pub use aliasing::{aliasing_report, AliasingReport};
pub use engine::{CoverageEngine, CoverageEngineBuilder, FaultVerdict, Strategy, Verdicts};
pub use equivalence::{coverage_equivalence, EquivalenceReport};
pub use error::CoverageError;
pub use evaluator::{fault_detected, ContentPolicy, EvaluationOptions};
pub use matrix::{scheme_matrix, MatrixOptions, SchemeMatrix, SchemeMatrixRow};
pub use report::{ClassCoverage, CoverageReport};
pub use universe::{CouplingScope, UniverseBuilder};
