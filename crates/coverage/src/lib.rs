//! # twm-coverage — fault-universe enumeration and coverage evaluation
//!
//! The DATE 2005 paper's central quality claim (Section 5) is that the
//! transparent word-oriented march test produced by TWM_TA detects exactly
//! the same functional faults as the corresponding *non-transparent*
//! word-oriented march test — stuck-at faults, transition faults and all
//! three coupling-fault types, both inside a word and between words. This
//! crate turns that analytical argument into a simulation experiment:
//!
//! * [`universe`] — enumerate (or sample) the fault universe of a memory
//!   configuration, class by class;
//! * [`evaluator`] — run a march test against every fault and report the
//!   per-class coverage;
//! * [`equivalence`] — compare two tests fault by fault (the coverage
//!   theorem check);
//! * [`states`] — the state-traversal analysis behind Figure 1: which
//!   two-cell states and coupling-fault excitation conditions a test covers,
//!   and which intra-word bit-pair write/read combinations a word-oriented
//!   test exercises.
//! * [`aliasing`] — how much detection the MISR signature comparison loses
//!   to aliasing compared with the exact-compare oracle (the motivation the
//!   paper cites for signature-free schemes such as TOMT).
//!
//! ## The `parallel` feature
//!
//! Fault-injection runs are independent, so the evaluator fans the fault
//! universe across worker threads when the `parallel` feature is enabled
//! (it is on by default): [`evaluate`] and [`evaluate_with`] route through
//! [`evaluator::evaluate_parallel`], which pre-lowers the march test once
//! ([`twm_bist::LoweredTest`]), generates the pseudo-random initial
//! contents once, shares both across workers by reference, and merges
//! per-chunk verdicts back in universe order. The resulting
//! [`CoverageReport`] is **bit-identical** to the single-threaded reference
//! path [`evaluator::evaluate_serial`] for any thread count (property-tested
//! in `tests/parallel_equivalence.rs`). The worker count follows
//! `std::thread::available_parallelism` and can be pinned with the
//! `TWM_COVERAGE_THREADS` environment variable.
//!
//! ```
//! use twm_coverage::universe::UniverseBuilder;
//! use twm_coverage::evaluator::evaluate;
//! use twm_core::TwmTransformer;
//! use twm_march::algorithms::march_c_minus;
//! use twm_mem::MemoryConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = MemoryConfig::new(16, 4)?;
//! let faults = UniverseBuilder::new(config).stuck_at().transition().build();
//! let test = TwmTransformer::new(4)?.transform(&march_c_minus())?;
//! let report = evaluate(test.transparent_test(), &faults, config, 1)?;
//! assert_eq!(report.total_coverage(), 1.0);     // all SAFs and TFs detected
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aliasing;
pub mod equivalence;
mod error;
pub mod evaluator;
pub mod report;
pub mod states;
pub mod universe;

pub use aliasing::{aliasing_report, AliasingReport};
pub use equivalence::{coverage_equivalence, EquivalenceReport};
pub use error::CoverageError;
pub use evaluator::{evaluate, evaluate_serial, evaluate_with, ContentPolicy, EvaluationOptions};
#[cfg(feature = "parallel")]
pub use evaluator::{evaluate_parallel, evaluate_parallel_with_threads};
pub use report::{ClassCoverage, CoverageReport};
pub use universe::{CouplingScope, UniverseBuilder};
