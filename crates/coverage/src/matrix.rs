//! The cross-scheme comparison grid: every scheme of a
//! [`SchemeRegistry`], one source march test, one memory shape and one
//! fault universe — complexity, simulator-measured session cost and fault
//! coverage in a single call.
//!
//! [`scheme_matrix`] is the one-call form of the paper's evaluation: for
//! each registered scheme it transforms the source test, verifies the
//! transparent session on a fault-free memory (operation count and content
//! preservation), and evaluates coverage over the shared universe with a
//! [`CoverageEngine`] per scheme. Rows come back in registry order, so
//! adding a scheme to the registry adds a row to every comparison.

use twm_core::scheme::{SchemeId, SchemeRegistry, SchemeTransform};
use twm_core::SchemeComplexity;
use twm_march::MarchTest;
use twm_mem::{Fault, FaultyMemory, MemoryConfig};

use twm_bist::{execute_lowered, ExecutionOptions, LoweredTest};

use crate::engine::{prepared_contents, Strategy};
use crate::{ContentPolicy, CoverageEngine, CoverageError, CoverageReport, EvaluationOptions};

/// Options for [`scheme_matrix`]: the shared content policy and execution
/// strategy every scheme's engine evaluates under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixOptions {
    /// Initial-content policy (shared by every scheme, so coverage numbers
    /// are comparable).
    pub content: ContentPolicy,
    /// Number of initial contents tried per fault.
    pub contents_per_fault: usize,
    /// Execution strategy of each scheme's engine.
    pub strategy: Strategy,
}

impl Default for MatrixOptions {
    fn default() -> Self {
        let defaults = EvaluationOptions::default();
        Self {
            content: defaults.content,
            contents_per_fault: defaults.contents_per_fault,
            strategy: Strategy::default(),
        }
    }
}

/// One scheme's row of the comparison grid.
#[derive(Debug, Clone)]
pub struct SchemeMatrixRow {
    /// The scheme's identifier.
    pub scheme: SchemeId,
    /// The scheme's human-readable name.
    pub name: String,
    /// The full transform artifact (transparent test, prediction, stages).
    pub transform: SchemeTransform,
    /// Operations actually performed by a fault-free session on the matrix
    /// memory (transparent test plus prediction phase).
    pub session_operations: usize,
    /// Whether the fault-free session preserved the memory content (the
    /// transparency guarantee, verified dynamically).
    pub content_preserved: bool,
    /// Fault coverage of the scheme's transparent test over the shared
    /// universe.
    pub coverage: CoverageReport,
}

impl SchemeMatrixRow {
    /// Closed-form per-word complexity (the paper's Table 2 model).
    #[must_use]
    pub fn closed_form(&self) -> SchemeComplexity {
        self.transform.closed_form()
    }

    /// Exact per-word complexity of the generated tests.
    #[must_use]
    pub fn exact(&self) -> SchemeComplexity {
        self.transform.exact_complexity()
    }
}

/// The comparison grid produced by [`scheme_matrix`].
#[derive(Debug, Clone)]
pub struct SchemeMatrix {
    /// Name of the source bit-oriented march test.
    pub source: String,
    /// Word width of the compared schemes.
    pub width: usize,
    /// One row per registered scheme, in registry order.
    pub rows: Vec<SchemeMatrixRow>,
}

impl SchemeMatrix {
    /// The row of a particular scheme, if it is part of the comparison.
    #[must_use]
    pub fn row(&self, id: SchemeId) -> Option<&SchemeMatrixRow> {
        self.rows.iter().find(|row| row.scheme == id)
    }
}

/// Builds the paper's scheme-comparison grid in one call: for every scheme
/// of `registry`, transform `source`, run the fault-free session on a
/// `config`-shaped memory (initialised under `options.content`), and
/// evaluate coverage over `universe` with a per-scheme [`CoverageEngine`].
///
/// # Errors
///
/// * [`CoverageError::SchemeWidthMismatch`] if the registry's width differs
///   from the memory configuration's.
/// * [`CoverageError::EmptyUniverse`] if `universe` is empty.
/// * [`CoverageError::Core`] for transformation failures, and the engine's
///   errors otherwise.
pub fn scheme_matrix(
    registry: &SchemeRegistry,
    source: &MarchTest,
    config: MemoryConfig,
    universe: &[Fault],
    options: MatrixOptions,
) -> Result<SchemeMatrix, CoverageError> {
    if registry.width() != config.width() {
        return Err(CoverageError::SchemeWidthMismatch {
            scheme: registry.width(),
            memory: config.width(),
        });
    }
    if universe.is_empty() {
        return Err(CoverageError::EmptyUniverse);
    }
    let evaluation = EvaluationOptions {
        content: options.content,
        contents_per_fault: options.contents_per_fault,
    };
    // One shared fault-free memory image for the session checks, generated
    // exactly like the engines' contents so the dynamic transparency check
    // runs on representative data.
    let (_, images) = prepared_contents(config, evaluation, true);

    let mut rows = Vec::with_capacity(registry.len());
    for scheme in registry.iter() {
        let engine = CoverageEngine::for_scheme(scheme, source, config)?
            .options(evaluation)
            .strategy(options.strategy)
            .build()?;
        let transform = engine
            .scheme_transform()
            .expect("engine built from a scheme carries its transform")
            .clone();

        // Fault-free session on the matrix memory: count the operations a
        // full session performs and verify content preservation.
        let mut memory = FaultyMemory::fault_free(config);
        if let Some(image) = images.first() {
            memory.load_image(image)?;
        }
        let before = memory.content();
        let exec = ExecutionOptions {
            record_reads: false,
            stop_at_first_mismatch: false,
        };
        let mut session_operations = 0usize;
        if let Some(prediction) = transform.signature_prediction() {
            let lowered =
                LoweredTest::new(prediction, config.width()).map_err(twm_bist::BistError::from)?;
            session_operations += execute_lowered(&lowered, &mut memory, exec)?.operations();
        }
        let run = execute_lowered(engine.lowered(), &mut memory, exec)?;
        session_operations += run.operations();
        let content_preserved = !run.detected() && memory.content() == before;

        let coverage = engine.report(universe)?;
        rows.push(SchemeMatrixRow {
            scheme: scheme.id(),
            name: scheme.name().to_string(),
            transform,
            session_operations,
            content_preserved,
            coverage,
        });
    }
    Ok(SchemeMatrix {
        source: source.name().to_string(),
        width: registry.width(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UniverseBuilder;
    use twm_march::algorithms::march_c_minus;

    fn universe(config: MemoryConfig) -> Vec<Fault> {
        UniverseBuilder::new(config)
            .all_classes()
            .sample_per_class(40, 11)
            .build()
    }

    #[test]
    fn matrix_covers_every_registered_scheme_in_order() {
        let config = MemoryConfig::new(8, 4).unwrap();
        let registry = SchemeRegistry::comparison(4).unwrap();
        let matrix = scheme_matrix(
            &registry,
            &march_c_minus(),
            config,
            &universe(config),
            MatrixOptions::default(),
        )
        .unwrap();
        assert_eq!(matrix.source, "March C-");
        assert_eq!(matrix.width, 4);
        assert_eq!(
            matrix.rows.iter().map(|r| r.scheme).collect::<Vec<_>>(),
            SchemeId::comparison().to_vec()
        );
        for row in &matrix.rows {
            assert!(row.content_preserved, "{}", row.name);
            assert!(row.coverage.total_coverage() > 0.5, "{}", row.name);
            assert_eq!(
                row.exact().tcm,
                row.transform.transparent_test().operations_per_word()
            );
            // A fault-free session executes every operation of both phases.
            assert_eq!(row.session_operations, row.transform.total_operations(8));
        }
        // The paper's ordering: the proposed scheme is the cheapest per word.
        let proposed = matrix.row(SchemeId::TwmTa).unwrap();
        let scheme1 = matrix.row(SchemeId::Scheme1).unwrap();
        assert!(proposed.exact().total() < scheme1.exact().total());
    }

    #[test]
    fn matrix_rejects_mismatched_width_and_empty_universe() {
        let config = MemoryConfig::new(8, 8).unwrap();
        let registry = SchemeRegistry::comparison(4).unwrap();
        assert!(matches!(
            scheme_matrix(
                &registry,
                &march_c_minus(),
                config,
                &universe(config),
                MatrixOptions::default(),
            ),
            Err(CoverageError::SchemeWidthMismatch {
                scheme: 4,
                memory: 8
            })
        ));
        let registry = SchemeRegistry::comparison(8).unwrap();
        assert!(matches!(
            scheme_matrix(
                &registry,
                &march_c_minus(),
                config,
                &[],
                MatrixOptions::default()
            ),
            Err(CoverageError::EmptyUniverse)
        ));
    }
}
