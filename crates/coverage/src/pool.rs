//! A persistent scoped worker pool for the engine's streaming windows.
//!
//! [`crate::CoverageEngine`] evaluates parallel universes in bounded
//! windows; historically every window spawned (and joined) a fresh set of
//! `std::thread::scope` workers, paying thread creation once per window.
//! [`WorkerPool`] keeps the workers alive across windows — and, because the
//! pool is shared (`Arc`) with [`crate::CoverageEngine::with_test`]
//! siblings, across the thousands of candidate engines a search loop
//! builds.
//!
//! The pool offers a *scoped* execution primitive: [`WorkerPool::run`]
//! accepts closures that borrow from the caller's stack frame and does not
//! return until every closure has finished (or the pool panics the caller
//! after all of them have finished), which is what makes the lifetime
//! erasure below sound. Results come back indexed by job slot, so window
//! verdict ordering — and therefore every report — is bit-identical to the
//! spawn-per-window path (A/B-measured in the `engine_reuse` bench group).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// A type-erased pool task.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Sends one completion token when dropped — even if the task panicked —
/// so [`WorkerPool::run`] can always wait for *all* in-flight borrows to
/// end before unwinding.
struct DoneGuard(mpsc::Sender<()>);

impl Drop for DoneGuard {
    fn drop(&mut self) {
        let _ = self.0.send(());
    }
}

/// A fixed-size pool of persistent worker threads executing scoped jobs.
#[derive(Debug)]
pub(crate) struct WorkerPool {
    /// Job intake; `None` after shutdown. A `Mutex` because `mpsc::Sender`
    /// is `!Sync` and the engine is `Sync`.
    sender: Mutex<Option<mpsc::Sender<Task>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawns `workers` persistent threads (the caller of
    /// [`WorkerPool::run`] acts as one more, so an engine resolved to `t`
    /// threads builds a pool of `t - 1` workers).
    pub(crate) fn new(workers: usize) -> Self {
        let (sender, receiver) = mpsc::channel::<Task>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..workers)
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                std::thread::spawn(move || loop {
                    // Take the next task while holding the lock, then run
                    // it unlocked so workers execute concurrently.
                    let task = {
                        let receiver = receiver.lock().expect("pool receiver lock poisoned");
                        receiver.recv()
                    };
                    match task {
                        Ok(task) => {
                            // A panicking task must not kill the worker:
                            // its DoneGuard reports completion and `run`
                            // re-raises the panic on the calling thread.
                            let _ = catch_unwind(AssertUnwindSafe(task));
                        }
                        Err(_) => return, // pool dropped
                    }
                })
            })
            .collect();
        Self {
            sender: Mutex::new(Some(sender)),
            handles: Mutex::new(handles),
        }
    }

    /// Runs `jobs` to completion, returning their results in job order.
    ///
    /// Job 0 executes on the calling thread (the caller is a worker too);
    /// the rest are dispatched to the pool. The call blocks until **every**
    /// job has finished — also when a pool job panics, in which case the
    /// panic is re-raised here after the remaining jobs have completed, so
    /// no borrow of the caller's frame can outlive the call.
    pub(crate) fn run<'env, T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'env,
        F: FnOnce() -> T + Send + 'env,
    {
        if jobs.is_empty() {
            return Vec::new();
        }
        let submitted = jobs.len() - 1;
        let (result_tx, result_rx) = mpsc::channel::<(usize, T)>();
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let mut jobs = jobs.into_iter();
        let first = jobs.next();

        {
            let sender = self.sender.lock().expect("pool sender lock poisoned");
            let sender = sender.as_ref().expect("pool used after shutdown");
            for (slot, job) in jobs.enumerate() {
                let result_tx = result_tx.clone();
                let done = DoneGuard(done_tx.clone());
                let task: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                    let _done = done;
                    let value = job();
                    let _ = result_tx.send((slot + 1, value));
                });
                // SAFETY: the task borrows data that lives for 'env, which
                // outlives this call. `run` does not return (normally or by
                // unwinding) until the task has dropped its DoneGuard —
                // i.e. until the task body, and with it every use of the
                // borrow, has ended — so the erased lifetime can never be
                // observed dangling.
                let task: Task =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Task>(task) };
                sender.send(task).expect("pool workers exited prematurely");
            }
        }
        drop(result_tx);
        drop(done_tx);

        // The caller's own job can panic too; catch it so the completion
        // barrier below always runs, then re-raise.
        let first_result = first.map(|job| catch_unwind(AssertUnwindSafe(job)));

        // Wait for every dispatched task to finish (panicked or not) before
        // touching the results — the soundness barrier described above.
        for _ in 0..submitted {
            done_rx
                .recv()
                .expect("pool worker vanished with a task in flight");
        }
        let first_result = match first_result {
            Some(Ok(value)) => Some(value),
            Some(Err(panic)) => std::panic::resume_unwind(panic),
            None => None,
        };

        let mut slots: Vec<Option<T>> = Vec::new();
        slots.resize_with(submitted + 1, || None);
        if let Some(value) = first_result {
            slots[0] = Some(value);
        }
        let mut received = 0usize;
        for (slot, value) in result_rx.try_iter() {
            slots[slot] = Some(value);
            received += 1;
        }
        assert!(
            received == submitted,
            "a coverage pool task panicked ({received}/{submitted} results)"
        );
        slots
            .into_iter()
            .map(|slot| slot.expect("every job produced a result"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel ends the worker loops; join so no detached
        // thread outlives the engine that owns the pool.
        if let Ok(mut sender) = self.sender.lock() {
            *sender = None;
        }
        if let Ok(mut handles) = self.handles.lock() {
            for handle in handles.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        let pool = WorkerPool::new(3);
        let data: Vec<usize> = (0..17).collect();
        let jobs: Vec<_> = data
            .iter()
            .map(|&n| move || n * 2) // borrows `data` via the captured reference
            .collect();
        let results = pool.run(jobs);
        assert_eq!(results, (0..17).map(|n| n * 2).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reusable_and_shared_across_runs() {
        let pool = Arc::new(WorkerPool::new(2));
        for round in 0..10 {
            let results = pool.run((0..5).map(|n| move || n + round).collect::<Vec<_>>());
            assert_eq!(results, (0..5).map(|n| n + round).collect::<Vec<_>>());
        }
        // Concurrent runs from several threads interleave safely.
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    for _ in 0..20 {
                        let results = pool.run((0..7).map(|n| move || n * n).collect::<Vec<_>>());
                        assert_eq!(results, (0..7).map(|n| n * n).collect::<Vec<_>>());
                    }
                });
            }
        });
    }

    #[test]
    fn single_job_runs_on_the_caller() {
        let pool = WorkerPool::new(1);
        let caller = std::thread::current().id();
        let results = pool.run(vec![move || std::thread::current().id() == caller]);
        assert_eq!(results, vec![true]);
    }

    #[test]
    fn empty_job_list_is_a_no_op() {
        let pool = WorkerPool::new(1);
        let results: Vec<u8> = pool.run(Vec::<fn() -> u8>::new());
        assert!(results.is_empty());
    }

    #[test]
    fn panicking_job_propagates_after_the_window_completes() {
        let pool = WorkerPool::new(2);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.run(
                (0..4)
                    .map(|n| {
                        move || {
                            assert!(n != 2, "job 2 fails");
                            n
                        }
                    })
                    .collect::<Vec<_>>(),
            )
        }));
        assert!(outcome.is_err());
        // The pool survives a panicked window.
        assert_eq!(pool.run(vec![|| 7]), vec![7]);
    }
}
