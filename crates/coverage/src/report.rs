//! Coverage report types.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use twm_mem::{Fault, FaultClass};

/// Coverage of one fault class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCoverage {
    /// Faults of this class that were evaluated.
    pub total: usize,
    /// Faults of this class that were detected.
    pub detected: usize,
}

impl ClassCoverage {
    /// Detected fraction (1.0 when the class is empty).
    #[must_use]
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.detected as f64 / self.total as f64
        }
    }
}

/// Per-class and aggregate fault coverage of one march test.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Name of the evaluated test.
    pub test_name: String,
    /// Coverage per fault class.
    pub per_class: BTreeMap<FaultClass, ClassCoverage>,
    /// Coverage of intra-word coupling faults (aggressor and victim in the
    /// same word), across all coupling classes.
    pub intra_word: ClassCoverage,
    /// Coverage of inter-word coupling faults, across all coupling classes.
    pub inter_word: ClassCoverage,
    /// Faults that escaped detection.
    pub undetected: Vec<Fault>,
}

impl CoverageReport {
    /// Creates an empty report for a test name.
    #[must_use]
    pub fn new(test_name: &str) -> Self {
        Self {
            test_name: test_name.to_string(),
            ..Self::default()
        }
    }

    /// Records one evaluated fault.
    pub fn record(&mut self, fault: Fault, detected: bool) {
        let class = self.per_class.entry(fault.class()).or_default();
        class.total += 1;
        if detected {
            class.detected += 1;
        }
        if fault.is_intra_word() {
            self.intra_word.total += 1;
            if detected {
                self.intra_word.detected += 1;
            }
        }
        if fault.is_inter_word() {
            self.inter_word.total += 1;
            if detected {
                self.inter_word.detected += 1;
            }
        }
        if !detected {
            self.undetected.push(fault);
        }
    }

    /// Number of evaluated faults.
    #[must_use]
    pub fn total_faults(&self) -> usize {
        self.per_class.values().map(|c| c.total).sum()
    }

    /// Number of detected faults.
    #[must_use]
    pub fn detected_faults(&self) -> usize {
        self.per_class.values().map(|c| c.detected).sum()
    }

    /// Overall detected fraction (1.0 when no faults were evaluated).
    #[must_use]
    pub fn total_coverage(&self) -> f64 {
        let total = self.total_faults();
        if total == 0 {
            1.0
        } else {
            self.detected_faults() as f64 / total as f64
        }
    }

    /// Coverage of one class (1.0 when no fault of that class was evaluated).
    #[must_use]
    pub fn class_coverage(&self, class: FaultClass) -> f64 {
        self.per_class
            .get(&class)
            .copied()
            .unwrap_or_default()
            .fraction()
    }
}

impl fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fault coverage of {}", self.test_name)?;
        writeln!(
            f,
            "  {:<6} {:>8} {:>10} {:>9}",
            "class", "faults", "detected", "coverage"
        )?;
        for (class, coverage) in &self.per_class {
            writeln!(
                f,
                "  {:<6} {:>8} {:>10} {:>8.2}%",
                class.to_string(),
                coverage.total,
                coverage.detected,
                coverage.fraction() * 100.0
            )?;
        }
        if self.intra_word.total > 0 {
            writeln!(
                f,
                "  intra-word CFs: {}/{} ({:.2}%)",
                self.intra_word.detected,
                self.intra_word.total,
                self.intra_word.fraction() * 100.0
            )?;
        }
        if self.inter_word.total > 0 {
            writeln!(
                f,
                "  inter-word CFs: {}/{} ({:.2}%)",
                self.inter_word.detected,
                self.inter_word.total,
                self.inter_word.fraction() * 100.0
            )?;
        }
        write!(
            f,
            "  total: {}/{} ({:.2}%)",
            self.detected_faults(),
            self.total_faults(),
            self.total_coverage() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twm_mem::{BitAddress, Transition};

    #[test]
    fn recording_updates_class_and_word_scopes() {
        let mut report = CoverageReport::new("sample");
        report.record(Fault::stuck_at(BitAddress::new(0, 0), true), true);
        report.record(Fault::stuck_at(BitAddress::new(0, 1), false), false);
        report.record(
            Fault::coupling_inversion(
                BitAddress::new(0, 0),
                BitAddress::new(0, 1),
                Transition::Rising,
            ),
            true,
        );
        report.record(
            Fault::coupling_inversion(
                BitAddress::new(0, 0),
                BitAddress::new(1, 1),
                Transition::Rising,
            ),
            false,
        );

        assert_eq!(report.total_faults(), 4);
        assert_eq!(report.detected_faults(), 2);
        assert_eq!(report.class_coverage(FaultClass::Saf), 0.5);
        assert_eq!(report.class_coverage(FaultClass::Cfin), 0.5);
        assert_eq!(report.class_coverage(FaultClass::Tf), 1.0);
        assert_eq!(report.intra_word.total, 1);
        assert_eq!(report.intra_word.detected, 1);
        assert_eq!(report.inter_word.total, 1);
        assert_eq!(report.inter_word.detected, 0);
        assert_eq!(report.undetected.len(), 2);
        assert!((report.total_coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_report_has_full_coverage_by_convention() {
        let report = CoverageReport::new("empty");
        assert_eq!(report.total_coverage(), 1.0);
        assert_eq!(report.class_coverage(FaultClass::Saf), 1.0);
    }

    #[test]
    fn display_contains_class_rows() {
        let mut report = CoverageReport::new("sample");
        report.record(Fault::stuck_at(BitAddress::new(0, 0), true), true);
        let text = report.to_string();
        assert!(text.contains("SAF"));
        assert!(text.contains("100.00%"));
    }
}
