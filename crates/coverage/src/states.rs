//! State-traversal analysis behind the paper's Figure 1.
//!
//! * **Figure 1(a)** — two arbitrary cells (or words) `i < j`: a march test
//!   detects 100 % of the coupling faults between them only if it drives the
//!   pair through all states and excites every aggressor-transition /
//!   victim-value combination, reading the victim before rewriting it.
//!   [`analyze_cell_pair`] measures exactly which of those excitation
//!   conditions a bit-oriented march test covers.
//! * **Figure 1(b)** — two bits inside a word: a word-oriented test covers
//!   the intra-word coupling conditions when the pair is written to both
//!   solid states and to a mixed state (and back), each write followed by a
//!   read. [`analyze_intra_word_pair`] measures those four conditions for a
//!   (possibly transparent) word-oriented test; they are what SMarch and
//!   ATMarch/AMarch together provide.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use twm_march::{MarchTest, OpKind};
use twm_mem::{AddressSequence, Transition, Word};

use crate::CoverageError;

/// One coupling-fault excitation condition between two tracked cells: a
/// transition of the aggressor while the victim holds a given value,
/// followed by a read of the victim before it is rewritten.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PairCondition {
    /// Whether the aggressor is the lower-addressed cell of the pair.
    pub aggressor_is_lower: bool,
    /// Direction of the aggressor transition.
    pub transition: Transition,
    /// Value the victim held when the aggressor transitioned.
    pub victim_value: bool,
}

impl PairCondition {
    /// All eight conditions required for full coupling-fault detection
    /// between an ordered pair of cells.
    #[must_use]
    pub fn all() -> Vec<PairCondition> {
        let mut conditions = Vec::with_capacity(8);
        for aggressor_is_lower in [true, false] {
            for transition in [Transition::Rising, Transition::Falling] {
                for victim_value in [false, true] {
                    conditions.push(PairCondition {
                        aggressor_is_lower,
                        transition,
                        victim_value,
                    });
                }
            }
        }
        conditions
    }
}

/// Coverage of the two-cell state diagram of Figure 1(a) by a bit-oriented
/// march test.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairStateCoverage {
    /// Value states `(lower, higher)` the pair visited.
    pub states_visited: BTreeSet<(bool, bool)>,
    /// Excitation conditions that were covered (transition observed and the
    /// victim read before being rewritten).
    pub conditions_covered: BTreeSet<PairCondition>,
}

impl PairStateCoverage {
    /// Whether all four value states were visited.
    #[must_use]
    pub fn all_states_visited(&self) -> bool {
        self.states_visited.len() == 4
    }

    /// Whether all eight coupling-fault excitation conditions were covered.
    #[must_use]
    pub fn all_conditions_covered(&self) -> bool {
        self.conditions_covered.len() == 8
    }

    /// Conditions that were not covered.
    #[must_use]
    pub fn missing_conditions(&self) -> Vec<PairCondition> {
        PairCondition::all()
            .into_iter()
            .filter(|c| !self.conditions_covered.contains(c))
            .collect()
    }
}

/// Analyses which two-cell states and coupling-fault excitation conditions a
/// bit-oriented march test covers for the cell pair `(lower, higher)` in a
/// `cells`-cell memory.
///
/// # Errors
///
/// Returns [`CoverageError::UnsupportedTest`] if the test is not a
/// bit-oriented march test or if the pair/cell indices are invalid.
pub fn analyze_cell_pair(
    test: &MarchTest,
    lower: usize,
    higher: usize,
    cells: usize,
) -> Result<PairStateCoverage, CoverageError> {
    if !test.is_bit_oriented() {
        return Err(CoverageError::UnsupportedTest {
            detail: format!("{} is not a bit-oriented march test", test.name()),
        });
    }
    if lower >= higher || higher >= cells {
        return Err(CoverageError::UnsupportedTest {
            detail: format!("invalid cell pair ({lower}, {higher}) for {cells} cells"),
        });
    }

    let mut values = vec![false; cells];
    let mut coverage = PairStateCoverage::default();
    coverage.states_visited.insert((false, false));

    // Conditions excited but not yet confirmed by a read of the victim.
    let mut pending_for_lower: Vec<PairCondition> = Vec::new();
    let mut pending_for_higher: Vec<PairCondition> = Vec::new();

    for element in test.elements() {
        for address in AddressSequence::new(cells, element.order) {
            for op in &element.ops {
                let one = op
                    .data
                    .pattern()
                    .resolve(1)
                    .map_err(|e| CoverageError::UnsupportedTest {
                        detail: format!("unresolvable data: {e}"),
                    })?
                    .bit(0);
                match op.kind {
                    OpKind::Write => {
                        let old = values[address];
                        values[address] = one;
                        if address == lower || address == higher {
                            // A write to the victim masks pending conditions
                            // targeting it.
                            if address == lower {
                                pending_for_lower.clear();
                            } else {
                                pending_for_higher.clear();
                            }
                            if let Some(transition) = Transition::between(old, one) {
                                let aggressor_is_lower = address == lower;
                                let victim = if aggressor_is_lower { higher } else { lower };
                                let condition = PairCondition {
                                    aggressor_is_lower,
                                    transition,
                                    victim_value: values[victim],
                                };
                                if aggressor_is_lower {
                                    pending_for_higher.push(condition);
                                } else {
                                    pending_for_lower.push(condition);
                                }
                            }
                            coverage
                                .states_visited
                                .insert((values[lower], values[higher]));
                        }
                    }
                    OpKind::Read => {
                        if address == lower {
                            coverage
                                .conditions_covered
                                .extend(pending_for_lower.drain(..));
                        } else if address == higher {
                            coverage
                                .conditions_covered
                                .extend(pending_for_higher.drain(..));
                        }
                    }
                }
            }
        }
    }
    Ok(coverage)
}

/// The four intra-word pair conditions of Figure 1(b), relative to a pair of
/// bit positions inside a word and the word's initial content.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntraWordPairCoverage {
    /// The pair was written with both bits complemented and then read.
    pub both_complemented_read: bool,
    /// The pair was written back to both initial values (coming from the
    /// fully complemented state) and then read.
    pub restored_from_complement_read: bool,
    /// The pair was written to a mixed state (exactly one bit complemented)
    /// and then read.
    pub mixed_read: bool,
    /// The pair was written back to both initial values (coming from a mixed
    /// state) and then read.
    pub restored_from_mixed_read: bool,
}

impl IntraWordPairCoverage {
    /// Whether all four conditions are covered.
    #[must_use]
    pub fn all_covered(&self) -> bool {
        self.both_complemented_read
            && self.restored_from_complement_read
            && self.mixed_read
            && self.restored_from_mixed_read
    }

    /// Number of covered conditions (0–4).
    #[must_use]
    pub fn covered_count(&self) -> usize {
        usize::from(self.both_complemented_read)
            + usize::from(self.restored_from_complement_read)
            + usize::from(self.mixed_read)
            + usize::from(self.restored_from_mixed_read)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PairEvent {
    BothComplemented,
    RestoredFromComplement,
    Mixed,
    RestoredFromMixed,
}

/// Analyses the intra-word pair conditions a word-oriented march test covers
/// for bit positions `bit_a` and `bit_b` of a `width`-bit word with the given
/// initial content.
///
/// The test is simulated on a single-word fault-free memory.
///
/// # Errors
///
/// Returns [`CoverageError::UnsupportedTest`] for invalid bit positions or
/// data that cannot be resolved for the width.
pub fn analyze_intra_word_pair(
    test: &MarchTest,
    bit_a: usize,
    bit_b: usize,
    initial: Word,
) -> Result<IntraWordPairCoverage, CoverageError> {
    let width = initial.width();
    if bit_a == bit_b || bit_a >= width || bit_b >= width {
        return Err(CoverageError::UnsupportedTest {
            detail: format!("invalid bit pair ({bit_a}, {bit_b}) for {width}-bit words"),
        });
    }
    let initial_pair = (initial.bit(bit_a), initial.bit(bit_b));
    let mut current = initial;
    let mut coverage = IntraWordPairCoverage::default();
    let mut pending: Option<PairEvent> = None;

    for element in test.elements() {
        for op in &element.ops {
            let value = op
                .data
                .resolve(initial)
                .map_err(|e| CoverageError::UnsupportedTest {
                    detail: format!("unresolvable data: {e}"),
                })?;
            match op.kind {
                OpKind::Write => {
                    let previous_pair = (current.bit(bit_a), current.bit(bit_b));
                    let new_pair = (value.bit(bit_a), value.bit(bit_b));
                    current = value;
                    pending = classify_pair_event(initial_pair, previous_pair, new_pair);
                }
                OpKind::Read => {
                    if let Some(event) = pending {
                        match event {
                            PairEvent::BothComplemented => coverage.both_complemented_read = true,
                            PairEvent::RestoredFromComplement => {
                                coverage.restored_from_complement_read = true;
                            }
                            PairEvent::Mixed => coverage.mixed_read = true,
                            PairEvent::RestoredFromMixed => {
                                coverage.restored_from_mixed_read = true;
                            }
                        }
                        pending = None;
                    }
                }
            }
        }
    }
    Ok(coverage)
}

fn classify_pair_event(
    initial: (bool, bool),
    previous: (bool, bool),
    new: (bool, bool),
) -> Option<PairEvent> {
    let complemented = (!initial.0, !initial.1);
    let is_mixed = |pair: (bool, bool)| (pair.0 == initial.0) != (pair.1 == initial.1);
    if new == complemented {
        Some(PairEvent::BothComplemented)
    } else if new == initial && previous == complemented {
        Some(PairEvent::RestoredFromComplement)
    } else if is_mixed(new) {
        Some(PairEvent::Mixed)
    } else if new == initial && is_mixed(previous) {
        Some(PairEvent::RestoredFromMixed)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twm_core::{TransparentScheme, TwmTa};
    use twm_march::algorithms::{march_c_minus, march_u, mats_plus};

    #[test]
    fn march_c_minus_covers_all_pair_states_and_conditions() {
        // Figure 1(a): March C- drives any two cells through all states and
        // excites every coupling-fault condition.
        for (lower, higher) in [(0usize, 1usize), (2, 7), (0, 9)] {
            let coverage = analyze_cell_pair(&march_c_minus(), lower, higher, 10).unwrap();
            assert!(
                coverage.all_states_visited(),
                "states for ({lower},{higher})"
            );
            assert!(
                coverage.all_conditions_covered(),
                "conditions for ({lower},{higher}): missing {:?}",
                coverage.missing_conditions()
            );
        }
    }

    #[test]
    fn march_u_covers_all_pair_conditions() {
        let coverage = analyze_cell_pair(&march_u(), 1, 5, 8).unwrap();
        assert!(coverage.all_conditions_covered());
    }

    #[test]
    fn mats_plus_misses_pair_conditions() {
        let coverage = analyze_cell_pair(&mats_plus(), 0, 3, 8).unwrap();
        assert!(!coverage.all_conditions_covered());
        assert!(!coverage.missing_conditions().is_empty());
    }

    #[test]
    fn pair_analysis_rejects_bad_inputs() {
        assert!(analyze_cell_pair(&march_c_minus(), 3, 3, 8).is_err());
        assert!(analyze_cell_pair(&march_c_minus(), 5, 2, 8).is_err());
        assert!(analyze_cell_pair(&march_c_minus(), 0, 9, 8).is_err());
        let transparent = TwmTa::new(4)
            .unwrap()
            .transform(&march_c_minus())
            .unwrap()
            .transparent_test()
            .clone();
        assert!(analyze_cell_pair(&transparent, 0, 1, 8).is_err());
    }

    #[test]
    fn twmarch_covers_all_intra_word_pair_conditions() {
        // Figure 1(b): TSMarch provides the two solid conditions, ATMarch the
        // two mixed ones — together all four, for every bit pair and any
        // initial content.
        let width = 8;
        let transformed = TwmTa::new(width)
            .unwrap()
            .transform(&march_c_minus())
            .unwrap();
        for seed in [0u128, 0xAB, 0x5A, 0xFF] {
            let initial = Word::from_bits(seed, width).unwrap();
            for a in 0..width {
                for b in 0..width {
                    if a == b {
                        continue;
                    }
                    let coverage =
                        analyze_intra_word_pair(transformed.transparent_test(), a, b, initial)
                            .unwrap();
                    assert!(
                        coverage.all_covered(),
                        "pair ({a},{b}) with content {initial}: {coverage:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn tsmarch_alone_misses_the_mixed_conditions() {
        let width = 8;
        let transformed = TwmTa::new(width)
            .unwrap()
            .transform(&march_c_minus())
            .unwrap();
        let initial = Word::from_bits(0x3C, width).unwrap();
        let coverage = analyze_intra_word_pair(
            transformed
                .stage(twm_core::SchemeTransform::STAGE_TSMARCH)
                .unwrap(),
            0,
            5,
            initial,
        )
        .unwrap();
        assert!(coverage.both_complemented_read);
        assert!(coverage.restored_from_complement_read);
        assert!(!coverage.mixed_read);
        assert!(!coverage.restored_from_mixed_read);
        assert_eq!(coverage.covered_count(), 2);
    }

    #[test]
    fn intra_word_analysis_rejects_bad_pairs() {
        let initial = Word::zeros(8);
        let test = march_c_minus();
        assert!(analyze_intra_word_pair(&test, 1, 1, initial).is_err());
        assert!(analyze_intra_word_pair(&test, 0, 8, initial).is_err());
    }
}
