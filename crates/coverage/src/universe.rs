//! Enumeration and sampling of the functional fault universe.
//!
//! For an `N × W` memory the full coupling-fault universe is quadratic in
//! the number of cells, so the builder supports restricting the aggressor /
//! victim pairs to the scopes that matter for the paper's analysis (cells in
//! the same word, cells in adjacent words) and down-sampling the result
//! deterministically.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use twm_mem::{BitAddress, Fault, FaultClass, MemoryConfig, Transition};

/// Which aggressor/victim cell pairs to enumerate for coupling faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CouplingScope {
    /// Every ordered pair of distinct cells (quadratic — only for tiny
    /// memories).
    AllPairs,
    /// Only pairs of distinct cells within the same word (intra-word
    /// coupling faults).
    SameWord,
    /// Only pairs of cells in adjacent words (a representative subset of
    /// inter-word coupling faults).
    AdjacentWords,
    /// Intra-word pairs plus adjacent-word pairs (the default: covers both
    /// fault populations of the paper's Section 5 at manageable size).
    #[default]
    SameWordAndAdjacent,
}

impl CouplingScope {
    fn pairs(self, config: MemoryConfig) -> Vec<(BitAddress, BitAddress)> {
        let words = config.words();
        let width = config.width();
        let mut pairs = Vec::new();
        match self {
            CouplingScope::AllPairs => {
                for aw in 0..words {
                    for ab in 0..width {
                        for vw in 0..words {
                            for vb in 0..width {
                                if (aw, ab) != (vw, vb) {
                                    pairs.push((BitAddress::new(aw, ab), BitAddress::new(vw, vb)));
                                }
                            }
                        }
                    }
                }
            }
            CouplingScope::SameWord => {
                for w in 0..words {
                    for ab in 0..width {
                        for vb in 0..width {
                            if ab != vb {
                                pairs.push((BitAddress::new(w, ab), BitAddress::new(w, vb)));
                            }
                        }
                    }
                }
            }
            CouplingScope::AdjacentWords => {
                for w in 0..words.saturating_sub(1) {
                    for ab in 0..width {
                        for vb in 0..width {
                            pairs.push((BitAddress::new(w, ab), BitAddress::new(w + 1, vb)));
                            pairs.push((BitAddress::new(w + 1, ab), BitAddress::new(w, vb)));
                        }
                    }
                }
            }
            CouplingScope::SameWordAndAdjacent => {
                pairs.extend(CouplingScope::SameWord.pairs(config));
                pairs.extend(CouplingScope::AdjacentWords.pairs(config));
            }
        }
        pairs
    }
}

/// Builder for fault universes.
///
/// Chain the per-class methods to select which fault classes to enumerate,
/// then call [`UniverseBuilder::build`]. With no class selected, every class
/// is included.
#[derive(Debug, Clone)]
pub struct UniverseBuilder {
    config: MemoryConfig,
    classes: Vec<FaultClass>,
    scope: CouplingScope,
    sample: Option<(usize, u64)>,
}

impl UniverseBuilder {
    /// Starts a builder for the given memory shape.
    #[must_use]
    pub fn new(config: MemoryConfig) -> Self {
        Self {
            config,
            classes: Vec::new(),
            scope: CouplingScope::default(),
            sample: None,
        }
    }

    /// Includes stuck-at faults.
    #[must_use]
    pub fn stuck_at(mut self) -> Self {
        self.classes.push(FaultClass::Saf);
        self
    }

    /// Includes transition faults.
    #[must_use]
    pub fn transition(mut self) -> Self {
        self.classes.push(FaultClass::Tf);
        self
    }

    /// Includes state coupling faults.
    #[must_use]
    pub fn coupling_state(mut self) -> Self {
        self.classes.push(FaultClass::Cfst);
        self
    }

    /// Includes idempotent coupling faults.
    #[must_use]
    pub fn coupling_idempotent(mut self) -> Self {
        self.classes.push(FaultClass::Cfid);
        self
    }

    /// Includes inversion coupling faults.
    #[must_use]
    pub fn coupling_inversion(mut self) -> Self {
        self.classes.push(FaultClass::Cfin);
        self
    }

    /// Includes every fault class.
    #[must_use]
    pub fn all_classes(mut self) -> Self {
        self.classes = FaultClass::all().to_vec();
        self
    }

    /// Restricts which aggressor/victim pairs coupling faults are built for.
    #[must_use]
    pub fn coupling_scope(mut self, scope: CouplingScope) -> Self {
        self.scope = scope;
        self
    }

    /// Deterministically down-samples the universe to at most `count` faults
    /// per class.
    #[must_use]
    pub fn sample_per_class(mut self, count: usize, seed: u64) -> Self {
        self.sample = Some((count, seed));
        self
    }

    /// Builds the fault list.
    #[must_use]
    pub fn build(&self) -> Vec<Fault> {
        let classes = if self.classes.is_empty() {
            FaultClass::all().to_vec()
        } else {
            self.classes.clone()
        };
        let mut faults = Vec::new();
        for class in classes {
            let mut class_faults = self.build_class(class);
            if let Some((count, seed)) = self.sample {
                if class_faults.len() > count {
                    let mut rng = StdRng::seed_from_u64(seed ^ class as u64);
                    class_faults.shuffle(&mut rng);
                    class_faults.truncate(count);
                }
            }
            faults.extend(class_faults);
        }
        faults
    }

    fn build_class(&self, class: FaultClass) -> Vec<Fault> {
        let words = self.config.words();
        let width = self.config.width();
        let mut faults = Vec::new();
        match class {
            FaultClass::Saf => {
                for w in 0..words {
                    for b in 0..width {
                        let cell = BitAddress::new(w, b);
                        faults.push(Fault::stuck_at(cell, false));
                        faults.push(Fault::stuck_at(cell, true));
                    }
                }
            }
            FaultClass::Tf => {
                for w in 0..words {
                    for b in 0..width {
                        let cell = BitAddress::new(w, b);
                        faults.push(Fault::transition(cell, Transition::Rising));
                        faults.push(Fault::transition(cell, Transition::Falling));
                    }
                }
            }
            FaultClass::Cfst => {
                for (aggressor, victim) in self.scope.pairs(self.config) {
                    for aggressor_value in [false, true] {
                        for victim_value in [false, true] {
                            faults.push(Fault::coupling_state(
                                aggressor,
                                victim,
                                aggressor_value,
                                victim_value,
                            ));
                        }
                    }
                }
            }
            FaultClass::Cfid => {
                for (aggressor, victim) in self.scope.pairs(self.config) {
                    for transition in [Transition::Rising, Transition::Falling] {
                        for victim_value in [false, true] {
                            faults.push(Fault::coupling_idempotent(
                                aggressor,
                                victim,
                                transition,
                                victim_value,
                            ));
                        }
                    }
                }
            }
            FaultClass::Cfin => {
                for (aggressor, victim) in self.scope.pairs(self.config) {
                    for transition in [Transition::Rising, Transition::Falling] {
                        faults.push(Fault::coupling_inversion(aggressor, victim, transition));
                    }
                }
            }
        }
        faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(words: usize, width: usize) -> MemoryConfig {
        MemoryConfig::new(words, width).unwrap()
    }

    #[test]
    fn saf_and_tf_counts_are_two_per_cell() {
        let c = config(4, 8);
        let safs = UniverseBuilder::new(c).stuck_at().build();
        assert_eq!(safs.len(), 2 * 32);
        let tfs = UniverseBuilder::new(c).transition().build();
        assert_eq!(tfs.len(), 2 * 32);
    }

    #[test]
    fn same_word_coupling_counts() {
        let c = config(3, 4);
        // Ordered pairs within a word: 4*3 = 12 per word, 3 words = 36 pairs.
        let cfin = UniverseBuilder::new(c)
            .coupling_inversion()
            .coupling_scope(CouplingScope::SameWord)
            .build();
        assert_eq!(cfin.len(), 36 * 2);
        assert!(cfin.iter().all(Fault::is_intra_word));

        let cfid = UniverseBuilder::new(c)
            .coupling_idempotent()
            .coupling_scope(CouplingScope::SameWord)
            .build();
        assert_eq!(cfid.len(), 36 * 4);

        let cfst = UniverseBuilder::new(c)
            .coupling_state()
            .coupling_scope(CouplingScope::SameWord)
            .build();
        assert_eq!(cfst.len(), 36 * 4);
    }

    #[test]
    fn adjacent_word_coupling_is_inter_word() {
        let c = config(3, 2);
        let faults = UniverseBuilder::new(c)
            .coupling_inversion()
            .coupling_scope(CouplingScope::AdjacentWords)
            .build();
        // 2 word boundaries * 2 directions * 2*2 bit pairs * 2 transitions.
        assert_eq!(faults.len(), 2 * 2 * 4 * 2);
        assert!(faults.iter().all(Fault::is_inter_word));
    }

    #[test]
    fn all_pairs_scope_covers_everything_for_tiny_memories() {
        let c = config(2, 2);
        let pairs = CouplingScope::AllPairs.pairs(c);
        assert_eq!(pairs.len(), 4 * 3);
        let default_scope = CouplingScope::default().pairs(c);
        assert!(default_scope.len() <= pairs.len());
    }

    #[test]
    fn default_build_includes_every_class() {
        let faults = UniverseBuilder::new(config(2, 2)).build();
        for class in FaultClass::all() {
            assert!(
                faults.iter().any(|f| f.class() == class),
                "class {class} missing"
            );
        }
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let c = config(8, 8);
        let a = UniverseBuilder::new(c)
            .all_classes()
            .sample_per_class(50, 7)
            .build();
        let b = UniverseBuilder::new(c)
            .all_classes()
            .sample_per_class(50, 7)
            .build();
        assert_eq!(a, b);
        for class in FaultClass::all() {
            assert!(a.iter().filter(|f| f.class() == class).count() <= 50);
        }
        let larger = UniverseBuilder::new(c)
            .all_classes()
            .sample_per_class(100, 7)
            .build();
        assert!(larger.len() >= a.len());
    }
}
