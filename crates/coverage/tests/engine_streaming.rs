//! Property tests for the streaming verdict path: collecting
//! [`CoverageEngine::verdicts`] must reproduce [`CoverageEngine::report`]
//! **exactly** — same faults, same order, same detection bits — for serial
//! and parallel engines across thread counts, and the stream must work from
//! a plain iterator (the out-of-memory-universe case, where the fault list
//! is never materialised by the caller).

use proptest::prelude::*;

use twm_core::{TransparentScheme, TwmTa};
use twm_coverage::universe::{CouplingScope, UniverseBuilder};
use twm_coverage::{
    ContentPolicy, CoverageEngine, CoverageError, CoverageReport, EvaluationOptions, FaultVerdict,
    Strategy as Exec,
};
use twm_march::algorithms::{march_c_minus, mats_plus};
use twm_march::MarchTest;
use twm_mem::{Fault, MemoryConfig};

fn engine(
    test: &MarchTest,
    config: MemoryConfig,
    options: EvaluationOptions,
    strategy: Exec,
) -> CoverageEngine {
    CoverageEngine::builder(config)
        .test(test)
        .options(options)
        .strategy(strategy)
        .build()
        .unwrap()
}

/// Folds a verdict stream into a report exactly like `report` does.
fn collect_report(
    name: &str,
    verdicts: impl Iterator<Item = Result<FaultVerdict, CoverageError>>,
) -> CoverageReport {
    let mut report = CoverageReport::new(name);
    for verdict in verdicts {
        let verdict = verdict.expect("stream must not error on a valid universe");
        report.record(verdict.fault, verdict.detected);
    }
    report
}

fn thread_strategies() -> Vec<Exec> {
    let mut strategies = vec![Exec::Serial];
    if cfg!(feature = "parallel") {
        strategies.extend([2usize, 3, 5, 16].map(|threads| Exec::Parallel { threads }));
    }
    strategies
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Collecting `verdicts()` reproduces `report()` exactly, for serial
    /// and parallel engines at several thread counts.
    #[test]
    fn collected_verdicts_reproduce_report(
        width in prop_oneof![Just(1usize), Just(4), Just(8)],
        words in 2usize..7,
        universe_seed in 0u64..1_000,
        content_seed in 0u64..1_000,
        use_mats in any::<bool>(),
    ) {
        let config = MemoryConfig::new(words, width).unwrap();
        let faults = UniverseBuilder::new(config)
            .all_classes()
            .coupling_scope(CouplingScope::SameWordAndAdjacent)
            .sample_per_class(20, universe_seed)
            .build();
        let test = if use_mats { mats_plus() } else { march_c_minus() };
        let options = EvaluationOptions {
            content: ContentPolicy::Random { seed: content_seed },
            contents_per_fault: 1,
        };
        let reference = engine(&test, config, options, Exec::Serial)
            .report(&faults).unwrap();
        for strategy in thread_strategies() {
            let streaming = engine(&test, config, options, strategy);
            let collected = collect_report(test.name(), streaming.verdicts(&faults));
            prop_assert_eq!(&collected, &reference, "strategy {:?}", strategy);
            // And report() itself agrees, of course.
            prop_assert_eq!(&streaming.report(&faults).unwrap(), &reference);
        }
    }

    /// Transparent word-oriented tests with several contents per fault:
    /// streaming still reproduces the report.
    #[test]
    fn transparent_streaming_matches_report(
        width in prop_oneof![Just(2usize), Just(4)],
        words in 2usize..5,
        universe_seed in 0u64..1_000,
        contents_per_fault in 1usize..3,
    ) {
        let config = MemoryConfig::new(words, width).unwrap();
        let faults = UniverseBuilder::new(config)
            .all_classes()
            .sample_per_class(12, universe_seed)
            .build();
        let transformed = TwmTa::new(width).unwrap()
            .transform(&march_c_minus()).unwrap();
        let test = transformed.transparent_test();
        let options = EvaluationOptions {
            content: ContentPolicy::Random { seed: universe_seed },
            contents_per_fault,
        };
        for strategy in thread_strategies() {
            let e = engine(test, config, options, strategy);
            let collected = collect_report(test.name(), e.verdicts(&faults));
            prop_assert_eq!(collected, e.report(&faults).unwrap());
        }
    }

    /// Arena reuse is unobservable: an engine with memory reuse disabled
    /// (the historical fresh-allocation-per-fault behaviour, word-by-word
    /// content restore) produces bit-identical reports to the arena engine
    /// (image-restore path), for several contents per fault.
    #[test]
    fn arena_and_fresh_modes_are_bit_identical(
        width in prop_oneof![Just(1usize), Just(4), Just(8)],
        words in 2usize..7,
        universe_seed in 0u64..1_000,
        content_seed in 0u64..1_000,
        contents_per_fault in 1usize..3,
    ) {
        let config = MemoryConfig::new(words, width).unwrap();
        let faults = UniverseBuilder::new(config)
            .all_classes()
            .sample_per_class(15, universe_seed)
            .build();
        let options = EvaluationOptions {
            content: ContentPolicy::Random { seed: content_seed },
            contents_per_fault,
        };
        for strategy in thread_strategies() {
            let arena = engine(&march_c_minus(), config, options, strategy);
            let fresh = CoverageEngine::builder(config)
                .test(&march_c_minus())
                .options(options)
                .strategy(strategy)
                .memory_reuse(false)
                .build()
                .unwrap();
            prop_assert_eq!(
                arena.report(&faults).unwrap(),
                fresh.report(&faults).unwrap(),
                "strategy {:?}", strategy
            );
        }
    }

    /// The stream accepts a lazy fault iterator (never materialised by the
    /// caller) and yields verdicts in universe order.
    #[test]
    fn streaming_from_lazy_iterator_preserves_order(
        words in 2usize..8,
        universe_seed in 0u64..1_000,
    ) {
        let config = MemoryConfig::new(words, 4).unwrap();
        let faults = UniverseBuilder::new(config)
            .stuck_at()
            .transition()
            .sample_per_class(40, universe_seed)
            .build();
        for strategy in thread_strategies() {
            let e = engine(&march_c_minus(), config, EvaluationOptions::default(), strategy);
            // Feed the universe as a one-shot iterator of owned faults.
            let streamed: Vec<FaultVerdict> = e
                .verdicts(faults.iter().copied())
                .collect::<Result<_, _>>()
                .unwrap();
            prop_assert_eq!(streamed.len(), faults.len());
            let order: Vec<Fault> = streamed.iter().map(|v| v.fault).collect();
            prop_assert_eq!(&order, &faults, "strategy {:?}", strategy);
        }
    }
}

/// Mid-stream abandonment returns arenas to the pool and a subsequent full
/// evaluation on the same engine is unaffected.
#[test]
fn abandoned_stream_does_not_disturb_later_evaluations() {
    let config = MemoryConfig::new(6, 4).unwrap();
    let faults = UniverseBuilder::new(config)
        .all_classes()
        .sample_per_class(30, 3)
        .build();
    let e = engine(
        &march_c_minus(),
        config,
        EvaluationOptions::default(),
        Exec::Auto,
    );
    let reference = e.report(&faults).unwrap();
    {
        let mut stream = e.verdicts(&faults);
        let _ = stream.next();
        let _ = stream.next();
        // Dropped mid-stream here.
    }
    assert_eq!(e.report(&faults).unwrap(), reference);
}

/// An empty universe is an empty stream (only `report` treats it as an
/// error).
#[test]
fn empty_universe_streams_nothing() {
    let config = MemoryConfig::new(4, 2).unwrap();
    let e = engine(
        &march_c_minus(),
        config,
        EvaluationOptions::default(),
        Exec::Serial,
    );
    assert_eq!(e.verdicts(&[]).count(), 0);
    assert!(matches!(e.report(&[]), Err(CoverageError::EmptyUniverse)));
}

/// Builder validation: zero worker threads and a missing test are rejected
/// with dedicated errors, not clamped or defaulted.
#[test]
fn builder_rejects_zero_threads_and_missing_test() {
    let config = MemoryConfig::new(4, 2).unwrap();
    let zero = CoverageEngine::builder(config)
        .test(&march_c_minus())
        .strategy(Exec::Parallel { threads: 0 })
        .build();
    assert!(matches!(zero, Err(CoverageError::ZeroThreads)));
    let missing = CoverageEngine::builder(config).build();
    assert!(matches!(missing, Err(CoverageError::MissingTest)));
}

/// Engines over different memory shapes refuse to compare.
#[test]
fn compare_rejects_mismatched_configs() {
    let a = engine(
        &march_c_minus(),
        MemoryConfig::new(4, 2).unwrap(),
        EvaluationOptions::default(),
        Exec::Serial,
    );
    let b = engine(
        &march_c_minus(),
        MemoryConfig::new(8, 2).unwrap(),
        EvaluationOptions::default(),
        Exec::Serial,
    );
    let faults = UniverseBuilder::new(MemoryConfig::new(4, 2).unwrap())
        .stuck_at()
        .build();
    assert!(matches!(
        a.compare(&b, &faults),
        Err(CoverageError::ConfigMismatch)
    ));
}

/// A fault outside the memory shape surfaces as an error at its position
/// in the stream, and `report` returns the error of the earliest offending
/// fault — for any strategy.
#[test]
fn invalid_fault_errors_surface_in_order() {
    use twm_mem::BitAddress;
    let config = MemoryConfig::new(4, 2).unwrap();
    let mut faults = UniverseBuilder::new(config).stuck_at().build();
    let bad = Fault::stuck_at(BitAddress::new(99, 0), true);
    faults.insert(3, bad);
    for strategy in thread_strategies() {
        let e = engine(
            &march_c_minus(),
            config,
            EvaluationOptions::default(),
            strategy,
        );
        let mut stream = e.verdicts(&faults);
        for _ in 0..3 {
            assert!(matches!(stream.next(), Some(Ok(_))));
        }
        assert!(matches!(stream.next(), Some(Err(CoverageError::Mem(_)))));
        // The stream fuses after the first error.
        assert!(stream.next().is_none());
        assert!(matches!(e.report(&faults), Err(CoverageError::Mem(_))));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Multi-fault injections: the engine's fault-local
    /// `injection_detected` agrees with the historical full-sweep path
    /// (`memory_reuse(false)`) for any fault subset, content seed and
    /// contents-per-fault count.
    #[test]
    fn injection_detected_matches_full_sweep_reference(
        pick in prop::collection::vec(0usize..1000, 1..5),
        seed in any::<u64>(),
        contents in 1usize..3,
    ) {
        let config = MemoryConfig::new(10, 4).unwrap();
        let pool = UniverseBuilder::new(config)
            .all_classes()
            .coupling_scope(CouplingScope::AllPairs)
            .sample_per_class(40, 5)
            .build();
        let faults: Vec<Fault> = pick.iter().map(|&i| pool[i % pool.len()]).collect();
        let options = EvaluationOptions {
            content: ContentPolicy::Random { seed },
            contents_per_fault: contents,
        };
        let test = march_c_minus();
        let local = engine(&test, config, options, Exec::Serial)
            .injection_detected(&faults)
            .unwrap();
        let full = CoverageEngine::builder(config)
            .test(&test)
            .options(options)
            .strategy(Exec::Serial)
            .memory_reuse(false)
            .build()
            .unwrap()
            .injection_detected(&faults)
            .unwrap();
        prop_assert_eq!(local, full);
    }
}

#[test]
fn injection_detected_rejects_an_empty_set() {
    let config = MemoryConfig::new(8, 4).unwrap();
    let e = engine(
        &march_c_minus(),
        config,
        EvaluationOptions::default(),
        Exec::Serial,
    );
    assert!(matches!(
        e.injection_detected(&[]),
        Err(CoverageError::EmptyUniverse)
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// `report` may evaluate cheap-to-detect faults first
    /// (`schedule_cheap_first`, on by default), but the produced report
    /// must stay bit-identical to the strictly in-order evaluation for any
    /// universe permutation and thread count.
    #[test]
    fn cheap_first_scheduling_is_bit_identical(
        seed in any::<u64>(),
        rotate in 0usize..500,
    ) {
        let config = MemoryConfig::new(6, 4).unwrap();
        let mut faults = UniverseBuilder::new(config)
            .all_classes()
            .sample_per_class(60, 13)
            .build();
        // An arbitrary rotation mixes fault classes across the streaming
        // windows, the case the scheduling targets.
        let pivot = rotate % faults.len();
        faults.rotate_left(pivot);
        let options = EvaluationOptions {
            content: ContentPolicy::Random { seed },
            contents_per_fault: 1,
        };
        let reference = engine(&march_c_minus(), config, options, Exec::Serial)
            .report(&faults)
            .unwrap();
        for strategy in thread_strategies() {
            let scheduled = engine(&march_c_minus(), config, options, strategy)
                .report(&faults)
                .unwrap();
            prop_assert_eq!(&scheduled, &reference);
            let in_order = CoverageEngine::builder(config)
                .test(&march_c_minus())
                .options(options)
                .strategy(strategy)
                .schedule_cheap_first(false)
                .build()
                .unwrap()
                .report(&faults)
                .unwrap();
            prop_assert_eq!(&in_order, &reference);
        }
    }

    /// The persistent window worker pool (`thread_reuse`, on by default)
    /// must produce bit-identical reports to the historical
    /// spawn-per-window path and the serial reference, for any thread
    /// count — including through `with_test` siblings, which share the
    /// pool.
    #[test]
    fn persistent_worker_pool_is_bit_identical(seed in any::<u64>()) {
        let config = MemoryConfig::new(6, 4).unwrap();
        let faults = UniverseBuilder::new(config)
            .all_classes()
            .sample_per_class(60, 17)
            .build();
        let options = EvaluationOptions {
            content: ContentPolicy::Random { seed },
            contents_per_fault: 1,
        };
        let reference = engine(&march_c_minus(), config, options, Exec::Serial)
            .report(&faults)
            .unwrap();
        for strategy in thread_strategies() {
            let build = |reuse: bool| {
                CoverageEngine::builder(config)
                    .test(&march_c_minus())
                    .options(options)
                    .strategy(strategy)
                    .thread_reuse(reuse)
                    .build()
                    .unwrap()
            };
            let pooled = build(true);
            // Repeated reports reuse the same workers.
            prop_assert_eq!(&pooled.report(&faults).unwrap(), &reference);
            prop_assert_eq!(&pooled.report(&faults).unwrap(), &reference);
            let sibling = pooled.with_test(&march_c_minus()).unwrap();
            prop_assert_eq!(&sibling.report(&faults).unwrap(), &reference);
            let spawning = build(false);
            prop_assert_eq!(&spawning.report(&faults).unwrap(), &reference);
        }
    }

    /// `with_test` siblings (shared prepared contents, fresh lowering)
    /// must report exactly like an engine built from scratch for the same
    /// test — the contract `twm-search` scores candidates through.
    #[test]
    fn with_test_sibling_matches_fresh_engine(seed in any::<u64>()) {
        let config = MemoryConfig::new(8, 4).unwrap();
        let faults = UniverseBuilder::new(config)
            .all_classes()
            .sample_per_class(40, 3)
            .build();
        let options = EvaluationOptions {
            content: ContentPolicy::Random { seed },
            contents_per_fault: 2,
        };
        let template = engine(&mats_plus(), config, options, Exec::Serial);
        let scheme = TwmTa::new(4).unwrap();
        let candidate = scheme.transform(&march_c_minus()).unwrap();
        let sibling = template.with_test(candidate.transparent_test()).unwrap();
        let fresh = engine(candidate.transparent_test(), config, options, Exec::Serial);
        prop_assert_eq!(
            sibling.report(&faults).unwrap(),
            fresh.report(&faults).unwrap()
        );
        // The template keeps reporting for its own test afterwards.
        prop_assert_eq!(
            template.report(&faults).unwrap(),
            engine(&mats_plus(), config, options, Exec::Serial).report(&faults).unwrap()
        );
    }
}
