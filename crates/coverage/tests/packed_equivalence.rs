//! Property tests: the bit-parallel lane-batched evaluation path must be
//! **bit-identical** to the scalar one-fault-per-execution path on
//! [`twm_coverage::CoverageEngine::report`] — including the order of the
//! `undetected` fault list — for every universe, width, content policy and
//! strategy; and enabling lane batching must never change the output of
//! `report`, `verdicts` or `compare`.
//!
//! The scalar baseline is pinned with
//! [`CoverageEngineBuilder::lane_batching`]`(false)`
//! (`Strategy::Serial` alone no longer implies scalar evaluation — the
//! batched path is algorithmic, not thread-based).

#![cfg(feature = "parallel")]

use proptest::prelude::*;

use twm_core::{TransparentScheme, TwmTa};
use twm_coverage::universe::{CouplingScope, UniverseBuilder};
use twm_coverage::{ContentPolicy, CoverageEngine, EvaluationOptions, Strategy as Exec};
use twm_march::algorithms::{march_c_minus, mats_plus};
use twm_march::MarchTest;
use twm_mem::MemoryConfig;

fn arb_word_width() -> impl Strategy<Value = usize> {
    prop_oneof![Just(8usize), Just(16), Just(32), Just(64)]
}

fn arb_strategy() -> impl Strategy<Value = Exec> {
    prop_oneof![
        Just(Exec::Serial),
        Just(Exec::Parallel { threads: 2 }),
        Just(Exec::Parallel { threads: 3 }),
    ]
}

fn engine(
    test: &MarchTest,
    config: MemoryConfig,
    options: EvaluationOptions,
    strategy: Exec,
    lane_batching: bool,
) -> CoverageEngine {
    CoverageEngine::builder(config)
        .test(test)
        .options(options)
        .strategy(strategy)
        .lane_batching(lane_batching)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Mixed-class universes (SAF/TF packed, coupling routed scalar) under
    /// the random content policy: the batched report equals the scalar one
    /// for every strategy.
    #[test]
    fn packed_report_matches_scalar_for_mixed_universes(
        width in arb_word_width(),
        words in 2usize..6,
        universe_seed in 0u64..1_000,
        content_seed in 0u64..1_000,
        contents_per_fault in 1usize..3,
        strategy in arb_strategy(),
        use_mats in any::<bool>(),
    ) {
        let config = MemoryConfig::new(words, width).unwrap();
        let faults = UniverseBuilder::new(config)
            .all_classes()
            .coupling_scope(CouplingScope::SameWordAndAdjacent)
            .sample_per_class(15, universe_seed)
            .build();
        let test = if use_mats { mats_plus() } else { march_c_minus() };
        let options = EvaluationOptions {
            content: ContentPolicy::Random { seed: content_seed },
            contents_per_fault,
        };
        let scalar = engine(&test, config, options, Exec::Serial, false)
            .report(&faults).unwrap();
        let packed = engine(&test, config, options, strategy, true)
            .report(&faults).unwrap();
        prop_assert_eq!(scalar, packed);
    }

    /// Transparent word-oriented tests (the paper's TWM_TA transform, with
    /// data backgrounds): still bit-identical.
    #[test]
    fn packed_report_matches_scalar_for_transparent_tests(
        width in arb_word_width(),
        words in 2usize..5,
        universe_seed in 0u64..1_000,
        content_seed in 0u64..1_000,
        strategy in arb_strategy(),
    ) {
        let config = MemoryConfig::new(words, width).unwrap();
        let faults = UniverseBuilder::new(config)
            .stuck_at()
            .transition()
            .sample_per_class(40, universe_seed)
            .build();
        let transformed = TwmTa::new(width).unwrap().transform(&march_c_minus()).unwrap();
        let test = transformed.transparent_test();
        let options = EvaluationOptions {
            content: ContentPolicy::Random { seed: content_seed },
            contents_per_fault: 1,
        };
        let scalar = engine(test, config, options, Exec::Serial, false)
            .report(&faults).unwrap();
        let packed = engine(test, config, options, strategy, true)
            .report(&faults).unwrap();
        prop_assert_eq!(scalar, packed);
    }

    /// The all-zero content policy arms the arena without an image; it must
    /// agree too.
    #[test]
    fn packed_report_matches_scalar_for_zero_content(
        width in arb_word_width(),
        words in 2usize..6,
        universe_seed in 0u64..1_000,
        strategy in arb_strategy(),
    ) {
        let config = MemoryConfig::new(words, width).unwrap();
        let faults = UniverseBuilder::new(config)
            .stuck_at()
            .transition()
            .sample_per_class(40, universe_seed)
            .build();
        let options = EvaluationOptions {
            content: ContentPolicy::Zeros,
            contents_per_fault: 1,
        };
        let test = march_c_minus();
        let scalar = engine(&test, config, options, Exec::Serial, false)
            .report(&faults).unwrap();
        let packed = engine(&test, config, options, strategy, true)
            .report(&faults).unwrap();
        prop_assert_eq!(scalar, packed);
    }

    /// Universes larger than one 64-lane batch (full SAF+TF enumeration of
    /// a 4-word × 64-bit memory = 1024 faults = 16 batches) stay
    /// bit-identical — the batch boundary itself is exercised.
    #[test]
    fn packed_report_matches_scalar_across_batch_boundaries(
        content_seed in 0u64..1_000,
        strategy in arb_strategy(),
    ) {
        let config = MemoryConfig::new(4, 64).unwrap();
        let faults = UniverseBuilder::new(config).stuck_at().transition().build();
        prop_assert!(faults.len() > 64);
        let options = EvaluationOptions {
            content: ContentPolicy::Random { seed: content_seed },
            contents_per_fault: 1,
        };
        let test = march_c_minus();
        let scalar = engine(&test, config, options, Exec::Serial, false)
            .report(&faults).unwrap();
        let packed = engine(&test, config, options, strategy, true)
            .report(&faults).unwrap();
        prop_assert_eq!(scalar, packed);
    }

    /// Regression pin: lane batching never changes the output *ordering* of
    /// the three engine verbs — `report` (its `undetected` list is in
    /// universe order), the `verdicts` stream (universe order, fault by
    /// fault) and `compare` (reports plus the disagreement list).
    #[test]
    fn lane_batching_never_reorders_report_verdicts_or_compare(
        width in prop_oneof![Just(8usize), Just(16)],
        words in 2usize..5,
        universe_seed in 0u64..1_000,
        content_seed in 0u64..1_000,
        strategy in arb_strategy(),
    ) {
        let config = MemoryConfig::new(words, width).unwrap();
        let faults = UniverseBuilder::new(config)
            .all_classes()
            .sample_per_class(20, universe_seed)
            .build();
        let options = EvaluationOptions {
            content: ContentPolicy::Random { seed: content_seed },
            contents_per_fault: 1,
        };
        let test = march_c_minus();
        let batched = engine(&test, config, options, strategy, true);
        let scalar = engine(&test, config, options, strategy, false);

        // report: identical, including `undetected` order.
        let batched_report = batched.report(&faults).unwrap();
        let scalar_report = scalar.report(&faults).unwrap();
        prop_assert_eq!(&batched_report.undetected, &scalar_report.undetected);
        prop_assert_eq!(batched_report, scalar_report);

        // verdicts: the stream yields the same verdicts in universe order
        // regardless of the knob.
        let batched_verdicts: Vec<_> = batched
            .verdicts(&faults)
            .map(|verdict| verdict.unwrap())
            .collect();
        let scalar_verdicts: Vec<_> = scalar
            .verdicts(&faults)
            .map(|verdict| verdict.unwrap())
            .collect();
        for (verdict, &fault) in batched_verdicts.iter().zip(&faults) {
            prop_assert_eq!(verdict.fault, fault);
        }
        prop_assert_eq!(batched_verdicts, scalar_verdicts);

        // compare: reports and the disagreement list agree fault for fault.
        let transformed = TwmTa::new(width).unwrap().transform(&march_c_minus()).unwrap();
        let second_batched = batched.with_test(transformed.transparent_test()).unwrap();
        let second_scalar = scalar.with_test(transformed.transparent_test()).unwrap();
        let batched_cmp = batched.compare(&second_batched, &faults).unwrap();
        let scalar_cmp = scalar.compare(&second_scalar, &faults).unwrap();
        prop_assert_eq!(batched_cmp, scalar_cmp);
    }
}
