//! Property tests: the parallel engine must produce **bit-identical**
//! [`twm_coverage::CoverageReport`]s to the serial reference path for any
//! universe, seed, width and thread count — including the order of the
//! `undetected` fault list.
//!
//! Thread counts are passed explicitly through
//! `Strategy::Parallel { threads }` (not the `TWM_COVERAGE_THREADS`
//! environment variable) so concurrently-running tests cannot race on
//! process-global state and every drawn thread count is really exercised.

#![cfg(feature = "parallel")]

use proptest::prelude::*;

use twm_core::{TransparentScheme, TwmTa};
use twm_coverage::universe::{CouplingScope, UniverseBuilder};
use twm_coverage::{ContentPolicy, CoverageEngine, EvaluationOptions, Strategy as Exec};
use twm_march::algorithms::{march_c_minus, mats_plus};
use twm_march::MarchTest;
use twm_mem::MemoryConfig;

fn arb_width() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(2), Just(4), Just(8)]
}

fn engine(
    test: &MarchTest,
    config: MemoryConfig,
    options: EvaluationOptions,
    strategy: Exec,
) -> CoverageEngine {
    CoverageEngine::builder(config)
        .test(test)
        .options(options)
        .strategy(strategy)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Bit-oriented and word-oriented literal tests: the parallel engine
    /// agrees with the serial one for every universe and thread count.
    #[test]
    fn parallel_report_is_bit_identical_for_literal_tests(
        width in arb_width(),
        words in 2usize..8,
        universe_seed in 0u64..1_000,
        content_seed in 0u64..1_000,
        threads in 2usize..6,
        use_mats in any::<bool>(),
    ) {
        let config = MemoryConfig::new(words, width).unwrap();
        let faults = UniverseBuilder::new(config)
            .all_classes()
            .coupling_scope(CouplingScope::SameWordAndAdjacent)
            .sample_per_class(25, universe_seed)
            .build();
        let test = if use_mats { mats_plus() } else { march_c_minus() };
        let options = EvaluationOptions {
            content: ContentPolicy::Random { seed: content_seed },
            contents_per_fault: 1,
        };
        let serial = engine(&test, config, options, Exec::Serial)
            .report(&faults).unwrap();
        let parallel = engine(&test, config, options, Exec::Parallel { threads })
            .report(&faults).unwrap();
        prop_assert_eq!(serial, parallel);
    }

    /// Transparent word-oriented tests (data backgrounds, multiple contents
    /// per fault): still bit-identical.
    #[test]
    fn parallel_report_is_bit_identical_for_transparent_tests(
        width in prop_oneof![Just(2usize), Just(4), Just(8)],
        words in 2usize..6,
        universe_seed in 0u64..1_000,
        content_seed in 0u64..1_000,
        contents_per_fault in 1usize..3,
        threads in 2usize..5,
    ) {
        let config = MemoryConfig::new(words, width).unwrap();
        let faults = UniverseBuilder::new(config)
            .all_classes()
            .sample_per_class(15, universe_seed)
            .build();
        let transformed = TwmTa::new(width).unwrap().transform(&march_c_minus()).unwrap();
        let options = EvaluationOptions {
            content: ContentPolicy::Random { seed: content_seed },
            contents_per_fault,
        };
        let test = transformed.transparent_test();
        let serial = engine(test, config, options, Exec::Serial)
            .report(&faults).unwrap();
        let parallel = engine(test, config, options, Exec::Parallel { threads })
            .report(&faults).unwrap();
        prop_assert_eq!(serial, parallel);
    }

    /// The all-zero content policy takes the no-shared-contents path; it
    /// must agree too.
    #[test]
    fn parallel_report_is_bit_identical_for_zero_content(
        width in arb_width(),
        words in 2usize..8,
        universe_seed in 0u64..1_000,
        threads in 2usize..5,
    ) {
        let config = MemoryConfig::new(words, width).unwrap();
        let faults = UniverseBuilder::new(config)
            .stuck_at()
            .transition()
            .sample_per_class(30, universe_seed)
            .build();
        let options = EvaluationOptions {
            content: ContentPolicy::Zeros,
            contents_per_fault: 1,
        };
        let test = march_c_minus();
        let serial = engine(&test, config, options, Exec::Serial)
            .report(&faults).unwrap();
        let parallel = engine(&test, config, options, Exec::Parallel { threads })
            .report(&faults).unwrap();
        prop_assert_eq!(serial, parallel);
    }

    /// Degenerate thread counts (1 = serial execution; more threads than
    /// faults) are handled and still bit-identical.
    #[test]
    fn degenerate_thread_counts_are_handled(
        threads in prop_oneof![Just(1usize), Just(64), Just(1000)],
        universe_seed in 0u64..1_000,
    ) {
        let config = MemoryConfig::new(4, 4).unwrap();
        let faults = UniverseBuilder::new(config)
            .stuck_at()
            .sample_per_class(10, universe_seed)
            .build();
        let options = EvaluationOptions::default();
        let test = march_c_minus();
        let serial = engine(&test, config, options, Exec::Serial)
            .report(&faults).unwrap();
        let parallel = engine(&test, config, options, Exec::Parallel { threads })
            .report(&faults).unwrap();
        prop_assert_eq!(serial, parallel);
    }

    /// One engine instance reused across several universes produces exactly
    /// what fresh engines produce — the arena pool leaks no state between
    /// evaluations.
    #[test]
    fn engine_reuse_across_universes_is_stateless(
        universe_seeds in prop::collection::vec(0u64..1_000, 2..5),
        threads in 1usize..5,
    ) {
        let config = MemoryConfig::new(5, 4).unwrap();
        let test = march_c_minus();
        let options = EvaluationOptions::default();
        let reused = engine(&test, config, options, Exec::Parallel { threads });
        for seed in universe_seeds {
            let faults = UniverseBuilder::new(config)
                .all_classes()
                .sample_per_class(12, seed)
                .build();
            let fresh = engine(&test, config, options, Exec::Serial)
                .report(&faults).unwrap();
            prop_assert_eq!(reused.report(&faults).unwrap(), fresh);
        }
    }
}
