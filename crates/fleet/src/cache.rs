//! The LRU-bounded runtime cache: per-shard engines, transforms and
//! diagnosis state, rebuilt on miss and shared across worker threads.
//!
//! A shard's runtime is everything batched diagnosis needs beyond the
//! dictionary itself: the scheme registry for the memory width, every
//! scheme's transform of the source test (the expensive part of a
//! [`twm_repair::DiagnosticSession`]), the dictionary-scheme transform
//! used for repair verification, the MISR template and a
//! [`CoverageEngine`] carrying the prepared reference contents.
//!
//! Engines are built in two steps so shards of the same memory shape and
//! content policy share the prepared contents: a **base** engine per
//! `(config, content)` pair (kept for the life of the cache — there are
//! few distinct shapes in a deployment), then the cheap
//! [`CoverageEngine::with_scheme`] sibling per shard, which clones `Arc`s
//! instead of regenerating contents.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use twm_bist::Misr;
use twm_core::scheme::{SchemeRegistry, SchemeTransform};
use twm_coverage::{ContentPolicy, CoverageEngine, Strategy};
use twm_march::MarchTest;
use twm_mem::MemoryConfig;
use twm_obs::Counter;
use twm_repair::TrailLookup;

use crate::shard::ShardKey;
use crate::stats::CacheMetrics;
use crate::store::{DictionaryHandle, ShardEntry};
use crate::FleetError;

/// Process-wide runtime-cache counters in the [`twm_obs::global`]
/// registry — the scrapeable mirror of every cache instance's
/// [`CacheMetrics`] snapshot, plus the spill counter the service bumps
/// when a demoted shard goes to disk.
pub(crate) struct CacheObs {
    pub(crate) hits: Counter,
    pub(crate) misses: Counter,
    pub(crate) evictions: Counter,
    pub(crate) spills: Counter,
}

pub(crate) fn cache_obs() -> &'static CacheObs {
    static OBS: OnceLock<CacheObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let registry = twm_obs::global();
        CacheObs {
            hits: registry.counter("twm_fleet_cache_hits_total", &[]),
            misses: registry.counter("twm_fleet_cache_misses_total", &[]),
            evictions: registry.counter("twm_fleet_cache_evictions_total", &[]),
            spills: registry.counter("twm_fleet_cache_spills_total", &[]),
        }
    })
}

/// Everything a worker thread needs to diagnose one shard's reports.
#[derive(Debug)]
pub struct ShardRuntime {
    /// The source march test the deployment runs.
    pub source: MarchTest,
    /// The scheme registry for the shard's memory width.
    pub registry: SchemeRegistry,
    /// Every registered scheme's transform of the source test, in
    /// registry order — feeds
    /// [`twm_repair::DiagnosticSession::with_transforms`].
    pub transforms: Vec<SchemeTransform>,
    /// The shard's dictionary handle — resident, or served from its
    /// spill file through the bounded page cache.
    pub dictionary: DictionaryHandle,
    /// A coverage engine under the dictionary's scheme, sharing its base
    /// engine's prepared contents.
    pub engine: CoverageEngine,
    /// The dictionary-scheme transform (the one repair verification
    /// re-runs).
    pub probe: SchemeTransform,
    /// The dictionary's MISR template (reset state).
    pub misr: Misr,
}

impl ShardRuntime {
    fn build(entry: &ShardEntry, base: &CoverageEngine) -> Result<Self, FleetError> {
        let dictionary = entry.dictionary.clone();
        let config = dictionary.config();
        let registry = SchemeRegistry::all(config.width())?;
        let transforms = registry.transform_all(&entry.source)?;
        let scheme = registry
            .get(dictionary.scheme())
            .ok_or(FleetError::UnknownShard(ShardKey::new(
                config,
                dictionary.scheme(),
                &entry.source,
            )))?;
        let engine = base.with_scheme(scheme, &entry.source)?;
        let probe = registry
            .ids()
            .position(|id| id == dictionary.scheme())
            .map(|at| transforms[at].clone())
            .expect("registry.get succeeded, so the id is present");
        let misr = dictionary.misr_template().clone();
        Ok(Self {
            source: entry.source.clone(),
            registry,
            transforms,
            dictionary,
            engine,
            probe,
            misr,
        })
    }
}

/// LRU cache of shard runtimes plus the per-`(config, content)` base
/// engines they are derived from.
#[derive(Debug)]
pub struct RuntimeCache {
    capacity: usize,
    strategy: Strategy,
    clock: u64,
    runtimes: BTreeMap<ShardKey, (u64, Arc<ShardRuntime>)>,
    bases: Vec<((MemoryConfig, ContentPolicy), CoverageEngine)>,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    evicted: Vec<ShardKey>,
}

impl RuntimeCache {
    /// Creates a cache bounded to `capacity` shard runtimes; base engines
    /// run fault simulations under `strategy`.
    ///
    /// # Errors
    ///
    /// [`FleetError::ZeroCapacity`] for `capacity == 0`.
    pub fn new(capacity: usize, strategy: Strategy) -> Result<Self, FleetError> {
        if capacity == 0 {
            return Err(FleetError::ZeroCapacity);
        }
        Ok(Self {
            capacity,
            strategy,
            clock: 0,
            runtimes: BTreeMap::new(),
            bases: Vec::new(),
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
            evicted: Vec::new(),
        })
    }

    /// The shard runtime for `key`, touched as most-recently-used;
    /// (re)built from the store entry on a miss, evicting the
    /// least-recently-used runtime when over capacity.
    ///
    /// # Errors
    ///
    /// Propagates registry, transform and engine-build errors from a cold
    /// build.
    pub fn runtime(
        &mut self,
        key: ShardKey,
        entry: &ShardEntry,
    ) -> Result<Arc<ShardRuntime>, FleetError> {
        self.clock += 1;
        if let Some((stamp, runtime)) = self.runtimes.get_mut(&key) {
            *stamp = self.clock;
            self.hits.incr();
            cache_obs().hits.incr();
            return Ok(Arc::clone(runtime));
        }
        self.misses.incr();
        cache_obs().misses.incr();
        let base = self.base_engine(key.config, entry.dictionary.content(), &entry.source)?;
        let runtime = Arc::new(ShardRuntime::build(entry, &base)?);
        if self.runtimes.len() == self.capacity {
            let oldest = self
                .runtimes
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(&key, _)| key)
                .expect("capacity > 0, so a full cache is non-empty");
            self.runtimes.remove(&oldest);
            self.evictions.incr();
            cache_obs().evictions.incr();
            self.evicted.push(oldest);
        }
        self.runtimes
            .insert(key, (self.clock, Arc::clone(&runtime)));
        Ok(runtime)
    }

    /// Drops a shard's cached runtime (after an eviction from the store).
    pub fn invalidate(&mut self, key: ShardKey) {
        self.runtimes.remove(&key);
    }

    /// Drains the shard keys evicted by the LRU bound since the last
    /// call — the service's hook for demoting cold shards to their spill
    /// files ([`crate::DictionaryStore::spill`]).
    pub fn take_evicted(&mut self) -> Vec<ShardKey> {
        std::mem::take(&mut self.evicted)
    }

    /// A snapshot of the cache health counters. The counters live on
    /// [`twm_obs`] atomics (mirrored into the global registry as
    /// `twm_fleet_cache_*_total`); this accessor is the same thin
    /// per-instance view callers have always had.
    #[must_use]
    pub fn metrics(&self) -> CacheMetrics {
        CacheMetrics {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
        }
    }

    /// Number of cached shard runtimes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.runtimes.len()
    }

    /// Whether no runtime is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.runtimes.is_empty()
    }

    /// The base engine for a `(config, content)` pair, building and
    /// memoising it on first use. Returns a cheap sibling handle —
    /// engines share their prepared contents through `Arc`s, so deriving
    /// one is O(1) in content size.
    pub(crate) fn base_engine(
        &mut self,
        config: MemoryConfig,
        content: ContentPolicy,
        test: &MarchTest,
    ) -> Result<CoverageEngine, FleetError> {
        if let Some((_, base)) = self.bases.iter().find(|((base_config, base_content), _)| {
            *base_config == config && *base_content == content
        }) {
            return Ok(base.with_test(test)?);
        }
        let base = CoverageEngine::builder(config)
            .test(test)
            .content(content)
            .strategy(self.strategy)
            .build()?;
        let handle = base.with_test(test)?;
        self.bases.push(((config, content), base));
        Ok(handle)
    }
}
