//! A std-only thread-pool dispatch path over [`FleetService::handle`].
//!
//! [`Dispatcher::submit`] enqueues a request and returns a [`Ticket`];
//! worker threads drain the queue and post each response back through
//! the ticket's channel. Responses are per-request, so out-of-order
//! completion across tickets is fine — each caller blocks only on its
//! own [`Ticket::wait`].

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::service::{FleetService, Request, Response};

struct Job {
    request: Request,
    reply: mpsc::Sender<Response>,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct Shared {
    service: Arc<FleetService>,
    queue: Mutex<QueueState>,
    available: Condvar,
}

/// A pending response; redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    receiver: mpsc::Receiver<Response>,
}

impl Ticket {
    /// Blocks until the request's response is ready.
    #[must_use]
    pub fn wait(self) -> Response {
        self.receiver.recv().unwrap_or_else(|_| Response::Error {
            message: "dispatcher shut down before the request completed".to_string(),
        })
    }
}

/// A fixed pool of worker threads feeding one [`FleetService`].
pub struct Dispatcher {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Dispatcher {
    /// Spawns `workers` threads (at least one) over the service.
    #[must_use]
    pub fn new(service: Arc<FleetService>, workers: usize) -> Self {
        let shared = Arc::new(Shared {
            service,
            queue: Mutex::new(QueueState::default()),
            available: Condvar::new(),
        });
        let handles = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker(&shared))
            })
            .collect();
        Self { shared, handles }
    }

    /// Enqueues a request; the returned ticket resolves to its response.
    #[must_use]
    pub fn submit(&self, request: Request) -> Ticket {
        let (reply, receiver) = mpsc::channel();
        {
            let mut queue = self.shared.queue.lock().expect("queue lock");
            queue.jobs.push_back(Job { request, reply });
        }
        self.shared.available.notify_one();
        Ticket { receiver }
    }

    /// The service behind the pool.
    #[must_use]
    pub fn service(&self) -> &Arc<FleetService> {
        &self.shared.service
    }
}

impl Drop for Dispatcher {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("queue lock");
            queue.closed = true;
        }
        self.shared.available.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.closed {
                    return;
                }
                queue = shared.available.wait(queue).expect("queue lock");
            }
        };
        let response = shared.service.handle(job.request);
        // The submitter may have dropped its ticket; that is not an error.
        let _ = job.reply.send(response);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::FleetConfig;
    use twm_coverage::Strategy;

    #[test]
    fn dispatches_and_drains_on_drop() {
        let service = Arc::new(
            FleetService::new(FleetConfig {
                strategy: Strategy::Serial,
                ..FleetConfig::default()
            })
            .unwrap(),
        );
        let dispatcher = Dispatcher::new(service, 2);
        let tickets: Vec<Ticket> = (0..8)
            .map(|_| dispatcher.submit(Request::ListShards))
            .collect();
        for ticket in tickets {
            assert_eq!(ticket.wait(), Response::Shards(Vec::new()));
        }
    }
}
