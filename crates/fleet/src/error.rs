//! Fleet service error type.

use std::fmt;

use twm_core::CoreError;
use twm_coverage::CoverageError;
use twm_mem::MemError;
use twm_repair::RepairError;

use crate::shard::ShardKey;

/// Errors of the fleet service layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum FleetError {
    /// A dictionary is already registered under the shard key.
    DuplicateShard(ShardKey),
    /// No dictionary is registered under the shard key.
    UnknownShard(ShardKey),
    /// The registered source test does not reproduce the dictionary's
    /// transparent test under its scheme.
    SourceMismatch {
        /// The dictionary's transparent-test name.
        expected: String,
        /// The transparent-test name the source produces.
        produced: String,
    },
    /// A wire payload failed to decode.
    Wire(String),
    /// The runtime cache was configured with zero capacity.
    ZeroCapacity,
    /// A transport or spill-file I/O failure.
    Io(std::io::Error),
    /// A paged dictionary store failure (spill or rehydration).
    Store(twm_store::StoreError),
    /// An underlying core (scheme registry / transform) error.
    Core(CoreError),
    /// An underlying coverage-engine error.
    Coverage(CoverageError),
    /// An underlying diagnosis-to-repair error.
    Repair(RepairError),
    /// An underlying memory-model error.
    Mem(MemError),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateShard(shard) => {
                write!(f, "a dictionary is already registered for shard {shard}")
            }
            Self::UnknownShard(shard) => {
                write!(f, "no dictionary registered for shard {shard}")
            }
            Self::SourceMismatch { expected, produced } => write!(
                f,
                "source test produces transparent test {produced:?}, \
                 dictionary was built from {expected:?}"
            ),
            Self::Wire(message) => write!(f, "wire decode failed: {message}"),
            Self::ZeroCapacity => write!(f, "runtime cache capacity must be non-zero"),
            Self::Io(error) => write!(f, "i/o error: {error}"),
            Self::Store(error) => write!(f, "dictionary store error: {error}"),
            Self::Core(error) => write!(f, "core error: {error}"),
            Self::Coverage(error) => write!(f, "coverage error: {error}"),
            Self::Repair(error) => write!(f, "repair error: {error}"),
            Self::Mem(error) => write!(f, "memory error: {error}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(error) => Some(error),
            Self::Store(error) => Some(error),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FleetError {
    fn from(error: std::io::Error) -> Self {
        Self::Io(error)
    }
}

impl From<twm_store::StoreError> for FleetError {
    fn from(error: twm_store::StoreError) -> Self {
        Self::Store(error)
    }
}

impl From<CoreError> for FleetError {
    fn from(error: CoreError) -> Self {
        Self::Core(error)
    }
}

impl From<CoverageError> for FleetError {
    fn from(error: CoverageError) -> Self {
        Self::Coverage(error)
    }
}

impl From<RepairError> for FleetError {
    fn from(error: RepairError) -> Self {
        Self::Repair(error)
    }
}

impl From<MemError> for FleetError {
    fn from(error: MemError) -> Self {
        Self::Mem(error)
    }
}

impl From<serde::Error> for FleetError {
    fn from(error: serde::Error) -> Self {
        Self::Wire(error.to_string())
    }
}
