//! # twm-fleet — fleet-scale diagnosis service
//!
//! The paper's transparent BIST runs *on* a device; a deployed fleet of
//! them needs somewhere to send the results. This crate is that other
//! end: an in-process, transport-agnostic service that owns the
//! signature dictionaries for every deployment triple and turns batched
//! device trail reports into ranked defects, repair plans and fleet
//! statistics — without ever touching the devices' memories.
//!
//! * [`shard`] — [`ShardKey`]: dictionaries and cached runtimes are
//!   partitioned by `(MemoryConfig, SchemeId, test fingerprint)`, the
//!   triple a trail must match for a lookup to mean anything.
//! * [`store`] — [`DictionaryStore`]: registered dictionaries behind
//!   [`DictionaryHandle`]s (resident, or **spilled** to a paged
//!   [`twm_store::PagedDictionary`] file that keeps serving lookups from
//!   disk under a bounded page cache), with streaming wire-format
//!   export/import for persistence.
//! * [`cache`] — [`RuntimeCache`]: an LRU bound over per-shard
//!   [`ShardRuntime`]s (scheme registry, transforms, coverage engine,
//!   MISR), rebuilt on miss through the cheap
//!   [`twm_coverage::CoverageEngine::with_scheme`] sibling path so
//!   shards of one memory shape share prepared contents.
//! * [`service`] — [`FleetService::handle`]: the synchronous
//!   [`Request`] → [`Response`] core. [`Request::DiagnoseBatch`] fans
//!   devices across worker threads and merges outcomes back into
//!   submission order, **bit-identical to the serial path** for any
//!   thread count.
//! * [`dispatch`] — [`Dispatcher`]: a std-only thread pool for callers
//!   that want queued, concurrent request handling.
//!   With [`FleetConfig::metrics_http`] set, the service also serves a
//!   pull-based `GET /metrics` + `GET /healthz` HTTP endpoint (a
//!   [`twm_obs::MetricsServer`] over the process-wide registry) from a
//!   background thread — the scrape bytes equal the
//!   [`Request::Metrics`] exposition of the same snapshot.
//! * [`stats`] — [`FleetStatistics`]: additive (order-independent)
//!   aggregates — failure rates per fault class, ambiguity histograms,
//!   repair-rate-vs-spares curves; [`CacheMetrics`] kept separate
//!   because hit rates depend on arrival order.
//! * [`wire`] — a compact self-describing binary encoding of the serde
//!   data model (layout owned by [`twm_store::wire`]); every request,
//!   response and persisted dictionary round-trips through
//!   [`wire::to_bytes`] / [`wire::from_bytes`], or streams over
//!   [`std::io::Read`]/[`std::io::Write`] with [`wire::write_to`] /
//!   [`wire::read_from`].
//! * [`tcp`] — [`TcpFront`]/[`FleetClient`]: a length-prefixed blocking
//!   TCP framing of the same request/response pairs.
//!
//! ## A minimal deployment
//!
//! ```
//! use twm_core::scheme::SchemeId;
//! use twm_coverage::ContentPolicy;
//! use twm_fleet::{
//!     DeviceReport, FleetService, Request, Response, ShardKey, UniverseSpec,
//! };
//! use twm_march::algorithms::march_c_minus;
//! use twm_mem::MemoryConfig;
//! use twm_repair::SignatureTrail;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let service = FleetService::with_defaults()?;
//! let config = MemoryConfig::new(8, 4)?;
//!
//! // Build and register the shard's dictionary server-side.
//! let registered = service.handle(Request::BuildDictionary {
//!     scheme: SchemeId::TwmTa,
//!     source: march_c_minus(),
//!     config,
//!     content: ContentPolicy::Random { seed: 9 },
//!     universe: UniverseSpec::default(),
//! });
//! let Response::Registered { shard, .. } = registered else {
//!     panic!("registration failed: {registered:?}");
//! };
//!
//! // A healthy device reports the fault-free trail.
//! let Response::Shards(shards) = service.handle(Request::ListShards) else {
//!     unreachable!()
//! };
//! assert_eq!(shards[0].shard, shard);
//! # Ok(())
//! # }
//! ```
//!
//! (See `examples/fleet_diagnosis.rs` for the full loop: injected
//! faults, batched diagnosis and verified repair plans.)

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod dispatch;
mod error;
pub mod service;
pub mod shard;
pub mod stats;
pub mod store;
pub mod tcp;
pub mod wire;

pub use cache::{RuntimeCache, ShardRuntime};
pub use dispatch::{Dispatcher, Ticket};
pub use error::FleetError;
pub use service::{
    BatchReport, DeviceOutcome, DeviceReport, DeviceVerdict, Diagnosis, FleetConfig, FleetService,
    Request, Response, ShardInfo, UniverseSpec,
};
pub use shard::{ShardKey, TestFingerprint};
pub use stats::{CacheMetrics, FleetStatistics};
pub use store::{DictionaryHandle, DictionaryStore, PersistedShard, ShardEntry, SpillConfig};
pub use tcp::{FleetClient, TcpFront};

// Re-exported so service callers can build reports, decode dictionaries
// and size spill files without depending on twm-repair/twm-store directly.
pub use twm_repair::{SignatureDictionary, SignatureTrail};
pub use twm_store::{PagedDictionary, StoreOptions};
