//! The transport-agnostic service core: a request/response enum pair and
//! the synchronous [`FleetService::handle`] entry point.
//!
//! The service is deliberately transport-free — callers hand it a
//! [`Request`] value (decoded from the [`crate::wire`] format or built
//! in-process) and get a [`Response`] value back. A socket server, a CI
//! harness and the [`crate::Dispatcher`] thread pool all wrap the same
//! `handle`.
//!
//! ## Determinism
//!
//! Batched diagnosis fans devices across worker threads, but every
//! per-device verdict is a pure function of the shard runtime and the
//! report, results are merged back into submission order, and batch
//! statistics are folded serially from that order — so a batch response
//! is **bit-identical to the serial path** for any thread count, and
//! cumulative statistics (all counters additive) do not depend on how
//! concurrent batches interleave. Cache hit/miss counters *do* depend on
//! arrival order; they live in [`CacheMetrics`], apart from the
//! deterministic [`FleetStatistics`].

use std::collections::{BTreeMap, BTreeSet};
use std::net::SocketAddr;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use serde::{Deserialize, Serialize};
use twm_core::scheme::SchemeId;
use twm_coverage::{ContentPolicy, Strategy, UniverseBuilder};
use twm_march::MarchTest;
use twm_mem::{FaultyMemory, MemoryConfig, RepairableMemory};
use twm_obs::{
    latency_bounds, Counter, Histogram, HistogramSnapshot, MetricsReport, MetricsServer,
};
use twm_repair::{
    localise_trail, verify_repair, DictionaryOptions, LocatedDefect, RepairAllocator, RepairPlan,
    SignatureDictionary, SignatureTrail, TrailLookup,
};

use crate::cache::{cache_obs, RuntimeCache, ShardRuntime};
use crate::shard::ShardKey;
use crate::stats::{CacheMetrics, FleetStatistics};
use crate::store::{DictionaryStore, SpillConfig};
use crate::FleetError;

/// Service-wide configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker-thread strategy for batch fan-out, engine simulations and
    /// server-side dictionary builds.
    pub strategy: Strategy,
    /// LRU bound on cached shard runtimes.
    pub cache_capacity: usize,
    /// Whether diagnosed devices get their repair plan verified by
    /// simulation (apply the plan to the ambiguity class's representative
    /// injection and re-run the scheme session through the remap table).
    pub verify_repairs: bool,
    /// When set, shards whose runtimes fall out of the LRU cache are
    /// demoted to paged spill files under this configuration — lookups
    /// keep working from disk and fleet memory stays bounded by the
    /// page-cache budget.
    pub spill: Option<SpillConfig>,
    /// When set, the service binds a [`twm_obs::MetricsServer`] on this
    /// address at construction and serves `GET /metrics` (the
    /// process-wide registry in the Prometheus text format) and
    /// `GET /healthz` from a background thread for the life of the
    /// process. Bind to port 0 and read the resolved address back with
    /// [`FleetService::metrics_addr`].
    pub metrics_http: Option<SocketAddr>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            strategy: Strategy::Auto,
            cache_capacity: 8,
            verify_repairs: true,
            spill: None,
            metrics_http: None,
        }
    }
}

/// Which fault classes a server-side dictionary build indexes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UniverseSpec {
    /// Index single stuck-at faults.
    pub stuck_at: bool,
    /// Index single transition faults.
    pub transition: bool,
    /// Index idempotent coupling faults.
    pub coupling_idempotent: bool,
    /// Two-fault injections to sample on top of the single-fault
    /// universe.
    pub multi_fault_samples: usize,
    /// Seed of the deterministic pair sampler.
    pub sample_seed: u64,
}

impl Default for UniverseSpec {
    fn default() -> Self {
        Self {
            stuck_at: true,
            transition: true,
            coupling_idempotent: false,
            multi_fault_samples: 0,
            sample_seed: 0xD1C7,
        }
    }
}

/// One device's periodic-test report: where it runs and what its MISR
/// produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceReport {
    /// Caller-chosen device identifier, echoed in the outcome.
    pub device: String,
    /// The deployment triple the device runs.
    pub shard: ShardKey,
    /// The observed per-stage MISR signature trail.
    pub trail: SignatureTrail,
    /// Spare words the device's memory has available for repair.
    pub spares: usize,
}

/// The service request set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Request {
    /// Register a client-built dictionary for the shard derived from its
    /// config, scheme and `source`.
    RegisterDictionary {
        /// The source march test of the deployment.
        source: MarchTest,
        /// The dictionary (built with [`SignatureDictionary::build`]).
        dictionary: SignatureDictionary,
    },
    /// Build a dictionary server-side (through the cached engine for the
    /// config/content pair) and register it.
    BuildDictionary {
        /// The transparent scheme of the deployment.
        scheme: SchemeId,
        /// The source march test.
        source: MarchTest,
        /// The memory shape.
        config: MemoryConfig,
        /// The reference content policy devices run the periodic test
        /// against.
        content: ContentPolicy,
        /// The fault universe to index.
        universe: UniverseSpec,
    },
    /// Drop a shard's dictionary (and its cached runtime).
    EvictDictionary {
        /// The shard to evict.
        shard: ShardKey,
    },
    /// List the registered shards.
    ListShards,
    /// Diagnose a batch of device reports.
    DiagnoseBatch {
        /// The reports; outcomes come back in this order.
        reports: Vec<DeviceReport>,
    },
    /// Export a shard's source test and dictionary in the wire format.
    ExportShard {
        /// The shard to export.
        shard: ShardKey,
    },
    /// Register a shard from an [`Response::Exported`] payload.
    ImportShard {
        /// The wire-format bytes.
        bytes: Vec<u8>,
    },
    /// Cumulative diagnosis statistics since service start.
    Statistics,
    /// Runtime-cache health counters.
    CacheMetrics,
    /// A scrape of the process-wide [`twm_obs`] metrics registry —
    /// the remote equivalent of calling [`twm_obs::Registry::snapshot`]
    /// in-process.
    Metrics,
}

/// A registered shard, as listed by [`Request::ListShards`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardInfo {
    /// The shard key.
    pub shard: ShardKey,
    /// Name of the source march test.
    pub test_name: String,
    /// Ambiguity classes in the dictionary.
    pub classes: usize,
    /// Injections the dictionary indexes.
    pub indexed: usize,
}

/// The verdict for one device of a batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DeviceVerdict {
    /// The trail matches the fault-free reference.
    Clean,
    /// No dictionary is registered for the report's shard.
    UnknownShard,
    /// The trail fails but matches no indexed injection (content drift or
    /// an un-modelled defect) — candidate for escalation to on-device
    /// adaptive localisation.
    UnknownTrail,
    /// The trail matched an ambiguity class.
    Diagnosed(Diagnosis),
    /// Diagnosis failed with an internal error.
    Failed {
        /// The error rendered as text.
        message: String,
    },
}

/// A successful trail diagnosis with its repair plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnosis {
    /// Ranked defect hypotheses.
    pub defects: Vec<LocatedDefect>,
    /// Size of the matched ambiguity class.
    pub ambiguity: usize,
    /// Spare assignment over the device's budget.
    pub plan: RepairPlan,
    /// Whether the plan re-verified clean on the class's representative
    /// injection (always `false` when verification is disabled or the
    /// plan leaves defects unrepaired).
    pub predicted_clean: bool,
}

/// One device's slot of a batch response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceOutcome {
    /// The report's device identifier.
    pub device: String,
    /// The verdict.
    pub verdict: DeviceVerdict,
}

/// A whole batch's outcomes plus its (batch-local) statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchReport {
    /// Per-device outcomes, in submission order.
    pub outcomes: Vec<DeviceOutcome>,
    /// Statistics folded over this batch only.
    pub statistics: FleetStatistics,
}

/// The service response set; every [`Request`] variant maps to one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Response {
    /// A dictionary was registered.
    Registered {
        /// The shard it serves.
        shard: ShardKey,
        /// Ambiguity classes in the dictionary.
        classes: usize,
        /// Injections indexed.
        indexed: usize,
    },
    /// An eviction was processed.
    Evicted {
        /// The shard.
        shard: ShardKey,
        /// Whether a dictionary was registered.
        existed: bool,
    },
    /// The registered shards.
    Shards(Vec<ShardInfo>),
    /// A batch was diagnosed.
    Batch(BatchReport),
    /// A shard's wire-format export.
    Exported {
        /// The shard.
        shard: ShardKey,
        /// Source test + dictionary, wire-encoded.
        bytes: Vec<u8>,
    },
    /// Cumulative statistics.
    Statistics(FleetStatistics),
    /// Cache health counters.
    CacheMetrics(CacheMetrics),
    /// A metrics-registry scrape. `text` and `report` are rendered
    /// from **one** snapshot, so `report.expose() == text` holds even
    /// while counters keep ticking — the invariant the remote-scrape
    /// equality test asserts.
    Metrics {
        /// The snapshot in the Prometheus text exposition format.
        text: String,
        /// The same snapshot, structured.
        report: MetricsReport,
    },
    /// The request failed.
    Error {
        /// The error rendered as text.
        message: String,
    },
}

/// The wire-stable name of a request variant, used as the `request`
/// label on the fleet's per-variant counters and latency histograms.
fn request_name(request: &Request) -> &'static str {
    match request {
        Request::RegisterDictionary { .. } => "RegisterDictionary",
        Request::BuildDictionary { .. } => "BuildDictionary",
        Request::EvictDictionary { .. } => "EvictDictionary",
        Request::ListShards => "ListShards",
        Request::DiagnoseBatch { .. } => "DiagnoseBatch",
        Request::ExportShard { .. } => "ExportShard",
        Request::ImportShard { .. } => "ImportShard",
        Request::Statistics => "Statistics",
        Request::CacheMetrics => "CacheMetrics",
        Request::Metrics => "Metrics",
    }
}

struct RequestObs {
    requests: Counter,
    latency: Histogram,
}

/// Pre-registered per-variant handles, so the request hot path never
/// takes the registry lock: one table lookup, one counter add and one
/// histogram observation per request.
fn request_table() -> &'static BTreeMap<&'static str, RequestObs> {
    static TABLE: OnceLock<BTreeMap<&'static str, RequestObs>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let registry = twm_obs::global();
        [
            "RegisterDictionary",
            "BuildDictionary",
            "EvictDictionary",
            "ListShards",
            "DiagnoseBatch",
            "ExportShard",
            "ImportShard",
            "Statistics",
            "CacheMetrics",
            "Metrics",
        ]
        .into_iter()
        .map(|name| {
            (
                name,
                RequestObs {
                    requests: registry.counter("twm_fleet_requests_total", &[("request", name)]),
                    latency: registry.histogram(
                        "twm_fleet_request_latency_ns",
                        &[("request", name)],
                        &latency_bounds(),
                    ),
                },
            )
        })
        .collect()
    })
}

fn request_obs(variant: &'static str) -> &'static RequestObs {
    request_table()
        .get(variant)
        .expect("request_name only returns table keys")
}

/// Snapshots the per-variant latency histograms, skipping variants that
/// have never been observed. Wall-clock derived — feeds the
/// reporting-only `latency` field of [`FleetStatistics`].
fn request_latency_snapshots() -> BTreeMap<String, HistogramSnapshot> {
    request_table()
        .iter()
        .filter_map(|(&name, obs)| {
            let snapshot = obs.latency.snapshot();
            (snapshot.count > 0).then(|| (name.to_string(), snapshot))
        })
        .collect()
}

fn batch_devices_obs() -> &'static Counter {
    static DEVICES: OnceLock<Counter> = OnceLock::new();
    DEVICES.get_or_init(|| twm_obs::global().counter("twm_fleet_batch_devices_total", &[]))
}

/// The in-process fleet diagnosis service.
///
/// `handle` takes `&self` — the store, cache and statistics sit behind
/// their own locks — so one service instance can be shared across
/// transport threads (see [`crate::Dispatcher`]).
#[derive(Debug)]
pub struct FleetService {
    verify_repairs: bool,
    workers: usize,
    store: Mutex<DictionaryStore>,
    cache: Mutex<RuntimeCache>,
    stats: Mutex<FleetStatistics>,
    metrics_addr: Option<SocketAddr>,
}

impl FleetService {
    /// Creates a service with the given configuration.
    ///
    /// When [`FleetConfig::metrics_http`] is set, a
    /// [`twm_obs::MetricsServer`] over the process-wide registry is bound
    /// here and served from a detached background thread for the life of
    /// the process.
    ///
    /// # Errors
    ///
    /// [`FleetError::ZeroCapacity`] for a zero cache capacity,
    /// [`FleetError::Coverage`] when the strategy cannot resolve a worker
    /// count (`Parallel { threads: 0 }`), [`FleetError::Io`] when the
    /// metrics endpoint cannot bind its address.
    pub fn new(config: FleetConfig) -> Result<Self, FleetError> {
        let workers = config.strategy.worker_threads()?;
        let store = match config.spill {
            Some(spill) => DictionaryStore::with_spill(spill),
            None => DictionaryStore::new(),
        };
        let metrics_addr = match config.metrics_http {
            Some(addr) => Some(Self::spawn_metrics_server(addr)?),
            None => None,
        };
        Ok(Self {
            verify_repairs: config.verify_repairs,
            workers,
            store: Mutex::new(store),
            cache: Mutex::new(RuntimeCache::new(config.cache_capacity, config.strategy)?),
            stats: Mutex::new(FleetStatistics::default()),
            metrics_addr,
        })
    }

    /// Binds the scrape endpoint and hands it to a detached serving
    /// thread. Failing to *bind* is a construction error; once bound,
    /// accept-loop errors only terminate the serving thread (diagnosis
    /// must not die with its observability).
    fn spawn_metrics_server(addr: SocketAddr) -> Result<SocketAddr, FleetError> {
        let server = MetricsServer::bind(addr)?;
        let bound = server.local_addr()?;
        std::thread::Builder::new()
            .name("twm-metrics-http".into())
            .spawn(move || {
                let _ = server.run_concurrent();
            })?;
        Ok(bound)
    }

    /// Creates a service with the default configuration.
    ///
    /// # Errors
    ///
    /// See [`FleetService::new`].
    pub fn with_defaults() -> Result<Self, FleetError> {
        Self::new(FleetConfig::default())
    }

    /// The resolved batch fan-out width.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The resolved address of the HTTP metrics endpoint, when
    /// [`FleetConfig::metrics_http`] requested one (useful with port 0).
    #[must_use]
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Handles one request synchronously. Never panics on bad input —
    /// failures come back as [`Response::Error`].
    ///
    /// Every call counts into `twm_fleet_requests_total{request=...}`
    /// and observes its wall time into
    /// `twm_fleet_request_latency_ns{request=...}`; with the trace gate
    /// on it also runs under a `fleet.request` span. None of that
    /// influences the response.
    pub fn handle(&self, request: Request) -> Response {
        let variant = request_name(&request);
        let mut span = twm_obs::span("fleet.request");
        span.field("request", variant);
        let start = Instant::now();
        let response = match self.dispatch(request) {
            Ok(response) => response,
            Err(error) => Response::Error {
                message: error.to_string(),
            },
        };
        let obs = request_obs(variant);
        obs.requests.incr();
        obs.latency
            .observe(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        response
    }

    fn dispatch(&self, request: Request) -> Result<Response, FleetError> {
        match request {
            Request::RegisterDictionary { source, dictionary } => {
                self.register(source, Arc::new(dictionary))
            }
            Request::BuildDictionary {
                scheme,
                source,
                config,
                content,
                universe,
            } => self.build_dictionary(scheme, source, config, content, &universe),
            Request::EvictDictionary { shard } => {
                let existed = self.store.lock().expect("store lock").evict(shard);
                self.cache.lock().expect("cache lock").invalidate(shard);
                Ok(Response::Evicted { shard, existed })
            }
            Request::ListShards => {
                let store = self.store.lock().expect("store lock");
                let shards = store
                    .keys()
                    .map(|shard| {
                        let entry = store.get(shard).expect("listed key is present");
                        let stats = entry.dictionary.stats();
                        ShardInfo {
                            shard,
                            test_name: entry.source.name().to_string(),
                            classes: stats.classes,
                            indexed: stats.indexed,
                        }
                    })
                    .collect();
                Ok(Response::Shards(shards))
            }
            Request::DiagnoseBatch { reports } => self.diagnose_batch(&reports),
            Request::ExportShard { shard } => {
                let bytes = self.store.lock().expect("store lock").export(shard)?;
                Ok(Response::Exported { shard, bytes })
            }
            Request::ImportShard { bytes } => {
                let shard = self.store.lock().expect("store lock").import(&bytes)?;
                self.registered(shard)
            }
            Request::Statistics => {
                let mut statistics = self.stats.lock().expect("stats lock").clone();
                // Only the cumulative view carries latency: batch-level
                // statistics stay wall-clock-free so they remain
                // bit-identical serial vs. concurrent.
                statistics.latency = request_latency_snapshots();
                Ok(Response::Statistics(statistics))
            }
            Request::CacheMetrics => Ok(Response::CacheMetrics(
                self.cache.lock().expect("cache lock").metrics(),
            )),
            Request::Metrics => {
                // One snapshot feeds both renderings: the text a human
                // scrapes and the structured report a client re-renders
                // must describe the same instant.
                let report = twm_obs::global().snapshot();
                let text = report.expose();
                Ok(Response::Metrics { text, report })
            }
        }
    }

    fn register(
        &self,
        source: MarchTest,
        dictionary: Arc<SignatureDictionary>,
    ) -> Result<Response, FleetError> {
        let shard = self
            .store
            .lock()
            .expect("store lock")
            .register(source, dictionary)?;
        self.registered(shard)
    }

    fn registered(&self, shard: ShardKey) -> Result<Response, FleetError> {
        let store = self.store.lock().expect("store lock");
        let entry = store.get(shard).ok_or(FleetError::UnknownShard(shard))?;
        let stats = entry.dictionary.stats();
        Ok(Response::Registered {
            shard,
            classes: stats.classes,
            indexed: stats.indexed,
        })
    }

    fn build_dictionary(
        &self,
        scheme: SchemeId,
        source: MarchTest,
        config: MemoryConfig,
        content: ContentPolicy,
        universe: &UniverseSpec,
    ) -> Result<Response, FleetError> {
        let registry = twm_core::scheme::SchemeRegistry::all(config.width())?;
        let scheme_impl = registry
            .get(scheme)
            .ok_or_else(|| FleetError::Wire(format!("scheme {scheme:?} is not registered")))?;
        let mut builder = UniverseBuilder::new(config);
        if universe.stuck_at {
            builder = builder.stuck_at();
        }
        if universe.transition {
            builder = builder.transition();
        }
        if universe.coupling_idempotent {
            builder = builder.coupling_idempotent();
        }
        let faults = builder.build();
        let engine = {
            let mut cache = self.cache.lock().expect("cache lock");
            cache
                .base_engine(config, content, &source)?
                .with_scheme(scheme_impl, &source)?
        };
        let options = DictionaryOptions {
            multi_fault_samples: universe.multi_fault_samples,
            sample_seed: universe.sample_seed,
            ..DictionaryOptions::default()
        };
        let dictionary = SignatureDictionary::build(&engine, &faults, &options)?;
        self.register(source, Arc::new(dictionary))
    }

    fn diagnose_batch(&self, reports: &[DeviceReport]) -> Result<Response, FleetError> {
        // Resolve every distinct shard once, under the locks, before the
        // fan-out: a missing store entry is a per-device verdict, not an
        // error; a failed cold build poisons only its shard's devices.
        let shards: BTreeSet<ShardKey> = reports.iter().map(|report| report.shard).collect();
        batch_devices_obs().add(reports.len() as u64);
        let mut span = twm_obs::span("fleet.batch");
        span.field("devices", reports.len());
        span.field("shards", shards.len());
        span.field("workers", self.workers);
        let mut runtimes: BTreeMap<ShardKey, Result<Arc<ShardRuntime>, String>> = BTreeMap::new();
        {
            let mut store = self.store.lock().expect("store lock");
            let mut cache = self.cache.lock().expect("cache lock");
            for &shard in &shards {
                let Some(entry) = store.get(shard) else {
                    continue;
                };
                let runtime = cache
                    .runtime(shard, entry)
                    .map_err(|error| error.to_string());
                runtimes.insert(shard, runtime);
            }
            // Cold shards fell out of the runtime LRU: demote their
            // dictionaries to spill files (no-op without a spill config).
            // The spilled shard keeps serving — its next lookups stream
            // from disk through the bounded page cache.
            for evicted in cache.take_evicted() {
                if store.spill(evicted)? {
                    cache_obs().spills.incr();
                }
            }
        }

        let verify = self.verify_repairs;
        let handle_one = |report: &DeviceReport| -> DeviceOutcome {
            let verdict = match runtimes.get(&report.shard) {
                None => DeviceVerdict::UnknownShard,
                Some(Err(message)) => DeviceVerdict::Failed {
                    message: message.clone(),
                },
                Some(Ok(runtime)) => diagnose_device(runtime, report, verify),
            };
            DeviceOutcome {
                device: report.device.clone(),
                verdict,
            }
        };

        let outcomes: Vec<DeviceOutcome> = if self.workers > 1 && reports.len() > 1 {
            // Contiguous chunks, merged back by slot: submission order is
            // preserved and each verdict is a pure function of (runtime,
            // report), so the result is bit-identical to the serial loop.
            let chunk = reports.len().div_ceil(self.workers);
            let mut slots: Vec<Option<DeviceOutcome>> = vec![None; reports.len()];
            std::thread::scope(|scope| {
                for (report_chunk, slot_chunk) in reports.chunks(chunk).zip(slots.chunks_mut(chunk))
                {
                    scope.spawn(|| {
                        for (report, slot) in report_chunk.iter().zip(slot_chunk.iter_mut()) {
                            *slot = Some(handle_one(report));
                        }
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| slot.expect("every slot is written by its chunk"))
                .collect()
        } else {
            reports.iter().map(handle_one).collect()
        };

        // Fold statistics serially, in submission order.
        let mut statistics = FleetStatistics::default();
        for outcome in &outcomes {
            record(&mut statistics, &outcome.verdict);
        }
        self.stats.lock().expect("stats lock").merge(&statistics);
        Ok(Response::Batch(BatchReport {
            outcomes,
            statistics,
        }))
    }
}

/// Diagnoses one device from its trail: dictionary lookup, spare
/// allocation and (optionally) simulated repair verification.
fn diagnose_device(runtime: &ShardRuntime, report: &DeviceReport, verify: bool) -> DeviceVerdict {
    let diagnosis = match localise_trail(&runtime.dictionary, &report.trail) {
        Ok(diagnosis) => diagnosis,
        Err(error) => {
            return DeviceVerdict::Failed {
                message: error.to_string(),
            }
        }
    };
    if diagnosis.clean {
        return DeviceVerdict::Clean;
    }
    if !diagnosis.dictionary_hit {
        return DeviceVerdict::UnknownTrail;
    }
    let plan = RepairAllocator::default().allocate(&diagnosis.defects, report.spares);
    let predicted_clean = if verify && plan.fully_repairs() && report.spares > 0 {
        match verify_plan(runtime, &report.trail, report.spares, &plan) {
            Ok(clean) => clean,
            Err(error) => {
                return DeviceVerdict::Failed {
                    message: error.to_string(),
                }
            }
        }
    } else {
        false
    };
    DeviceVerdict::Diagnosed(Diagnosis {
        defects: diagnosis.defects,
        ambiguity: diagnosis.ambiguity,
        plan,
        predicted_clean,
    })
}

/// Re-verifies a repair plan by simulation: inject the matched class's
/// representative injection into a fresh memory with the device's spare
/// budget, program the plan's remap table and re-run the scheme session.
fn verify_plan(
    runtime: &ShardRuntime,
    trail: &SignatureTrail,
    spares: usize,
    plan: &RepairPlan,
) -> Result<bool, FleetError> {
    let class = runtime
        .dictionary
        .find(trail)?
        .expect("caller checked dictionary_hit");
    let representative = class.injections[0].clone();
    let mut memory = FaultyMemory::with_faults(runtime.dictionary.config(), representative)?;
    match runtime.dictionary.content() {
        ContentPolicy::Zeros => {}
        ContentPolicy::Random { seed } => memory.fill_random(seed),
    }
    // Fresh spares are numbered 0.. like the allocator's slots, so the
    // plan applies without translation.
    let mut repairable = RepairableMemory::new(memory, spares)?;
    plan.apply(&mut repairable)?;
    let verification = verify_repair(&runtime.probe, &mut repairable, runtime.misr.clone())?;
    Ok(verification.clean())
}

/// Folds one verdict into a statistics block.
fn record(stats: &mut FleetStatistics, verdict: &DeviceVerdict) {
    stats.devices += 1;
    match verdict {
        DeviceVerdict::Clean => stats.clean += 1,
        DeviceVerdict::UnknownShard => stats.unknown_shard += 1,
        DeviceVerdict::UnknownTrail => stats.unknown_trail += 1,
        DeviceVerdict::Failed { .. } => {}
        DeviceVerdict::Diagnosed(diagnosis) => {
            stats.diagnosed += 1;
            if diagnosis.plan.fully_repairs() {
                stats.fully_repaired += 1;
            }
            if diagnosis.predicted_clean {
                stats.verified_clean += 1;
            }
            for defect in &diagnosis.defects {
                if let Some(class) = defect.hypothesis {
                    *stats.fault_classes.entry(class).or_default() += 1;
                }
            }
            *stats
                .ambiguity
                .entry(diagnosis.ambiguity as u64)
                .or_default() += 1;
            let words: BTreeSet<usize> = diagnosis
                .defects
                .iter()
                .map(|defect| defect.cell.word)
                .collect();
            *stats.spares_needed.entry(words.len() as u64).or_default() += 1;
        }
    }
}
