//! Shard keys: how the fleet service partitions dictionaries and cached
//! runtimes.
//!
//! A deployment runs many memory shapes, schemes and source tests at once;
//! every combination needs its own [`crate::SignatureDictionary`] and
//! engine state. The service shards on the triple
//! `(MemoryConfig, SchemeId, test fingerprint)` — everything a trail
//! report must match for a dictionary lookup to be meaningful.

use std::fmt;

use serde::{Deserialize, Serialize};
use twm_core::scheme::SchemeId;
use twm_march::MarchTest;
use twm_mem::MemoryConfig;

/// A stable 64-bit fingerprint of a march test, derived from its notation
/// (FNV-1a over the [`fmt::Display`] rendering, which includes the name).
///
/// Two tests fingerprint equal exactly when they print equal — the same
/// property the rest of the stack relies on for reproducibility — so the
/// fingerprint survives serialisation round-trips and process restarts,
/// unlike a pointer or an insertion index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TestFingerprint(u64);

impl TestFingerprint {
    /// Fingerprints a march test.
    #[must_use]
    pub fn of(test: &MarchTest) -> Self {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for byte in test.to_string().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        Self(hash)
    }

    /// The raw 64-bit fingerprint.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TestFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The shard a device report belongs to: memory shape, transparent
/// scheme and source-test fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ShardKey {
    /// Shape of the memory under test.
    pub config: MemoryConfig,
    /// The transparent scheme the periodic test runs under.
    pub scheme: SchemeId,
    /// Fingerprint of the source (non-transparent) march test.
    pub fingerprint: TestFingerprint,
}

impl ShardKey {
    /// Builds the shard key for a deployment triple.
    #[must_use]
    pub fn new(config: MemoryConfig, scheme: SchemeId, source: &MarchTest) -> Self {
        Self {
            config,
            scheme,
            fingerprint: TestFingerprint::of(source),
        }
    }
}

impl fmt::Display for ShardKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}/{:?}/{}",
            self.config.words(),
            self.config.width(),
            self.scheme,
            self.fingerprint
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twm_march::algorithms::{march_c_minus, mats_plus};

    #[test]
    fn fingerprint_tracks_notation() {
        let a = TestFingerprint::of(&march_c_minus());
        let b = TestFingerprint::of(&march_c_minus());
        let c = TestFingerprint::of(&mats_plus());
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn shard_keys_distinguish_every_axis() {
        let config_a = MemoryConfig::new(8, 4).unwrap();
        let config_b = MemoryConfig::new(16, 4).unwrap();
        let base = ShardKey::new(config_a, SchemeId::TwmTa, &march_c_minus());
        assert_ne!(
            base,
            ShardKey::new(config_b, SchemeId::TwmTa, &march_c_minus())
        );
        assert_ne!(
            base,
            ShardKey::new(config_a, SchemeId::Tomt, &march_c_minus())
        );
        assert_ne!(base, ShardKey::new(config_a, SchemeId::TwmTa, &mats_plus()));
        assert_eq!(
            base,
            ShardKey::new(config_a, SchemeId::TwmTa, &march_c_minus())
        );
    }
}
