//! Fleet statistics: first-class, serialisable aggregates over batched
//! diagnosis outcomes.
//!
//! Every counter is additive, so statistics merge commutatively —
//! interleaved batches from many threads accumulate to the same totals
//! in any order, which keeps the cumulative [`crate::Request::Statistics`]
//! view deterministic under the concurrent dispatch path.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use twm_mem::FaultClass;
use twm_obs::{HistogramSnapshot, QuantileSummary};

/// Aggregate diagnosis statistics over a batch (or a whole deployment).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetStatistics {
    /// Device reports processed.
    pub devices: u64,
    /// Reports whose trail matched the fault-free reference.
    pub clean: u64,
    /// Reports addressed to a shard with no registered dictionary.
    pub unknown_shard: u64,
    /// Failing trails the shard dictionary could not match (content
    /// drift, un-modelled defects).
    pub unknown_trail: u64,
    /// Reports diagnosed to an ambiguity class.
    pub diagnosed: u64,
    /// Diagnosed reports whose repair plan covered every defect.
    pub fully_repaired: u64,
    /// Diagnosed reports whose repaired memory re-verified clean.
    pub verified_clean: u64,
    /// Per-fault-class hypothesis counts over located defects with a
    /// pinned class.
    pub fault_classes: BTreeMap<FaultClass, u64>,
    /// Histogram of matched ambiguity-class sizes: `size -> reports`.
    pub ambiguity: BTreeMap<u64, u64>,
    /// Histogram of spare words needed for a full repair:
    /// `spares -> diagnosed reports`. Feeds
    /// [`FleetStatistics::repair_rate_curve`].
    pub spares_needed: BTreeMap<u64, u64>,
    /// Per-request-variant latency histograms (nanoseconds), captured
    /// from the process-wide metrics registry. Wall-clock derived, so
    /// it is **excluded from the determinism contract**: batch-level
    /// statistics leave this empty (batches stay bit-identical serial
    /// vs. concurrent), and only the cumulative
    /// [`crate::Request::Statistics`] view fills it. Summarise with
    /// [`FleetStatistics::latency_quantiles`].
    pub latency: BTreeMap<String, HistogramSnapshot>,
}

impl FleetStatistics {
    /// p50/p90/p99 request latency per request variant, from the
    /// captured histograms (variants with no observations are skipped).
    #[must_use]
    pub fn latency_quantiles(&self) -> Vec<(String, QuantileSummary)> {
        self.latency
            .iter()
            .filter_map(|(variant, snapshot)| {
                snapshot.summary().map(|summary| (variant.clone(), summary))
            })
            .collect()
    }
    /// Failure rate per fault class: each pinned class's share of all
    /// pinned defect hypotheses, as `(class, count, fraction)` rows.
    #[must_use]
    pub fn failure_rates(&self) -> Vec<(FaultClass, u64, f64)> {
        let total: u64 = self.fault_classes.values().sum();
        self.fault_classes
            .iter()
            .map(|(&class, &count)| {
                let fraction = if total == 0 {
                    0.0
                } else {
                    count as f64 / total as f64
                };
                (class, count, fraction)
            })
            .collect()
    }

    /// Repair rate as a function of the spare-word budget: for every
    /// budget up to the largest observed need, the fraction of diagnosed
    /// reports a memory with that many spares fully repairs.
    #[must_use]
    pub fn repair_rate_curve(&self) -> Vec<(u64, f64)> {
        let Some(&max_needed) = self.spares_needed.keys().last() else {
            return Vec::new();
        };
        let total: u64 = self.spares_needed.values().sum();
        let mut covered = 0;
        let mut curve = Vec::with_capacity(max_needed as usize + 1);
        for budget in 0..=max_needed {
            covered += self.spares_needed.get(&budget).copied().unwrap_or(0);
            curve.push((budget, covered as f64 / total as f64));
        }
        curve
    }

    /// Merges another statistics block into this one (all counters add).
    pub fn merge(&mut self, other: &FleetStatistics) {
        self.devices += other.devices;
        self.clean += other.clean;
        self.unknown_shard += other.unknown_shard;
        self.unknown_trail += other.unknown_trail;
        self.diagnosed += other.diagnosed;
        self.fully_repaired += other.fully_repaired;
        self.verified_clean += other.verified_clean;
        for (&class, &count) in &other.fault_classes {
            *self.fault_classes.entry(class).or_default() += count;
        }
        for (&size, &count) in &other.ambiguity {
            *self.ambiguity.entry(size).or_default() += count;
        }
        for (&spares, &count) in &other.spares_needed {
            *self.spares_needed.entry(spares).or_default() += count;
        }
        for (variant, snapshot) in &other.latency {
            match self.latency.get_mut(variant) {
                // Same bucket layout adds bucket-wise; a layout
                // mismatch keeps the existing histogram (merging
                // incompatible buckets has no meaningful answer).
                Some(mine) => {
                    let _ = mine.accumulate(snapshot);
                }
                None => {
                    self.latency.insert(variant.clone(), snapshot.clone());
                }
            }
        }
    }
}

/// Engine/session cache health counters.
///
/// Kept apart from [`FleetStatistics`] on purpose: cache hits depend on
/// request arrival order, so they are reporting-only and excluded from
/// the deterministic diagnosis aggregates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheMetrics {
    /// Batched shard lookups served from a cached runtime.
    pub hits: u64,
    /// Lookups that had to build the shard runtime.
    pub misses: u64,
    /// Runtimes evicted by the LRU bound.
    pub evictions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_commutative() {
        let mut a = FleetStatistics {
            devices: 3,
            diagnosed: 2,
            ..FleetStatistics::default()
        };
        a.fault_classes.insert(FaultClass::Saf, 2);
        a.spares_needed.insert(1, 2);
        let mut b = FleetStatistics {
            devices: 1,
            clean: 1,
            ..FleetStatistics::default()
        };
        b.fault_classes.insert(FaultClass::Saf, 1);
        b.spares_needed.insert(2, 1);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.devices, 4);
        assert_eq!(ab.fault_classes[&FaultClass::Saf], 3);
    }

    #[test]
    fn repair_curve_is_cumulative() {
        let mut stats = FleetStatistics::default();
        stats.spares_needed.insert(1, 3);
        stats.spares_needed.insert(2, 1);
        let curve = stats.repair_rate_curve();
        assert_eq!(curve, vec![(0, 0.0), (1, 0.75), (2, 1.0)]);
    }
}
