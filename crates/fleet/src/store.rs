//! The sharded dictionary store: every deployment triple's dictionary
//! under its [`ShardKey`], with wire-format persistence and optional
//! **disk spill** through [`twm_store::PagedDictionary`].
//!
//! A shard's dictionary is either *resident* (the in-RAM
//! [`SignatureDictionary`]) or *paged* (served from its spill file
//! through a bounded page cache). Both sides of [`DictionaryHandle`]
//! implement [`TrailLookup`], so diagnosis never cares which one it got —
//! a spilled shard keeps answering lookups, just from disk, and fleet
//! memory stays bounded by the page-cache budget instead of the sum of
//! dictionary sizes.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use twm_march::MarchTest;
use twm_repair::{AmbiguityStats, SignatureDictionary, TrailLookup};
use twm_store::{PagedDictionary, StoreOptions};

use crate::shard::ShardKey;
use crate::{wire, FleetError};

/// A shard dictionary, resident or spilled to its paged file.
#[derive(Debug, Clone)]
pub enum DictionaryHandle {
    /// The in-RAM dictionary.
    Resident(Arc<SignatureDictionary>),
    /// The dictionary served from its spill file under a bounded page
    /// cache.
    Paged(Arc<PagedDictionary>),
}

impl DictionaryHandle {
    /// The handle as the diagnosis-facing lookup trait object.
    #[must_use]
    pub fn as_lookup(&self) -> &dyn TrailLookup {
        match self {
            Self::Resident(dictionary) => &**dictionary,
            Self::Paged(paged) => &**paged,
        }
    }

    /// The resident dictionary, when not spilled.
    #[must_use]
    pub fn resident(&self) -> Option<&Arc<SignatureDictionary>> {
        match self {
            Self::Resident(dictionary) => Some(dictionary),
            Self::Paged(_) => None,
        }
    }

    /// Whether the dictionary is currently served from disk.
    #[must_use]
    pub fn is_paged(&self) -> bool {
        matches!(self, Self::Paged(_))
    }

    /// The dictionary's ambiguity statistics (header-resident for the
    /// paged side — no disk reads).
    #[must_use]
    pub fn stats(&self) -> AmbiguityStats {
        self.as_lookup().ambiguity_stats()
    }

    /// Materialises the full in-RAM dictionary — reading every class
    /// back from disk when spilled.
    ///
    /// # Errors
    ///
    /// [`FleetError::Store`] when a spill file fails to read back.
    pub fn to_resident(&self) -> Result<SignatureDictionary, FleetError> {
        match self {
            Self::Resident(dictionary) => Ok((**dictionary).clone()),
            Self::Paged(paged) => Ok(paged.read_dictionary()?),
        }
    }
}

impl TrailLookup for DictionaryHandle {
    fn scheme(&self) -> twm_core::scheme::SchemeId {
        self.as_lookup().scheme()
    }

    fn test_name(&self) -> &str {
        self.as_lookup().test_name()
    }

    fn config(&self) -> twm_mem::MemoryConfig {
        self.as_lookup().config()
    }

    fn content(&self) -> twm_coverage::ContentPolicy {
        self.as_lookup().content()
    }

    fn misr_template(&self) -> &twm_bist::Misr {
        self.as_lookup().misr_template()
    }

    fn reference_trail(&self) -> &twm_repair::SignatureTrail {
        self.as_lookup().reference_trail()
    }

    fn find(
        &self,
        trail: &twm_repair::SignatureTrail,
    ) -> Result<Option<twm_repair::AmbiguityClass>, twm_repair::RepairError> {
        self.as_lookup().find(trail)
    }

    fn ambiguity_stats(&self) -> AmbiguityStats {
        self.as_lookup().ambiguity_stats()
    }
}

/// Where and how evicted shards spill to disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillConfig {
    /// Directory holding one `.twmstore` file per spilled shard.
    pub dir: PathBuf,
    /// Page size and page-cache budget of the spill files.
    pub options: StoreOptions,
}

impl SpillConfig {
    /// Spills into `dir` with the default store geometry.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            options: StoreOptions::default(),
        }
    }

    /// The spill file of a shard key.
    #[must_use]
    pub fn path_for(&self, key: ShardKey) -> PathBuf {
        self.dir.join(format!(
            "{}x{}-{:?}-{:016x}.twmstore",
            key.config.words(),
            key.config.width(),
            key.scheme,
            key.fingerprint.raw()
        ))
    }
}

/// One registered shard: the source march test and the dictionary built
/// from it (resident or spilled).
#[derive(Debug, Clone)]
pub struct ShardEntry {
    /// The source (non-transparent) march test the deployment runs.
    pub source: MarchTest,
    /// The signature dictionary for the shard's deployment triple.
    pub dictionary: DictionaryHandle,
}

/// The serialised form of a shard entry — what [`DictionaryStore::export`]
/// writes and [`DictionaryStore::import`] reads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersistedShard {
    /// The source march test.
    pub source: MarchTest,
    /// The dictionary.
    pub dictionary: SignatureDictionary,
}

/// Dictionaries sharded by `(config, scheme, test fingerprint)`.
#[derive(Debug, Default)]
pub struct DictionaryStore {
    entries: BTreeMap<ShardKey, ShardEntry>,
    spill: Option<SpillConfig>,
}

impl DictionaryStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store that spills evicted shards under `spill`.
    #[must_use]
    pub fn with_spill(spill: SpillConfig) -> Self {
        Self {
            entries: BTreeMap::new(),
            spill: Some(spill),
        }
    }

    /// The spill configuration, when spilling is enabled.
    #[must_use]
    pub fn spill_config(&self) -> Option<&SpillConfig> {
        self.spill.as_ref()
    }

    /// Registers a dictionary under the shard key derived from its
    /// config, scheme and the source test, and returns that key.
    ///
    /// # Errors
    ///
    /// [`FleetError::DuplicateShard`] when the shard already has a
    /// dictionary — evict first to replace.
    pub fn register(
        &mut self,
        source: MarchTest,
        dictionary: Arc<SignatureDictionary>,
    ) -> Result<ShardKey, FleetError> {
        self.register_handle(source, DictionaryHandle::Resident(dictionary))
    }

    /// Registers a dictionary handle (resident or already paged).
    ///
    /// # Errors
    ///
    /// As [`DictionaryStore::register`].
    pub fn register_handle(
        &mut self,
        source: MarchTest,
        dictionary: DictionaryHandle,
    ) -> Result<ShardKey, FleetError> {
        let key = ShardKey::new(dictionary.config(), dictionary.scheme(), &source);
        if self.entries.contains_key(&key) {
            return Err(FleetError::DuplicateShard(key));
        }
        self.entries.insert(key, ShardEntry { source, dictionary });
        Ok(key)
    }

    /// Registers a shard straight from its spill file: the paged
    /// dictionary keeps serving lookups from disk (lazy rehydration) and
    /// the shard key is rebuilt from the recorded source test.
    ///
    /// # Errors
    ///
    /// [`FleetError::Store`] when the file fails to open or verify,
    /// [`FleetError::Wire`] when it records no source test,
    /// [`FleetError::DuplicateShard`] when the shard already exists.
    pub fn load_spilled(&mut self, path: impl AsRef<Path>) -> Result<ShardKey, FleetError> {
        let options = self
            .spill
            .as_ref()
            .map_or_else(StoreOptions::default, |spill| spill.options);
        let paged = PagedDictionary::open(path.as_ref(), &options)?;
        let source = paged
            .source()
            .ok_or_else(|| {
                FleetError::Wire(format!(
                    "spill file {} records no source march test",
                    path.as_ref().display()
                ))
            })?
            .clone();
        self.register_handle(source, DictionaryHandle::Paged(Arc::new(paged)))
    }

    /// Demotes a resident shard to its spill file. The entry stays
    /// registered — lookups keep working through the bounded page cache —
    /// but the in-RAM dictionary is dropped. A no-op (returning `false`)
    /// for unknown, already-paged shards or when spilling is not
    /// configured.
    ///
    /// # Errors
    ///
    /// [`FleetError::Store`] / [`FleetError::Io`] when the spill file
    /// cannot be written or reopened (the entry is left resident).
    pub fn spill(&mut self, key: ShardKey) -> Result<bool, FleetError> {
        let Some(spill) = self.spill.clone() else {
            return Ok(false);
        };
        let Some(entry) = self.entries.get(&key) else {
            return Ok(false);
        };
        let DictionaryHandle::Resident(dictionary) = &entry.dictionary else {
            return Ok(false);
        };
        std::fs::create_dir_all(&spill.dir)?;
        let path = spill.path_for(key);
        PagedDictionary::write_with_source(dictionary, Some(&entry.source), &path, &spill.options)?;
        let paged = PagedDictionary::open(&path, &spill.options)?;
        let entry = self.entries.get_mut(&key).expect("checked above");
        entry.dictionary = DictionaryHandle::Paged(Arc::new(paged));
        Ok(true)
    }

    /// Removes a shard's dictionary; `true` when one was registered.
    pub fn evict(&mut self, key: ShardKey) -> bool {
        self.entries.remove(&key).is_some()
    }

    /// The entry registered under `key`.
    #[must_use]
    pub fn get(&self, key: ShardKey) -> Option<&ShardEntry> {
        self.entries.get(&key)
    }

    /// All registered shard keys, in key order.
    pub fn keys(&self) -> impl Iterator<Item = ShardKey> + '_ {
        self.entries.keys().copied()
    }

    /// Number of registered shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialises a shard's entry to the wire format.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownShard`] when the shard is not registered,
    /// [`FleetError::Store`] when a spilled shard fails to read back.
    pub fn export(&self, key: ShardKey) -> Result<Vec<u8>, FleetError> {
        let mut bytes = Vec::new();
        self.export_to(key, &mut bytes)?;
        Ok(bytes)
    }

    /// Streams a shard's wire-format export onto a writer — files and
    /// sockets take the dictionary without an intermediate buffer.
    ///
    /// # Errors
    ///
    /// As [`DictionaryStore::export`], plus [`FleetError::Io`] when the
    /// writer fails.
    pub fn export_to<W: Write + ?Sized>(
        &self,
        key: ShardKey,
        writer: &mut W,
    ) -> Result<(), FleetError> {
        let entry = self.get(key).ok_or(FleetError::UnknownShard(key))?;
        wire::write_to(
            writer,
            &PersistedShard {
                source: entry.source.clone(),
                dictionary: entry.dictionary.to_resident()?,
            },
        )
    }

    /// Registers a shard from its wire-format export.
    ///
    /// # Errors
    ///
    /// [`FleetError::Wire`] on a malformed payload,
    /// [`FleetError::DuplicateShard`] when the shard already exists.
    pub fn import(&mut self, bytes: &[u8]) -> Result<ShardKey, FleetError> {
        let persisted: PersistedShard = wire::from_bytes(bytes)?;
        self.register(persisted.source, Arc::new(persisted.dictionary))
    }

    /// Registers a shard by streaming its export from a reader, leaving
    /// the reader positioned after the value.
    ///
    /// # Errors
    ///
    /// As [`DictionaryStore::import`], plus [`FleetError::Io`] when the
    /// reader fails.
    pub fn import_from<R: Read + ?Sized>(
        &mut self,
        reader: &mut R,
    ) -> Result<ShardKey, FleetError> {
        let persisted: PersistedShard = wire::read_from(reader)?;
        self.register(persisted.source, Arc::new(persisted.dictionary))
    }
}
