//! The sharded dictionary store: every deployment triple's
//! [`SignatureDictionary`] under its [`ShardKey`], with wire-format
//! persistence.

use std::collections::BTreeMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use twm_march::MarchTest;
use twm_repair::SignatureDictionary;

use crate::shard::ShardKey;
use crate::{wire, FleetError};

/// One registered shard: the source march test and the dictionary built
/// from it.
#[derive(Debug, Clone)]
pub struct ShardEntry {
    /// The source (non-transparent) march test the deployment runs.
    pub source: MarchTest,
    /// The signature dictionary for the shard's deployment triple.
    pub dictionary: Arc<SignatureDictionary>,
}

/// The serialised form of a shard entry — what [`DictionaryStore::export`]
/// writes and [`DictionaryStore::import`] reads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersistedShard {
    /// The source march test.
    pub source: MarchTest,
    /// The dictionary.
    pub dictionary: SignatureDictionary,
}

/// Dictionaries sharded by `(config, scheme, test fingerprint)`.
#[derive(Debug, Default)]
pub struct DictionaryStore {
    entries: BTreeMap<ShardKey, ShardEntry>,
}

impl DictionaryStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a dictionary under the shard key derived from its
    /// config, scheme and the source test, and returns that key.
    ///
    /// # Errors
    ///
    /// [`FleetError::DuplicateShard`] when the shard already has a
    /// dictionary — evict first to replace.
    pub fn register(
        &mut self,
        source: MarchTest,
        dictionary: Arc<SignatureDictionary>,
    ) -> Result<ShardKey, FleetError> {
        let key = ShardKey::new(dictionary.config(), dictionary.scheme(), &source);
        if self.entries.contains_key(&key) {
            return Err(FleetError::DuplicateShard(key));
        }
        self.entries.insert(key, ShardEntry { source, dictionary });
        Ok(key)
    }

    /// Removes a shard's dictionary; `true` when one was registered.
    pub fn evict(&mut self, key: ShardKey) -> bool {
        self.entries.remove(&key).is_some()
    }

    /// The entry registered under `key`.
    #[must_use]
    pub fn get(&self, key: ShardKey) -> Option<&ShardEntry> {
        self.entries.get(&key)
    }

    /// All registered shard keys, in key order.
    pub fn keys(&self) -> impl Iterator<Item = ShardKey> + '_ {
        self.entries.keys().copied()
    }

    /// Number of registered shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialises a shard's entry to the wire format.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownShard`] when the shard is not registered.
    pub fn export(&self, key: ShardKey) -> Result<Vec<u8>, FleetError> {
        let entry = self.get(key).ok_or(FleetError::UnknownShard(key))?;
        Ok(wire::to_bytes(&PersistedShard {
            source: entry.source.clone(),
            dictionary: (*entry.dictionary).clone(),
        }))
    }

    /// Registers a shard from its wire-format export.
    ///
    /// # Errors
    ///
    /// [`FleetError::Wire`] on a malformed payload,
    /// [`FleetError::DuplicateShard`] when the shard already exists.
    pub fn import(&mut self, bytes: &[u8]) -> Result<ShardKey, FleetError> {
        let persisted: PersistedShard = wire::from_bytes(bytes)?;
        self.register(persisted.source, Arc::new(persisted.dictionary))
    }
}
