//! A length-prefixed blocking TCP transport for the fleet service.
//!
//! The service core is transport-agnostic ([`FleetService::handle`] takes
//! decoded [`Request`] values); this module is the thinnest wire that
//! makes it remote: every frame is a `u32` little-endian byte length
//! followed by that many bytes of [`crate::wire`] payload. A connection
//! carries any number of request frames, each answered by exactly one
//! response frame, in order; the peer closing between frames ends the
//! conversation cleanly.
//!
//! Deliberately std-only and blocking. [`TcpFront::run`] serves one
//! connection at a time; [`TcpFront::run_concurrent`] puts the
//! [`crate::Dispatcher`] thread pool behind the front — one lightweight
//! thread per live connection feeding a fixed pool of handler workers —
//! so multiple connections are served simultaneously. The framing
//! guards both sides with [`MAX_FRAME`] so a corrupt or hostile length
//! prefix cannot drive an unbounded allocation.
//!
//! The front is instrumented as an access log: a connection gauge
//! (`twm_fleet_connections`) plus frame/byte/error counters in the
//! [`twm_obs::global`] registry, and — with the trace gate on —
//! per-connection spans carrying per-frame events with byte counts and
//! error outcomes.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, OnceLock};

use twm_obs::{Counter, Gauge};

use crate::dispatch::Dispatcher;
use crate::service::{FleetService, Request, Response};
use crate::{wire, FleetError};

/// Process-wide access-log counters for the TCP front.
struct FrontObs {
    /// Connections currently being served.
    connections: Gauge,
    /// Connections accepted since process start.
    connections_total: Counter,
    /// Request frames decoded and answered.
    frames: Counter,
    /// Payload bytes read off accepted streams.
    bytes_in: Counter,
    /// Payload bytes written back.
    bytes_out: Counter,
    /// Frames whose payload failed to decode as a [`Request`].
    frame_errors: Counter,
}

fn front_obs() -> &'static FrontObs {
    static OBS: OnceLock<FrontObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let registry = twm_obs::global();
        FrontObs {
            connections: registry.gauge("twm_fleet_connections", &[]),
            connections_total: registry.counter("twm_fleet_connections_total", &[]),
            frames: registry.counter("twm_fleet_frames_total", &[]),
            bytes_in: registry.counter("twm_fleet_frame_bytes_in_total", &[]),
            bytes_out: registry.counter("twm_fleet_frame_bytes_out_total", &[]),
            frame_errors: registry.counter("twm_fleet_frame_errors_total", &[]),
        }
    })
}

/// Upper bound on a frame's payload bytes (1 GiB). Dictionaries export
/// whole in one frame, so the bound is generous; a length prefix beyond
/// it is treated as a malformed stream, not an allocation request.
pub const MAX_FRAME: usize = 1 << 30;

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// [`FleetError::Io`] when the writer fails, [`FleetError::Wire`] when
/// the payload exceeds [`MAX_FRAME`].
pub fn write_frame<W: Write + ?Sized>(writer: &mut W, payload: &[u8]) -> Result<(), FleetError> {
    if payload.len() > MAX_FRAME {
        return Err(FleetError::Wire(format!(
            "frame of {} bytes exceeds the {MAX_FRAME}-byte bound",
            payload.len()
        )));
    }
    let len = u32::try_from(payload.len()).expect("MAX_FRAME fits u32");
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(payload)?;
    writer.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame; `Ok(None)` on a clean end-of-stream
/// (the peer closed between frames).
///
/// # Errors
///
/// [`FleetError::Wire`] when the stream ends inside a frame or the
/// length prefix exceeds [`MAX_FRAME`]; [`FleetError::Io`] for other
/// read failures.
pub fn read_frame<R: Read + ?Sized>(reader: &mut R) -> Result<Option<Vec<u8>>, FleetError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match reader.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(FleetError::Wire(
                    "stream ended inside a frame's length prefix".into(),
                ))
            }
            Ok(count) => filled += count,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FleetError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(FleetError::Wire(format!(
            "frame length {len} exceeds the {MAX_FRAME}-byte bound"
        )));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FleetError::Wire("stream ended inside a frame's payload".into())
        } else {
            FleetError::Io(e)
        }
    })?;
    Ok(Some(payload))
}

/// A blocking TCP front over a shared [`FleetService`].
#[derive(Debug)]
pub struct TcpFront {
    listener: TcpListener,
    service: Arc<FleetService>,
}

impl TcpFront {
    /// Binds a listener (use port 0 for an ephemeral test port).
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] when the bind fails.
    pub fn bind(addr: impl ToSocketAddrs, service: Arc<FleetService>) -> Result<Self, FleetError> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            service,
        })
    }

    /// The bound address (where clients connect).
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] when the socket cannot report it.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, FleetError> {
        Ok(self.listener.local_addr()?)
    }

    /// Accepts one connection and serves it to completion.
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] / [`FleetError::Wire`] from the accept or the
    /// conversation. Malformed *requests inside* a healthy stream do not
    /// error here — they are answered with [`Response::Error`] frames.
    pub fn accept_one(&self) -> Result<(), FleetError> {
        let (stream, _) = self.listener.accept()?;
        self.serve_connection(stream)
    }

    /// Serves request frames on an accepted stream until the peer closes.
    ///
    /// # Errors
    ///
    /// As [`TcpFront::accept_one`].
    pub fn serve_connection(&self, stream: TcpStream) -> Result<(), FleetError> {
        self.serve_stream(stream, None)
    }

    /// The shared conversation loop: decode, handle (in-process or
    /// through a dispatcher pool), respond — logging every frame.
    fn serve_stream(
        &self,
        mut stream: TcpStream,
        dispatcher: Option<&Dispatcher>,
    ) -> Result<(), FleetError> {
        let obs = front_obs();
        obs.connections.incr();
        obs.connections_total.incr();
        let mut span = twm_obs::span("fleet.connection");
        if let Ok(peer) = stream.peer_addr() {
            span.field("peer", peer);
        }
        let mut frames = 0u64;
        let result = (|| {
            while let Some(payload) = read_frame(&mut stream)? {
                obs.frames.incr();
                obs.bytes_in.add(payload.len() as u64);
                let (response, outcome) = match wire::from_bytes::<Request>(&payload) {
                    Ok(request) => {
                        let response = match dispatcher {
                            Some(pool) => pool.submit(request).wait(),
                            None => self.service.handle(request),
                        };
                        (response, "ok")
                    }
                    Err(error) => {
                        obs.frame_errors.incr();
                        (
                            Response::Error {
                                message: error.to_string(),
                            },
                            "bad_request",
                        )
                    }
                };
                let encoded = wire::to_bytes(&response);
                obs.bytes_out.add(encoded.len() as u64);
                twm_obs::event(
                    "fleet.frame",
                    &[
                        ("bytes_in", &payload.len().to_string()),
                        ("bytes_out", &encoded.len().to_string()),
                        ("outcome", outcome),
                    ],
                );
                frames += 1;
                write_frame(&mut stream, &encoded)?;
            }
            Ok(())
        })();
        span.field("frames", frames);
        span.field(
            "outcome",
            match &result {
                Ok(()) => "closed",
                Err(_) => "error",
            },
        );
        obs.connections.decr();
        result
    }

    /// Accepts and serves connections forever (one at a time).
    ///
    /// # Errors
    ///
    /// The first accept or conversation failure — a supervisor loop
    /// owns the restart policy.
    pub fn run(&self) -> Result<(), FleetError> {
        loop {
            self.accept_one()?;
        }
    }

    /// Accepts and serves connections forever, **concurrently**: a
    /// [`Dispatcher`] pool of `workers` threads handles requests while
    /// one lightweight thread per live connection owns its stream's
    /// framing, so slow or held-open peers never block each other.
    ///
    /// # Errors
    ///
    /// The first accept failure (after every live connection drains).
    /// Per-connection conversation failures end only that connection.
    pub fn run_concurrent(&self, workers: usize) -> Result<(), FleetError> {
        let dispatcher = Dispatcher::new(Arc::clone(&self.service), workers);
        std::thread::scope(|scope| loop {
            let (stream, _) = self.listener.accept()?;
            let dispatcher = &dispatcher;
            scope.spawn(move || {
                // A peer hanging up mid-frame is that peer's problem.
                let _ = self.serve_stream(stream, Some(dispatcher));
            });
        })
    }

    /// Accepts exactly `connections` connections and serves them
    /// concurrently through `dispatcher`, returning when all have
    /// closed — [`TcpFront::run_concurrent`] with a deterministic
    /// endpoint, for tests and drains.
    ///
    /// # Errors
    ///
    /// The first accept failure, or the first conversation failure
    /// among the accepted connections (all are joined first).
    pub fn accept_pooled(
        &self,
        dispatcher: &Dispatcher,
        connections: usize,
    ) -> Result<(), FleetError> {
        std::thread::scope(|scope| {
            let mut served = Vec::with_capacity(connections);
            let mut accepting = Ok(());
            for _ in 0..connections {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        served
                            .push(scope.spawn(move || self.serve_stream(stream, Some(dispatcher))));
                    }
                    Err(error) => {
                        accepting = Err(FleetError::Io(error));
                        break;
                    }
                }
            }
            let mut result = accepting;
            for connection in served {
                let outcome = connection.join().expect("connection thread panicked");
                result = result.and(outcome);
            }
            result
        })
    }
}

/// A blocking client for a [`TcpFront`].
#[derive(Debug)]
pub struct FleetClient {
    stream: TcpStream,
}

impl FleetClient {
    /// Connects to a front.
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] when the connect fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, FleetError> {
        Ok(Self {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] / [`FleetError::Wire`] on transport failures —
    /// including the server closing before responding.
    pub fn request(&mut self, request: &Request) -> Result<Response, FleetError> {
        write_frame(&mut self.stream, &wire::to_bytes(request))?;
        let payload = read_frame(&mut self.stream)?
            .ok_or_else(|| FleetError::Wire("server closed before responding".into()))?;
        wire::from_bytes(&payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"hello").unwrap();
        write_frame(&mut stream, b"").unwrap();
        let mut reader = stream.as_slice();
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut reader).unwrap(), None);
    }

    #[test]
    fn truncated_frames_and_giant_prefixes_are_typed() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"hello").unwrap();
        let mut reader = &stream[..3]; // inside the prefix
        assert!(matches!(read_frame(&mut reader), Err(FleetError::Wire(_))));
        let mut reader = &stream[..6]; // inside the payload
        assert!(matches!(read_frame(&mut reader), Err(FleetError::Wire(_))));
        let giant = (u32::try_from(MAX_FRAME).unwrap() + 1).to_le_bytes();
        let mut reader = &giant[..];
        assert!(matches!(read_frame(&mut reader), Err(FleetError::Wire(_))));
    }
}
