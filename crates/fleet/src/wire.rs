//! The fleet wire format: a compact, self-describing binary encoding of
//! the serde data model.
//!
//! Requests, responses and persisted dictionaries all travel as
//! length-prefixed [`serde::Value`] trees:
//!
//! | tag | payload |
//! |----:|---------|
//! | `0` | unit — empty |
//! | `1` | bool — one byte, `0`/`1` |
//! | `2` | unsigned — 16 bytes LE |
//! | `3` | signed — 16 bytes LE (two's complement) |
//! | `4` | float — 8 bytes, IEEE-754 bit pattern LE |
//! | `5` | string — `u64` LE byte length + UTF-8 bytes |
//! | `6` | sequence — `u64` LE element count + elements |
//! | `7` | map — `u64` LE entry count + key/value pairs |
//! | `8` | record — `u64` LE field count + (name string, value) pairs |
//! | `9` | variant — name string + payload value |
//!
//! Decoding is strict: every length is bounds-checked against the
//! remaining input, strings must be valid UTF-8 and [`from_bytes`]
//! rejects trailing bytes. The module is deliberately the only place
//! that knows the byte layout — when the build moves to crates.io this
//! is the seam to swap for `bincode`/`postcard` over real serde.

use serde::{Deserialize, Serialize, Value};

use crate::FleetError;

const TAG_UNIT: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_UINT: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_SEQ: u8 = 6;
const TAG_MAP: u8 = 7;
const TAG_RECORD: u8 = 8;
const TAG_VARIANT: u8 = 9;

/// Encodes a value into the wire format.
#[must_use]
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let mut bytes = Vec::new();
    encode(&serde::to_value(value), &mut bytes);
    bytes
}

/// Decodes a value from the wire format.
///
/// # Errors
///
/// [`FleetError::Wire`] on a truncated or malformed payload, trailing
/// bytes, or a decoded tree that does not match `T`'s shape.
pub fn from_bytes<'de, T: Deserialize<'de>>(bytes: &[u8]) -> Result<T, FleetError> {
    let mut cursor = Cursor { bytes, at: 0 };
    let value = decode(&mut cursor)?;
    if cursor.at != bytes.len() {
        return Err(FleetError::Wire(format!(
            "{} trailing bytes after value",
            bytes.len() - cursor.at
        )));
    }
    Ok(serde::from_value(&value)?)
}

fn encode(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Unit => out.push(TAG_UNIT),
        Value::Bool(flag) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*flag));
        }
        Value::UInt(number) => {
            out.push(TAG_UINT);
            out.extend_from_slice(&number.to_le_bytes());
        }
        Value::Int(number) => {
            out.push(TAG_INT);
            out.extend_from_slice(&number.to_le_bytes());
        }
        Value::Float(number) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&number.to_bits().to_le_bytes());
        }
        Value::Str(text) => {
            out.push(TAG_STR);
            encode_str(text, out);
        }
        Value::Seq(items) => {
            out.push(TAG_SEQ);
            encode_len(items.len(), out);
            for item in items {
                encode(item, out);
            }
        }
        Value::Map(entries) => {
            out.push(TAG_MAP);
            encode_len(entries.len(), out);
            for (key, entry) in entries {
                encode(key, out);
                encode(entry, out);
            }
        }
        Value::Record(fields) => {
            out.push(TAG_RECORD);
            encode_len(fields.len(), out);
            for (name, field) in fields {
                encode_str(name, out);
                encode(field, out);
            }
        }
        Value::Variant(name, payload) => {
            out.push(TAG_VARIANT);
            encode_str(name, out);
            encode(payload, out);
        }
    }
}

fn encode_len(len: usize, out: &mut Vec<u8>) {
    out.extend_from_slice(&(len as u64).to_le_bytes());
}

fn encode_str(text: &str, out: &mut Vec<u8>) {
    encode_len(text.len(), out);
    out.extend_from_slice(text.as_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn take(&mut self, count: usize) -> Result<&[u8], FleetError> {
        let end = self
            .at
            .checked_add(count)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| {
                FleetError::Wire(format!(
                    "truncated payload: need {count} bytes at offset {}, have {}",
                    self.at,
                    self.bytes.len() - self.at
                ))
            })?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn take_len(&mut self) -> Result<usize, FleetError> {
        let raw = u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes"));
        // A length cannot exceed the remaining input (every element takes
        // at least a tag byte) — reject early so a corrupt length cannot
        // drive a huge allocation.
        let remaining = self.bytes.len() - self.at;
        if raw > remaining as u64 {
            return Err(FleetError::Wire(format!(
                "length {raw} exceeds {remaining} remaining bytes"
            )));
        }
        Ok(raw as usize)
    }

    fn take_str(&mut self) -> Result<String, FleetError> {
        let len = self.take_len()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| FleetError::Wire("string is not valid UTF-8".to_string()))
    }
}

fn decode(cursor: &mut Cursor<'_>) -> Result<Value, FleetError> {
    let tag = cursor.take(1)?[0];
    match tag {
        TAG_UNIT => Ok(Value::Unit),
        TAG_BOOL => match cursor.take(1)?[0] {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            other => Err(FleetError::Wire(format!("invalid bool byte {other:#04x}"))),
        },
        TAG_UINT => Ok(Value::UInt(u128::from_le_bytes(
            cursor.take(16)?.try_into().expect("16 bytes"),
        ))),
        TAG_INT => Ok(Value::Int(i128::from_le_bytes(
            cursor.take(16)?.try_into().expect("16 bytes"),
        ))),
        TAG_FLOAT => Ok(Value::Float(f64::from_bits(u64::from_le_bytes(
            cursor.take(8)?.try_into().expect("8 bytes"),
        )))),
        TAG_STR => Ok(Value::Str(cursor.take_str()?)),
        TAG_SEQ => {
            let len = cursor.take_len()?;
            let mut items = Vec::with_capacity(len);
            for _ in 0..len {
                items.push(decode(cursor)?);
            }
            Ok(Value::Seq(items))
        }
        TAG_MAP => {
            let len = cursor.take_len()?;
            let mut entries = Vec::with_capacity(len);
            for _ in 0..len {
                let key = decode(cursor)?;
                let entry = decode(cursor)?;
                entries.push((key, entry));
            }
            Ok(Value::Map(entries))
        }
        TAG_RECORD => {
            let len = cursor.take_len()?;
            let mut fields = Vec::with_capacity(len);
            for _ in 0..len {
                let name = cursor.take_str()?;
                let field = decode(cursor)?;
                fields.push((name, field));
            }
            Ok(Value::Record(fields))
        }
        TAG_VARIANT => {
            let name = cursor.take_str()?;
            let payload = decode(cursor)?;
            Ok(Value::Variant(name, Box::new(payload)))
        }
        other => Err(FleetError::Wire(format!("unknown value tag {other:#04x}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(value: &Value) {
        let mut bytes = Vec::new();
        encode(value, &mut bytes);
        let mut cursor = Cursor {
            bytes: &bytes,
            at: 0,
        };
        let back = decode(&mut cursor).unwrap();
        assert_eq!(cursor.at, bytes.len());
        assert_eq!(&back, value);
    }

    #[test]
    fn every_value_shape_round_trips() {
        round_trip(&Value::Unit);
        round_trip(&Value::Bool(true));
        round_trip(&Value::UInt(u128::MAX));
        round_trip(&Value::Int(i128::MIN));
        round_trip(&Value::Float(-0.5));
        round_trip(&Value::Str("märz".to_string()));
        round_trip(&Value::Seq(vec![Value::UInt(1), Value::Bool(false)]));
        round_trip(&Value::Map(vec![(Value::Str("k".into()), Value::UInt(7))]));
        round_trip(&Value::Record(vec![("field".to_string(), Value::Unit)]));
        round_trip(&Value::Variant(
            "Some".to_string(),
            Box::new(Value::UInt(3)),
        ));
    }

    #[test]
    fn typed_round_trip() {
        let value: Vec<(String, Option<u32>)> =
            vec![("a".to_string(), Some(7)), ("b".to_string(), None)];
        let bytes = to_bytes(&value);
        let back: Vec<(String, Option<u32>)> = from_bytes(&bytes).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        // Truncated integer payload.
        assert!(from_bytes::<u32>(&[TAG_UINT, 1, 2]).is_err());
        // Unknown tag.
        assert!(from_bytes::<u32>(&[0xFF]).is_err());
        // Oversized length prefix cannot allocate.
        let mut huge = vec![TAG_SEQ];
        huge.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(from_bytes::<Vec<u32>>(&huge).is_err());
        // Trailing bytes.
        let mut padded = to_bytes(&7u32);
        padded.push(0);
        assert!(from_bytes::<u32>(&padded).is_err());
        // Invalid bool byte.
        assert!(from_bytes::<bool>(&[TAG_BOOL, 2]).is_err());
    }
}
