//! The fleet wire format: a compact, self-describing binary encoding of
//! the serde data model.
//!
//! Requests, responses and persisted dictionaries all travel as
//! length-prefixed [`serde::Value`] trees:
//!
//! | tag | payload |
//! |----:|---------|
//! | `0` | unit — empty |
//! | `1` | bool — one byte, `0`/`1` |
//! | `2` | unsigned — 16 bytes LE |
//! | `3` | signed — 16 bytes LE (two's complement) |
//! | `4` | float — 8 bytes, IEEE-754 bit pattern LE |
//! | `5` | string — `u64` LE byte length + UTF-8 bytes |
//! | `6` | sequence — `u64` LE element count + elements |
//! | `7` | map — `u64` LE entry count + key/value pairs |
//! | `8` | record — `u64` LE field count + (name string, value) pairs |
//! | `9` | variant — name string + payload value |
//!
//! The byte layout is owned by [`twm_store::wire`] — the dictionary
//! store persists the same values — and this module wraps it with the
//! fleet's error type. Since the store grew **streaming** entry points,
//! the fleet codec streams too: [`write_to`] / [`read_from`] encode and
//! decode over any [`std::io::Write`] / [`std::io::Read`] without
//! buffering the whole payload, and the original [`to_bytes`] /
//! [`from_bytes`] helpers remain as the `Vec<u8>` convenience layer.
//! Decoding is strict: every length is bounds-checked, strings must be
//! valid UTF-8 and [`from_bytes`] rejects trailing bytes.

use std::io::{Read, Write};

use serde::{Deserialize, Serialize};

use twm_store::wire as codec;
use twm_store::wire::WireError;

use crate::FleetError;

fn lift(error: WireError) -> FleetError {
    match error {
        WireError::Io(e) => FleetError::Io(e),
        other => FleetError::Wire(other.to_string()),
    }
}

/// Encodes a value into the wire format.
#[must_use]
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    codec::to_bytes(value)
}

/// Decodes a value from the wire format.
///
/// # Errors
///
/// [`FleetError::Wire`] on a truncated or malformed payload, trailing
/// bytes, or a decoded tree that does not match `T`'s shape.
pub fn from_bytes<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> Result<T, FleetError> {
    codec::from_bytes(bytes).map_err(lift)
}

/// Encodes a value directly onto a writer — no intermediate buffer, so
/// exports stream to files and sockets whatever the dictionary size.
///
/// # Errors
///
/// [`FleetError::Io`] when the writer fails.
pub fn write_to<W, T>(writer: &mut W, value: &T) -> Result<(), FleetError>
where
    W: Write + ?Sized,
    T: Serialize + ?Sized,
{
    codec::write_to(writer, value).map_err(lift)
}

/// Decodes one value from a reader, leaving it positioned after the
/// value (framing is the caller's concern — see [`crate::tcp`]).
///
/// # Errors
///
/// [`FleetError::Io`] when the reader fails mid-value is *not* produced
/// — a truncated stream is a malformed value, [`FleetError::Wire`];
/// other reader failures surface as [`FleetError::Io`].
pub fn read_from<R, T>(reader: &mut R) -> Result<T, FleetError>
where
    R: Read + ?Sized,
    T: for<'de> Deserialize<'de>,
{
    codec::read_from(reader).map_err(lift)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Sample {
        name: String,
        words: Vec<u64>,
        flag: bool,
    }

    fn sample() -> Sample {
        Sample {
            name: "march".into(),
            words: vec![0, 1, u64::MAX],
            flag: true,
        }
    }

    #[test]
    fn typed_round_trip() {
        let bytes = to_bytes(&sample());
        assert_eq!(from_bytes::<Sample>(&bytes).unwrap(), sample());
    }

    #[test]
    fn streaming_and_buffered_layouts_are_identical() {
        let buffered = to_bytes(&sample());
        let mut streamed = Vec::new();
        write_to(&mut streamed, &sample()).unwrap();
        assert_eq!(streamed, buffered);
        let mut reader = streamed.as_slice();
        assert_eq!(read_from::<_, Sample>(&mut reader).unwrap(), sample());
        assert!(reader.is_empty());
    }

    #[test]
    fn read_from_leaves_the_reader_between_values() {
        let mut stream = Vec::new();
        write_to(&mut stream, &1u32).unwrap();
        write_to(&mut stream, "two").unwrap();
        let mut reader = stream.as_slice();
        assert_eq!(read_from::<_, u32>(&mut reader).unwrap(), 1);
        assert_eq!(read_from::<_, String>(&mut reader).unwrap(), "two");
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        // Truncated value.
        let mut bytes = to_bytes(&sample());
        bytes.truncate(bytes.len() - 1);
        assert!(matches!(
            from_bytes::<Sample>(&bytes),
            Err(FleetError::Wire(_))
        ));
        // Trailing bytes.
        let mut bytes = to_bytes(&sample());
        bytes.push(0);
        assert!(matches!(
            from_bytes::<Sample>(&bytes),
            Err(FleetError::Wire(_))
        ));
        // Unknown tag.
        assert!(matches!(from_bytes::<u32>(&[42]), Err(FleetError::Wire(_))));
    }
}
