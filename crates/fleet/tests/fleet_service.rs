//! Integration tests for the fleet service: wire round-trips for every
//! request/response variant, dictionary persistence, batched diagnosis
//! determinism (parallel vs serial, interleaved vs sequential) and the
//! verdict taxonomy.

use std::sync::Arc;

use proptest::prelude::*;
use twm_bist::run_scheme_session_staged;
use twm_core::scheme::{SchemeId, SchemeRegistry};
use twm_coverage::{ContentPolicy, CoverageEngine, Strategy, UniverseBuilder};
use twm_fleet::{
    wire, BatchReport, CacheMetrics, DeviceOutcome, DeviceReport, DeviceVerdict, Diagnosis,
    DictionaryStore, FleetConfig, FleetService, FleetStatistics, PersistedShard, Request, Response,
    ShardInfo, ShardKey, SignatureDictionary, SignatureTrail, UniverseSpec,
};
use twm_march::algorithms::{march_c_minus, mats_plus};
use twm_march::MarchTest;
use twm_mem::{Fault, FaultSet, FaultyMemory, MemoryConfig};
use twm_repair::DictionaryOptions;

const SEED: u64 = 0xF1EE7;

fn config() -> MemoryConfig {
    MemoryConfig::new(6, 4).unwrap()
}

fn content() -> ContentPolicy {
    ContentPolicy::Random { seed: SEED }
}

fn build_dictionary(scheme: SchemeId, source: &MarchTest) -> SignatureDictionary {
    let registry = SchemeRegistry::all(config().width()).unwrap();
    let engine = CoverageEngine::for_scheme(registry.get(scheme).unwrap(), source, config())
        .unwrap()
        .content(content())
        .strategy(Strategy::Serial)
        .build()
        .unwrap();
    let universe = UniverseBuilder::new(config())
        .stuck_at()
        .transition()
        .build();
    SignatureDictionary::build(&engine, &universe, &DictionaryOptions::default()).unwrap()
}

/// What a fielded device would report: the staged-session trail of its
/// (possibly faulty) memory under the shard's scheme.
fn device_trail(scheme: SchemeId, source: &MarchTest, faults: &[Fault]) -> SignatureTrail {
    let registry = SchemeRegistry::all(config().width()).unwrap();
    let transform = registry.get(scheme).unwrap().transform(source).unwrap();
    let mut memory =
        FaultyMemory::with_faults(config(), FaultSet::from_faults(faults.iter().copied())).unwrap();
    memory.fill_random(SEED);
    let misr = twm_bist::Misr::standard(config().width());
    let staged = run_scheme_session_staged(&transform, &mut memory, misr).unwrap();
    SignatureTrail::new(staged.signature_trail())
}

/// A mixed 2-shard fleet: clean devices, single faults, an unknown-shard
/// report and an off-dictionary trail.
fn fleet_reports(devices: usize) -> Vec<DeviceReport> {
    let shard_a = ShardKey::new(config(), SchemeId::TwmTa, &march_c_minus());
    let shard_b = ShardKey::new(config(), SchemeId::Scheme1, &mats_plus());
    let ghost = ShardKey::new(config(), SchemeId::Tomt, &march_c_minus());
    (0..devices)
        .map(|index| {
            let (shard, scheme, source): (ShardKey, SchemeId, MarchTest) = if index % 2 == 0 {
                (shard_a, SchemeId::TwmTa, march_c_minus())
            } else {
                (shard_b, SchemeId::Scheme1, mats_plus())
            };
            let words = config().words();
            let width = config().width();
            let (shard, trail) = match index % 5 {
                // A healthy device.
                0 => (shard, device_trail(scheme, &source, &[])),
                // A report for a shard nobody registered.
                1 => (ghost, device_trail(SchemeId::Tomt, &march_c_minus(), &[])),
                // A trail no indexed injection produces (wrong content
                // seed drifts every signature).
                2 => {
                    let mut drifted = device_trail(scheme, &source, &[]).signatures().to_vec();
                    for word in &mut drifted {
                        *word = word.with_bit(0, !word.bit(0));
                    }
                    (shard, SignatureTrail::new(drifted))
                }
                // Single stuck-at / transition defects.
                3 => {
                    let cell = twm_mem::BitAddress::new(index % words, index % width);
                    (
                        shard,
                        device_trail(scheme, &source, &[Fault::stuck_at(cell, index % 3 == 0)]),
                    )
                }
                _ => {
                    let cell = twm_mem::BitAddress::new((index * 3) % words, (index * 7) % width);
                    (
                        shard,
                        device_trail(
                            scheme,
                            &source,
                            &[Fault::transition(cell, twm_mem::Transition::Rising)],
                        ),
                    )
                }
            };
            DeviceReport {
                device: format!("dev-{index:03}"),
                shard,
                trail,
                spares: 1 + index % 2,
            }
        })
        .collect()
}

fn service(strategy: Strategy) -> FleetService {
    let service = FleetService::new(FleetConfig {
        strategy,
        ..FleetConfig::default()
    })
    .unwrap();
    let registered = service.handle(Request::RegisterDictionary {
        source: march_c_minus(),
        dictionary: build_dictionary(SchemeId::TwmTa, &march_c_minus()),
    });
    assert!(matches!(registered, Response::Registered { .. }));
    let registered = service.handle(Request::RegisterDictionary {
        source: mats_plus(),
        dictionary: build_dictionary(SchemeId::Scheme1, &mats_plus()),
    });
    assert!(matches!(registered, Response::Registered { .. }));
    service
}

fn wire_round_trip_request(request: &Request) {
    let bytes = wire::to_bytes(request);
    let back: Request = wire::from_bytes(&bytes).unwrap();
    assert_eq!(&back, request);
}

fn wire_round_trip_response(response: &Response) {
    let bytes = wire::to_bytes(response);
    let back: Response = wire::from_bytes(&bytes).unwrap();
    assert_eq!(&back, response);
}

/// Satellite: every request and response variant survives the wire
/// format, including a full `SignatureDictionary` payload.
#[test]
fn every_request_and_response_variant_round_trips_on_the_wire() {
    let dictionary = build_dictionary(SchemeId::TwmTa, &march_c_minus());
    let shard = ShardKey::new(config(), SchemeId::TwmTa, &march_c_minus());
    let reports = fleet_reports(6);

    wire_round_trip_request(&Request::RegisterDictionary {
        source: march_c_minus(),
        dictionary: dictionary.clone(),
    });
    wire_round_trip_request(&Request::BuildDictionary {
        scheme: SchemeId::Scheme1,
        source: mats_plus(),
        config: config(),
        content: content(),
        universe: UniverseSpec::default(),
    });
    wire_round_trip_request(&Request::EvictDictionary { shard });
    wire_round_trip_request(&Request::ListShards);
    wire_round_trip_request(&Request::DiagnoseBatch {
        reports: reports.clone(),
    });
    wire_round_trip_request(&Request::ExportShard { shard });
    wire_round_trip_request(&Request::ImportShard {
        bytes: vec![1, 2, 3],
    });
    wire_round_trip_request(&Request::Statistics);
    wire_round_trip_request(&Request::CacheMetrics);

    // Responses: take real ones from a live service where possible.
    let service = service(Strategy::Serial);
    let batch = service.handle(Request::DiagnoseBatch { reports });
    assert!(matches!(batch, Response::Batch(_)));
    wire_round_trip_response(&batch);
    wire_round_trip_response(&service.handle(Request::ListShards));
    wire_round_trip_response(&service.handle(Request::ExportShard { shard }));
    wire_round_trip_response(&service.handle(Request::Statistics));
    wire_round_trip_response(&service.handle(Request::CacheMetrics));
    wire_round_trip_response(&service.handle(Request::EvictDictionary { shard }));
    wire_round_trip_response(&Response::Registered {
        shard,
        classes: dictionary.classes().len(),
        indexed: dictionary.stats().indexed,
    });
    wire_round_trip_response(&Response::Error {
        message: "boom".to_string(),
    });
}

/// Satellite: a dictionary registered, exported, dropped and re-imported
/// is the same dictionary — and diagnoses identically.
#[test]
fn shard_export_import_round_trips_the_dictionary() {
    let mut store = DictionaryStore::new();
    let dictionary = build_dictionary(SchemeId::TwmTa, &march_c_minus());
    let key = store
        .register(march_c_minus(), Arc::new(dictionary.clone()))
        .unwrap();
    let bytes = store.export(key).unwrap();

    // The persisted form itself round-trips value-identically.
    let persisted: PersistedShard = wire::from_bytes(&bytes).unwrap();
    assert_eq!(persisted.dictionary, dictionary);
    assert_eq!(persisted.source, march_c_minus());

    let mut restored = DictionaryStore::new();
    let restored_key = restored.import(&bytes).unwrap();
    assert_eq!(restored_key, key);
    assert_eq!(
        &**restored
            .get(key)
            .unwrap()
            .dictionary
            .resident()
            .expect("imports register resident"),
        &dictionary
    );

    // Duplicate registration is rejected, eviction makes room.
    assert!(restored.import(&bytes).is_err());
    assert!(restored.evict(key));
    assert!(restored.import(&bytes).is_ok());
}

/// Acceptance: a `DiagnoseBatch` over 80 devices across 2 shards is
/// bit-identical between the serial and parallel fan-out paths.
#[test]
fn batched_diagnosis_is_bit_identical_to_serial() {
    let reports = fleet_reports(80);
    let serial = service(Strategy::Serial).handle(Request::DiagnoseBatch {
        reports: reports.clone(),
    });
    for threads in [2usize, 3, 8] {
        let parallel = service(Strategy::Parallel { threads }).handle(Request::DiagnoseBatch {
            reports: reports.clone(),
        });
        assert_eq!(parallel, serial, "batch drifted at {threads} threads");
    }

    // The batch exercises every verdict arm.
    let Response::Batch(BatchReport {
        outcomes,
        statistics,
    }) = serial
    else {
        panic!("expected a batch response");
    };
    assert_eq!(outcomes.len(), 80);
    assert!(statistics.clean > 0);
    assert!(statistics.unknown_shard > 0);
    assert!(statistics.unknown_trail > 0);
    assert!(statistics.diagnosed > 0);
    assert!(statistics.verified_clean > 0);
    assert!(!statistics.fault_classes.is_empty());
    assert!(!statistics.repair_rate_curve().is_empty());
    // Outcomes come back in submission order.
    for (index, outcome) in outcomes.iter().enumerate() {
        assert_eq!(outcome.device, format!("dev-{index:03}"));
    }
}

/// Single-fault devices with a spare get a fully-repairing, re-verified
/// plan whose assignment covers the faulty word.
#[test]
fn diagnosed_devices_get_verified_repair_plans() {
    let service = service(Strategy::Serial);
    let source = march_c_minus();
    let shard = ShardKey::new(config(), SchemeId::TwmTa, &source);
    let cell = twm_mem::BitAddress::new(3, 2);
    let report = DeviceReport {
        device: "unit".to_string(),
        shard,
        trail: device_trail(SchemeId::TwmTa, &source, &[Fault::stuck_at(cell, true)]),
        spares: 2,
    };
    let Response::Batch(batch) = service.handle(Request::DiagnoseBatch {
        reports: vec![report],
    }) else {
        panic!("expected a batch response");
    };
    let DeviceVerdict::Diagnosed(Diagnosis {
        defects,
        ambiguity,
        plan,
        predicted_clean,
    }) = &batch.outcomes[0].verdict
    else {
        panic!("expected a diagnosis, got {:?}", batch.outcomes[0].verdict);
    };
    assert!(*ambiguity >= 1);
    assert!(defects.iter().any(|defect| defect.cell.word == cell.word));
    assert!(plan.fully_repairs());
    assert!(plan
        .assignments
        .iter()
        .any(|assignment| assignment.word == cell.word));
    assert!(
        *predicted_clean,
        "repair plan failed simulated verification"
    );
}

/// The LRU bound evicts and rebuilds runtimes without changing verdicts.
#[test]
fn lru_cache_evictions_do_not_change_verdicts() {
    let reports = fleet_reports(20);
    let reference = service(Strategy::Serial).handle(Request::DiagnoseBatch {
        reports: reports.clone(),
    });

    let tight = FleetService::new(FleetConfig {
        strategy: Strategy::Serial,
        cache_capacity: 1,
        ..FleetConfig::default()
    })
    .unwrap();
    for (source, scheme) in [
        (march_c_minus(), SchemeId::TwmTa),
        (mats_plus(), SchemeId::Scheme1),
    ] {
        let dictionary = build_dictionary(scheme, &source);
        assert!(matches!(
            tight.handle(Request::RegisterDictionary { source, dictionary }),
            Response::Registered { .. }
        ));
    }
    // Two batches: the second re-resolves both shards after evictions.
    for _ in 0..2 {
        let outcome = tight.handle(Request::DiagnoseBatch {
            reports: reports.clone(),
        });
        let (Response::Batch(got), Response::Batch(want)) = (&outcome, &reference) else {
            panic!("expected batch responses");
        };
        assert_eq!(got.outcomes, want.outcomes);
    }
    let Response::CacheMetrics(metrics) = tight.handle(Request::CacheMetrics) else {
        panic!("expected cache metrics");
    };
    assert!(metrics.evictions > 0, "capacity 1 never evicted");
    assert!(metrics.misses > metrics.evictions);
}

/// Satellite: interleaved concurrent batches produce the same per-batch
/// responses as a serial service, and cumulative statistics converge to
/// the same totals regardless of interleaving.
#[test]
fn concurrent_batches_match_serial_bit_for_bit() {
    let batches: Vec<Vec<DeviceReport>> = (0..6)
        .map(|batch| {
            fleet_reports(16)
                .into_iter()
                .map(|mut report| {
                    report.device = format!("b{batch}-{}", report.device);
                    report
                })
                .collect()
        })
        .collect();

    // Serial reference: one service, batches in order.
    let reference = service(Strategy::Serial);
    let expected: Vec<Response> = batches
        .iter()
        .map(|reports| {
            reference.handle(Request::DiagnoseBatch {
                reports: reports.clone(),
            })
        })
        .collect();
    let Response::Statistics(mut expected_totals) = reference.handle(Request::Statistics) else {
        panic!("expected statistics");
    };

    // Concurrent: one shared service, every batch on its own thread.
    let shared = Arc::new(service(Strategy::Parallel { threads: 2 }));
    let responses: Vec<Response> = std::thread::scope(|scope| {
        let handles: Vec<_> = batches
            .iter()
            .map(|reports| {
                let shared = Arc::clone(&shared);
                scope.spawn(move || {
                    shared.handle(Request::DiagnoseBatch {
                        reports: reports.clone(),
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("batch thread panicked"))
            .collect()
    });
    for (got, want) in responses.iter().zip(&expected) {
        assert_eq!(got, want, "interleaved batch drifted from serial");
    }
    let Response::Statistics(mut totals) = shared.handle(Request::Statistics) else {
        panic!("expected statistics");
    };
    // The cumulative view attaches wall-clock latency histograms, which
    // are explicitly outside the determinism contract — strip them and
    // compare the deterministic aggregates.
    expected_totals.latency.clear();
    totals.latency.clear();
    assert_eq!(totals, expected_totals);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any single stuck-at fault's trail diagnoses to its own word with a
    /// repairing plan, identically on the serial and parallel services.
    #[test]
    fn any_single_fault_diagnoses_identically(
        word in 0usize..6,
        bit in 0usize..4,
        value in any::<bool>(),
    ) {
        let source = march_c_minus();
        let shard = ShardKey::new(config(), SchemeId::TwmTa, &source);
        let cell = twm_mem::BitAddress::new(word, bit);
        let report = DeviceReport {
            device: "prop".to_string(),
            shard,
            trail: device_trail(SchemeId::TwmTa, &source, &[Fault::stuck_at(cell, value)]),
            spares: 1,
        };
        let request = |reports| Request::DiagnoseBatch { reports };
        let serial = service(Strategy::Serial).handle(request(vec![report.clone()]));
        let parallel =
            service(Strategy::Parallel { threads: 3 }).handle(request(vec![report]));
        prop_assert_eq!(&serial, &parallel);
        let Response::Batch(batch) = serial else {
            panic!("expected a batch response");
        };
        match &batch.outcomes[0].verdict {
            // An undetectable injection (masked by content) reports clean
            // or unknown; a detected one must localise its own word.
            DeviceVerdict::Diagnosed(diagnosis) => {
                prop_assert!(diagnosis.defects.iter().any(|defect| defect.cell.word == word));
                prop_assert!(diagnosis.plan.fully_repairs());
            }
            DeviceVerdict::Clean | DeviceVerdict::UnknownTrail => {}
            other => prop_assert!(false, "unexpected verdict {other:?}"),
        }
    }
}

// Silence "unused import" pedantry for items only used in some cfgs.
#[allow(dead_code)]
fn _type_checks(_: &ShardInfo, _: &DeviceOutcome, _: &FleetStatistics, _: &CacheMetrics) {}
