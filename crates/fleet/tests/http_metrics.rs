//! The PR's acceptance pin, live: a fleet service with
//! `FleetConfig::metrics_http` serves scrape bytes over HTTP that are
//! **byte-identical** to the [`Request::Metrics`] exposition of the
//! same registry state, with per-variant request counters and latency
//! histograms that separate cleanly.
//!
//! One `#[test]` on purpose: the asserted state lives in the
//! process-wide registry, and a single test per integration-test
//! process is the only way to keep sibling tests out of the snapshot.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};

use twm_fleet::{FleetConfig, FleetService, Request, Response};
use twm_obs::MetricValue;

/// GETs a path and returns (status line, body bytes).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics endpoint");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: twm-fleet-test\r\n\r\n").as_bytes())
        .expect("send request");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let split = response
        .windows(4)
        .position(|window| window == b"\r\n\r\n")
        .expect("header/body split");
    let head = std::str::from_utf8(&response[..split]).expect("ASCII head");
    let status = head.lines().next().expect("status line").to_string();
    (status, response[split + 4..].to_vec())
}

#[test]
fn live_http_scrape_matches_request_metrics_and_variants_separate() {
    let service = FleetService::new(FleetConfig {
        metrics_http: Some("127.0.0.1:0".parse().unwrap()),
        ..FleetConfig::default()
    })
    .expect("service with metrics endpoint");
    let addr = service.metrics_addr().expect("resolved endpoint address");

    // Drive a known request mix so the per-variant metrics have
    // something to separate.
    for _ in 0..3 {
        let response = service.handle(Request::ListShards);
        assert!(matches!(response, Response::Shards(_)));
    }
    let response = service.handle(Request::CacheMetrics);
    assert!(matches!(response, Response::CacheMetrics(_)));

    // Scrape over HTTP *first*: `handle` counts a request after its
    // dispatch snapshots the registry, so the in-process exposition that
    // follows sees exactly the state the wire scrape saw.
    let (status, scraped) = http_get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let Response::Metrics { text, report } = service.handle(Request::Metrics) else {
        panic!("expected a metrics response");
    };
    assert_eq!(
        scraped,
        text.clone().into_bytes(),
        "HTTP scrape bytes diverged from the Request::Metrics exposition"
    );
    assert_eq!(report.expose(), text, "report and text left one snapshot");

    // Per-variant separability: the request mix above, nothing bleeding
    // between variants, and latency histogram counts agreeing with the
    // request counters.
    let count_of = |variant: &str| -> u64 {
        report
            .metrics
            .iter()
            .find_map(|sample| match &sample.value {
                MetricValue::Counter(total)
                    if sample.name == "twm_fleet_requests_total"
                        && sample
                            .labels
                            .iter()
                            .any(|label| label.name == "request" && label.value == variant) =>
                {
                    Some(*total)
                }
                _ => None,
            })
            .unwrap_or_else(|| panic!("no requests_total for {variant}"))
    };
    let latency_count_of = |variant: &str| -> u64 {
        report
            .metrics
            .iter()
            .find_map(|sample| match &sample.value {
                MetricValue::Histogram(snapshot)
                    if sample.name == "twm_fleet_request_latency_ns"
                        && sample
                            .labels
                            .iter()
                            .any(|label| label.name == "request" && label.value == variant) =>
                {
                    Some(snapshot.count)
                }
                _ => None,
            })
            .unwrap_or_else(|| panic!("no latency histogram for {variant}"))
    };
    assert_eq!(count_of("ListShards"), 3);
    assert_eq!(count_of("CacheMetrics"), 1);
    assert_eq!(count_of("DiagnoseBatch"), 0);
    assert_eq!(latency_count_of("ListShards"), 3);
    assert_eq!(latency_count_of("CacheMetrics"), 1);
    assert_eq!(latency_count_of("DiagnoseBatch"), 0);

    // The cumulative statistics view carries the same latency data,
    // summarised to p50/p90/p99 per variant.
    let Response::Statistics(statistics) = service.handle(Request::Statistics) else {
        panic!("expected statistics");
    };
    let listed = statistics
        .latency
        .get("ListShards")
        .expect("ListShards latency snapshot");
    assert_eq!(listed.count, 3);
    assert!(!statistics.latency.contains_key("DiagnoseBatch"));
    let quantiles = statistics.latency_quantiles();
    let (_, summary) = quantiles
        .iter()
        .find(|(variant, _)| variant == "ListShards")
        .expect("ListShards quantile summary");
    assert!(summary.p50 <= summary.p90 && summary.p90 <= summary.p99);

    // Liveness endpoint, after the equality asserts (healthz refreshes
    // the uptime gauge, i.e. mutates the registry).
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let body = String::from_utf8(body).expect("JSON body");
    assert!(body.contains("\"status\":\"ok\""), "{body}");
}
