//! Loopback integration tests for the observability surface: the
//! `Request::Metrics` scrape over a live TCP front returns the same
//! registry snapshot as in-process exposition, and the pooled front
//! serves interleaved requests from connections held open concurrently.

use std::sync::Arc;

use twm_bist::run_scheme_session_staged;
use twm_core::scheme::{SchemeId, SchemeRegistry};
use twm_coverage::{ContentPolicy, CoverageEngine, Strategy, UniverseBuilder};
use twm_fleet::{
    DeviceReport, Dispatcher, FleetClient, FleetConfig, FleetService, Request, Response, ShardKey,
    SignatureDictionary, SignatureTrail, TcpFront,
};
use twm_march::algorithms::march_c_minus;
use twm_march::MarchTest;
use twm_mem::{Fault, FaultSet, FaultyMemory, MemoryConfig};
use twm_obs::MetricValue;
use twm_repair::DictionaryOptions;

const SEED: u64 = 0x7C9;

fn config() -> MemoryConfig {
    MemoryConfig::new(6, 4).unwrap()
}

fn content() -> ContentPolicy {
    ContentPolicy::Random { seed: SEED }
}

fn build_dictionary(scheme: SchemeId, source: &MarchTest) -> SignatureDictionary {
    let registry = SchemeRegistry::all(config().width()).unwrap();
    let engine = CoverageEngine::for_scheme(registry.get(scheme).unwrap(), source, config())
        .unwrap()
        .content(content())
        .strategy(Strategy::Serial)
        .build()
        .unwrap();
    let universe = UniverseBuilder::new(config())
        .stuck_at()
        .transition()
        .build();
    SignatureDictionary::build(&engine, &universe, &DictionaryOptions::default()).unwrap()
}

fn device_trail(scheme: SchemeId, source: &MarchTest, faults: &[Fault]) -> SignatureTrail {
    let registry = SchemeRegistry::all(config().width()).unwrap();
    let transform = registry.get(scheme).unwrap().transform(source).unwrap();
    let mut memory =
        FaultyMemory::with_faults(config(), FaultSet::from_faults(faults.iter().copied())).unwrap();
    memory.fill_random(SEED);
    let misr = twm_bist::Misr::standard(config().width());
    let staged = run_scheme_session_staged(&transform, &mut memory, misr).unwrap();
    SignatureTrail::new(staged.signature_trail())
}

/// The value of a counter sample in the report, summed over label sets
/// whose `request` label (if any) matches `request`.
fn counter_value(report: &twm_obs::MetricsReport, name: &str, request: Option<&str>) -> u64 {
    report
        .metrics
        .iter()
        .filter(|sample| sample.name == name)
        .filter(|sample| match request {
            None => true,
            Some(want) => sample
                .labels
                .iter()
                .any(|label| label.name == "request" && label.value == want),
        })
        .map(|sample| match &sample.value {
            MetricValue::Counter(value) => *value,
            other => panic!("{name} is not a counter: {other:?}"),
        })
        .sum()
}

/// Tentpole acceptance: scraping `Request::Metrics` over a live TCP
/// front returns a snapshot whose client-side re-rendering is byte-equal
/// to the exposition the server rendered from the very same snapshot —
/// and the instrumented request/frame counters in it are live.
#[test]
fn metrics_scrape_over_tcp_matches_in_process_exposition() {
    let service = Arc::new(FleetService::new(FleetConfig::default()).unwrap());
    let shard = ShardKey::new(config(), SchemeId::TwmTa, &march_c_minus());
    let front = TcpFront::bind("127.0.0.1:0", Arc::clone(&service)).unwrap();
    let addr = front.local_addr().unwrap();
    let server = std::thread::spawn(move || front.accept_one());

    let mut client = FleetClient::connect(addr).unwrap();
    let registered = client
        .request(&Request::RegisterDictionary {
            source: march_c_minus(),
            dictionary: build_dictionary(SchemeId::TwmTa, &march_c_minus()),
        })
        .unwrap();
    assert!(matches!(registered, Response::Registered { .. }));
    let faulty = Fault::stuck_at(twm_mem::BitAddress::new(2, 1), true);
    let batch = client
        .request(&Request::DiagnoseBatch {
            reports: vec![DeviceReport {
                device: "stuck".into(),
                shard,
                trail: device_trail(SchemeId::TwmTa, &march_c_minus(), &[faulty]),
                spares: 1,
            }],
        })
        .unwrap();
    assert!(matches!(batch, Response::Batch(_)));

    let Response::Metrics { text, report } = client.request(&Request::Metrics).unwrap() else {
        panic!("expected a metrics response");
    };
    // Both halves of the response come from ONE snapshot: re-rendering
    // the shipped report client-side reproduces the server's exposition
    // byte for byte.
    assert_eq!(report.expose(), text);

    // The counters this very conversation bumped are in the snapshot.
    // (The registry is process-global, so assert non-zero, not exact.)
    assert!(
        counter_value(&report, "twm_fleet_requests_total", Some("DiagnoseBatch")) >= 1,
        "batch request was counted"
    );
    assert!(
        counter_value(
            &report,
            "twm_fleet_requests_total",
            Some("RegisterDictionary")
        ) >= 1,
        "register request was counted"
    );
    assert!(counter_value(&report, "twm_fleet_frames_total", None) >= 2);
    assert!(counter_value(&report, "twm_fleet_connections_total", None) >= 1);
    assert!(counter_value(&report, "twm_fleet_batch_devices_total", None) >= 1);
    assert!(text.contains("# TYPE twm_fleet_request_latency_ns histogram"));
    assert!(text.contains("twm_fleet_requests_total{request=\"DiagnoseBatch\"}"));

    drop(client);
    server.join().unwrap().unwrap();
}

/// Satellite (ROADMAP item 1): the pooled front serves connections
/// concurrently. Two clients stay connected at once and their requests
/// interleave — under the old serve-to-completion loop the second
/// conversation could not begin until the first hung up.
#[test]
fn pooled_front_interleaves_two_live_connections() {
    let service = Arc::new(FleetService::new(FleetConfig::default()).unwrap());
    let dispatcher = Dispatcher::new(Arc::clone(&service), 2);
    let front = TcpFront::bind("127.0.0.1:0", Arc::clone(&service)).unwrap();
    let addr = front.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let served = front.accept_pooled(&dispatcher, 2);
        drop(dispatcher);
        served
    });

    let mut first = FleetClient::connect(addr).unwrap();
    let mut second = FleetClient::connect(addr).unwrap();
    // Interleave while BOTH connections are held open: the second
    // conversation answers before the first one closes, twice over.
    for _ in 0..2 {
        assert_eq!(
            second.request(&Request::ListShards).unwrap(),
            Response::Shards(Vec::new())
        );
        let Response::Statistics(stats) = first.request(&Request::Statistics).unwrap() else {
            panic!("expected statistics");
        };
        assert_eq!(stats.devices, 0);
    }
    drop(first);
    drop(second);
    server.join().unwrap().unwrap();
}
