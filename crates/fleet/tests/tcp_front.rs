//! Loopback integration tests for the TCP front and the spill path:
//! the framed transport answers exactly like in-process `handle`, and a
//! shard demoted to its spill file keeps diagnosing bit-identically.

use std::sync::Arc;

use twm_bist::run_scheme_session_staged;
use twm_core::scheme::{SchemeId, SchemeRegistry};
use twm_coverage::{ContentPolicy, CoverageEngine, Strategy, UniverseBuilder};
use twm_fleet::{
    DeviceReport, DeviceVerdict, FleetClient, FleetConfig, FleetService, Request, Response,
    ShardKey, SignatureDictionary, SignatureTrail, SpillConfig, StoreOptions, TcpFront,
};
use twm_march::algorithms::{march_c_minus, mats_plus};
use twm_march::MarchTest;
use twm_mem::{Fault, FaultSet, FaultyMemory, MemoryConfig};
use twm_repair::DictionaryOptions;

const SEED: u64 = 0x7C9;

fn config() -> MemoryConfig {
    MemoryConfig::new(6, 4).unwrap()
}

fn content() -> ContentPolicy {
    ContentPolicy::Random { seed: SEED }
}

fn build_dictionary(scheme: SchemeId, source: &MarchTest) -> SignatureDictionary {
    let registry = SchemeRegistry::all(config().width()).unwrap();
    let engine = CoverageEngine::for_scheme(registry.get(scheme).unwrap(), source, config())
        .unwrap()
        .content(content())
        .strategy(Strategy::Serial)
        .build()
        .unwrap();
    let universe = UniverseBuilder::new(config())
        .stuck_at()
        .transition()
        .build();
    SignatureDictionary::build(&engine, &universe, &DictionaryOptions::default()).unwrap()
}

fn device_trail(scheme: SchemeId, source: &MarchTest, faults: &[Fault]) -> SignatureTrail {
    let registry = SchemeRegistry::all(config().width()).unwrap();
    let transform = registry.get(scheme).unwrap().transform(source).unwrap();
    let mut memory =
        FaultyMemory::with_faults(config(), FaultSet::from_faults(faults.iter().copied())).unwrap();
    memory.fill_random(SEED);
    let misr = twm_bist::Misr::standard(config().width());
    let staged = run_scheme_session_staged(&transform, &mut memory, misr).unwrap();
    SignatureTrail::new(staged.signature_trail())
}

fn reports(shard: ShardKey, scheme: SchemeId, source: &MarchTest) -> Vec<DeviceReport> {
    let faulty = Fault::stuck_at(twm_mem::BitAddress::new(2, 1), true);
    vec![
        DeviceReport {
            device: "clean".into(),
            shard,
            trail: device_trail(scheme, source, &[]),
            spares: 1,
        },
        DeviceReport {
            device: "stuck".into(),
            shard,
            trail: device_trail(scheme, source, &[faulty]),
            spares: 1,
        },
    ]
}

/// Satellite: every request/response crossing the loopback TCP front is
/// identical to the in-process `handle` path.
#[test]
fn loopback_round_trip_matches_in_process_handling() {
    let service = Arc::new(FleetService::new(FleetConfig::default()).unwrap());
    let dictionary = build_dictionary(SchemeId::TwmTa, &march_c_minus());
    let register = Request::RegisterDictionary {
        source: march_c_minus(),
        dictionary,
    };
    let shard = ShardKey::new(config(), SchemeId::TwmTa, &march_c_minus());
    let batch = Request::DiagnoseBatch {
        reports: reports(shard, SchemeId::TwmTa, &march_c_minus()),
    };

    // Reference: a twin service handled in-process.
    let twin = FleetService::new(FleetConfig::default()).unwrap();
    let expected_register = twin.handle(register.clone());
    let expected_batch = twin.handle(batch.clone());
    let expected_shards = twin.handle(Request::ListShards);

    let front = TcpFront::bind("127.0.0.1:0", Arc::clone(&service)).unwrap();
    let addr = front.local_addr().unwrap();
    let server = std::thread::spawn(move || front.accept_one());

    let mut client = FleetClient::connect(addr).unwrap();
    assert_eq!(client.request(&register).unwrap(), expected_register);
    assert_eq!(client.request(&batch).unwrap(), expected_batch);
    assert_eq!(
        client.request(&Request::ListShards).unwrap(),
        expected_shards
    );
    // One more frame after several proves per-connection framing holds.
    let Response::Statistics(stats) = client.request(&Request::Statistics).unwrap() else {
        panic!("expected statistics");
    };
    assert_eq!(stats.devices, 2);
    drop(client);
    server.join().unwrap().unwrap();
}

/// A malformed request frame is answered with `Response::Error` and the
/// connection keeps serving.
#[test]
fn malformed_frames_get_error_responses_not_disconnects() {
    let service = Arc::new(FleetService::new(FleetConfig::default()).unwrap());
    let front = TcpFront::bind("127.0.0.1:0", service).unwrap();
    let addr = front.local_addr().unwrap();
    let server = std::thread::spawn(move || front.accept_one());

    use std::io::Write;
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    let junk = [9u8, 9, 9];
    stream
        .write_all(&u32::try_from(junk.len()).unwrap().to_le_bytes())
        .unwrap();
    stream.write_all(&junk).unwrap();
    stream.flush().unwrap();
    let payload = twm_fleet::tcp::read_frame(&mut stream).unwrap().unwrap();
    let response: Response = twm_fleet::wire::from_bytes(&payload).unwrap();
    assert!(matches!(response, Response::Error { .. }));

    // The stream still answers well-formed requests.
    twm_fleet::tcp::write_frame(
        &mut stream,
        &twm_fleet::wire::to_bytes(&Request::ListShards),
    )
    .unwrap();
    let payload = twm_fleet::tcp::read_frame(&mut stream).unwrap().unwrap();
    let response: Response = twm_fleet::wire::from_bytes(&payload).unwrap();
    assert_eq!(response, Response::Shards(Vec::new()));
    drop(stream);
    server.join().unwrap().unwrap();
}

/// Tentpole integration: with a 1-slot runtime cache and a spill
/// directory, the cold shard demotes to its paged file — and its next
/// diagnosis, served from disk, is bit-identical to the resident one.
#[test]
fn evicted_shards_spill_to_disk_and_keep_diagnosing_identically() {
    let dir = std::env::temp_dir().join(format!("twm-fleet-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spill = SpillConfig {
        dir: dir.clone(),
        options: StoreOptions {
            page_size: 256,
            cache_budget: 2048,
        },
    };
    let service = FleetService::new(FleetConfig {
        cache_capacity: 1,
        spill: Some(spill),
        ..FleetConfig::default()
    })
    .unwrap();

    let shard_a = ShardKey::new(config(), SchemeId::TwmTa, &march_c_minus());
    let shard_b = ShardKey::new(config(), SchemeId::Scheme1, &mats_plus());
    for (scheme, source) in [
        (SchemeId::TwmTa, march_c_minus()),
        (SchemeId::Scheme1, mats_plus()),
    ] {
        let response = service.handle(Request::RegisterDictionary {
            source: source.clone(),
            dictionary: build_dictionary(scheme, &source),
        });
        assert!(matches!(response, Response::Registered { .. }));
    }

    let batch_a = Request::DiagnoseBatch {
        reports: reports(shard_a, SchemeId::TwmTa, &march_c_minus()),
    };
    // Resident baseline for shard A.
    let Response::Batch(resident) = service.handle(batch_a.clone()) else {
        panic!("diagnosis failed");
    };
    // Diagnosing shard B evicts A's runtime from the 1-slot cache,
    // demoting A's dictionary to its spill file.
    let Response::Batch(batch_b) = service.handle(Request::DiagnoseBatch {
        reports: reports(shard_b, SchemeId::Scheme1, &mats_plus()),
    }) else {
        panic!("diagnosis failed");
    };
    assert!(matches!(batch_b.outcomes[0].verdict, DeviceVerdict::Clean));
    let spilled: Vec<_> = std::fs::read_dir(&dir)
        .expect("spill dir exists")
        .map(|entry| entry.unwrap().file_name())
        .collect();
    assert_eq!(spilled.len(), 1, "exactly shard A spilled: {spilled:?}");

    // Shard A now serves from disk — same verdicts, bit for bit.
    let Response::Batch(paged) = service.handle(batch_a) else {
        panic!("diagnosis failed");
    };
    assert_eq!(paged.outcomes, resident.outcomes);
    assert_eq!(paged.statistics, resident.statistics);
    assert!(matches!(paged.outcomes[0].verdict, DeviceVerdict::Clean));
    assert!(matches!(
        paged.outcomes[1].verdict,
        DeviceVerdict::Diagnosed(_)
    ));

    std::fs::remove_dir_all(&dir).unwrap();
}
