//! Library of classical bit-oriented march test algorithms.
//!
//! Every algorithm is returned as a [`MarchTest`] built from the published
//! element sequences (van de Goor's notation). March C− and March U are the
//! worked examples of the DATE 2005 paper; the others are provided so the
//! transparent transformation can be exercised over a representative corpus.
//!
//! | Test | Operations per cell | Detects |
//! |------|--------------------:|---------|
//! | MATS+ | 5 | SAF, some AF |
//! | MATS++ | 6 | SAF, TF |
//! | March X | 6 | SAF, TF, CFin |
//! | March Y | 8 | SAF, TF, CFin, linked TF |
//! | March C− | 10 | SAF, TF, unlinked CFs |
//! | March C | 11 | SAF, TF, unlinked CFs |
//! | March A | 15 | SAF, TF, linked CFid |
//! | March B | 17 | SAF, TF, linked CFid/TF |
//! | March U | 13 | SAF, TF, unlinked CFs, some linked |
//! | March LR | 14 | realistic linked faults |
//! | March SS | 22 | simple static faults |

use crate::{MarchElement as El, MarchTest, Operation as Op};

fn build(name: &str, elements: Vec<El>) -> MarchTest {
    MarchTest::new(name, elements).expect("library algorithms are well formed")
}

/// MATS+ : `⇕(w0); ⇑(r0,w1); ⇓(r1,w0)`.
#[must_use]
pub fn mats_plus() -> MarchTest {
    build(
        "MATS+",
        vec![
            El::any_order(vec![Op::w0()]),
            El::ascending(vec![Op::r0(), Op::w1()]),
            El::descending(vec![Op::r1(), Op::w0()]),
        ],
    )
}

/// MATS++ : `⇕(w0); ⇑(r0,w1); ⇓(r1,w0,r0)`.
#[must_use]
pub fn mats_plus_plus() -> MarchTest {
    build(
        "MATS++",
        vec![
            El::any_order(vec![Op::w0()]),
            El::ascending(vec![Op::r0(), Op::w1()]),
            El::descending(vec![Op::r1(), Op::w0(), Op::r0()]),
        ],
    )
}

/// March X : `⇕(w0); ⇑(r0,w1); ⇓(r1,w0); ⇕(r0)`.
#[must_use]
pub fn march_x() -> MarchTest {
    build(
        "March X",
        vec![
            El::any_order(vec![Op::w0()]),
            El::ascending(vec![Op::r0(), Op::w1()]),
            El::descending(vec![Op::r1(), Op::w0()]),
            El::any_order(vec![Op::r0()]),
        ],
    )
}

/// March Y : `⇕(w0); ⇑(r0,w1,r1); ⇓(r1,w0,r0); ⇕(r0)`.
#[must_use]
pub fn march_y() -> MarchTest {
    build(
        "March Y",
        vec![
            El::any_order(vec![Op::w0()]),
            El::ascending(vec![Op::r0(), Op::w1(), Op::r1()]),
            El::descending(vec![Op::r1(), Op::w0(), Op::r0()]),
            El::any_order(vec![Op::r0()]),
        ],
    )
}

/// March C− : `⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)`.
///
/// The primary worked example of the paper (Sections 3 and 5).
#[must_use]
pub fn march_c_minus() -> MarchTest {
    build(
        "March C-",
        vec![
            El::any_order(vec![Op::w0()]),
            El::ascending(vec![Op::r0(), Op::w1()]),
            El::ascending(vec![Op::r1(), Op::w0()]),
            El::descending(vec![Op::r0(), Op::w1()]),
            El::descending(vec![Op::r1(), Op::w0()]),
            El::any_order(vec![Op::r0()]),
        ],
    )
}

/// March C : `⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇕(r0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)`.
#[must_use]
pub fn march_c() -> MarchTest {
    build(
        "March C",
        vec![
            El::any_order(vec![Op::w0()]),
            El::ascending(vec![Op::r0(), Op::w1()]),
            El::ascending(vec![Op::r1(), Op::w0()]),
            El::any_order(vec![Op::r0()]),
            El::descending(vec![Op::r0(), Op::w1()]),
            El::descending(vec![Op::r1(), Op::w0()]),
            El::any_order(vec![Op::r0()]),
        ],
    )
}

/// March A : `⇕(w0); ⇑(r0,w1,w0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)`.
#[must_use]
pub fn march_a() -> MarchTest {
    build(
        "March A",
        vec![
            El::any_order(vec![Op::w0()]),
            El::ascending(vec![Op::r0(), Op::w1(), Op::w0(), Op::w1()]),
            El::ascending(vec![Op::r1(), Op::w0(), Op::w1()]),
            El::descending(vec![Op::r1(), Op::w0(), Op::w1(), Op::w0()]),
            El::descending(vec![Op::r0(), Op::w1(), Op::w0()]),
        ],
    )
}

/// March B : `⇕(w0); ⇑(r0,w1,r1,w0,r0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)`.
#[must_use]
pub fn march_b() -> MarchTest {
    build(
        "March B",
        vec![
            El::any_order(vec![Op::w0()]),
            El::ascending(vec![
                Op::r0(),
                Op::w1(),
                Op::r1(),
                Op::w0(),
                Op::r0(),
                Op::w1(),
            ]),
            El::ascending(vec![Op::r1(), Op::w0(), Op::w1()]),
            El::descending(vec![Op::r1(), Op::w0(), Op::w1(), Op::w0()]),
            El::descending(vec![Op::r0(), Op::w1(), Op::w0()]),
        ],
    )
}

/// March U : `⇕(w0); ⇑(r0,w1,r1,w0); ⇑(r0,w1); ⇓(r1,w0,r0,w1); ⇓(r1,w0)`.
///
/// The second worked example of the paper (Section 4): its transparent
/// word-oriented transformation for 8-bit words has 29 operations per word.
#[must_use]
pub fn march_u() -> MarchTest {
    build(
        "March U",
        vec![
            El::any_order(vec![Op::w0()]),
            El::ascending(vec![Op::r0(), Op::w1(), Op::r1(), Op::w0()]),
            El::ascending(vec![Op::r0(), Op::w1()]),
            El::descending(vec![Op::r1(), Op::w0(), Op::r0(), Op::w1()]),
            El::descending(vec![Op::r1(), Op::w0()]),
        ],
    )
}

/// March LR (without bit-decoder scrambling elements) :
/// `⇕(w0); ⇓(r0,w1); ⇑(r1,w0,r0,w1); ⇑(r1,w0); ⇑(r0,w1,r1,w0); ⇑(r0)`.
#[must_use]
pub fn march_lr() -> MarchTest {
    build(
        "March LR",
        vec![
            El::any_order(vec![Op::w0()]),
            El::descending(vec![Op::r0(), Op::w1()]),
            El::ascending(vec![Op::r1(), Op::w0(), Op::r0(), Op::w1()]),
            El::ascending(vec![Op::r1(), Op::w0()]),
            El::ascending(vec![Op::r0(), Op::w1(), Op::r1(), Op::w0()]),
            El::ascending(vec![Op::r0()]),
        ],
    )
}

/// March SS : `⇕(w0); ⇑(r0,r0,w0,r0,w1); ⇑(r1,r1,w1,r1,w0); ⇓(r0,r0,w0,r0,w1);
/// ⇓(r1,r1,w1,r1,w0); ⇕(r0)`.
#[must_use]
pub fn march_ss() -> MarchTest {
    build(
        "March SS",
        vec![
            El::any_order(vec![Op::w0()]),
            El::ascending(vec![Op::r0(), Op::r0(), Op::w0(), Op::r0(), Op::w1()]),
            El::ascending(vec![Op::r1(), Op::r1(), Op::w1(), Op::r1(), Op::w0()]),
            El::descending(vec![Op::r0(), Op::r0(), Op::w0(), Op::r0(), Op::w1()]),
            El::descending(vec![Op::r1(), Op::r1(), Op::w1(), Op::r1(), Op::w0()]),
            El::any_order(vec![Op::r0()]),
        ],
    )
}

/// Every algorithm in the library, in increasing length order.
#[must_use]
pub fn all() -> Vec<MarchTest> {
    vec![
        mats_plus(),
        mats_plus_plus(),
        march_x(),
        march_y(),
        march_c_minus(),
        march_c(),
        march_u(),
        march_a(),
        march_b(),
        march_lr(),
        march_ss(),
    ]
}

/// Looks an algorithm up by (case-insensitive) name, ignoring spaces and
/// punctuation, e.g. `"march c-"`, `"MarchC-"` or `"MARCH_C-"`.
#[must_use]
pub fn by_name(name: &str) -> Option<MarchTest> {
    let normalize = |s: &str| -> String {
        s.chars()
            .filter(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '+')
            .map(|c| c.to_ascii_lowercase())
            .collect()
    };
    let wanted = normalize(name);
    all().into_iter().find(|t| normalize(t.name()) == wanted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_operation_counts() {
        let expected = [
            ("MATS+", 5, 2),
            ("MATS++", 6, 3),
            ("March X", 6, 3),
            ("March Y", 8, 5),
            ("March C-", 10, 5),
            ("March C", 11, 6),
            ("March U", 13, 6),
            ("March A", 15, 4),
            ("March B", 17, 6),
            ("March LR", 14, 7),
            ("March SS", 22, 13),
        ];
        for (name, ops, reads) in expected {
            let test = by_name(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(test.length().operations, ops, "{name} operation count");
            assert_eq!(test.length().reads, reads, "{name} read count");
        }
    }

    #[test]
    fn all_are_bit_oriented_and_start_with_initialization() {
        for test in all() {
            assert!(test.is_bit_oriented(), "{} not bit oriented", test.name());
            assert!(
                test.elements()[0].is_write_only(),
                "{} does not start with an initialization element",
                test.name()
            );
        }
    }

    #[test]
    fn march_c_minus_matches_paper_notation() {
        assert_eq!(
            march_c_minus().to_string(),
            "⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)"
        );
    }

    #[test]
    fn march_u_matches_paper_notation() {
        assert_eq!(
            march_u().to_string(),
            "⇕(w0); ⇑(r0,w1,r1,w0); ⇑(r0,w1); ⇓(r1,w0,r0,w1); ⇓(r1,w0)"
        );
    }

    #[test]
    fn lookup_by_name_is_forgiving() {
        assert_eq!(by_name("march c-").unwrap().name(), "March C-");
        assert_eq!(by_name("MARCHC-").unwrap().name(), "March C-");
        assert_eq!(by_name("mats+").unwrap().name(), "MATS+");
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn library_has_unique_names() {
        let names: Vec<String> = all().iter().map(|t| t.name().to_string()).collect();
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(names.len(), unique.len());
    }
}
