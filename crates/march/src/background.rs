//! Standard data backgrounds for word-oriented march testing.
//!
//! A word-oriented memory read or write transfers a whole *data background*
//! at once. To excite coupling faults between every pair of bits inside a
//! word, the classical choice is the `⌈log₂ W⌉ + 1` standard backgrounds
//! (van de Goor): the all-0 background plus the patterns
//! `D₁ = 0101…`, `D₂ = 0011…`, `D₃ = 00001111…`, and so on — `D_k` groups
//! bits into runs of length `2^(k-1)`.
//!
//! The DATE 2005 paper uses exactly these `D_k` patterns in its ATMarch
//! elements: for 8-bit words, `D₁ = 01010101`, `D₂ = 00110011`,
//! `D₃ = 00001111` (Section 4).

use twm_mem::Word;

use crate::MarchError;

/// Number of `D_k` backgrounds for a `width`-bit word: `⌈log₂ width⌉`.
///
/// A 1-bit (bit-oriented) word needs no background beyond all-0/all-1, so
/// the count is zero.
#[must_use]
pub fn background_degree(width: usize) -> usize {
    if width <= 1 {
        0
    } else {
        (usize::BITS - (width - 1).leading_zeros()) as usize
    }
}

/// Total number of standard backgrounds (all-0 plus every `D_k`).
#[must_use]
pub fn standard_background_count(width: usize) -> usize {
    background_degree(width) + 1
}

/// The `D_k` data background for a `width`-bit word.
///
/// Bit `i` (0 = least-significant) of `D_k` is 1 exactly when
/// `⌊i / 2^(k-1)⌋` is even, which produces the alternating run patterns
/// `0101…`, `0011…`, `00001111…` used by the paper.
///
/// # Errors
///
/// Returns [`MarchError::InvalidBackground`] when `k` is zero or larger than
/// [`background_degree`]`(width)`, and [`MarchError::InvalidWidth`] for an
/// unsupported word width.
///
/// ```
/// use twm_march::background::data_background;
///
/// # fn main() -> Result<(), twm_march::MarchError> {
/// assert_eq!(data_background(8, 1)?.to_binary_string(), "01010101");
/// assert_eq!(data_background(8, 2)?.to_binary_string(), "00110011");
/// assert_eq!(data_background(8, 3)?.to_binary_string(), "00001111");
/// # Ok(())
/// # }
/// ```
pub fn data_background(width: usize, k: usize) -> Result<Word, MarchError> {
    if width == 0 || width > twm_mem::MAX_WORD_WIDTH {
        return Err(MarchError::InvalidWidth { width });
    }
    let degree = background_degree(width);
    if k == 0 || k > degree {
        return Err(MarchError::InvalidBackground { index: k, width });
    }
    let run = 1usize << (k - 1);
    let bits = (0..width).map(|i| (i / run).is_multiple_of(2));
    Word::from_bit_iter(bits).map_err(|_| MarchError::InvalidWidth { width })
}

/// All standard backgrounds for a `width`-bit word: the all-0 background
/// followed by `D₁ … D_degree`.
///
/// # Errors
///
/// Returns [`MarchError::InvalidWidth`] for an unsupported word width.
pub fn standard_backgrounds(width: usize) -> Result<Vec<Word>, MarchError> {
    if width == 0 || width > twm_mem::MAX_WORD_WIDTH {
        return Err(MarchError::InvalidWidth { width });
    }
    let mut backgrounds = vec![Word::zeros(width)];
    for k in 1..=background_degree(width) {
        backgrounds.push(data_background(width, k)?);
    }
    Ok(backgrounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_matches_log2() {
        assert_eq!(background_degree(1), 0);
        assert_eq!(background_degree(2), 1);
        assert_eq!(background_degree(4), 2);
        assert_eq!(background_degree(8), 3);
        assert_eq!(background_degree(16), 4);
        assert_eq!(background_degree(32), 5);
        assert_eq!(background_degree(64), 6);
        assert_eq!(background_degree(128), 7);
        // Non-power-of-two widths round up.
        assert_eq!(background_degree(6), 3);
        assert_eq!(background_degree(12), 4);
    }

    #[test]
    fn paper_example_backgrounds_for_8_bit_words() {
        assert_eq!(data_background(8, 1).unwrap().to_bits(), 0b0101_0101);
        assert_eq!(data_background(8, 2).unwrap().to_bits(), 0b0011_0011);
        assert_eq!(data_background(8, 3).unwrap().to_bits(), 0b0000_1111);
    }

    #[test]
    fn four_bit_words_match_section_3_example() {
        // Section 3 of the paper uses backgrounds 0000, 0101, 0011 for 4-bit
        // words.
        let all = standard_backgrounds(4).unwrap();
        let strings: Vec<String> = all.iter().map(|w| w.to_binary_string()).collect();
        assert_eq!(strings, vec!["0000", "0101", "0011"]);
    }

    #[test]
    fn every_pair_of_bits_is_separated_by_some_background() {
        // The defining property of the standard backgrounds: for any two bit
        // positions there exists a background in which they differ.
        for width in [2usize, 4, 8, 16, 32, 64] {
            let backgrounds = standard_backgrounds(width).unwrap();
            for i in 0..width {
                for j in 0..width {
                    if i == j {
                        continue;
                    }
                    let separated = backgrounds.iter().any(|b| b.bit(i) != b.bit(j));
                    assert!(
                        separated,
                        "bits {i} and {j} never separated at width {width}"
                    );
                }
            }
        }
    }

    #[test]
    fn invalid_requests_are_rejected() {
        assert!(matches!(
            data_background(8, 0),
            Err(MarchError::InvalidBackground { .. })
        ));
        assert!(matches!(
            data_background(8, 4),
            Err(MarchError::InvalidBackground { .. })
        ));
        assert!(matches!(
            data_background(0, 1),
            Err(MarchError::InvalidWidth { .. })
        ));
        assert!(matches!(
            data_background(1, 1),
            Err(MarchError::InvalidBackground { .. })
        ));
    }

    #[test]
    fn counts_are_consistent() {
        for width in [1usize, 2, 8, 32, 128] {
            assert_eq!(
                standard_backgrounds(width).unwrap().len(),
                standard_background_count(width)
            );
        }
    }
}
