use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{AddressOrder, Operation, TestLength};

/// A march element: a sequence of operations applied to every address in a
/// prescribed order before moving to the next address.
///
/// In march notation an element is written, for example, `⇑(r0,w1)`: sweep
/// all addresses ascending, and at each address read expecting 0 then
/// write 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarchElement {
    /// Address sweep order.
    pub order: AddressOrder,
    /// Operations applied at each address, in order.
    pub ops: Vec<Operation>,
}

impl MarchElement {
    /// Creates a march element.
    #[must_use]
    pub fn new(order: AddressOrder, ops: Vec<Operation>) -> Self {
        Self { order, ops }
    }

    /// Creates an ascending (`⇑`) element.
    #[must_use]
    pub fn ascending(ops: Vec<Operation>) -> Self {
        Self::new(AddressOrder::Ascending, ops)
    }

    /// Creates a descending (`⇓`) element.
    #[must_use]
    pub fn descending(ops: Vec<Operation>) -> Self {
        Self::new(AddressOrder::Descending, ops)
    }

    /// Creates an order-independent (`⇕`) element.
    #[must_use]
    pub fn any_order(ops: Vec<Operation>) -> Self {
        Self::new(AddressOrder::Any, ops)
    }

    /// Number of operations per address.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the element has no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The first operation, if any.
    #[must_use]
    pub fn first_op(&self) -> Option<&Operation> {
        self.ops.first()
    }

    /// The last operation, if any.
    #[must_use]
    pub fn last_op(&self) -> Option<&Operation> {
        self.ops.last()
    }

    /// Per-address operation counts of this element.
    #[must_use]
    pub fn length(&self) -> TestLength {
        let reads = self.ops.iter().filter(|op| op.is_read()).count();
        let writes = self.ops.iter().filter(|op| op.is_write()).count();
        TestLength::new(reads, writes)
    }

    /// Whether every operation is a write (an initialization-style element).
    #[must_use]
    pub fn is_write_only(&self) -> bool {
        !self.is_empty() && self.ops.iter().all(|op| op.is_write())
    }

    /// Whether every operation is a read.
    #[must_use]
    pub fn is_read_only(&self) -> bool {
        !self.is_empty() && self.ops.iter().all(|op| op.is_read())
    }

    /// A copy of the element containing only its read operations (used to
    /// derive signature-prediction tests). Returns `None` if the element has
    /// no reads.
    #[must_use]
    pub fn reads_only(&self) -> Option<Self> {
        let reads: Vec<Operation> = self.ops.iter().copied().filter(|op| op.is_read()).collect();
        if reads.is_empty() {
            None
        } else {
            Some(Self::new(self.order, reads))
        }
    }
}

impl fmt::Display for MarchElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.order.symbol())?;
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{op}")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Operation as Op;

    #[test]
    fn length_counts_reads_and_writes() {
        let element = MarchElement::ascending(vec![Op::r0(), Op::w1(), Op::r1(), Op::w0()]);
        let len = element.length();
        assert_eq!(len.reads, 2);
        assert_eq!(len.writes, 2);
        assert_eq!(len.operations, 4);
        assert_eq!(element.len(), 4);
        assert!(!element.is_empty());
    }

    #[test]
    fn classification_helpers() {
        let init = MarchElement::any_order(vec![Op::w0()]);
        assert!(init.is_write_only());
        assert!(!init.is_read_only());

        let check = MarchElement::any_order(vec![Op::r0()]);
        assert!(check.is_read_only());

        let mixed = MarchElement::ascending(vec![Op::r0(), Op::w1()]);
        assert!(!mixed.is_write_only());
        assert!(!mixed.is_read_only());
        assert_eq!(mixed.first_op(), Some(&Op::r0()));
        assert_eq!(mixed.last_op(), Some(&Op::w1()));
    }

    #[test]
    fn reads_only_projection() {
        let element = MarchElement::descending(vec![Op::r1(), Op::w0(), Op::r0(), Op::w1()]);
        let reads = element.reads_only().unwrap();
        assert_eq!(reads.ops, vec![Op::r1(), Op::r0()]);
        assert_eq!(reads.order, AddressOrder::Descending);

        let writes = MarchElement::any_order(vec![Op::w0()]);
        assert!(writes.reads_only().is_none());
    }

    #[test]
    fn display_matches_notation() {
        let element = MarchElement::ascending(vec![Op::r0(), Op::w1()]);
        assert_eq!(element.to_string(), "⇑(r0,w1)");
        let element = MarchElement::any_order(vec![Op::w0()]);
        assert_eq!(element.to_string(), "⇕(w0)");
        let element =
            MarchElement::descending(vec![Op::read_content_complement(), Op::write_content()]);
        assert_eq!(element.to_string(), "⇓(r~c,wc)");
    }
}
