use std::error::Error;
use std::fmt;

/// Errors produced by the march-test framework.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MarchError {
    /// A march test must contain at least one element.
    EmptyTest,
    /// A march element must contain at least one operation.
    EmptyElement {
        /// Index of the offending element.
        element: usize,
    },
    /// A background index is out of range for the word width.
    InvalidBackground {
        /// The requested background index `k`.
        index: usize,
        /// The word width the background was requested for.
        width: usize,
    },
    /// The word width is invalid (zero or above the supported maximum).
    InvalidWidth {
        /// The requested width.
        width: usize,
    },
    /// A march notation string could not be parsed.
    Parse {
        /// Byte offset in the input where parsing failed.
        position: usize,
        /// Description of what was expected.
        message: String,
    },
    /// An operation mixes word-oriented data with a bit-oriented context.
    NotBitOriented {
        /// Description of the offending operation.
        operation: String,
    },
}

impl fmt::Display for MarchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarchError::EmptyTest => write!(f, "march test contains no elements"),
            MarchError::EmptyElement { element } => {
                write!(f, "march element {element} contains no operations")
            }
            MarchError::InvalidBackground { index, width } => write!(
                f,
                "background index {index} is out of range for {width}-bit words"
            ),
            MarchError::InvalidWidth { width } => write!(f, "invalid word width {width}"),
            MarchError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            MarchError::NotBitOriented { operation } => {
                write!(f, "operation {operation} is not bit-oriented")
            }
        }
    }
}

impl Error for MarchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let errors = vec![
            MarchError::EmptyTest,
            MarchError::EmptyElement { element: 2 },
            MarchError::InvalidBackground { index: 9, width: 8 },
            MarchError::InvalidWidth { width: 0 },
            MarchError::Parse {
                position: 4,
                message: "expected operation".into(),
            },
            MarchError::NotBitOriented {
                operation: "wD1".into(),
            },
        ];
        for err in errors {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_well_behaved() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<MarchError>();
    }
}
