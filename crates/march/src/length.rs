use std::ops::Add;

use serde::{Deserialize, Serialize};

/// Operation counts of a march test, per addressed word (or cell).
///
/// Multiplying by the number of words gives the total test length; the
/// paper's complexity expressions (`TCM`, `TCP`) are exactly these per-word
/// counts times `N`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TestLength {
    /// Total number of operations per word.
    pub operations: usize,
    /// Number of read operations per word.
    pub reads: usize,
    /// Number of write operations per word.
    pub writes: usize,
}

impl TestLength {
    /// Creates a length record; `operations` must equal `reads + writes`.
    ///
    /// # Panics
    ///
    /// Panics if the counts are inconsistent.
    #[must_use]
    pub fn new(reads: usize, writes: usize) -> Self {
        Self {
            operations: reads + writes,
            reads,
            writes,
        }
    }

    /// Total operations over an `n`-word memory.
    #[must_use]
    pub fn total_operations(&self, n: usize) -> usize {
        self.operations * n
    }
}

impl Add for TestLength {
    type Output = TestLength;

    fn add(self, rhs: TestLength) -> TestLength {
        TestLength {
            operations: self.operations + rhs.operations,
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sums_components() {
        let len = TestLength::new(5, 5);
        assert_eq!(len.operations, 10);
        assert_eq!(len.total_operations(1024), 10 * 1024);
    }

    #[test]
    fn addition_adds_componentwise() {
        let a = TestLength::new(2, 3);
        let b = TestLength::new(1, 1);
        let sum = a + b;
        assert_eq!(sum.reads, 3);
        assert_eq!(sum.writes, 4);
        assert_eq!(sum.operations, 7);
    }
}
