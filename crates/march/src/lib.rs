//! # twm-march — march memory-test framework
//!
//! March tests are the standard functional test algorithms for random-access
//! memories: a finite sequence of *march elements*, each applying a fixed
//! sequence of read/write operations to every address in a prescribed order.
//! This crate provides:
//!
//! * the data model — [`Operation`], [`DataSpec`], [`DataPattern`],
//!   [`MarchElement`], [`MarchTest`] — rich enough to express bit-oriented
//!   tests, word-oriented tests with data backgrounds, and *transparent*
//!   tests whose data are XOR combinations of each word's initial content;
//! * the classical algorithm library ([`algorithms`]): MATS+, March X, Y,
//!   C−, C, A, B, U, LR, SS — March C− and March U are the worked examples
//!   of the DATE 2005 paper this workspace reproduces;
//! * the standard *data backgrounds* `D_k` ([`background`]) used for
//!   word-oriented testing (`0101…`, `0011…`, `00001111…`, …);
//! * march notation formatting and a parser for bit-oriented march strings
//!   ([`notation`]).
//!
//! ```
//! use twm_march::algorithms::march_c_minus;
//!
//! let march = march_c_minus();
//! assert_eq!(march.to_string(),
//!     "⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)");
//! assert_eq!(march.length().operations, 10);
//! assert_eq!(march.length().reads, 5);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithms;
pub mod background;
mod element;
mod error;
mod length;
pub mod notation;
mod op;
mod test;

pub use element::MarchElement;
pub use error::MarchError;
pub use length::TestLength;
pub use op::{DataPattern, DataSpec, OpKind, Operation};
pub use test::MarchTest;

// The address order type is shared with the memory substrate.
pub use twm_mem::AddressOrder;
