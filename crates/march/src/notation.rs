//! Parsing of bit-oriented march notation.
//!
//! The framework prints march tests with the conventional arrows
//! (`⇑`, `⇓`, `⇕`); the parser additionally accepts the ASCII spellings
//! `u` / `up`, `d` / `down` and `b` / `any`. Operations are the bit-oriented
//! `r0`, `r1`, `w0`, `w1`. Elements are separated by `;`.
//!
//! ```
//! use twm_march::notation::parse_march;
//!
//! # fn main() -> Result<(), twm_march::MarchError> {
//! let march = parse_march("March C-", "⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)")?;
//! assert_eq!(march.length().operations, 10);
//!
//! // ASCII spelling of the same test.
//! let ascii = parse_march("March C-", "b(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1,w0); b(r0)")?;
//! assert_eq!(ascii, march);
//! # Ok(())
//! # }
//! ```

use crate::{AddressOrder, MarchElement, MarchError, MarchTest, Operation};

/// Parses a bit-oriented march test from its textual notation.
///
/// # Errors
///
/// Returns [`MarchError::Parse`] describing the first offending position if
/// the input is not valid bit-oriented march notation, or the structural
/// errors of [`MarchTest::new`] for empty tests/elements.
pub fn parse_march(name: &str, input: &str) -> Result<MarchTest, MarchError> {
    let mut elements = Vec::new();
    for raw_element in input.split(';') {
        let trimmed = raw_element.trim();
        if trimmed.is_empty() {
            continue;
        }
        let position = offset_of(input, raw_element);
        elements.push(parse_element(trimmed, position)?);
    }
    MarchTest::new(name, elements)
}

fn offset_of(input: &str, part: &str) -> usize {
    // `part` is a subslice of `input`, so pointer arithmetic is safe here.
    (part.as_ptr() as usize).saturating_sub(input.as_ptr() as usize)
}

fn parse_element(text: &str, base: usize) -> Result<MarchElement, MarchError> {
    let open = text.find('(').ok_or_else(|| MarchError::Parse {
        position: base,
        message: "expected '(' after address order".into(),
    })?;
    if !text.ends_with(')') {
        return Err(MarchError::Parse {
            position: base + text.len(),
            message: "expected ')' at end of march element".into(),
        });
    }
    let order = parse_order(text[..open].trim(), base)?;
    let body = &text[open + 1..text.len() - 1];
    let mut ops = Vec::new();
    for raw_op in body.split(',') {
        let op = raw_op.trim();
        if op.is_empty() {
            continue;
        }
        ops.push(parse_operation(op, base + open + 1)?);
    }
    Ok(MarchElement::new(order, ops))
}

fn parse_order(text: &str, position: usize) -> Result<AddressOrder, MarchError> {
    match text {
        "⇑" | "u" | "up" | "asc" | "^" => Ok(AddressOrder::Ascending),
        "⇓" | "d" | "down" | "desc" | "v" => Ok(AddressOrder::Descending),
        "⇕" | "b" | "any" | "*" | "" => Ok(AddressOrder::Any),
        other => Err(MarchError::Parse {
            position,
            message: format!("unknown address order '{other}'"),
        }),
    }
}

fn parse_operation(text: &str, position: usize) -> Result<Operation, MarchError> {
    match text {
        "r0" => Ok(Operation::r0()),
        "r1" => Ok(Operation::r1()),
        "w0" => Ok(Operation::w0()),
        "w1" => Ok(Operation::w1()),
        other => Err(MarchError::Parse {
            position,
            message: format!("unknown operation '{other}' (expected r0, r1, w0 or w1)"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms;

    #[test]
    fn parses_march_c_minus_in_unicode_notation() {
        let parsed = parse_march(
            "March C-",
            "⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)",
        )
        .unwrap();
        assert_eq!(parsed, algorithms::march_c_minus());
    }

    #[test]
    fn parses_ascii_notation_and_whitespace_variants() {
        let parsed = parse_march("MATS+", "  b ( w0 ) ;  up(r0, w1); down ( r1 , w0 ) ").unwrap();
        assert_eq!(parsed, algorithms::mats_plus());
    }

    #[test]
    fn round_trips_every_library_algorithm() {
        for march in algorithms::all() {
            let text = march.to_string();
            let parsed = parse_march(march.name(), &text).unwrap();
            assert_eq!(parsed, march, "round trip failed for {}", march.name());
        }
    }

    #[test]
    fn reports_unknown_order() {
        let err = parse_march("x", "q(r0)").unwrap_err();
        assert!(matches!(err, MarchError::Parse { .. }));
        assert!(err.to_string().contains("unknown address order"));
    }

    #[test]
    fn reports_unknown_operation_and_missing_parentheses() {
        let err = parse_march("x", "⇑(r2)").unwrap_err();
        assert!(err.to_string().contains("unknown operation"));

        let err = parse_march("x", "⇑ r0").unwrap_err();
        assert!(err.to_string().contains("expected '('"));

        let err = parse_march("x", "⇑(r0").unwrap_err();
        assert!(err.to_string().contains("expected ')'"));
    }

    #[test]
    fn empty_input_is_an_empty_test() {
        assert_eq!(parse_march("x", "  "), Err(MarchError::EmptyTest));
        assert_eq!(
            parse_march("x", "⇑()"),
            Err(MarchError::EmptyElement { element: 0 })
        );
    }
}
