use std::fmt;

use serde::{Deserialize, Serialize};

use twm_mem::Word;

use crate::{background, MarchError};

/// Whether a march operation reads or writes the addressed word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Read the addressed word and compare against the expected data.
    Read,
    /// Write the specified data to the addressed word.
    Write,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Read => f.write_str("r"),
            OpKind::Write => f.write_str("w"),
        }
    }
}

/// A data pattern independent of any particular word's content.
///
/// Patterns are resolved to concrete [`Word`] values for a given word width
/// at execution time, so the same march description can drive memories of
/// different widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataPattern {
    /// The all-zero pattern (logical `0` for a bit-oriented test).
    Zeros,
    /// The all-one pattern (logical `1` for a bit-oriented test).
    Ones,
    /// The standard data background `D_k` (`0101…`, `0011…`, …).
    Background(usize),
    /// The complement of the standard data background `D_k`.
    BackgroundComplement(usize),
    /// A literal pattern; the low `width` bits are used.
    Custom(u128),
}

impl DataPattern {
    /// Resolves the pattern for the given word width.
    ///
    /// # Errors
    ///
    /// Returns [`MarchError::InvalidBackground`] for an out-of-range
    /// background index or [`MarchError::InvalidWidth`] for an unsupported
    /// word width.
    pub fn resolve(self, width: usize) -> Result<Word, MarchError> {
        match self {
            DataPattern::Zeros => {
                Word::from_bits(0, width).map_err(|_| MarchError::InvalidWidth { width })
            }
            DataPattern::Ones => {
                Word::from_bits(u128::MAX, width).map_err(|_| MarchError::InvalidWidth { width })
            }
            DataPattern::Background(k) => background::data_background(width, k),
            DataPattern::BackgroundComplement(k) => {
                background::data_background(width, k).map(Word::complement)
            }
            DataPattern::Custom(bits) => {
                Word::from_bits(bits, width).map_err(|_| MarchError::InvalidWidth { width })
            }
        }
    }

    /// The complementary pattern, where a closed form exists.
    ///
    /// `Custom` patterns return `None` because their width is not known until
    /// resolution.
    #[must_use]
    pub fn complemented(self) -> Option<Self> {
        match self {
            DataPattern::Zeros => Some(DataPattern::Ones),
            DataPattern::Ones => Some(DataPattern::Zeros),
            DataPattern::Background(k) => Some(DataPattern::BackgroundComplement(k)),
            DataPattern::BackgroundComplement(k) => Some(DataPattern::Background(k)),
            DataPattern::Custom(_) => None,
        }
    }

    /// Whether the pattern is expressible in a bit-oriented march test
    /// (only the all-0 and all-1 patterns are).
    #[must_use]
    pub fn is_bit_oriented(self) -> bool {
        matches!(self, DataPattern::Zeros | DataPattern::Ones)
    }
}

impl fmt::Display for DataPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataPattern::Zeros => f.write_str("0"),
            DataPattern::Ones => f.write_str("1"),
            DataPattern::Background(k) => write!(f, "D{k}"),
            DataPattern::BackgroundComplement(k) => write!(f, "~D{k}"),
            DataPattern::Custom(bits) => write!(f, "#{bits:x}"),
        }
    }
}

/// The data carried by a march operation.
///
/// A *literal* specification is the ordinary (non-transparent) case: the
/// pattern itself is written or expected. A *transparent* specification is
/// interpreted relative to each word's initial content `c`: the operation
/// writes or expects `c ⊕ pattern`, which is how transparent march tests
/// preserve the memory content (Nicolaidis' notation `w c⊕a`, `r c⊕a`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataSpec {
    /// Ordinary data: the pattern itself.
    Literal(DataPattern),
    /// Transparent data: the word's initial content XOR the pattern.
    TransparentXor(DataPattern),
}

impl DataSpec {
    /// The underlying pattern.
    #[must_use]
    pub fn pattern(self) -> DataPattern {
        match self {
            DataSpec::Literal(p) | DataSpec::TransparentXor(p) => p,
        }
    }

    /// Whether the specification is transparent (relative to initial
    /// content).
    #[must_use]
    pub fn is_transparent(self) -> bool {
        matches!(self, DataSpec::TransparentXor(_))
    }

    /// Resolves the specification to a concrete word value.
    ///
    /// `initial` is the word's initial content, used only by transparent
    /// specifications.
    ///
    /// # Errors
    ///
    /// Returns an error if the pattern cannot be resolved for the width of
    /// `initial`.
    pub fn resolve(self, initial: Word) -> Result<Word, MarchError> {
        let width = initial.width();
        match self {
            DataSpec::Literal(p) => p.resolve(width),
            DataSpec::TransparentXor(p) => Ok(initial ^ p.resolve(width)?),
        }
    }

    /// The complementary data specification (literal stays literal,
    /// transparent stays transparent), where a closed form exists.
    #[must_use]
    pub fn complemented(self) -> Option<Self> {
        match self {
            DataSpec::Literal(p) => p.complemented().map(DataSpec::Literal),
            DataSpec::TransparentXor(p) => p.complemented().map(DataSpec::TransparentXor),
        }
    }
}

impl fmt::Display for DataSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataSpec::Literal(p) => write!(f, "{p}"),
            DataSpec::TransparentXor(DataPattern::Zeros) => f.write_str("c"),
            DataSpec::TransparentXor(DataPattern::Ones) => f.write_str("~c"),
            DataSpec::TransparentXor(p) => write!(f, "c^{p}"),
        }
    }
}

/// A single march operation: a read or write with its data specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Operation {
    /// Whether the operation reads or writes.
    pub kind: OpKind,
    /// The data written, or expected on a read.
    pub data: DataSpec,
}

impl Operation {
    /// Creates a read operation expecting `data`.
    #[must_use]
    pub fn read(data: DataSpec) -> Self {
        Self {
            kind: OpKind::Read,
            data,
        }
    }

    /// Creates a write operation writing `data`.
    #[must_use]
    pub fn write(data: DataSpec) -> Self {
        Self {
            kind: OpKind::Write,
            data,
        }
    }

    /// Bit-oriented `r0`: read expecting 0.
    #[must_use]
    pub fn r0() -> Self {
        Self::read(DataSpec::Literal(DataPattern::Zeros))
    }

    /// Bit-oriented `r1`: read expecting 1.
    #[must_use]
    pub fn r1() -> Self {
        Self::read(DataSpec::Literal(DataPattern::Ones))
    }

    /// Bit-oriented `w0`: write 0.
    #[must_use]
    pub fn w0() -> Self {
        Self::write(DataSpec::Literal(DataPattern::Zeros))
    }

    /// Bit-oriented `w1`: write 1.
    #[must_use]
    pub fn w1() -> Self {
        Self::write(DataSpec::Literal(DataPattern::Ones))
    }

    /// Transparent `r c`: read expecting the word's initial content.
    #[must_use]
    pub fn read_content() -> Self {
        Self::read(DataSpec::TransparentXor(DataPattern::Zeros))
    }

    /// Transparent `r ~c`: read expecting the complement of the initial
    /// content.
    #[must_use]
    pub fn read_content_complement() -> Self {
        Self::read(DataSpec::TransparentXor(DataPattern::Ones))
    }

    /// Transparent `w c`: write back the word's initial content.
    #[must_use]
    pub fn write_content() -> Self {
        Self::write(DataSpec::TransparentXor(DataPattern::Zeros))
    }

    /// Transparent `w ~c`: write the complement of the initial content.
    #[must_use]
    pub fn write_content_complement() -> Self {
        Self::write(DataSpec::TransparentXor(DataPattern::Ones))
    }

    /// Whether this is a read.
    #[must_use]
    pub fn is_read(self) -> bool {
        self.kind == OpKind::Read
    }

    /// Whether this is a write.
    #[must_use]
    pub fn is_write(self) -> bool {
        self.kind == OpKind::Write
    }

    /// Whether the operation belongs to a plain bit-oriented march test
    /// (literal all-0/all-1 data).
    #[must_use]
    pub fn is_bit_oriented(self) -> bool {
        matches!(self.data, DataSpec::Literal(p) if p.is_bit_oriented())
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.kind, self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_resolution_for_common_cases() {
        assert!(DataPattern::Zeros.resolve(8).unwrap().is_zero());
        assert!(DataPattern::Ones.resolve(8).unwrap().is_ones());
        assert_eq!(
            DataPattern::Background(1).resolve(8).unwrap().to_bits(),
            0b0101_0101
        );
        assert_eq!(
            DataPattern::BackgroundComplement(1)
                .resolve(8)
                .unwrap()
                .to_bits(),
            0b1010_1010
        );
        assert_eq!(
            DataPattern::Custom(0xAB).resolve(8).unwrap().to_bits(),
            0xAB
        );
        assert!(DataPattern::Background(5).resolve(8).is_err());
    }

    #[test]
    fn pattern_complementation() {
        assert_eq!(DataPattern::Zeros.complemented(), Some(DataPattern::Ones));
        assert_eq!(
            DataPattern::Background(2).complemented(),
            Some(DataPattern::BackgroundComplement(2))
        );
        assert_eq!(DataPattern::Custom(3).complemented(), None);
    }

    #[test]
    fn literal_and_transparent_resolution() {
        let initial = Word::from_bits(0b1100_1010, 8).unwrap();
        let literal = DataSpec::Literal(DataPattern::Ones);
        assert!(literal.resolve(initial).unwrap().is_ones());

        let content = DataSpec::TransparentXor(DataPattern::Zeros);
        assert_eq!(content.resolve(initial).unwrap(), initial);

        let complement = DataSpec::TransparentXor(DataPattern::Ones);
        assert_eq!(complement.resolve(initial).unwrap(), !initial);

        let xor_bg = DataSpec::TransparentXor(DataPattern::Background(1));
        assert_eq!(
            xor_bg.resolve(initial).unwrap().to_bits(),
            0b1100_1010 ^ 0b0101_0101
        );
    }

    #[test]
    fn operation_constructors_and_predicates() {
        assert!(Operation::r0().is_read());
        assert!(Operation::w1().is_write());
        assert!(Operation::r0().is_bit_oriented());
        assert!(Operation::w1().is_bit_oriented());
        assert!(!Operation::read_content().is_bit_oriented());
        assert!(Operation::read_content().data.is_transparent());
        assert!(!Operation::r0().data.is_transparent());
    }

    #[test]
    fn display_matches_march_notation() {
        assert_eq!(Operation::r0().to_string(), "r0");
        assert_eq!(Operation::w1().to_string(), "w1");
        assert_eq!(Operation::read_content().to_string(), "rc");
        assert_eq!(Operation::write_content_complement().to_string(), "w~c");
        let op = Operation::write(DataSpec::TransparentXor(DataPattern::Background(2)));
        assert_eq!(op.to_string(), "wc^D2");
        let op = Operation::read(DataSpec::Literal(DataPattern::Background(3)));
        assert_eq!(op.to_string(), "rD3");
    }

    #[test]
    fn spec_complement_round_trip() {
        let spec = DataSpec::TransparentXor(DataPattern::Background(1));
        assert_eq!(spec.complemented().unwrap().complemented().unwrap(), spec);
    }
}
