use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{MarchElement, MarchError, TestLength};

/// A complete march test: a named, ordered sequence of march elements.
///
/// ```
/// use twm_march::{MarchTest, MarchElement, Operation};
///
/// # fn main() -> Result<(), twm_march::MarchError> {
/// let mats_plus = MarchTest::new(
///     "MATS+",
///     vec![
///         MarchElement::any_order(vec![Operation::w0()]),
///         MarchElement::ascending(vec![Operation::r0(), Operation::w1()]),
///         MarchElement::descending(vec![Operation::r1(), Operation::w0()]),
///     ],
/// )?;
/// assert_eq!(mats_plus.length().operations, 5);
/// assert_eq!(mats_plus.to_string(), "⇕(w0); ⇑(r0,w1); ⇓(r1,w0)");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarchTest {
    name: String,
    elements: Vec<MarchElement>,
}

impl MarchTest {
    /// Creates a march test from its elements.
    ///
    /// # Errors
    ///
    /// Returns [`MarchError::EmptyTest`] if no elements are given, or
    /// [`MarchError::EmptyElement`] if any element has no operations.
    pub fn new<S: Into<String>>(name: S, elements: Vec<MarchElement>) -> Result<Self, MarchError> {
        if elements.is_empty() {
            return Err(MarchError::EmptyTest);
        }
        for (index, element) in elements.iter().enumerate() {
            if element.is_empty() {
                return Err(MarchError::EmptyElement { element: index });
            }
        }
        Ok(Self {
            name: name.into(),
            elements,
        })
    }

    /// The test name (for example `"March C-"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns a copy of the test under a different name.
    #[must_use]
    pub fn renamed<S: Into<String>>(&self, name: S) -> Self {
        Self {
            name: name.into(),
            elements: self.elements.clone(),
        }
    }

    /// The march elements, in order.
    #[must_use]
    pub fn elements(&self) -> &[MarchElement] {
        &self.elements
    }

    /// Number of march elements.
    #[must_use]
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Per-word operation counts (the paper's `M` operations and `Q` reads
    /// are `length().operations` and `length().reads`).
    #[must_use]
    pub fn length(&self) -> TestLength {
        self.elements
            .iter()
            .map(MarchElement::length)
            .fold(TestLength::default(), |acc, len| acc + len)
    }

    /// Operations applied per addressed word — the per-word test complexity.
    #[must_use]
    pub fn operations_per_word(&self) -> usize {
        self.length().operations
    }

    /// Total operations over an `n`-word memory.
    #[must_use]
    pub fn total_operations(&self, n: usize) -> usize {
        self.length().total_operations(n)
    }

    /// Whether every operation uses plain bit-oriented data (literal all-0 /
    /// all-1), i.e. the test is a classical bit-oriented march test.
    #[must_use]
    pub fn is_bit_oriented(&self) -> bool {
        self.elements
            .iter()
            .flat_map(|e| e.ops.iter())
            .all(|op| op.is_bit_oriented())
    }

    /// Whether every operation's data is transparent (relative to initial
    /// content), i.e. the test never destroys memory content permanently.
    #[must_use]
    pub fn is_transparent(&self) -> bool {
        self.elements
            .iter()
            .flat_map(|e| e.ops.iter())
            .all(|op| op.data.is_transparent())
    }

    /// The read-only projection of the test: every write operation removed
    /// and write-only elements dropped. This is how a signature-prediction
    /// test is derived from a transparent march test (Step 4 of the
    /// transformation rules).
    ///
    /// # Errors
    ///
    /// Returns [`MarchError::EmptyTest`] if the test contains no read
    /// operations at all.
    pub fn reads_only(&self, name: &str) -> Result<Self, MarchError> {
        let elements: Vec<MarchElement> = self
            .elements
            .iter()
            .filter_map(MarchElement::reads_only)
            .collect();
        Self::new(name, elements)
    }

    /// Appends an element, returning the extended test.
    #[must_use]
    pub fn with_element(mut self, element: MarchElement) -> Self {
        self.elements.push(element);
        self
    }

    /// Concatenates another test's elements after this one's.
    #[must_use]
    pub fn concatenated<S: Into<String>>(&self, other: &MarchTest, name: S) -> Self {
        let mut elements = self.elements.clone();
        elements.extend(other.elements.iter().cloned());
        Self {
            name: name.into(),
            elements,
        }
    }
}

impl fmt::Display for MarchTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, element) in self.elements.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{element}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MarchElement as El, Operation as Op};

    fn sample() -> MarchTest {
        MarchTest::new(
            "sample",
            vec![
                El::any_order(vec![Op::w0()]),
                El::ascending(vec![Op::r0(), Op::w1()]),
                El::descending(vec![Op::r1(), Op::w0()]),
                El::any_order(vec![Op::r0()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_shape() {
        assert_eq!(MarchTest::new("x", vec![]), Err(MarchError::EmptyTest));
        assert_eq!(
            MarchTest::new("x", vec![El::ascending(vec![])]),
            Err(MarchError::EmptyElement { element: 0 })
        );
    }

    #[test]
    fn lengths_and_counts() {
        let test = sample();
        assert_eq!(test.element_count(), 4);
        let len = test.length();
        assert_eq!(len.operations, 6);
        assert_eq!(len.reads, 3);
        assert_eq!(len.writes, 3);
        assert_eq!(test.operations_per_word(), 6);
        assert_eq!(test.total_operations(100), 600);
    }

    #[test]
    fn orientation_predicates() {
        let test = sample();
        assert!(test.is_bit_oriented());
        assert!(!test.is_transparent());

        let transparent = MarchTest::new(
            "t",
            vec![El::ascending(vec![
                Op::read_content(),
                Op::write_content_complement(),
            ])],
        )
        .unwrap();
        assert!(transparent.is_transparent());
        assert!(!transparent.is_bit_oriented());
    }

    #[test]
    fn reads_only_projection_drops_writes_and_empty_elements() {
        let test = sample();
        let reads = test.reads_only("sample reads").unwrap();
        // The write-only initialization element disappears entirely.
        assert_eq!(reads.element_count(), 3);
        assert_eq!(reads.length().writes, 0);
        assert_eq!(reads.length().reads, 3);

        let writes_only = MarchTest::new("w", vec![El::any_order(vec![Op::w0()])]).unwrap();
        assert_eq!(writes_only.reads_only("r"), Err(MarchError::EmptyTest));
    }

    #[test]
    fn display_and_rename() {
        let test = sample();
        assert_eq!(test.to_string(), "⇕(w0); ⇑(r0,w1); ⇓(r1,w0); ⇕(r0)");
        assert_eq!(test.renamed("other").name(), "other");
    }

    #[test]
    fn concatenation_appends_elements() {
        let a = sample();
        let b = MarchTest::new("b", vec![El::any_order(vec![Op::r0()])]).unwrap();
        let joined = a.concatenated(&b, "a+b");
        assert_eq!(joined.element_count(), a.element_count() + 1);
        assert_eq!(joined.name(), "a+b");
        let extended = b.clone().with_element(El::any_order(vec![Op::w1()]));
        assert_eq!(extended.element_count(), 2);
    }
}
