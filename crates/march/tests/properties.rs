//! Property-based tests for the march-test framework.

use proptest::prelude::*;

use twm_march::background::{background_degree, data_background, standard_backgrounds};
use twm_march::notation::parse_march;
use twm_march::{AddressOrder, MarchElement, MarchTest, Operation};

fn arb_bit_op() -> impl Strategy<Value = Operation> {
    prop_oneof![
        Just(Operation::r0()),
        Just(Operation::r1()),
        Just(Operation::w0()),
        Just(Operation::w1()),
    ]
}

fn arb_order() -> impl Strategy<Value = AddressOrder> {
    prop_oneof![
        Just(AddressOrder::Ascending),
        Just(AddressOrder::Descending),
        Just(AddressOrder::Any),
    ]
}

fn arb_march() -> impl Strategy<Value = MarchTest> {
    prop::collection::vec(
        (arb_order(), prop::collection::vec(arb_bit_op(), 1..6)),
        1..8,
    )
    .prop_map(|elements| {
        let elements = elements
            .into_iter()
            .map(|(order, ops)| MarchElement::new(order, ops))
            .collect();
        MarchTest::new("generated", elements).expect("non-empty elements")
    })
}

proptest! {
    /// Printing a bit-oriented march test and parsing it back yields the
    /// same test (notation round trip).
    #[test]
    fn notation_round_trip(march in arb_march()) {
        let text = march.to_string();
        let parsed = parse_march("generated", &text).expect("parse printed notation");
        prop_assert_eq!(parsed, march);
    }

    /// Operation counts always satisfy reads + writes = operations, and the
    /// total over a memory scales linearly.
    #[test]
    fn lengths_are_consistent(march in arb_march(), words in 1usize..10_000) {
        let length = march.length();
        prop_assert_eq!(length.reads + length.writes, length.operations);
        prop_assert_eq!(march.total_operations(words), length.operations * words);
    }

    /// The read-only projection never contains writes, preserves the read
    /// count, and fails exactly when the test has no reads.
    #[test]
    fn reads_only_projection_properties(march in arb_march()) {
        let length = march.length();
        match march.reads_only("projection") {
            Ok(projection) => {
                prop_assert!(length.reads > 0);
                prop_assert_eq!(projection.length().writes, 0);
                prop_assert_eq!(projection.length().reads, length.reads);
            }
            Err(_) => prop_assert_eq!(length.reads, 0),
        }
    }

    /// Every data background is self-inverse under double complement and
    /// has exactly half of its bits set for power-of-two widths.
    #[test]
    fn background_bit_balance(width_exp in 1usize..8, k in 1usize..8) {
        let width = 1usize << width_exp;
        prop_assume!(k <= background_degree(width));
        let background = data_background(width, k).unwrap();
        prop_assert_eq!(background.count_ones(), width / 2);
        prop_assert_eq!(!!background, background);
    }

    /// The standard background set separates every pair of bit positions.
    #[test]
    fn standard_backgrounds_separate_all_pairs(width_exp in 1usize..8) {
        let width = 1usize << width_exp;
        let backgrounds = standard_backgrounds(width).unwrap();
        for i in 0..width {
            for j in (i + 1)..width {
                prop_assert!(
                    backgrounds.iter().any(|b| b.bit(i) != b.bit(j)),
                    "bits {} and {} never separated", i, j
                );
            }
        }
    }
}
