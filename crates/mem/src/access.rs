use crate::{FaultSet, MemError, MemoryConfig, Word};

/// Word-level access surface shared by every memory the BIST engine can
/// drive.
///
/// The march executor, the transparent-session flow and the fault-local
/// detection sweep in `twm-bist` only need four primitives — the shape,
/// counted reads/writes and an uncounted inspection read. Abstracting them
/// behind this trait lets the same execution machinery run on a plain
/// [`crate::FaultyMemory`] *and* on layered memories such as
/// [`crate::RepairableMemory`], whose remap table redirects repaired words
/// to spares, without the hot simulator write path paying for any
/// indirection (each implementor keeps its own concrete fast path).
pub trait MemoryAccess {
    /// The logical memory shape (words × width) accesses are validated
    /// against.
    fn config(&self) -> MemoryConfig;

    /// Reads a word, counting the access.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AddressOutOfRange`] for a bad address.
    fn read_word(&mut self, address: usize) -> Result<Word, MemError>;

    /// Writes a word, applying the implementor's fault/remap semantics and
    /// counting the access.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AddressOutOfRange`] for a bad address or
    /// [`MemError::WidthMismatch`] for a word of the wrong width.
    fn write_word(&mut self, address: usize, data: Word) -> Result<(), MemError>;

    /// Reads a word without counting the access (oracle inspection).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AddressOutOfRange`] for a bad address.
    fn peek_word(&self, address: usize) -> Result<Word, MemError>;

    /// The injected fault set, when the memory exposes one directly.
    ///
    /// Layered memories return `None`: their effective fault behaviour is
    /// not described by a single flat set (a remapped word hides its faults
    /// behind a spare). Consumers must treat `None` as "unknown", not
    /// "fault-free" — it only disables fault-set-derived shortcuts such as
    /// footprint assertions.
    fn fault_set(&self) -> Option<&FaultSet> {
        None
    }

    /// Number of words.
    fn words(&self) -> usize {
        self.config().words()
    }

    /// Word width in bits.
    fn width(&self) -> usize {
        self.config().width()
    }

    /// A copy of the entire logical content.
    fn content(&self) -> Vec<Word> {
        (0..self.words())
            .map(|address| self.peek_word(address).expect("address in range"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BitAddress, Fault, FaultyMemory, MemoryBuilder};

    /// Drives a memory through the trait only, so the test proves the
    /// surface is sufficient for an executor-style consumer.
    fn exercise<M: MemoryAccess>(memory: &mut M) -> (Vec<Word>, Vec<Word>) {
        let before = memory.content();
        for address in 0..memory.words() {
            let word = memory.read_word(address).unwrap();
            memory.write_word(address, !word).unwrap();
        }
        (before, memory.content())
    }

    #[test]
    fn faulty_memory_implements_the_access_surface() {
        let mut memory = MemoryBuilder::new(4, 8)
            .random_content(3)
            .fault(Fault::stuck_at(BitAddress::new(1, 2), true))
            .build()
            .unwrap();
        let via_inherent = memory.content();
        let (before, after) = exercise(&mut memory);
        assert_eq!(before, via_inherent);
        assert_ne!(before, after);
        assert!(MemoryAccess::fault_set(&memory).is_some());
        assert_eq!(MemoryAccess::config(&memory), memory.config());
        assert_eq!(MemoryAccess::words(&memory), 4);
        assert_eq!(MemoryAccess::width(&memory), 8);
        // The stuck cell keeps its value through trait-level writes.
        assert!(memory.peek_word(1).unwrap().bit(2));
    }

    #[test]
    fn trait_and_inherent_accessors_agree() {
        let mut memory = FaultyMemory::fault_free(MemoryConfig::new(3, 4).unwrap());
        memory.fill_random(9);
        let trait_content = MemoryAccess::content(&memory);
        assert_eq!(trait_content, memory.content());
        assert_eq!(
            MemoryAccess::peek_word(&memory, 2).unwrap(),
            memory.peek_word(2).unwrap()
        );
    }
}
