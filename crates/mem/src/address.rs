use std::fmt;

use serde::{Deserialize, Serialize};

/// Address of a single memory cell: a word index plus a bit position within
/// the word.
///
/// Bit 0 is the least-significant bit of the word. For bit-oriented memories
/// (word width 1) the bit position is always 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BitAddress {
    /// Word index within the memory.
    pub word: usize,
    /// Bit position within the word (0 = least-significant).
    pub bit: usize,
}

impl BitAddress {
    /// Creates a cell address from a word index and bit position.
    #[must_use]
    pub fn new(word: usize, bit: usize) -> Self {
        Self { word, bit }
    }

    /// Linear cell index for a memory with `width`-bit words.
    #[must_use]
    pub fn cell_index(self, width: usize) -> CellIndex {
        CellIndex(self.word * width + self.bit)
    }

    /// Whether two cells lie in the same word.
    #[must_use]
    pub fn same_word(self, other: Self) -> bool {
        self.word == other.word
    }
}

impl fmt::Display for BitAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}b{}", self.word, self.bit)
    }
}

/// Linear index of a cell within the whole memory (word-major order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellIndex(pub usize);

impl CellIndex {
    /// Converts a linear cell index back into a word/bit address for a memory
    /// with `width`-bit words.
    #[must_use]
    pub fn to_bit_address(self, width: usize) -> BitAddress {
        BitAddress::new(self.0 / width, self.0 % width)
    }
}

impl fmt::Display for CellIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Address sweep direction of a march element.
///
/// March notation writes these as `⇑` (ascending), `⇓` (descending) and `⇕`
/// (either order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum AddressOrder {
    /// Ascending address order (`⇑`).
    #[default]
    Ascending,
    /// Descending address order (`⇓`).
    Descending,
    /// Either order is acceptable (`⇕`); executors use ascending order.
    Any,
}

impl AddressOrder {
    /// The arrow symbol used in march notation.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            AddressOrder::Ascending => "⇑",
            AddressOrder::Descending => "⇓",
            AddressOrder::Any => "⇕",
        }
    }

    /// The reverse sweep direction (`Any` stays `Any`).
    #[must_use]
    pub fn reversed(self) -> Self {
        match self {
            AddressOrder::Ascending => AddressOrder::Descending,
            AddressOrder::Descending => AddressOrder::Ascending,
            AddressOrder::Any => AddressOrder::Any,
        }
    }
}

impl fmt::Display for AddressOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Iterator over word addresses in a given sweep order.
#[derive(Debug, Clone)]
pub struct AddressSequence {
    next_up: usize,
    next_down: isize,
    order: AddressOrder,
}

impl AddressSequence {
    /// Creates a sweep over `words` addresses in the given order.
    ///
    /// [`AddressOrder::Any`] is executed as an ascending sweep, matching the
    /// common BIST implementation choice.
    #[must_use]
    pub fn new(words: usize, order: AddressOrder) -> Self {
        Self {
            next_up: 0,
            next_down: words as isize - 1,
            order,
        }
    }
}

impl Iterator for AddressSequence {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self.order {
            AddressOrder::Ascending | AddressOrder::Any => {
                if self.next_up as isize > self.next_down {
                    None
                } else {
                    let addr = self.next_up;
                    self.next_up += 1;
                    Some(addr)
                }
            }
            AddressOrder::Descending => {
                if (self.next_up as isize) > self.next_down {
                    None
                } else {
                    let addr = self.next_down as usize;
                    self.next_down -= 1;
                    Some(addr)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_index_round_trips() {
        let addr = BitAddress::new(5, 3);
        let idx = addr.cell_index(8);
        assert_eq!(idx, CellIndex(43));
        assert_eq!(idx.to_bit_address(8), addr);
    }

    #[test]
    fn same_word_detection() {
        assert!(BitAddress::new(2, 0).same_word(BitAddress::new(2, 7)));
        assert!(!BitAddress::new(2, 0).same_word(BitAddress::new(3, 0)));
    }

    #[test]
    fn ascending_sequence_visits_all_addresses_in_order() {
        let seq: Vec<usize> = AddressSequence::new(4, AddressOrder::Ascending).collect();
        assert_eq!(seq, vec![0, 1, 2, 3]);
    }

    #[test]
    fn descending_sequence_is_reversed() {
        let seq: Vec<usize> = AddressSequence::new(4, AddressOrder::Descending).collect();
        assert_eq!(seq, vec![3, 2, 1, 0]);
    }

    #[test]
    fn any_order_runs_ascending() {
        let seq: Vec<usize> = AddressSequence::new(3, AddressOrder::Any).collect();
        assert_eq!(seq, vec![0, 1, 2]);
    }

    #[test]
    fn empty_memory_yields_no_addresses() {
        assert_eq!(AddressSequence::new(0, AddressOrder::Ascending).count(), 0);
        assert_eq!(AddressSequence::new(0, AddressOrder::Descending).count(), 0);
    }

    #[test]
    fn order_symbols_and_reverse() {
        assert_eq!(AddressOrder::Ascending.symbol(), "⇑");
        assert_eq!(AddressOrder::Descending.symbol(), "⇓");
        assert_eq!(AddressOrder::Any.symbol(), "⇕");
        assert_eq!(AddressOrder::Ascending.reversed(), AddressOrder::Descending);
        assert_eq!(AddressOrder::Any.reversed(), AddressOrder::Any);
    }
}
