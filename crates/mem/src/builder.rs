use crate::{Fault, FaultSet, FaultyMemory, MemError, MemoryConfig, Word};

/// Builder for [`FaultyMemory`] instances.
///
/// The builder gathers shape, initial content and injected faults and
/// produces a ready-to-use memory, which is convenient in tests and examples
/// where several aspects vary independently.
///
/// ```
/// use twm_mem::{MemoryBuilder, Fault, BitAddress, Word};
///
/// # fn main() -> Result<(), twm_mem::MemError> {
/// let mem = MemoryBuilder::new(64, 8)
///     .random_content(0xC0FFEE)
///     .fault(Fault::stuck_at(BitAddress::new(10, 2), false))
///     .build()?;
/// assert_eq!(mem.words(), 64);
/// assert_eq!(mem.faults().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MemoryBuilder {
    words: usize,
    width: usize,
    faults: FaultSet,
    content: InitialContent,
}

#[derive(Debug, Clone)]
enum InitialContent {
    Zeros,
    Fill(Word),
    Random(u64),
    Explicit(Vec<Word>),
}

impl MemoryBuilder {
    /// Starts a builder for a memory with `words` words of `width` bits.
    #[must_use]
    pub fn new(words: usize, width: usize) -> Self {
        Self {
            words,
            width,
            faults: FaultSet::new(),
            content: InitialContent::Zeros,
        }
    }

    /// Adds a fault to inject.
    #[must_use]
    pub fn fault(mut self, fault: Fault) -> Self {
        self.faults.insert(fault);
        self
    }

    /// Adds several faults to inject.
    #[must_use]
    pub fn faults<I: IntoIterator<Item = Fault>>(mut self, faults: I) -> Self {
        self.faults.extend(faults);
        self
    }

    /// Initialises every word to the given value.
    #[must_use]
    pub fn filled_with(mut self, word: Word) -> Self {
        self.content = InitialContent::Fill(word);
        self
    }

    /// Initialises the memory with deterministic pseudo-random content.
    #[must_use]
    pub fn random_content(mut self, seed: u64) -> Self {
        self.content = InitialContent::Random(seed);
        self
    }

    /// Initialises the memory with explicit word values.
    #[must_use]
    pub fn content(mut self, words: Vec<Word>) -> Self {
        self.content = InitialContent::Explicit(words);
        self
    }

    /// Builds the memory.
    ///
    /// # Errors
    ///
    /// Returns an error if the shape is invalid, a fault references a cell
    /// outside the memory, or explicit content has the wrong shape.
    pub fn build(self) -> Result<FaultyMemory, MemError> {
        let config = MemoryConfig::new(self.words, self.width)?;
        let mut mem = FaultyMemory::with_faults(config, self.faults)?;
        match self.content {
            InitialContent::Zeros => {}
            InitialContent::Fill(word) => mem.fill(word)?,
            InitialContent::Random(seed) => mem.fill_random(seed),
            InitialContent::Explicit(words) => mem.load(&words)?,
        }
        Ok(mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitAddress;

    #[test]
    fn builds_zeroed_memory_by_default() {
        let mem = MemoryBuilder::new(8, 4).build().unwrap();
        assert!(mem.content().iter().all(|w| w.is_zero()));
    }

    #[test]
    fn builds_filled_and_random_memories() {
        let filled = MemoryBuilder::new(8, 4)
            .filled_with(Word::ones(4))
            .build()
            .unwrap();
        assert!(filled.content().iter().all(|w| w.is_ones()));

        let a = MemoryBuilder::new(8, 4).random_content(5).build().unwrap();
        let b = MemoryBuilder::new(8, 4).random_content(5).build().unwrap();
        assert_eq!(a.content(), b.content());
    }

    #[test]
    fn builds_with_explicit_content_and_faults() {
        let contents = vec![
            Word::zeros(2),
            Word::ones(2),
            Word::from_bits(0b01, 2).unwrap(),
        ];
        let mem = MemoryBuilder::new(3, 2)
            .content(contents.clone())
            .fault(Fault::stuck_at(BitAddress::new(0, 0), true))
            .build()
            .unwrap();
        // Stuck-at is enforced over the loaded content.
        assert!(mem.peek_bit(BitAddress::new(0, 0)).unwrap());
        assert_eq!(mem.content()[1], contents[1]);
        assert_eq!(mem.faults().len(), 1);
    }

    #[test]
    fn propagates_shape_errors() {
        assert!(MemoryBuilder::new(0, 4).build().is_err());
        assert!(MemoryBuilder::new(4, 0).build().is_err());
        assert!(MemoryBuilder::new(4, 4)
            .content(vec![Word::zeros(4)])
            .build()
            .is_err());
        assert!(MemoryBuilder::new(4, 4)
            .fault(Fault::stuck_at(BitAddress::new(99, 0), true))
            .build()
            .is_err());
    }
}
