use std::error::Error;
use std::fmt;

/// Errors produced by the memory simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemError {
    /// A word address was outside the configured address space.
    AddressOutOfRange {
        /// The offending word address.
        address: usize,
        /// Number of words in the memory.
        words: usize,
    },
    /// A bit position was outside the configured word width.
    BitOutOfRange {
        /// The offending bit position.
        bit: usize,
        /// Configured word width.
        width: usize,
    },
    /// A word value was built for a different width than the memory uses.
    WidthMismatch {
        /// Width of the supplied word.
        found: usize,
        /// Width expected by the memory.
        expected: usize,
    },
    /// The requested word width is zero or larger than [`crate::MAX_WORD_WIDTH`].
    InvalidWidth {
        /// The requested width.
        width: usize,
    },
    /// The requested memory has zero words.
    EmptyMemory,
    /// A coupling fault names the same cell as aggressor and victim.
    SelfCoupling {
        /// The cell used for both roles.
        cell: super::BitAddress,
    },
    /// A fault references a cell outside the memory.
    FaultCellOutOfRange {
        /// The offending cell.
        cell: super::BitAddress,
    },
    /// A data load supplied the wrong number of words.
    LoadLengthMismatch {
        /// Number of words supplied.
        found: usize,
        /// Number of words expected.
        expected: usize,
    },
    /// A repair tried to use a spare slot that already serves another word.
    SpareInUse {
        /// The occupied spare slot.
        spare: usize,
    },
    /// A repair targeted a word that is already served by a spare.
    AlreadyRemapped {
        /// The already-repaired logical word.
        word: usize,
    },
    /// A lane-packed batch held more faults than the arena has lanes.
    LaneOverflow {
        /// Number of faults in the batch.
        faults: usize,
        /// Number of lanes available.
        lanes: usize,
    },
    /// A fault class that cannot be simulated in an independent lane was
    /// offered to the packed arena (coupling faults read aggressor state
    /// across cells).
    UnpackableFault {
        /// The rejected fault class.
        class: crate::FaultClass,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::AddressOutOfRange { address, words } => {
                write!(
                    f,
                    "word address {address} out of range for {words}-word memory"
                )
            }
            MemError::BitOutOfRange { bit, width } => {
                write!(f, "bit position {bit} out of range for {width}-bit words")
            }
            MemError::WidthMismatch { found, expected } => {
                write!(f, "word width mismatch: found {found}, expected {expected}")
            }
            MemError::InvalidWidth { width } => {
                write!(
                    f,
                    "invalid word width {width}: must be between 1 and {}",
                    crate::MAX_WORD_WIDTH
                )
            }
            MemError::EmptyMemory => write!(f, "memory must contain at least one word"),
            MemError::SelfCoupling { cell } => {
                write!(
                    f,
                    "coupling fault uses cell {cell} as both aggressor and victim"
                )
            }
            MemError::FaultCellOutOfRange { cell } => {
                write!(f, "fault references cell {cell} outside the memory")
            }
            MemError::LoadLengthMismatch { found, expected } => {
                write!(
                    f,
                    "load length mismatch: found {found} words, expected {expected}"
                )
            }
            MemError::SpareInUse { spare } => {
                write!(f, "spare slot {spare} already serves a remapped word")
            }
            MemError::AlreadyRemapped { word } => {
                write!(f, "word {word} is already served by a spare")
            }
            MemError::LaneOverflow { faults, lanes } => {
                write!(f, "fault batch of {faults} exceeds {lanes} packed lanes")
            }
            MemError::UnpackableFault { class } => {
                write!(f, "fault class {class} cannot be lane-packed")
            }
        }
    }
}

impl Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitAddress;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let samples: Vec<MemError> = vec![
            MemError::AddressOutOfRange {
                address: 9,
                words: 4,
            },
            MemError::BitOutOfRange { bit: 8, width: 8 },
            MemError::WidthMismatch {
                found: 4,
                expected: 8,
            },
            MemError::InvalidWidth { width: 0 },
            MemError::EmptyMemory,
            MemError::SelfCoupling {
                cell: BitAddress::new(1, 2),
            },
            MemError::FaultCellOutOfRange {
                cell: BitAddress::new(7, 0),
            },
            MemError::LoadLengthMismatch {
                found: 3,
                expected: 4,
            },
            MemError::LaneOverflow {
                faults: 65,
                lanes: 64,
            },
            MemError::UnpackableFault {
                class: crate::FaultClass::Cfin,
            },
        ];
        for err in samples {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<MemError>();
    }
}
