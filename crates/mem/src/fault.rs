use std::fmt;

use serde::{Deserialize, Serialize};

use crate::BitAddress;

/// Direction of a cell transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Transition {
    /// A 0 → 1 transition.
    Rising,
    /// A 1 → 0 transition.
    Falling,
}

impl Transition {
    /// The transition performed when a cell changes from `from` to `to`, if
    /// any.
    #[must_use]
    pub fn between(from: bool, to: bool) -> Option<Self> {
        match (from, to) {
            (false, true) => Some(Transition::Rising),
            (true, false) => Some(Transition::Falling),
            _ => None,
        }
    }

    /// The opposite direction.
    #[must_use]
    pub fn reversed(self) -> Self {
        match self {
            Transition::Rising => Transition::Falling,
            Transition::Falling => Transition::Rising,
        }
    }
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Transition::Rising => f.write_str("0->1"),
            Transition::Falling => f.write_str("1->0"),
        }
    }
}

/// High-level fault classification used for coverage reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultClass {
    /// Stuck-at fault.
    Saf,
    /// Transition fault.
    Tf,
    /// State coupling fault.
    Cfst,
    /// Idempotent coupling fault.
    Cfid,
    /// Inversion coupling fault.
    Cfin,
}

impl FaultClass {
    /// All classes, in reporting order.
    #[must_use]
    pub fn all() -> [FaultClass; 5] {
        [
            FaultClass::Saf,
            FaultClass::Tf,
            FaultClass::Cfst,
            FaultClass::Cfid,
            FaultClass::Cfin,
        ]
    }

    /// Whether the class involves two cells.
    #[must_use]
    pub fn is_coupling(self) -> bool {
        matches!(self, FaultClass::Cfst | FaultClass::Cfid | FaultClass::Cfin)
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultClass::Saf => "SAF",
            FaultClass::Tf => "TF",
            FaultClass::Cfst => "CFst",
            FaultClass::Cfid => "CFid",
            FaultClass::Cfin => "CFin",
        };
        f.write_str(name)
    }
}

/// A single functional memory fault.
///
/// The variants follow the fault models of Section 2 of the paper. Coupling
/// faults distinguish an *aggressor* (coupling) cell and a *victim* (coupled)
/// cell; when both lie in the same word the fault is an intra-word coupling
/// fault, otherwise an inter-word one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fault {
    /// Stuck-at fault: the cell permanently holds `value`.
    StuckAt {
        /// The defective cell.
        cell: BitAddress,
        /// The value the cell is stuck at.
        value: bool,
    },
    /// Transition fault: the cell fails to perform the given transition.
    TransitionFault {
        /// The defective cell.
        cell: BitAddress,
        /// The transition the cell cannot make.
        direction: Transition,
    },
    /// State coupling fault: while the aggressor holds `aggressor_value`, the
    /// victim is forced to `victim_value`.
    CouplingState {
        /// The coupling (aggressor) cell.
        aggressor: BitAddress,
        /// The coupled (victim) cell.
        victim: BitAddress,
        /// Aggressor state that activates the fault.
        aggressor_value: bool,
        /// Value the victim is forced to while activated.
        victim_value: bool,
    },
    /// Idempotent coupling fault: when the aggressor performs `transition`,
    /// the victim is forced to `victim_value`.
    CouplingIdempotent {
        /// The coupling (aggressor) cell.
        aggressor: BitAddress,
        /// The coupled (victim) cell.
        victim: BitAddress,
        /// Aggressor transition that activates the fault.
        transition: Transition,
        /// Value the victim is forced to when activated.
        victim_value: bool,
    },
    /// Inversion coupling fault: when the aggressor performs `transition`,
    /// the victim's content is inverted.
    CouplingInversion {
        /// The coupling (aggressor) cell.
        aggressor: BitAddress,
        /// The coupled (victim) cell.
        victim: BitAddress,
        /// Aggressor transition that activates the fault.
        transition: Transition,
    },
}

impl Fault {
    /// Convenience constructor for a stuck-at fault.
    #[must_use]
    pub fn stuck_at(cell: BitAddress, value: bool) -> Self {
        Fault::StuckAt { cell, value }
    }

    /// Convenience constructor for a transition fault.
    #[must_use]
    pub fn transition(cell: BitAddress, direction: Transition) -> Self {
        Fault::TransitionFault { cell, direction }
    }

    /// Convenience constructor for a state coupling fault.
    #[must_use]
    pub fn coupling_state(
        aggressor: BitAddress,
        victim: BitAddress,
        aggressor_value: bool,
        victim_value: bool,
    ) -> Self {
        Fault::CouplingState {
            aggressor,
            victim,
            aggressor_value,
            victim_value,
        }
    }

    /// Convenience constructor for an idempotent coupling fault.
    #[must_use]
    pub fn coupling_idempotent(
        aggressor: BitAddress,
        victim: BitAddress,
        transition: Transition,
        victim_value: bool,
    ) -> Self {
        Fault::CouplingIdempotent {
            aggressor,
            victim,
            transition,
            victim_value,
        }
    }

    /// Convenience constructor for an inversion coupling fault.
    #[must_use]
    pub fn coupling_inversion(
        aggressor: BitAddress,
        victim: BitAddress,
        transition: Transition,
    ) -> Self {
        Fault::CouplingInversion {
            aggressor,
            victim,
            transition,
        }
    }

    /// The fault class of this fault.
    #[must_use]
    pub fn class(&self) -> FaultClass {
        match self {
            Fault::StuckAt { .. } => FaultClass::Saf,
            Fault::TransitionFault { .. } => FaultClass::Tf,
            Fault::CouplingState { .. } => FaultClass::Cfst,
            Fault::CouplingIdempotent { .. } => FaultClass::Cfid,
            Fault::CouplingInversion { .. } => FaultClass::Cfin,
        }
    }

    /// The victim (defective / coupled) cell of the fault.
    #[must_use]
    pub fn victim(&self) -> BitAddress {
        match *self {
            Fault::StuckAt { cell, .. } | Fault::TransitionFault { cell, .. } => cell,
            Fault::CouplingState { victim, .. }
            | Fault::CouplingIdempotent { victim, .. }
            | Fault::CouplingInversion { victim, .. } => victim,
        }
    }

    /// The aggressor (coupling) cell, if the fault is a coupling fault.
    #[must_use]
    pub fn aggressor(&self) -> Option<BitAddress> {
        match *self {
            Fault::StuckAt { .. } | Fault::TransitionFault { .. } => None,
            Fault::CouplingState { aggressor, .. }
            | Fault::CouplingIdempotent { aggressor, .. }
            | Fault::CouplingInversion { aggressor, .. } => Some(aggressor),
        }
    }

    /// All cells referenced by the fault.
    #[must_use]
    pub fn cells(&self) -> Vec<BitAddress> {
        match self.aggressor() {
            Some(a) => vec![a, self.victim()],
            None => vec![self.victim()],
        }
    }

    /// Whether this is a coupling fault whose aggressor and victim lie in the
    /// same word (an *intra-word* coupling fault).
    #[must_use]
    pub fn is_intra_word(&self) -> bool {
        match self.aggressor() {
            Some(aggressor) => aggressor.same_word(self.victim()),
            None => false,
        }
    }

    /// Whether this is a coupling fault whose aggressor and victim lie in
    /// different words (an *inter-word* coupling fault).
    #[must_use]
    pub fn is_inter_word(&self) -> bool {
        match self.aggressor() {
            Some(aggressor) => !aggressor.same_word(self.victim()),
            None => false,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Fault::StuckAt { cell, value } => {
                write!(f, "SAF({}) at {cell}", u8::from(value))
            }
            Fault::TransitionFault { cell, direction } => {
                write!(f, "TF({direction}) at {cell}")
            }
            Fault::CouplingState {
                aggressor,
                victim,
                aggressor_value,
                victim_value,
            } => write!(
                f,
                "CFst<{};{}> {aggressor} -> {victim}",
                u8::from(aggressor_value),
                u8::from(victim_value)
            ),
            Fault::CouplingIdempotent {
                aggressor,
                victim,
                transition,
                victim_value,
            } => write!(
                f,
                "CFid<{transition};{}> {aggressor} -> {victim}",
                u8::from(victim_value)
            ),
            Fault::CouplingInversion {
                aggressor,
                victim,
                transition,
            } => write!(f, "CFin<{transition}> {aggressor} -> {victim}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> BitAddress {
        BitAddress::new(1, 2)
    }

    fn v() -> BitAddress {
        BitAddress::new(1, 5)
    }

    fn v_other_word() -> BitAddress {
        BitAddress::new(3, 5)
    }

    #[test]
    fn transition_between_values() {
        assert_eq!(Transition::between(false, true), Some(Transition::Rising));
        assert_eq!(Transition::between(true, false), Some(Transition::Falling));
        assert_eq!(Transition::between(true, true), None);
        assert_eq!(Transition::between(false, false), None);
        assert_eq!(Transition::Rising.reversed(), Transition::Falling);
    }

    #[test]
    fn classes_are_reported_correctly() {
        assert_eq!(Fault::stuck_at(a(), true).class(), FaultClass::Saf);
        assert_eq!(
            Fault::transition(a(), Transition::Rising).class(),
            FaultClass::Tf
        );
        assert_eq!(
            Fault::coupling_state(a(), v(), true, false).class(),
            FaultClass::Cfst
        );
        assert_eq!(
            Fault::coupling_idempotent(a(), v(), Transition::Rising, true).class(),
            FaultClass::Cfid
        );
        assert_eq!(
            Fault::coupling_inversion(a(), v(), Transition::Falling).class(),
            FaultClass::Cfin
        );
    }

    #[test]
    fn coupling_classification_intra_vs_inter_word() {
        let intra = Fault::coupling_inversion(a(), v(), Transition::Rising);
        let inter = Fault::coupling_inversion(a(), v_other_word(), Transition::Rising);
        assert!(intra.is_intra_word());
        assert!(!intra.is_inter_word());
        assert!(inter.is_inter_word());
        assert!(!inter.is_intra_word());

        let simple = Fault::stuck_at(a(), false);
        assert!(!simple.is_intra_word());
        assert!(!simple.is_inter_word());
    }

    #[test]
    fn victim_aggressor_and_cells() {
        let f = Fault::coupling_idempotent(a(), v(), Transition::Rising, true);
        assert_eq!(f.victim(), v());
        assert_eq!(f.aggressor(), Some(a()));
        assert_eq!(f.cells(), vec![a(), v()]);

        let s = Fault::stuck_at(a(), true);
        assert_eq!(s.victim(), a());
        assert_eq!(s.aggressor(), None);
        assert_eq!(s.cells(), vec![a()]);
    }

    #[test]
    fn display_is_compact_and_nonempty() {
        let faults = vec![
            Fault::stuck_at(a(), true),
            Fault::transition(a(), Transition::Falling),
            Fault::coupling_state(a(), v(), true, false),
            Fault::coupling_idempotent(a(), v(), Transition::Rising, true),
            Fault::coupling_inversion(a(), v(), Transition::Falling),
        ];
        for f in faults {
            assert!(!f.to_string().is_empty());
        }
    }

    #[test]
    fn fault_class_helpers() {
        assert!(FaultClass::Cfid.is_coupling());
        assert!(!FaultClass::Saf.is_coupling());
        assert_eq!(FaultClass::all().len(), 5);
    }
}
