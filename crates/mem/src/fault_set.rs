use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use crate::{BitAddress, Fault, FaultClass, FaultIndex, MemError};

/// A collection of faults injected into a memory.
///
/// The set keeps faults in insertion order and offers per-cell lookups used
/// by the simulator on every write. A [`FaultSet`] is validated against a
/// memory shape when the [`crate::FaultyMemory`] is constructed.
///
/// The set lazily maintains a [`FaultIndex`] — per-word stuck-at /
/// transition bit masks plus an aggressor → victim adjacency map — which is
/// what the simulator's write path actually queries. The index is built on
/// first use and invalidated whenever the set is mutated; the per-cell
/// linear lookups ([`FaultSet::stuck_at`] and friends) remain available for
/// one-off queries.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct FaultSet {
    faults: Vec<Fault>,
    #[serde(skip)]
    index: OnceLock<FaultIndex>,
}

impl Clone for FaultSet {
    fn clone(&self) -> Self {
        // The cached index is cheap to rebuild and usually stale-prone in
        // clones that are about to be mutated, so it is not carried over.
        Self {
            faults: self.faults.clone(),
            index: OnceLock::new(),
        }
    }
}

impl PartialEq for FaultSet {
    fn eq(&self, other: &Self) -> bool {
        self.faults == other.faults
    }
}

impl Eq for FaultSet {}

impl FaultSet {
    /// Creates an empty fault set (a fault-free memory).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a fault set from an iterator of faults.
    pub fn from_faults<I: IntoIterator<Item = Fault>>(faults: I) -> Self {
        Self {
            faults: faults.into_iter().collect(),
            index: OnceLock::new(),
        }
    }

    /// Adds a fault to the set.
    pub fn insert(&mut self, fault: Fault) {
        self.faults.push(fault);
        self.index = OnceLock::new();
    }

    /// Removes every fault, keeping the underlying allocation.
    ///
    /// The cached [`FaultIndex`] is invalidated, so a cleared set behaves
    /// exactly like [`FaultSet::new`] — this is what allows
    /// [`crate::FaultyMemory`] arenas to be re-armed with a new fault
    /// without allocating a fresh set per run.
    pub fn clear(&mut self) {
        self.faults.clear();
        self.index = OnceLock::new();
    }

    /// The precomputed per-word / per-aggressor lookup index.
    ///
    /// Built on first call and cached until the set is mutated. This is the
    /// structure the simulator's write path queries instead of scanning the
    /// fault list per bit.
    pub fn index(&self) -> &FaultIndex {
        self.index.get_or_init(|| FaultIndex::build(&self.faults))
    }

    /// Number of faults in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the set contains no faults.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Iterates over the faults in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Fault> {
        self.faults.iter()
    }

    /// All faults of a given class.
    #[must_use]
    pub fn of_class(&self, class: FaultClass) -> Vec<&Fault> {
        self.faults.iter().filter(|f| f.class() == class).collect()
    }

    /// The sorted, deduplicated word addresses the set's faults touch as
    /// victim or aggressor — the footprint a fault-local sweep
    /// (`twm_bist::detect_lowered_at`) must visit. A word outside the
    /// footprint hosts no faulty cell and no aggressor, so it behaves
    /// exactly like a fault-free word under any march test.
    #[must_use]
    pub fn word_footprint(&self) -> Vec<usize> {
        let mut words: Vec<usize> = self
            .faults
            .iter()
            .flat_map(|fault| fault.cells().into_iter().map(|cell| cell.word))
            .collect();
        words.sort_unstable();
        words.dedup();
        words
    }

    /// Stuck-at value for a cell, if the cell has a stuck-at fault.
    #[must_use]
    pub fn stuck_at(&self, cell: BitAddress) -> Option<bool> {
        self.faults.iter().find_map(|f| match *f {
            Fault::StuckAt { cell: c, value } if c == cell => Some(value),
            _ => None,
        })
    }

    /// Transition faults affecting a cell.
    ///
    /// Returns a lazy iterator — no allocation per call. Use `.count()` /
    /// `.collect()` at call sites that need the old `Vec` behaviour.
    pub fn transition_faults(&self, cell: BitAddress) -> impl Iterator<Item = &Fault> + '_ {
        self.faults
            .iter()
            .filter(move |f| matches!(f, Fault::TransitionFault { cell: c, .. } if *c == cell))
    }

    /// Coupling faults whose aggressor is the given cell.
    #[must_use]
    pub fn coupled_by(&self, aggressor: BitAddress) -> Vec<&Fault> {
        self.faults
            .iter()
            .filter(|f| f.aggressor() == Some(aggressor))
            .collect()
    }

    /// Validates every fault against a memory shape.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::FaultCellOutOfRange`] if a fault references a cell
    /// outside an `words × width` memory, or [`MemError::SelfCoupling`] if a
    /// coupling fault uses the same cell for aggressor and victim.
    pub fn validate(&self, words: usize, width: usize) -> Result<(), MemError> {
        for fault in &self.faults {
            Self::validate_fault(fault, words, width)?;
        }
        Ok(())
    }

    /// Validates a single fault against a memory shape, with the same rules
    /// as [`FaultSet::validate`] but without constructing a set.
    ///
    /// # Errors
    ///
    /// See [`FaultSet::validate`].
    pub fn validate_fault(fault: &Fault, words: usize, width: usize) -> Result<(), MemError> {
        for cell in fault.cells() {
            if cell.word >= words || cell.bit >= width {
                return Err(MemError::FaultCellOutOfRange { cell });
            }
        }
        if let Some(aggressor) = fault.aggressor() {
            if aggressor == fault.victim() {
                return Err(MemError::SelfCoupling { cell: aggressor });
            }
        }
        Ok(())
    }

    /// Consumes the set and returns the underlying faults.
    #[must_use]
    pub fn into_inner(self) -> Vec<Fault> {
        self.faults
    }
}

impl FromIterator<Fault> for FaultSet {
    fn from_iter<I: IntoIterator<Item = Fault>>(iter: I) -> Self {
        Self::from_faults(iter)
    }
}

impl Extend<Fault> for FaultSet {
    fn extend<I: IntoIterator<Item = Fault>>(&mut self, iter: I) {
        self.faults.extend(iter);
        self.index = OnceLock::new();
    }
}

impl From<Vec<Fault>> for FaultSet {
    fn from(faults: Vec<Fault>) -> Self {
        Self {
            faults,
            index: OnceLock::new(),
        }
    }
}

impl IntoIterator for FaultSet {
    type Item = Fault;
    type IntoIter = std::vec::IntoIter<Fault>;

    fn into_iter(self) -> Self::IntoIter {
        self.faults.into_iter()
    }
}

impl<'a> IntoIterator for &'a FaultSet {
    type Item = &'a Fault;
    type IntoIter = std::slice::Iter<'a, Fault>;

    fn into_iter(self) -> Self::IntoIter {
        self.faults.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Transition;

    fn cell(word: usize, bit: usize) -> BitAddress {
        BitAddress::new(word, bit)
    }

    #[test]
    fn empty_set_is_fault_free() {
        let set = FaultSet::new();
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert!(set.validate(4, 8).is_ok());
        assert!(set.word_footprint().is_empty());
    }

    #[test]
    fn word_footprint_is_the_sorted_union_of_victim_and_aggressor_words() {
        let set = FaultSet::from_faults(vec![
            Fault::stuck_at(cell(7, 1), true),
            Fault::transition(cell(7, 3), Transition::Rising),
            Fault::coupling_inversion(cell(9, 0), cell(2, 3), Transition::Falling),
            Fault::coupling_state(cell(2, 0), cell(2, 1), false, true),
        ]);
        assert_eq!(set.word_footprint(), vec![2, 7, 9]);
    }

    #[test]
    fn lookup_by_cell_and_class() {
        let set = FaultSet::from_faults(vec![
            Fault::stuck_at(cell(0, 1), true),
            Fault::transition(cell(0, 1), Transition::Rising),
            Fault::coupling_inversion(cell(0, 1), cell(2, 3), Transition::Falling),
            Fault::coupling_state(cell(1, 0), cell(0, 1), false, true),
        ]);
        assert_eq!(set.len(), 4);
        assert_eq!(set.stuck_at(cell(0, 1)), Some(true));
        assert_eq!(set.stuck_at(cell(2, 3)), None);
        assert_eq!(set.transition_faults(cell(0, 1)).count(), 1);
        assert_eq!(set.coupled_by(cell(0, 1)).len(), 1);
        assert_eq!(set.coupled_by(cell(1, 0)).len(), 1);
        assert_eq!(set.of_class(FaultClass::Cfst).len(), 1);
        assert_eq!(set.of_class(FaultClass::Saf).len(), 1);
    }

    #[test]
    fn validate_rejects_out_of_range_cells() {
        let set = FaultSet::from_faults(vec![Fault::stuck_at(cell(9, 0), true)]);
        assert!(matches!(
            set.validate(4, 8),
            Err(MemError::FaultCellOutOfRange { .. })
        ));

        let set = FaultSet::from_faults(vec![Fault::stuck_at(cell(0, 8), true)]);
        assert!(matches!(
            set.validate(4, 8),
            Err(MemError::FaultCellOutOfRange { .. })
        ));
    }

    #[test]
    fn validate_rejects_self_coupling() {
        let set = FaultSet::from_faults(vec![Fault::coupling_inversion(
            cell(1, 1),
            cell(1, 1),
            Transition::Rising,
        )]);
        assert!(matches!(
            set.validate(4, 8),
            Err(MemError::SelfCoupling { .. })
        ));
    }

    #[test]
    fn clear_empties_and_invalidates_index() {
        let mut set = FaultSet::from_faults(vec![Fault::stuck_at(cell(0, 1), true)]);
        assert!(set.index().word_masks(0).is_some());
        set.clear();
        assert!(set.is_empty());
        assert_eq!(set, FaultSet::new());
        assert!(set.index().word_masks(0).is_none());
        // A cleared set can be re-armed and indexes the new fault only.
        set.insert(Fault::transition(cell(1, 0), Transition::Falling));
        assert_eq!(set.stuck_at(cell(0, 1)), None);
        assert_eq!(set.transition_faults(cell(1, 0)).count(), 1);
    }

    #[test]
    fn collection_traits_work() {
        let faults = vec![
            Fault::stuck_at(cell(0, 0), false),
            Fault::stuck_at(cell(1, 0), true),
        ];
        let set: FaultSet = faults.clone().into_iter().collect();
        assert_eq!(set.len(), 2);
        let mut extended = set.clone();
        extended.extend(vec![Fault::stuck_at(cell(2, 0), true)]);
        assert_eq!(extended.len(), 3);
        let back: Vec<Fault> = set.into_iter().collect();
        assert_eq!(back, faults);
    }
}
