//! Precomputed per-word fault lookup structures — the simulation kernel.
//!
//! The naive write path asks the [`crate::FaultSet`] three questions per
//! *bit* per write — "is this cell stuck?", "does it have a transition
//! fault?", "what does it couple?" — each answered by an O(|faults|) linear
//! scan (and, for transition faults, a fresh `Vec` allocation). A
//! [`FaultIndex`] answers all of them in O(1) per *word*:
//!
//! * [`WordFaultMasks`] packs the stuck-at and transition-fault cells of one
//!   word into `u128` bit masks, so the whole word's effective write value
//!   is a handful of bitwise operations;
//! * an aggressor → faults adjacency map resolves coupling propagation
//!   without scanning the fault list;
//! * words that no fault touches (as victim or aggressor) have no entry at
//!   all, which gives fault-free words a pure block-store fast path.
//!
//! The index is built lazily by [`crate::FaultSet::index`] and cached until
//! the set is mutated.

use std::collections::HashMap;

use crate::{BitAddress, BitStorage, Fault, Transition};

/// Bit masks describing every single-cell fault in one word, plus which of
/// the word's cells act as coupling-fault aggressors.
///
/// Bit `i` of each mask refers to cell `i` of the word (LSB first), exactly
/// like [`crate::Word`] bit numbering.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WordFaultMasks {
    /// Cells stuck at 0.
    pub stuck0: u128,
    /// Cells stuck at 1.
    pub stuck1: u128,
    /// Cells that fail rising (0 → 1) transitions.
    pub tf_rising: u128,
    /// Cells that fail falling (1 → 0) transitions.
    pub tf_falling: u128,
    /// Cells that are the aggressor of at least one transition-triggered
    /// coupling fault (CFid / CFin).
    pub aggressors: u128,
}

impl WordFaultMasks {
    /// Whether no mask is set (the word only appears in the index because it
    /// hosts a coupling-fault victim).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// The effective stored value when `intended` is written over `old`,
    /// applying stuck-at domination and transition blocking for the whole
    /// word at once.
    #[must_use]
    pub fn effective_write(&self, old: u128, intended: u128) -> u128 {
        let rising = !old & intended;
        let falling = old & !intended;
        let blocked = (rising & self.tf_rising) | (falling & self.tf_falling);
        let unblocked = (intended & !blocked) | (old & blocked);
        (unblocked | self.stuck1) & !self.stuck0
    }
}

/// Precomputed lookup structures over a fault list.
///
/// See the module docs of `index` for what each part accelerates. The index
/// preserves fault insertion order everywhere order is observable
/// (propagation visits coupled faults in insertion order, state coupling is
/// enforced in insertion order). One deliberate refinement over the
/// historical per-bit scan: only transitions on cells that actually
/// aggress a coupling fault enter the propagation queue, so inert bit
/// flips no longer consume the [`FaultIndex::MAX_PROPAGATION`] budget —
/// wide words with deep coupling chains now propagate where the old path
/// could exhaust its budget on no-op queue entries.
#[derive(Debug, Clone, Default)]
pub struct FaultIndex {
    words: HashMap<usize, WordFaultMasks>,
    coupled: HashMap<BitAddress, Vec<Fault>>,
    state_faults: Vec<Fault>,
    stuck_cells: Vec<(BitAddress, bool)>,
}

impl FaultIndex {
    /// Maximum depth of transitive coupling-fault propagation per write.
    pub const MAX_PROPAGATION: usize = 64;

    /// Builds the index for a fault list.
    #[must_use]
    pub fn build(faults: &[Fault]) -> Self {
        let mut index = Self::default();
        for &fault in faults {
            match fault {
                Fault::StuckAt { cell, value } => {
                    let masks = index.words.entry(cell.word).or_default();
                    let bit = 1u128 << cell.bit;
                    // First fault wins for contradictory duplicates — on
                    // every path. (The pre-index simulator was inconsistent
                    // for this degenerate input: writes used first-match,
                    // static enforcement applied all duplicates in order so
                    // the last won; the index makes first-wins uniform.)
                    if (masks.stuck0 | masks.stuck1) & bit == 0 {
                        if value {
                            masks.stuck1 |= bit;
                        } else {
                            masks.stuck0 |= bit;
                        }
                        index.stuck_cells.push((cell, value));
                    }
                }
                Fault::TransitionFault { cell, direction } => {
                    let masks = index.words.entry(cell.word).or_default();
                    let bit = 1u128 << cell.bit;
                    match direction {
                        Transition::Rising => masks.tf_rising |= bit,
                        Transition::Falling => masks.tf_falling |= bit,
                    }
                }
                Fault::CouplingIdempotent {
                    aggressor, victim, ..
                }
                | Fault::CouplingInversion {
                    aggressor, victim, ..
                } => {
                    index.words.entry(aggressor.word).or_default().aggressors |=
                        1u128 << aggressor.bit;
                    // The victim's word needs an entry so writes to it never
                    // take the untouched-word fast path.
                    index.words.entry(victim.word).or_default();
                    index.coupled.entry(aggressor).or_default().push(fault);
                }
                Fault::CouplingState {
                    aggressor, victim, ..
                } => {
                    index.words.entry(aggressor.word).or_default();
                    index.words.entry(victim.word).or_default();
                    index.state_faults.push(fault);
                }
            }
        }
        index
    }

    /// Fault masks of a word, or `None` when no fault touches the word (as
    /// victim or aggressor) — the fast-path test for writes.
    #[must_use]
    pub fn word_masks(&self, word: usize) -> Option<&WordFaultMasks> {
        self.words.get(&word)
    }

    /// Whether any state coupling fault exists.
    #[must_use]
    pub fn has_state_faults(&self) -> bool {
        !self.state_faults.is_empty()
    }

    /// Transition-triggered coupling faults with the given aggressor cell.
    #[must_use]
    pub fn coupled_by(&self, aggressor: BitAddress) -> &[Fault] {
        self.coupled.get(&aggressor).map_or(&[], Vec::as_slice)
    }

    /// Stuck-at value of a cell, if any.
    #[must_use]
    pub fn stuck_at(&self, cell: BitAddress) -> Option<bool> {
        let masks = self.words.get(&cell.word)?;
        let bit = 1u128 << cell.bit;
        if masks.stuck0 & bit != 0 {
            Some(false)
        } else if masks.stuck1 & bit != 0 {
            Some(true)
        } else {
            None
        }
    }

    /// Forces a victim cell to a value as the result of a coupling fault,
    /// respecting a stuck-at fault on the victim. Returns the transition the
    /// victim performed, if any.
    fn force_cell(
        &self,
        storage: &mut BitStorage,
        cell: BitAddress,
        value: bool,
    ) -> Option<(BitAddress, Transition)> {
        let old = storage
            .bit(cell.word, cell.bit)
            .expect("validated fault cell is in range");
        let effective = self.stuck_at(cell).unwrap_or(value);
        if effective != old {
            storage
                .set_bit(cell.word, cell.bit, effective)
                .expect("validated fault cell is in range");
            Transition::between(old, effective).map(|t| (cell, t))
        } else {
            None
        }
    }

    /// Propagates coupling-fault activations transitively (bounded by
    /// [`FaultIndex::MAX_PROPAGATION`]), starting from the given aggressor
    /// transitions.
    pub(crate) fn propagate(
        &self,
        storage: &mut BitStorage,
        mut queue: Vec<(BitAddress, Transition)>,
    ) {
        let mut processed = 0usize;
        while let Some((aggressor, transition)) = queue.pop() {
            if processed >= Self::MAX_PROPAGATION {
                break;
            }
            processed += 1;
            for fault in self.coupled_by(aggressor) {
                match *fault {
                    Fault::CouplingIdempotent {
                        victim,
                        transition: trigger,
                        victim_value,
                        ..
                    } if trigger == transition => {
                        if let Some(change) = self.force_cell(storage, victim, victim_value) {
                            self.enqueue_if_aggressor(&mut queue, change);
                        }
                    }
                    Fault::CouplingInversion {
                        victim,
                        transition: trigger,
                        ..
                    } if trigger == transition => {
                        let current = storage
                            .bit(victim.word, victim.bit)
                            .expect("validated fault cell is in range");
                        if let Some(change) = self.force_cell(storage, victim, !current) {
                            self.enqueue_if_aggressor(&mut queue, change);
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// Queues a transitively forced transition only when the flipped cell
    /// aggresses some coupling fault itself — inert flips must not consume
    /// the propagation budget (the invariant the write path establishes for
    /// the initial queue).
    fn enqueue_if_aggressor(
        &self,
        queue: &mut Vec<(BitAddress, Transition)>,
        change: (BitAddress, Transition),
    ) {
        if !self.coupled_by(change.0).is_empty() {
            queue.push(change);
        }
    }

    /// Forces the victim of every currently-activated state coupling fault,
    /// in fault insertion order.
    pub(crate) fn enforce_state_coupling(&self, storage: &mut BitStorage) {
        for fault in &self.state_faults {
            if let Fault::CouplingState {
                aggressor,
                victim,
                aggressor_value,
                victim_value,
            } = *fault
            {
                let current = storage
                    .bit(aggressor.word, aggressor.bit)
                    .expect("validated fault cell is in range");
                if current == aggressor_value {
                    let _ = self.force_cell(storage, victim, victim_value);
                }
            }
        }
    }

    /// Applies the faults that constrain static state (stuck-at values and
    /// activated state coupling) to the current content.
    pub(crate) fn enforce_static(&self, storage: &mut BitStorage) {
        for &(cell, value) in &self.stuck_cells {
            storage
                .set_bit(cell.word, cell.bit, value)
                .expect("validated fault cell is in range");
        }
        self.enforce_state_coupling(storage);
    }

    /// Whether the index is completely empty (a fault-free memory).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty() && self.state_faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultClass;

    fn cell(word: usize, bit: usize) -> BitAddress {
        BitAddress::new(word, bit)
    }

    #[test]
    fn masks_reflect_single_cell_faults() {
        let faults = [
            Fault::stuck_at(cell(1, 0), true),
            Fault::stuck_at(cell(1, 3), false),
            Fault::transition(cell(1, 2), Transition::Rising),
            Fault::transition(cell(2, 5), Transition::Falling),
        ];
        let index = FaultIndex::build(&faults);
        let w1 = index.word_masks(1).unwrap();
        assert_eq!(w1.stuck1, 0b0001);
        assert_eq!(w1.stuck0, 0b1000);
        assert_eq!(w1.tf_rising, 0b0100);
        let w2 = index.word_masks(2).unwrap();
        assert_eq!(w2.tf_falling, 1 << 5);
        assert!(index.word_masks(0).is_none());
        assert_eq!(index.stuck_at(cell(1, 0)), Some(true));
        assert_eq!(index.stuck_at(cell(1, 3)), Some(false));
        assert_eq!(index.stuck_at(cell(1, 2)), None);
    }

    #[test]
    fn contradictory_stuck_faults_first_wins() {
        let faults = [
            Fault::stuck_at(cell(0, 0), true),
            Fault::stuck_at(cell(0, 0), false),
        ];
        let index = FaultIndex::build(&faults);
        assert_eq!(index.stuck_at(cell(0, 0)), Some(true));
        // Static enforcement agrees with the lookup (first wins there too).
        let mut storage = BitStorage::new(1, 1).unwrap();
        index.enforce_static(&mut storage);
        assert!(storage.bit(0, 0).unwrap());
    }

    #[test]
    fn coupling_faults_index_both_words() {
        let fault = Fault::coupling_idempotent(cell(0, 1), cell(3, 2), Transition::Rising, true);
        let index = FaultIndex::build(&[fault]);
        assert_eq!(index.word_masks(0).unwrap().aggressors, 0b10);
        // The victim word has an (empty-mask) entry so it never takes the
        // fault-free fast path.
        assert!(index.word_masks(3).is_some());
        assert!(index.word_masks(3).unwrap().is_empty());
        assert_eq!(index.coupled_by(cell(0, 1)).len(), 1);
        assert_eq!(index.coupled_by(cell(0, 1))[0].class(), FaultClass::Cfid);
        assert!(index.coupled_by(cell(3, 2)).is_empty());
    }

    #[test]
    fn state_faults_are_listed_in_insertion_order() {
        let a = Fault::coupling_state(cell(0, 0), cell(1, 0), true, false);
        let b = Fault::coupling_state(cell(2, 0), cell(3, 0), false, true);
        let index = FaultIndex::build(&[a, b]);
        assert!(index.has_state_faults());
        assert_eq!(index.state_faults, vec![a, b]);
        assert!(index.word_masks(0).is_some());
        assert!(index.word_masks(3).is_some());
    }

    #[test]
    fn effective_write_applies_masks_word_wide() {
        let masks = WordFaultMasks {
            stuck0: 0b0001,
            stuck1: 0b0010,
            tf_rising: 0b0100,
            tf_falling: 0b1000,
            aggressors: 0,
        };
        // old = 1011, intended = 0101:
        //   bit0: stuck at 0            -> 0
        //   bit1: stuck at 1            -> 1 (intended 0 overridden)
        //   bit2: rising blocked        -> stays old 0
        //   bit3: falling blocked       -> stays old 1
        assert_eq!(masks.effective_write(0b1011, 0b0101), 0b1010);
        // No faults: intended passes through.
        assert_eq!(
            WordFaultMasks::default().effective_write(0b1011, 0b0101),
            0b0101
        );
    }

    #[test]
    fn empty_index_is_empty() {
        assert!(FaultIndex::build(&[]).is_empty());
        assert!(!FaultIndex::build(&[Fault::stuck_at(cell(0, 0), true)]).is_empty());
    }
}
