//! The lane abstraction behind bit-parallel (PPSFP-style) fault simulation.
//!
//! Classic parallel-pattern single-fault-propagation packs many independent
//! single-fault simulations into the bit positions of one machine word: lane
//! `i` of every stored bit-plane carries the value fault `i`'s memory would
//! hold, so one pass of bitwise operations advances every lane at once. The
//! [`Lanes`] trait names that packing degree without fixing it, so the
//! packed arena ([`crate::PackedArena`]) and the batch executor in
//! `twm-bist` are written once and instantiated at any width:
//!
//! * [`Scalar`] — one lane per word: the reference instantiation, which
//!   makes the lane-generic kernel behave exactly like today's one-fault
//!   `u64` path (used to property-test the lane plumbing itself);
//! * [`Packed64`] — 64 bit-sliced lanes per `u64`: one march execution
//!   evaluates 64 single-bit faults simultaneously.
//!
//! A future `std::simd` instantiation (`u64x4` = 256 lanes) only needs to
//! implement this trait; see `vendor/README.md` for the swap plan.

use std::fmt::Debug;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// A fixed number of independent simulation lanes packed into one machine
/// word.
///
/// Implementors are type-level tags (uninhabited enums): the trait carries
/// all behaviour through associated items, so the packed kernels are
/// monomorphised per lane count with no runtime dispatch.
pub trait Lanes: Copy + Eq + Debug + Send + Sync + 'static {
    /// The machine word holding one bit per lane. All lane-parallel kernels
    /// are expressed in the four bitwise operations this type must support.
    type Word: Copy
        + Eq
        + Debug
        + Send
        + Sync
        + BitAnd<Output = Self::Word>
        + BitOr<Output = Self::Word>
        + BitXor<Output = Self::Word>
        + Not<Output = Self::Word>
        + 'static;

    /// Number of lanes packed into one [`Lanes::Word`].
    const COUNT: usize;

    /// The all-zero word (every lane holds 0).
    const ZERO: Self::Word;

    /// Broadcasts one bit to every lane — the packed form of a shared
    /// (fault-free) data bit that all lanes agree on.
    fn splat(bit: bool) -> Self::Word;

    /// The word with only `lane`'s bit set.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= Self::COUNT`.
    fn lane_mask(lane: usize) -> Self::Word;

    /// The word with the first `count` lanes set — the active-lane mask of a
    /// partially filled batch.
    ///
    /// # Panics
    ///
    /// Panics if `count > Self::COUNT`.
    fn first_lanes(count: usize) -> Self::Word;

    /// Flattens a lane word into a `u64` mask with bit `i` = lane `i` (the
    /// shape detection masks are reported in). Lanes beyond 64 would need a
    /// wider report type; every current instantiation has `COUNT <= 64`.
    fn to_mask(word: Self::Word) -> u64;
}

/// One lane per word — the reference instantiation of [`Lanes`].
///
/// A `PackedArena<Scalar>` simulates exactly one fault per pass, matching
/// the historical [`crate::FaultyMemory`] path operation for operation; the
/// equivalence tests use it to separate "the lane-generic kernel is wrong"
/// from "the packing is wrong".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scalar {}

impl Lanes for Scalar {
    type Word = u64;
    const COUNT: usize = 1;
    const ZERO: u64 = 0;

    #[inline]
    fn splat(bit: bool) -> u64 {
        if bit {
            u64::MAX
        } else {
            0
        }
    }

    #[inline]
    fn lane_mask(lane: usize) -> u64 {
        assert!(lane < Self::COUNT, "lane {lane} out of range for Scalar");
        1
    }

    #[inline]
    fn first_lanes(count: usize) -> u64 {
        assert!(
            count <= Self::COUNT,
            "{count} lanes requested from Scalar (1 lane)"
        );
        count as u64
    }

    #[inline]
    fn to_mask(word: u64) -> u64 {
        word
    }
}

/// 64 bit-sliced lanes per `u64` — one march execution evaluates 64
/// independent single-bit faults simultaneously.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Packed64 {}

impl Lanes for Packed64 {
    type Word = u64;
    const COUNT: usize = 64;
    const ZERO: u64 = 0;

    #[inline]
    fn splat(bit: bool) -> u64 {
        // Branch-free broadcast: 0 -> 0x0000..., 1 -> 0xFFFF...
        (bit as u64).wrapping_neg()
    }

    #[inline]
    fn lane_mask(lane: usize) -> u64 {
        assert!(lane < Self::COUNT, "lane {lane} out of range for Packed64");
        1u64 << lane
    }

    #[inline]
    fn first_lanes(count: usize) -> u64 {
        assert!(
            count <= Self::COUNT,
            "{count} lanes requested from Packed64 (64 lanes)"
        );
        if count >= 64 {
            u64::MAX
        } else {
            (1u64 << count) - 1
        }
    }

    #[inline]
    fn to_mask(word: u64) -> u64 {
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_broadcasts_to_every_lane() {
        assert_eq!(Packed64::splat(true), u64::MAX);
        assert_eq!(Packed64::splat(false), 0);
        assert_eq!(Scalar::splat(true), u64::MAX);
        assert_eq!(Scalar::splat(false), 0);
    }

    #[test]
    fn lane_masks_are_single_bits() {
        assert_eq!(Packed64::lane_mask(0), 1);
        assert_eq!(Packed64::lane_mask(63), 1 << 63);
        assert_eq!(Scalar::lane_mask(0), 1);
    }

    #[test]
    fn first_lanes_covers_partial_and_full_batches() {
        assert_eq!(Packed64::first_lanes(0), 0);
        assert_eq!(Packed64::first_lanes(1), 1);
        assert_eq!(Packed64::first_lanes(5), 0b11111);
        assert_eq!(Packed64::first_lanes(64), u64::MAX);
        assert_eq!(Scalar::first_lanes(0), 0);
        assert_eq!(Scalar::first_lanes(1), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn lane_mask_rejects_out_of_range_lane() {
        let _ = Packed64::lane_mask(64);
    }

    #[test]
    #[should_panic(expected = "lanes requested")]
    fn first_lanes_rejects_overflow() {
        let _ = Scalar::first_lanes(2);
    }
}
