//! # twm-mem — word-oriented memory functional simulator with fault injection
//!
//! This crate is the substrate of the TWM (transparent word-oriented march
//! test) reproduction: a functional model of an embedded word-oriented RAM
//! together with the classical functional fault models used by the paper
//! (Li, Tseng, Wey, *"An Efficient Transparent Test Scheme for Embedded
//! Word-Oriented Memories"*, DATE 2005):
//!
//! * stuck-at faults (SAF),
//! * transition faults (TF),
//! * state, idempotent and inversion coupling faults (CFst, CFid, CFin),
//!   both *intra-word* (aggressor and victim in the same word) and
//!   *inter-word*.
//!
//! The central type is [`FaultyMemory`]: a bit-accurate storage array plus a
//! [`FaultSet`] whose effects are applied on every write. A memory with an
//! empty fault set behaves as a fault-free golden model.
//!
//! ```
//! use twm_mem::{FaultyMemory, MemoryConfig, Fault, BitAddress, Word};
//!
//! # fn main() -> Result<(), twm_mem::MemError> {
//! let config = MemoryConfig::new(16, 8)?;            // 16 words of 8 bits
//! let saf = Fault::stuck_at(BitAddress::new(3, 0), true);
//! let mut mem = FaultyMemory::with_faults(config, vec![saf])?;
//!
//! mem.write_word(3, Word::zeros(8))?;                // write all-0
//! let read = mem.read_word(3)?;
//! assert_eq!(read.bit(0), true);                     // bit 0 is stuck at 1
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod address;
mod builder;
mod error;
mod fault;
mod fault_set;
mod prng;
mod sim;
mod storage;
mod trace;
mod word;

pub use address::{AddressOrder, AddressSequence, BitAddress, CellIndex};
pub use builder::MemoryBuilder;
pub use error::MemError;
pub use fault::{Fault, FaultClass, Transition};
pub use fault_set::FaultSet;
pub use prng::SplitMix64;
pub use sim::{AccessStats, FaultyMemory, MemoryConfig};
pub use storage::BitStorage;
pub use trace::{Trace, TraceEntry, TraceOp};
pub use word::{Word, MAX_WORD_WIDTH};
