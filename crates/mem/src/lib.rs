//! # twm-mem — word-oriented memory functional simulator with fault injection
//!
//! This crate is the substrate of the TWM (transparent word-oriented march
//! test) reproduction: a functional model of an embedded word-oriented RAM
//! together with the classical functional fault models used by the paper
//! (Li, Tseng, Wey, *"An Efficient Transparent Test Scheme for Embedded
//! Word-Oriented Memories"*, DATE 2005):
//!
//! * stuck-at faults (SAF),
//! * transition faults (TF),
//! * state, idempotent and inversion coupling faults (CFst, CFid, CFin),
//!   both *intra-word* (aggressor and victim in the same word) and
//!   *inter-word*.
//!
//! The central type is [`FaultyMemory`]: a bit-accurate storage array plus a
//! [`FaultSet`] whose effects are applied on every write. A memory with an
//! empty fault set behaves as a fault-free golden model.
//!
//! ## Simulation kernel
//!
//! Writes are simulated word-at-a-time, not bit-at-a-time. The [`FaultSet`]
//! lazily maintains a [`FaultIndex`] — per-word stuck-at / transition-fault
//! bit masks plus an aggressor → victim coupling adjacency map — so a write
//! resolves every fault effect on its word with a handful of `u128` bitwise
//! operations instead of scanning the fault list per bit. Words that no
//! fault touches take a pure block-masked `u64` store through
//! [`BitStorage::set_word_bits`], making the fault-free path O(1) in both
//! the fault count and the word width. This is what lets the coverage
//! evaluator in `twm-coverage` sweep fault universes of thousands of
//! faults over memories of tens of thousands of words.
//!
//! ## Bit-parallel lanes
//!
//! For bulk fault grading there is a second, bit-sliced kernel: the
//! [`Lanes`] trait abstracts over a packing degree ([`Scalar`] = 1 fault
//! per pass, [`Packed64`] = 64 faults per pass) and [`PackedArena`] holds
//! one bit-plane per footprint bit so a single march execution advances up
//! to 64 independent single-bit fault simulations at once. `twm-bist`'s
//! `detect_lowered_batch` drives it; `twm-coverage` batches SAF/TF
//! universes through it transparently.
//!
//! ```
//! use twm_mem::{FaultyMemory, MemoryConfig, Fault, BitAddress, Word};
//!
//! # fn main() -> Result<(), twm_mem::MemError> {
//! let config = MemoryConfig::new(16, 8)?;            // 16 words of 8 bits
//! let saf = Fault::stuck_at(BitAddress::new(3, 0), true);
//! let mut mem = FaultyMemory::with_faults(config, vec![saf])?;
//!
//! mem.write_word(3, Word::zeros(8))?;                // write all-0
//! let read = mem.read_word(3)?;
//! assert_eq!(read.bit(0), true);                     // bit 0 is stuck at 1
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod access;
mod address;
mod builder;
mod error;
mod fault;
mod fault_set;
mod index;
mod lanes;
mod packed;
mod prng;
mod repairable;
mod sim;
mod storage;
mod trace;
mod word;

pub use access::MemoryAccess;
pub use address::{AddressOrder, AddressSequence, BitAddress, CellIndex};
pub use builder::MemoryBuilder;
pub use error::MemError;
pub use fault::{Fault, FaultClass, Transition};
pub use fault_set::FaultSet;
pub use index::{FaultIndex, WordFaultMasks};
pub use lanes::{Lanes, Packed64, Scalar};
pub use packed::PackedArena;
pub use prng::SplitMix64;
pub use repairable::{RemapEntry, RepairableMemory};
pub use sim::{AccessStats, FaultyMemory, MemoryConfig};
pub use storage::BitStorage;
pub use trace::{Trace, TraceEntry, TraceOp};
pub use word::{Word, MAX_WORD_WIDTH};
