//! Lane-packed fault simulation arena: up to [`Lanes::COUNT`] single-bit
//! faults evaluated by one march execution.
//!
//! [`PackedArena`] is the bit-sliced sibling of
//! [`FaultyMemory`](crate::FaultyMemory) + [`BitStorage`](crate::BitStorage).
//! Where the scalar pair stores one memory image and injects one fault set,
//! the arena stores one *bit-plane* per (footprint word, bit position): a
//! [`Lanes::Word`] whose lane `i` holds the value that bit has in fault
//! `i`'s divergent memory image. One pass of bitwise operations over the
//! planes then advances every lane's simulation at once.
//!
//! Two properties of this workspace make the packing cheap:
//!
//! * fault behaviour is already reduced to per-word masks (the same
//!   stuck/transition mask algebra as
//!   [`FaultIndex`](crate::FaultIndex)), so injecting a fault into a lane
//!   is three `OR`s into static mask planes;
//! * detection sweeps are already confined to fault footprints
//!   (`detect_lowered_at`), so the arena only materialises planes for the
//!   union of the batch's victim words — a handful of words instead of the
//!   whole memory.
//!
//! Only single-cell faults (SAF, TF) are packable: coupling faults read
//! aggressor state across cells, which would entangle lanes. Callers route
//! coupling faults through the scalar path.

use crate::error::MemError;
use crate::fault::{Fault, FaultClass, Transition};
use crate::fault_set::FaultSet;
use crate::lanes::Lanes;
use crate::sim::MemoryConfig;
use crate::storage::BitStorage;

/// A lane-packed simulation arena for up to `L::COUNT` single-bit faults.
///
/// Lifecycle: [`arm`](Self::arm) a batch of faults (optionally with an
/// initial content image), run the lowered op stream against the arena
/// (`twm-bist`'s `detect_lowered_batch`), read the detection mask. To
/// re-evaluate the same batch under another content image, call
/// [`reload`](Self::reload) — the fault masks stay armed, only the data
/// planes are rebuilt.
///
/// All plane storage is retained across batches, so a long run over
/// thousands of faults performs no per-batch allocation once the footprint
/// size stabilises.
#[derive(Debug)]
pub struct PackedArena<L: Lanes> {
    config: MemoryConfig,
    /// Sorted, deduplicated victim word addresses of the armed batch; the
    /// arena's "slot" space. Plane index = `slot * width + bit`.
    addresses: Vec<usize>,
    /// Per-(slot, bit) initial content planes (statically enforced).
    initial: Vec<L::Word>,
    /// Per-(slot, bit) current content planes.
    current: Vec<L::Word>,
    /// Per-(slot, bit) stuck-at-0 masks: lane `i` set iff fault `i` pins
    /// that bit to 0.
    stuck0: Vec<L::Word>,
    /// Per-(slot, bit) stuck-at-1 masks.
    stuck1: Vec<L::Word>,
    /// Per-(slot, bit) blocked 0→1 transition masks.
    tf_rising: Vec<L::Word>,
    /// Per-(slot, bit) blocked 1→0 transition masks.
    tf_falling: Vec<L::Word>,
    /// Per-slot lane-ownership masks: lane `i` set iff fault `i`'s victim
    /// cell lives in that slot's word. Read mismatches outside a lane's own
    /// word are masked off — the scalar reference (`detect_lowered_at`)
    /// only sweeps the fault's own word, and a test mixing transparent
    /// writes with literal reads can mismatch on fault-free words too.
    owners: Vec<L::Word>,
    /// Mask of armed lanes.
    active: L::Word,
    lanes_used: usize,
}

impl<L: Lanes> PackedArena<L> {
    /// Creates an empty arena for memories of the given geometry.
    #[must_use]
    pub fn new(config: MemoryConfig) -> Self {
        Self {
            config,
            addresses: Vec::new(),
            initial: Vec::new(),
            current: Vec::new(),
            stuck0: Vec::new(),
            stuck1: Vec::new(),
            tf_rising: Vec::new(),
            tf_falling: Vec::new(),
            owners: Vec::new(),
            active: L::ZERO,
            lanes_used: 0,
        }
    }

    /// The memory geometry the arena simulates.
    #[must_use]
    pub fn config(&self) -> MemoryConfig {
        self.config
    }

    /// Word width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.config.width()
    }

    /// Number of footprint word slots in the armed batch.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.addresses.len()
    }

    /// The sorted victim word addresses of the armed batch, one per slot.
    #[must_use]
    pub fn addresses(&self) -> &[usize] {
        &self.addresses
    }

    /// Number of faults armed into lanes.
    #[must_use]
    pub fn lanes_used(&self) -> usize {
        self.lanes_used
    }

    /// `u64` mask with one bit per armed lane (bit `i` = lane `i`).
    #[must_use]
    pub fn active_mask(&self) -> u64 {
        L::to_mask(self.active)
    }

    /// Arms a batch of faults into distinct lanes and (re)builds the data
    /// planes from `image` (`None` = all-zero content, matching
    /// [`FaultyMemory::reset_with_fault`](crate::FaultyMemory::reset_with_fault)).
    ///
    /// # Errors
    ///
    /// * [`MemError::LaneOverflow`] if the batch exceeds `L::COUNT` faults;
    /// * [`MemError::UnpackableFault`] for any coupling fault — only SAF
    ///   and TF are single-cell and therefore lane-independent;
    /// * cell-range / image-geometry errors as the scalar path reports
    ///   them.
    pub fn arm(&mut self, faults: &[Fault], image: Option<&BitStorage>) -> Result<(), MemError> {
        if faults.len() > L::COUNT {
            return Err(MemError::LaneOverflow {
                faults: faults.len(),
                lanes: L::COUNT,
            });
        }
        self.check_image(image)?;
        for fault in faults {
            FaultSet::validate_fault(fault, self.config.words(), self.config.width())?;
            match fault.class() {
                FaultClass::Saf | FaultClass::Tf => {}
                class => return Err(MemError::UnpackableFault { class }),
            }
        }

        self.addresses.clear();
        self.addresses
            .extend(faults.iter().map(|f| f.victim().word));
        self.addresses.sort_unstable();
        self.addresses.dedup();

        let planes = self.addresses.len() * self.config.width();
        for plane in [
            &mut self.stuck0,
            &mut self.stuck1,
            &mut self.tf_rising,
            &mut self.tf_falling,
        ] {
            plane.clear();
            plane.resize(planes, L::ZERO);
        }
        self.owners.clear();
        self.owners.resize(self.addresses.len(), L::ZERO);

        for (lane, fault) in faults.iter().enumerate() {
            let victim = fault.victim();
            let slot = self
                .addresses
                .binary_search(&victim.word)
                .expect("victim word collected into the address list");
            let idx = slot * self.config.width() + victim.bit;
            let mask = L::lane_mask(lane);
            match *fault {
                Fault::StuckAt { value: true, .. } => {
                    self.stuck1[idx] = self.stuck1[idx] | mask;
                }
                Fault::StuckAt { value: false, .. } => {
                    self.stuck0[idx] = self.stuck0[idx] | mask;
                }
                Fault::TransitionFault {
                    direction: Transition::Rising,
                    ..
                } => {
                    self.tf_rising[idx] = self.tf_rising[idx] | mask;
                }
                Fault::TransitionFault {
                    direction: Transition::Falling,
                    ..
                } => {
                    self.tf_falling[idx] = self.tf_falling[idx] | mask;
                }
                _ => unreachable!("coupling faults rejected above"),
            }
            self.owners[slot] = self.owners[slot] | mask;
        }
        self.active = L::first_lanes(faults.len());
        self.lanes_used = faults.len();

        self.load_planes(image);
        Ok(())
    }

    /// Rebuilds the data planes from another content image without
    /// re-arming the fault masks — the cheap path for
    /// `contents_per_fault > 1`, where one batch is re-run under several
    /// images.
    ///
    /// # Errors
    ///
    /// Returns the same image-geometry errors as
    /// [`BitStorage::copy_from`](crate::BitStorage::copy_from).
    pub fn reload(&mut self, image: Option<&BitStorage>) -> Result<(), MemError> {
        self.check_image(image)?;
        self.load_planes(image);
        Ok(())
    }

    /// Applies a write of `pattern` to the footprint word at `slot`,
    /// advancing every lane at once.
    ///
    /// This is the transposed form of
    /// [`WordFaultMasks::effective_write`](crate::WordFaultMasks::effective_write):
    /// the same rising/falling blocking and stuck-bit pinning, evaluated
    /// per bit position across all lanes instead of per lane across all
    /// bit positions. `transparent` selects `initial ^ pattern` as the
    /// intended value (a transparent write) versus the literal `pattern`.
    pub fn write_word(&mut self, slot: usize, pattern: u128, transparent: bool) {
        let width = self.config.width();
        debug_assert!(slot < self.addresses.len(), "slot {slot} out of range");
        for bit in 0..width {
            let idx = slot * width + bit;
            let pat = L::splat((pattern >> bit) & 1 == 1);
            let intended = if transparent {
                self.initial[idx] ^ pat
            } else {
                pat
            };
            let old = self.current[idx];
            let rising = !old & intended;
            let falling = old & !intended;
            let blocked = (rising & self.tf_rising[idx]) | (falling & self.tf_falling[idx]);
            let unblocked = (intended & !blocked) | (old & blocked);
            self.current[idx] = (unblocked | self.stuck1[idx]) & !self.stuck0[idx];
        }
    }

    /// Reads the footprint word at `slot` in every lane and compares it
    /// against the expected value (`initial ^ pattern` when `transparent`,
    /// else the literal `pattern`), returning the lanes that mismatch.
    ///
    /// Mismatches are masked to the slot's *owner* lanes: the scalar
    /// reference sweep only reads the fault's own word, and stray
    /// mismatches on other footprint words (possible when a test mixes
    /// transparent writes with literal-pattern reads) must not count as
    /// detections.
    #[must_use]
    pub fn read_mismatch(&self, slot: usize, pattern: u128, transparent: bool) -> L::Word {
        let width = self.config.width();
        debug_assert!(slot < self.addresses.len(), "slot {slot} out of range");
        let mut acc = L::ZERO;
        for bit in 0..width {
            let idx = slot * width + bit;
            let pat = L::splat((pattern >> bit) & 1 == 1);
            let expected = if transparent {
                self.initial[idx] ^ pat
            } else {
                pat
            };
            acc = acc | (self.current[idx] ^ expected);
        }
        acc & self.owners[slot]
    }

    /// The packed bit-planes of the current content at `slot`, one
    /// [`Lanes::Word`] per bit position (bit 0 first).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range for the armed batch.
    #[must_use]
    pub fn word_bits(&self, slot: usize) -> &[L::Word] {
        let width = self.config.width();
        assert!(
            slot < self.addresses.len(),
            "slot {slot} out of range for {}-slot arena",
            self.addresses.len()
        );
        &self.current[slot * width..(slot + 1) * width]
    }

    /// Overwrites the packed bit-planes of the current content at `slot`.
    ///
    /// Bypasses fault masks — this is raw plane access, the packed
    /// counterpart of [`BitStorage::set_word_bits`](crate::BitStorage::set_word_bits).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range or `planes` is not exactly one
    /// word per bit position.
    pub fn set_word_bits(&mut self, slot: usize, planes: &[L::Word]) {
        let width = self.config.width();
        assert!(
            slot < self.addresses.len(),
            "slot {slot} out of range for {}-slot arena",
            self.addresses.len()
        );
        assert!(
            planes.len() == width,
            "expected {width} bit-planes, got {}",
            planes.len()
        );
        self.current[slot * width..(slot + 1) * width].copy_from_slice(planes);
    }

    /// One lane's view of the current content at `slot`, re-assembled into
    /// a plain word value (for tests and scalar cross-checks).
    #[must_use]
    pub fn lane_word_bits(&self, slot: usize, lane: usize) -> u128 {
        let width = self.config.width();
        let mask = L::lane_mask(lane);
        let mut value = 0u128;
        for bit in 0..width {
            if self.current[slot * width + bit] & mask != L::ZERO {
                value |= 1 << bit;
            }
        }
        value
    }

    fn check_image(&self, image: Option<&BitStorage>) -> Result<(), MemError> {
        let Some(image) = image else { return Ok(()) };
        if image.words() != self.config.words() {
            return Err(MemError::LoadLengthMismatch {
                found: image.words(),
                expected: self.config.words(),
            });
        }
        if image.width() != self.config.width() {
            return Err(MemError::WidthMismatch {
                found: image.width(),
                expected: self.config.width(),
            });
        }
        Ok(())
    }

    /// Rebuilds `initial`/`current` from the content image, enforcing
    /// static stuck-at faults exactly like
    /// [`FaultyMemory`](crate::FaultyMemory) does after `reset_with_fault`
    /// / `load_image`: the lane's initial value already has its stuck bit
    /// pinned before the march starts.
    fn load_planes(&mut self, image: Option<&BitStorage>) {
        let width = self.config.width();
        let planes = self.addresses.len() * width;
        self.initial.clear();
        self.initial.resize(planes, L::ZERO);
        self.current.clear();
        self.current.resize(planes, L::ZERO);
        for (slot, &address) in self.addresses.iter().enumerate() {
            let bits = image.map_or(0u128, |image| image.word_bits(address));
            for bit in 0..width {
                let idx = slot * width + bit;
                let value =
                    (L::splat((bits >> bit) & 1 == 1) | self.stuck1[idx]) & !self.stuck0[idx];
                self.initial[idx] = value;
                self.current[idx] = value;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanes::{Packed64, Scalar};
    use crate::BitAddress;

    fn config(words: usize, width: usize) -> MemoryConfig {
        MemoryConfig::new(words, width).unwrap()
    }

    #[test]
    fn arm_rejects_oversized_batches() {
        let mut arena = PackedArena::<Scalar>::new(config(4, 8));
        let faults = vec![
            Fault::stuck_at(BitAddress::new(0, 0), true),
            Fault::stuck_at(BitAddress::new(1, 0), true),
        ];
        assert!(matches!(
            arena.arm(&faults, None),
            Err(MemError::LaneOverflow {
                faults: 2,
                lanes: 1
            })
        ));
    }

    #[test]
    fn arm_rejects_coupling_faults() {
        let mut arena = PackedArena::<Packed64>::new(config(4, 8));
        let fault = Fault::coupling_inversion(
            BitAddress::new(0, 0),
            BitAddress::new(1, 0),
            Transition::Rising,
        );
        assert!(matches!(
            arena.arm(&[fault], None),
            Err(MemError::UnpackableFault {
                class: FaultClass::Cfin
            })
        ));
    }

    #[test]
    fn arm_rejects_out_of_range_cells() {
        let mut arena = PackedArena::<Packed64>::new(config(4, 8));
        let fault = Fault::stuck_at(BitAddress::new(4, 0), true);
        assert!(arena.arm(&[fault], None).is_err());
    }

    #[test]
    fn arm_rejects_mismatched_images() {
        let mut arena = PackedArena::<Packed64>::new(config(4, 8));
        let fault = Fault::stuck_at(BitAddress::new(0, 0), true);
        let image = BitStorage::new(3, 8).unwrap();
        assert!(matches!(
            arena.arm(&[fault], Some(&image)),
            Err(MemError::LoadLengthMismatch {
                found: 3,
                expected: 4
            })
        ));
        let image = BitStorage::new(4, 16).unwrap();
        assert!(matches!(
            arena.arm(&[fault], Some(&image)),
            Err(MemError::WidthMismatch {
                found: 16,
                expected: 8
            })
        ));
    }

    #[test]
    fn initial_planes_enforce_static_stuck_bits() {
        let mut arena = PackedArena::<Packed64>::new(config(4, 8));
        let faults = vec![
            Fault::stuck_at(BitAddress::new(2, 3), true),
            Fault::stuck_at(BitAddress::new(2, 3), false),
        ];
        arena.arm(&faults, None).unwrap();
        // All-zero content: lane 0's stuck-at-1 bit reads 1, lane 1's
        // stuck-at-0 bit reads 0.
        assert_eq!(arena.lane_word_bits(0, 0), 0b1000);
        assert_eq!(arena.lane_word_bits(0, 1), 0);

        let mut image = BitStorage::new(4, 8).unwrap();
        image.set_word_bits(2, 0xFF);
        arena.reload(Some(&image)).unwrap();
        assert_eq!(arena.lane_word_bits(0, 0), 0xFF);
        assert_eq!(arena.lane_word_bits(0, 1), 0xFF & !0b1000);
    }

    #[test]
    fn transition_faults_block_only_their_direction() {
        let mut arena = PackedArena::<Packed64>::new(config(2, 4));
        let faults = vec![
            Fault::transition(BitAddress::new(0, 1), Transition::Rising),
            Fault::transition(BitAddress::new(0, 1), Transition::Falling),
        ];
        arena.arm(&faults, None).unwrap();
        // From 0: writing 0b0010 rises bit 1 — blocked in lane 0 only.
        arena.write_word(0, 0b0010, false);
        assert_eq!(arena.lane_word_bits(0, 0), 0b0000);
        assert_eq!(arena.lane_word_bits(0, 1), 0b0010);
        // Writing 0b0000 falls bit 1 — blocked in lane 1 only (lane 0
        // never rose, so nothing falls there).
        arena.write_word(0, 0b0000, false);
        assert_eq!(arena.lane_word_bits(0, 0), 0b0000);
        assert_eq!(arena.lane_word_bits(0, 1), 0b0010);
    }

    #[test]
    fn read_mismatch_masks_to_owner_lanes() {
        // Two faults in different words; a mismatch on word 0 must only
        // ever be charged to word 0's lane.
        let mut arena = PackedArena::<Packed64>::new(config(4, 4));
        let faults = vec![
            Fault::stuck_at(BitAddress::new(0, 0), true),
            Fault::stuck_at(BitAddress::new(3, 0), true),
        ];
        arena.arm(&faults, None).unwrap();
        // Expected all-zero; lane 0 has bit 0 stuck at 1 in word 0.
        let slot0 = arena.read_mismatch(0, 0, false);
        let slot1 = arena.read_mismatch(1, 0, false);
        assert_eq!(slot0, 0b01);
        assert_eq!(slot1, 0b10);
    }

    #[test]
    fn packed_matches_scalar_lane_for_each_fault() {
        // The same fault armed alone in a Scalar arena and packed with 63
        // siblings in a Packed64 arena must evolve identically.
        let cfg = config(8, 8);
        let mut faults = Vec::new();
        for word in 0..8 {
            for bit in (0..8).step_by(2) {
                faults.push(Fault::stuck_at(BitAddress::new(word, bit), bit % 4 == 0));
                faults.push(Fault::transition(
                    BitAddress::new(word, bit + 1),
                    if bit % 4 == 0 {
                        Transition::Rising
                    } else {
                        Transition::Falling
                    },
                ));
            }
        }
        assert_eq!(faults.len(), 64);

        let mut image = BitStorage::new(8, 8).unwrap();
        for word in 0..8 {
            image.set_word_bits(word, (word as u128 * 37) & 0xFF);
        }

        let mut packed = PackedArena::<Packed64>::new(cfg);
        packed.arm(&faults, Some(&image)).unwrap();
        // A short march fragment: transparent complement write, literal
        // write, transparent restore.
        for slot in 0..packed.slots() {
            packed.write_word(slot, 0xFF, true);
        }
        for slot in 0..packed.slots() {
            packed.write_word(slot, 0b1010_0101, false);
        }
        for slot in 0..packed.slots() {
            packed.write_word(slot, 0, true);
        }

        for (lane, fault) in faults.iter().enumerate() {
            let mut scalar = PackedArena::<Scalar>::new(cfg);
            scalar
                .arm(std::slice::from_ref(fault), Some(&image))
                .unwrap();
            for slot in 0..scalar.slots() {
                scalar.write_word(slot, 0xFF, true);
                scalar.write_word(slot, 0b1010_0101, false);
                scalar.write_word(slot, 0, true);
            }
            let word = fault.victim().word;
            let packed_slot = packed.addresses().binary_search(&word).unwrap();
            assert_eq!(
                packed.lane_word_bits(packed_slot, lane),
                scalar.lane_word_bits(0, 0),
                "lane {lane} diverged from its scalar twin for {fault:?}"
            );
        }
    }

    #[test]
    fn set_word_bits_round_trips_through_word_bits() {
        let mut arena = PackedArena::<Packed64>::new(config(4, 4));
        let fault = Fault::stuck_at(BitAddress::new(1, 2), true);
        arena.arm(&[fault], None).unwrap();
        let planes: Vec<u64> = vec![1, 0, 1, 0];
        arena.set_word_bits(0, &planes);
        assert_eq!(arena.word_bits(0), planes.as_slice());
        assert_eq!(arena.lane_word_bits(0, 0), 0b0101);
    }
}
