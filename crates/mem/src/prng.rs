use serde::{Deserialize, Serialize};

/// Small deterministic pseudo-random number generator (SplitMix64).
///
/// The simulator needs reproducible "arbitrary" memory contents for
/// transparent-test experiments without pulling a full RNG dependency into
/// the substrate crate. SplitMix64 is statistically adequate for generating
/// memory backgrounds and fault samples and is fully deterministic from its
/// seed.
///
/// ```
/// use twm_mem::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit pseudo-random value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 128-bit pseudo-random value.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Pseudo-random boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Pseudo-random value in `0..bound` (`bound` must be non-zero).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be non-zero");
        (self.next_u64() % bound as u64) as usize
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0x5EED_5EED_5EED_5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(rng.next_below(7) < 7);
        }
    }

    #[test]
    fn bools_are_not_constant() {
        let mut rng = SplitMix64::new(3);
        let trues = (0..256).filter(|_| rng.next_bool()).count();
        assert!(trues > 64 && trues < 192, "trues = {trues}");
    }

    #[test]
    #[should_panic(expected = "bound must be non-zero")]
    fn next_below_zero_panics() {
        SplitMix64::new(1).next_below(0);
    }
}
