//! Spare-word redundancy repair on top of [`FaultyMemory`].
//!
//! Embedded memories ship with a handful of spare rows/words; when field
//! test locates a defective word, the repair logic programs a remap entry so
//! every subsequent access to that logical address is served by a spare.
//! [`RepairableMemory`] models exactly that layer: a main [`FaultyMemory`],
//! a bank of spare words (themselves a [`FaultyMemory`], so spares can carry
//! their own manufacturing defects) and a remap table consulted on each
//! access.
//!
//! The layer deliberately **wraps** the simulator instead of extending it:
//! the main memory's hot write path (the block-masked fault-index kernel)
//! is untouched, and a memory with an empty remap table behaves exactly
//! like the wrapped [`FaultyMemory`]. Remapping a word copies its current
//! content into the spare, so a repair applied mid-lifetime preserves the
//! stored data — the property the transparent-test repair flow depends on.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{BitAddress, FaultyMemory, MemError, MemoryAccess, MemoryConfig, Word};

/// One remap entry: a logical word served by a spare slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemapEntry {
    /// The logical (defective) word address.
    pub word: usize,
    /// The spare slot serving it.
    pub spare: usize,
}

/// A word-oriented memory with spare words and a repair remap table.
///
/// ```
/// use twm_mem::{BitAddress, Fault, MemoryBuilder, RepairableMemory, Word};
///
/// # fn main() -> Result<(), twm_mem::MemError> {
/// let faulty = MemoryBuilder::new(8, 4)
///     .random_content(7)
///     .fault(Fault::stuck_at(BitAddress::new(3, 1), true))
///     .build()?;
/// let mut memory = RepairableMemory::new(faulty, 2)?;
///
/// // Repair word 3 with spare slot 0: content is preserved, the stuck
/// // cell is out of the access path.
/// memory.map_word(3, 0)?;
/// memory.write_word(3, Word::zeros(4))?;
/// assert!(memory.read_word(3)?.is_zero());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RepairableMemory {
    main: FaultyMemory,
    /// Spare words; `None` when the memory was built with zero spares.
    spares: Option<FaultyMemory>,
    /// Logical word → spare slot. A `BTreeMap` keeps iteration (and
    /// therefore serialised plans and reports) deterministic.
    remap: BTreeMap<usize, usize>,
}

impl RepairableMemory {
    /// Wraps a memory with `spare_words` fault-free spare words.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidWidth`] only if the wrapped memory's
    /// width is invalid (it cannot be — the shape was already validated),
    /// so in practice this constructor only fails for internal
    /// inconsistencies; `spare_words == 0` is allowed and yields a memory
    /// that can hold no repairs.
    pub fn new(main: FaultyMemory, spare_words: usize) -> Result<Self, MemError> {
        let spares = if spare_words == 0 {
            None
        } else {
            Some(FaultyMemory::fault_free(MemoryConfig::new(
                spare_words,
                main.width(),
            )?))
        };
        Ok(Self {
            main,
            spares,
            remap: BTreeMap::new(),
        })
    }

    /// Wraps a memory with an explicit spare bank — the path for modelling
    /// spares that carry their own defects (a must-repair analysis input).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::WidthMismatch`] if the spare bank's word width
    /// differs from the main memory's.
    pub fn with_spares(main: FaultyMemory, spares: FaultyMemory) -> Result<Self, MemError> {
        if spares.width() != main.width() {
            return Err(MemError::WidthMismatch {
                found: spares.width(),
                expected: main.width(),
            });
        }
        Ok(Self {
            main,
            spares: Some(spares),
            remap: BTreeMap::new(),
        })
    }

    /// The logical memory shape (the wrapped memory's; spares are not
    /// addressable directly).
    #[must_use]
    pub fn config(&self) -> MemoryConfig {
        self.main.config()
    }

    /// Number of logical words.
    #[must_use]
    pub fn words(&self) -> usize {
        self.main.words()
    }

    /// Word width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.main.width()
    }

    /// Total number of spare slots.
    #[must_use]
    pub fn spare_words(&self) -> usize {
        self.spares.as_ref().map_or(0, FaultyMemory::words)
    }

    /// Spare slots not yet serving a remapped word, ascending.
    #[must_use]
    pub fn available_spares(&self) -> Vec<usize> {
        (0..self.spare_words())
            .filter(|slot| !self.remap.values().any(|used| used == slot))
            .collect()
    }

    /// The active remap entries, in ascending logical-word order.
    #[must_use]
    pub fn remap_table(&self) -> Vec<RemapEntry> {
        self.remap
            .iter()
            .map(|(&word, &spare)| RemapEntry { word, spare })
            .collect()
    }

    /// The spare slot serving a logical word, if it is remapped.
    #[must_use]
    pub fn mapped_spare(&self, word: usize) -> Option<usize> {
        self.remap.get(&word).copied()
    }

    /// The wrapped main memory.
    #[must_use]
    pub fn main(&self) -> &FaultyMemory {
        &self.main
    }

    /// Mutable access to the wrapped main memory, **bypassing** the remap
    /// table — for diagnosis flows that must observe the raw array
    /// (repaired words included). Accesses through this reference do not
    /// consult spares; use the layer's own accessors for the logical view.
    #[must_use]
    pub fn main_mut(&mut self) -> &mut FaultyMemory {
        &mut self.main
    }

    /// The spare bank, when the memory has one.
    #[must_use]
    pub fn spares(&self) -> Option<&FaultyMemory> {
        self.spares.as_ref()
    }

    /// Consumes the layer and returns the wrapped main memory (the remap
    /// table and spares are discarded).
    #[must_use]
    pub fn into_main(self) -> FaultyMemory {
        self.main
    }

    /// Remaps a logical word onto a spare slot, copying the word's current
    /// logical content into the spare so the repair preserves stored data.
    ///
    /// # Errors
    ///
    /// * [`MemError::AddressOutOfRange`] if the logical word or the spare
    ///   slot does not exist (slot errors report the spare-bank shape).
    /// * [`MemError::SpareInUse`] if the slot already serves another word.
    /// * [`MemError::AlreadyRemapped`] if the word is already repaired.
    pub fn map_word(&mut self, word: usize, spare: usize) -> Result<(), MemError> {
        if word >= self.main.words() {
            return Err(MemError::AddressOutOfRange {
                address: word,
                words: self.main.words(),
            });
        }
        let Some(spares) = self.spares.as_mut() else {
            return Err(MemError::AddressOutOfRange {
                address: spare,
                words: 0,
            });
        };
        if spare >= spares.words() {
            return Err(MemError::AddressOutOfRange {
                address: spare,
                words: spares.words(),
            });
        }
        if self.remap.contains_key(&word) {
            return Err(MemError::AlreadyRemapped { word });
        }
        if self.remap.values().any(|&used| used == spare) {
            return Err(MemError::SpareInUse { spare });
        }
        // Preserve the stored data: the spare takes over the word's current
        // logical value (written through the spare bank, so spare defects
        // apply — a defective spare does not silently launder a repair).
        let current = self.main.peek_word(word)?;
        spares.write_word(spare, current)?;
        self.remap.insert(word, spare);
        Ok(())
    }

    /// Removes a word's remap entry, writing the spare's current content
    /// back into the main array.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AddressOutOfRange`] if the word is not remapped.
    pub fn unmap_word(&mut self, word: usize) -> Result<(), MemError> {
        let Some(spare) = self.remap.remove(&word) else {
            return Err(MemError::AddressOutOfRange {
                address: word,
                words: self.main.words(),
            });
        };
        let value = self
            .spares
            .as_ref()
            .expect("a remap entry implies a spare bank")
            .peek_word(spare)?;
        self.main.write_word(word, value)?;
        Ok(())
    }

    /// Reads a logical word, counting the access on whichever array serves
    /// it.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AddressOutOfRange`] for a bad address.
    pub fn read_word(&mut self, address: usize) -> Result<Word, MemError> {
        match self.remap.get(&address) {
            Some(&spare) => self
                .spares
                .as_mut()
                .expect("a remap entry implies a spare bank")
                .read_word(spare),
            // The wrapped memory performs the range check itself.
            None => self.main.read_word(address),
        }
    }

    /// Writes a logical word through whichever array serves it (fault
    /// semantics of that array apply).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AddressOutOfRange`] or
    /// [`MemError::WidthMismatch`] for shape errors.
    pub fn write_word(&mut self, address: usize, data: Word) -> Result<(), MemError> {
        match self.remap.get(&address) {
            Some(&spare) => self
                .spares
                .as_mut()
                .expect("a remap entry implies a spare bank")
                .write_word(spare, data),
            None => self.main.write_word(address, data),
        }
    }

    /// Reads a single cell through the remap table.
    ///
    /// # Errors
    ///
    /// Returns an address or bit range error if the cell does not exist.
    pub fn read_bit(&mut self, cell: BitAddress) -> Result<bool, MemError> {
        if cell.bit >= self.width() {
            return Err(MemError::BitOutOfRange {
                bit: cell.bit,
                width: self.width(),
            });
        }
        Ok(self.read_word(cell.word)?.bit(cell.bit))
    }

    /// Writes a single cell via a read-modify-write of its (possibly
    /// remapped) word.
    ///
    /// # Errors
    ///
    /// Returns an address or bit range error if the cell does not exist.
    pub fn write_bit(&mut self, cell: BitAddress, value: bool) -> Result<(), MemError> {
        if cell.bit >= self.width() {
            return Err(MemError::BitOutOfRange {
                bit: cell.bit,
                width: self.width(),
            });
        }
        let current = self.peek_word(cell.word)?;
        self.write_word(cell.word, current.with_bit(cell.bit, value))
    }

    /// Reads a logical word without counting the access.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AddressOutOfRange`] for a bad address.
    pub fn peek_word(&self, address: usize) -> Result<Word, MemError> {
        match self.remap.get(&address) {
            Some(&spare) => self
                .spares
                .as_ref()
                .expect("a remap entry implies a spare bank")
                .peek_word(spare),
            None => self.main.peek_word(address),
        }
    }

    /// A copy of the logical content (remapped words read from their
    /// spares).
    #[must_use]
    pub fn content(&self) -> Vec<Word> {
        (0..self.words())
            .map(|address| self.peek_word(address).expect("address in range"))
            .collect()
    }
}

impl MemoryAccess for RepairableMemory {
    fn config(&self) -> MemoryConfig {
        RepairableMemory::config(self)
    }

    fn read_word(&mut self, address: usize) -> Result<Word, MemError> {
        RepairableMemory::read_word(self, address)
    }

    fn write_word(&mut self, address: usize, data: Word) -> Result<(), MemError> {
        RepairableMemory::write_word(self, address, data)
    }

    fn peek_word(&self, address: usize) -> Result<Word, MemError> {
        RepairableMemory::peek_word(self, address)
    }

    // fault_set() stays `None`: the effective fault behaviour of a
    // remapped memory is not the main array's flat set (a repaired word's
    // faults are out of the access path, spare defects are in it).
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fault, MemoryBuilder};

    fn faulty(words: usize, width: usize, fault: Fault) -> FaultyMemory {
        MemoryBuilder::new(words, width)
            .random_content(11)
            .fault(fault)
            .build()
            .unwrap()
    }

    #[test]
    fn unmapped_memory_behaves_like_the_wrapped_one() {
        let saf = Fault::stuck_at(BitAddress::new(2, 1), true);
        let mut plain = faulty(8, 4, saf);
        let mut layered = RepairableMemory::new(faulty(8, 4, saf), 2).unwrap();
        assert_eq!(layered.content(), plain.content());
        for address in 0..8 {
            plain.write_word(address, Word::zeros(4)).unwrap();
            layered.write_word(address, Word::zeros(4)).unwrap();
            assert_eq!(
                layered.read_word(address).unwrap(),
                plain.read_word(address).unwrap()
            );
        }
    }

    #[test]
    fn mapping_preserves_content_and_masks_the_fault() {
        let cell = BitAddress::new(5, 0);
        let mut memory =
            RepairableMemory::new(faulty(8, 4, Fault::stuck_at(cell, true)), 1).unwrap();
        let before = memory.content();
        memory.map_word(5, 0).unwrap();
        // Logical content unchanged by the repair itself.
        assert_eq!(memory.content(), before);
        // The stuck-at cell no longer constrains writes.
        memory.write_word(5, Word::zeros(4)).unwrap();
        assert!(memory.read_word(5).unwrap().is_zero());
        assert_eq!(memory.mapped_spare(5), Some(0));
        assert!(memory.available_spares().is_empty());
        assert_eq!(memory.remap_table(), vec![RemapEntry { word: 5, spare: 0 }]);
    }

    #[test]
    fn unmap_writes_the_spare_content_back() {
        let mut memory = RepairableMemory::new(
            MemoryBuilder::new(4, 4).random_content(3).build().unwrap(),
            1,
        )
        .unwrap();
        memory.map_word(1, 0).unwrap();
        memory.write_word(1, Word::ones(4)).unwrap();
        memory.unmap_word(1).unwrap();
        assert_eq!(memory.mapped_spare(1), None);
        assert!(memory.read_word(1).unwrap().is_ones());
        assert!(memory.unmap_word(1).is_err());
    }

    #[test]
    fn mapping_validation() {
        let mut memory =
            RepairableMemory::new(MemoryBuilder::new(4, 4).build().unwrap(), 2).unwrap();
        assert!(matches!(
            memory.map_word(9, 0),
            Err(MemError::AddressOutOfRange { .. })
        ));
        // Accesses outside the logical shape fail through the delegate.
        assert!(matches!(
            memory.read_word(9),
            Err(MemError::AddressOutOfRange {
                address: 9,
                words: 4
            })
        ));
        assert!(matches!(
            memory.peek_word(9),
            Err(MemError::AddressOutOfRange { .. })
        ));
        assert!(matches!(
            memory.write_word(9, Word::zeros(4)),
            Err(MemError::AddressOutOfRange { .. })
        ));
        assert!(matches!(
            memory.map_word(0, 9),
            Err(MemError::AddressOutOfRange { .. })
        ));
        memory.map_word(0, 0).unwrap();
        assert!(matches!(
            memory.map_word(0, 1),
            Err(MemError::AlreadyRemapped { word: 0 })
        ));
        assert!(matches!(
            memory.map_word(1, 0),
            Err(MemError::SpareInUse { spare: 0 })
        ));

        let mut spareless =
            RepairableMemory::new(MemoryBuilder::new(4, 4).build().unwrap(), 0).unwrap();
        assert_eq!(spareless.spare_words(), 0);
        assert!(spareless.map_word(0, 0).is_err());
    }

    #[test]
    fn defective_spares_apply_their_own_faults() {
        let main = MemoryBuilder::new(4, 4).random_content(5).build().unwrap();
        let spares = MemoryBuilder::new(2, 4)
            .fault(Fault::stuck_at(BitAddress::new(0, 3), true))
            .build()
            .unwrap();
        let mut memory = RepairableMemory::with_spares(main, spares).unwrap();
        memory.map_word(2, 0).unwrap();
        memory.write_word(2, Word::zeros(4)).unwrap();
        // The spare's stuck-at bit shows through the logical view.
        assert!(memory.read_word(2).unwrap().bit(3));

        let narrow = MemoryBuilder::new(2, 8).build().unwrap();
        let wide_main = MemoryBuilder::new(4, 4).build().unwrap();
        assert!(matches!(
            RepairableMemory::with_spares(wide_main, narrow),
            Err(MemError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn bit_level_access_goes_through_the_remap() {
        let cell = BitAddress::new(3, 2);
        let mut memory =
            RepairableMemory::new(faulty(8, 4, Fault::stuck_at(cell, false)), 1).unwrap();
        memory.map_word(3, 0).unwrap();
        memory.write_bit(cell, true).unwrap();
        assert!(memory.read_bit(cell).unwrap());
        assert!(matches!(
            memory.write_bit(BitAddress::new(0, 9), true),
            Err(MemError::BitOutOfRange { .. })
        ));
    }
}
