use serde::{Deserialize, Serialize};

use crate::{
    BitAddress, BitStorage, Fault, FaultSet, MemError, MemoryAccess, SplitMix64, Trace, TraceEntry,
    TraceOp, Transition, Word,
};

/// Shape of a simulated memory: number of words and word width in bits.
///
/// Ordered (words, then width) and hashable so it can key sharded
/// stores — fleet deployments index dictionaries and cached engines by
/// `(MemoryConfig, scheme, test)` shard keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MemoryConfig {
    words: usize,
    width: usize,
}

impl MemoryConfig {
    /// Creates a memory shape.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::EmptyMemory`] for zero words and
    /// [`MemError::InvalidWidth`] for an unsupported word width.
    pub fn new(words: usize, width: usize) -> Result<Self, MemError> {
        if words == 0 {
            return Err(MemError::EmptyMemory);
        }
        if width == 0 || width > crate::MAX_WORD_WIDTH {
            return Err(MemError::InvalidWidth { width });
        }
        Ok(Self { words, width })
    }

    /// Shape of a bit-oriented memory (word width 1) with `cells` cells.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::EmptyMemory`] if `cells` is zero.
    pub fn bit_oriented(cells: usize) -> Result<Self, MemError> {
        Self::new(cells, 1)
    }

    /// Number of words.
    #[must_use]
    pub fn words(&self) -> usize {
        self.words
    }

    /// Word width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total number of cells (bits).
    #[must_use]
    pub fn cells(&self) -> usize {
        self.words * self.width
    }

    /// An all-zero word of this memory's width.
    #[must_use]
    pub fn word_zeros(&self) -> Word {
        Word::zeros(self.width)
    }

    /// An all-one word of this memory's width.
    #[must_use]
    pub fn word_ones(&self) -> Word {
        Word::ones(self.width)
    }
}

/// Counters of read and write accesses performed on a memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessStats {
    /// Number of word reads.
    pub reads: u64,
    /// Number of word writes.
    pub writes: u64,
}

impl AccessStats {
    /// Total number of accesses.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

/// A word-oriented memory with injected functional faults.
///
/// Writes apply the fault semantics of Section 2 of the paper:
///
/// * stuck-at cells never change value;
/// * transition-faulty cells fail the faulty transition direction;
/// * when a cell changes value, idempotent and inversion coupling faults with
///   that cell as aggressor force or invert their victims (propagated
///   transitively up to a bounded depth);
/// * state coupling faults continuously force their victim while the
///   aggressor holds the activating value (enforced after every write and
///   after initialization).
///
/// Reads return the stored content and never disturb the array.
#[derive(Debug, Clone)]
pub struct FaultyMemory {
    config: MemoryConfig,
    storage: BitStorage,
    faults: FaultSet,
    stats: AccessStats,
    tracing: bool,
    trace: Trace,
}

impl FaultyMemory {
    /// Creates a fault-free memory (all cells initialised to 0).
    #[must_use]
    pub fn fault_free(config: MemoryConfig) -> Self {
        Self::with_faults(config, FaultSet::new()).expect("empty fault set is always valid")
    }

    /// Creates a memory with the given faults injected.
    ///
    /// # Errors
    ///
    /// Returns an error if any fault references a cell outside the memory or
    /// couples a cell with itself.
    pub fn with_faults<F: Into<FaultSet>>(
        config: MemoryConfig,
        faults: F,
    ) -> Result<Self, MemError> {
        let faults = faults.into();
        faults.validate(config.words(), config.width())?;
        let storage = BitStorage::new(config.words(), config.width())?;
        let mut mem = Self {
            config,
            storage,
            faults,
            stats: AccessStats::default(),
            tracing: false,
            trace: Trace::new(),
        };
        mem.enforce_static_faults();
        Ok(mem)
    }

    /// The memory shape.
    #[must_use]
    pub fn config(&self) -> MemoryConfig {
        self.config
    }

    /// Number of words.
    #[must_use]
    pub fn words(&self) -> usize {
        self.config.words()
    }

    /// Word width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.config.width()
    }

    /// The injected fault set.
    #[must_use]
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// Adds a fault to an existing memory.
    ///
    /// # Errors
    ///
    /// Returns an error if the fault references a cell outside the memory or
    /// couples a cell with itself.
    pub fn inject(&mut self, fault: Fault) -> Result<(), MemError> {
        let candidate = FaultSet::from_faults([fault]);
        candidate.validate(self.config.words(), self.config.width())?;
        self.faults.insert(fault);
        self.enforce_static_faults();
        Ok(())
    }

    /// Removes all injected faults (the array content is left unchanged).
    pub fn clear_faults(&mut self) {
        self.faults.clear();
    }

    /// Resets the array content to all-zero and clears the access counters
    /// and any recorded trace, keeping the injected faults and the storage
    /// allocation.
    ///
    /// After the reset the memory is indistinguishable from one freshly
    /// built with [`FaultyMemory::with_faults`] over the same fault set:
    /// stuck-at values and activated state coupling are re-enforced on the
    /// zeroed content, the counters read zero, and the trace is empty (the
    /// tracing *switch* keeps its setting, as it is configuration rather
    /// than run state).
    pub fn reset_content(&mut self) {
        self.storage.clear();
        self.stats = AccessStats::default();
        self.trace = Trace::new();
        self.enforce_static_faults();
    }

    /// Re-arms the memory with a new fault set, resetting content, counters
    /// and trace — the arena-reuse equivalent of dropping the memory and
    /// building a fresh one with [`FaultyMemory::with_faults`], without
    /// giving up the [`BitStorage`] allocation.
    ///
    /// # Errors
    ///
    /// Returns the same validation errors as [`FaultyMemory::with_faults`];
    /// on error the memory keeps its previous faults and content.
    pub fn reset_with_faults<F: Into<FaultSet>>(&mut self, faults: F) -> Result<(), MemError> {
        let faults = faults.into();
        faults.validate(self.config.words(), self.config.width())?;
        self.faults = faults;
        self.reset_content();
        Ok(())
    }

    /// [`FaultyMemory::reset_with_faults`] for the single-fault case, reusing
    /// the existing [`FaultSet`] allocation — the hot path of fault-injection
    /// sweeps, which re-arm one arena memory once per fault in the universe.
    ///
    /// # Errors
    ///
    /// Returns the same validation errors as [`FaultyMemory::with_faults`];
    /// on error the memory keeps its previous faults and content.
    pub fn reset_with_fault(&mut self, fault: Fault) -> Result<(), MemError> {
        FaultSet::validate_fault(&fault, self.config.words(), self.config.width())?;
        self.faults.clear();
        self.faults.insert(fault);
        self.reset_content();
        Ok(())
    }

    /// Access counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Resets the access counters.
    pub fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
    }

    /// Enables or disables access tracing.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.tracing = enabled;
    }

    /// Takes the recorded trace, leaving an empty one behind.
    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    /// Reads a word, counting the access.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AddressOutOfRange`] for a bad address.
    pub fn read_word(&mut self, address: usize) -> Result<Word, MemError> {
        let data = self.storage.word(address)?;
        self.stats.reads += 1;
        if self.tracing {
            self.trace.push(TraceEntry {
                op: TraceOp::Read,
                address,
                data,
            });
        }
        Ok(data)
    }

    /// Writes a word, applying all fault effects and counting the access.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AddressOutOfRange`] for a bad address or
    /// [`MemError::WidthMismatch`] if the word width differs from the memory
    /// width.
    pub fn write_word(&mut self, address: usize, data: Word) -> Result<(), MemError> {
        if address >= self.config.words() {
            return Err(MemError::AddressOutOfRange {
                address,
                words: self.config.words(),
            });
        }
        if data.width() != self.config.width() {
            return Err(MemError::WidthMismatch {
                found: data.width(),
                expected: self.config.width(),
            });
        }

        let index = self.faults.index();
        match index.word_masks(address) {
            None => {
                // No fault touches this word as victim or aggressor: the
                // write cannot disturb (or be disturbed by) anything, so it
                // is a pure block-masked store. State coupling elsewhere is
                // untouched because no aggressor changed.
                self.storage.set_word_bits(address, data.to_bits());
            }
            Some(masks) => {
                let old = self.storage.word_bits(address);
                let effective = masks.effective_write(old, data.to_bits());
                self.storage.set_word_bits(address, effective);

                // Collect aggressor transitions in ascending bit order (the
                // propagation queue pops from the back, so the highest
                // changed bit is processed first — same order as the
                // historical per-bit loop).
                let mut activated = (effective ^ old) & masks.aggressors;
                let mut changed: Vec<(BitAddress, Transition)> =
                    Vec::with_capacity(activated.count_ones() as usize);
                while activated != 0 {
                    let bit = activated.trailing_zeros() as usize;
                    activated &= activated - 1;
                    let transition = if (effective >> bit) & 1 == 1 {
                        Transition::Rising
                    } else {
                        Transition::Falling
                    };
                    changed.push((BitAddress::new(address, bit), transition));
                }

                if !changed.is_empty() {
                    index.propagate(&mut self.storage, changed);
                }
                if index.has_state_faults() {
                    index.enforce_state_coupling(&mut self.storage);
                }
            }
        }

        self.stats.writes += 1;
        if self.tracing {
            let stored = self.storage.word(address)?;
            self.trace.push(TraceEntry {
                op: TraceOp::Write,
                address,
                data: stored,
            });
        }
        Ok(())
    }

    /// Reads a single cell, counting a read access.
    ///
    /// # Errors
    ///
    /// Returns an address or bit range error if the cell does not exist.
    pub fn read_bit(&mut self, cell: BitAddress) -> Result<bool, MemError> {
        let value = self.storage.bit(cell.word, cell.bit)?;
        self.stats.reads += 1;
        if self.tracing {
            let data = self.storage.word(cell.word)?;
            self.trace.push(TraceEntry {
                op: TraceOp::Read,
                address: cell.word,
                data,
            });
        }
        Ok(value)
    }

    /// Writes a single cell through a read-modify-write of its word, so all
    /// word-level fault effects apply.
    ///
    /// # Errors
    ///
    /// Returns an address or bit range error if the cell does not exist.
    pub fn write_bit(&mut self, cell: BitAddress, value: bool) -> Result<(), MemError> {
        if cell.bit >= self.config.width() {
            return Err(MemError::BitOutOfRange {
                bit: cell.bit,
                width: self.config.width(),
            });
        }
        let current = self.storage.word(cell.word)?;
        self.write_word(cell.word, current.with_bit(cell.bit, value))
    }

    /// Reads a word without counting the access or applying tracing.
    ///
    /// Intended for inspection by test harnesses and oracles.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AddressOutOfRange`] for a bad address.
    pub fn peek_word(&self, address: usize) -> Result<Word, MemError> {
        self.storage.word(address)
    }

    /// Reads a cell without counting the access.
    ///
    /// # Errors
    ///
    /// Returns an address or bit range error if the cell does not exist.
    pub fn peek_bit(&self, cell: BitAddress) -> Result<bool, MemError> {
        self.storage.bit(cell.word, cell.bit)
    }

    /// A copy of the entire memory content.
    #[must_use]
    pub fn content(&self) -> Vec<Word> {
        self.storage.to_words()
    }

    /// Fills every word with the same value (fault effects on the final state
    /// are enforced; this models a direct initialization, not a march write,
    /// so coupling transitions are not triggered).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::WidthMismatch`] if the word width differs from the
    /// memory width.
    pub fn fill(&mut self, value: Word) -> Result<(), MemError> {
        self.storage.fill(value)?;
        self.enforce_static_faults();
        Ok(())
    }

    /// Loads the entire content from a slice of words (same semantics as
    /// [`FaultyMemory::fill`]).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::LoadLengthMismatch`] or [`MemError::WidthMismatch`]
    /// for shape mismatches.
    pub fn load(&mut self, values: &[Word]) -> Result<(), MemError> {
        self.storage.load(values)?;
        self.enforce_static_faults();
        Ok(())
    }

    /// A copy of the raw bit-level storage — pair with
    /// [`FaultyMemory::load_image`] to snapshot a content once and restore
    /// it cheaply any number of times.
    #[must_use]
    pub fn snapshot(&self) -> BitStorage {
        self.storage.clone()
    }

    /// Restores the entire content from a storage snapshot with block-level
    /// copies (same fault semantics as [`FaultyMemory::load`], which
    /// rebuilds word by word: the fault effects on the final state are
    /// enforced, coupling transitions are not triggered).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::LoadLengthMismatch`] or [`MemError::WidthMismatch`]
    /// for shape mismatches.
    pub fn load_image(&mut self, image: &BitStorage) -> Result<(), MemError> {
        self.storage.copy_from(image)?;
        self.enforce_static_faults();
        Ok(())
    }

    /// Fills the memory with deterministic pseudo-random content derived from
    /// `seed`, modelling the "arbitrary initial content" a transparent test
    /// must preserve.
    pub fn fill_random(&mut self, seed: u64) {
        let mut rng = SplitMix64::new(seed);
        let width = self.config.width();
        for address in 0..self.config.words() {
            let word = Word::from_bits(rng.next_u128(), width).expect("configured width is valid");
            self.storage
                .set_word(address, word)
                .expect("address in range");
        }
        self.enforce_static_faults();
    }

    /// Applies the faults that constrain static state (stuck-at values and
    /// activated state coupling) to the current content.
    fn enforce_static_faults(&mut self) {
        self.faults.index().enforce_static(&mut self.storage);
    }
}

impl MemoryAccess for FaultyMemory {
    fn config(&self) -> MemoryConfig {
        FaultyMemory::config(self)
    }

    fn read_word(&mut self, address: usize) -> Result<Word, MemError> {
        FaultyMemory::read_word(self, address)
    }

    fn write_word(&mut self, address: usize, data: Word) -> Result<(), MemError> {
        FaultyMemory::write_word(self, address, data)
    }

    fn peek_word(&self, address: usize) -> Result<Word, MemError> {
        FaultyMemory::peek_word(self, address)
    }

    fn fault_set(&self) -> Option<&FaultSet> {
        Some(self.faults())
    }

    fn content(&self) -> Vec<Word> {
        // The inherent implementation converts straight from the bit
        // storage, cheaper than the trait's per-word default.
        FaultyMemory::content(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(words: usize, width: usize) -> MemoryConfig {
        MemoryConfig::new(words, width).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(MemoryConfig::new(0, 8).is_err());
        assert!(MemoryConfig::new(4, 0).is_err());
        assert!(MemoryConfig::new(4, 200).is_err());
        let c = config(4, 8);
        assert_eq!(c.cells(), 32);
        assert_eq!(c.word_zeros(), Word::zeros(8));
        assert_eq!(c.word_ones(), Word::ones(8));
        let bit = MemoryConfig::bit_oriented(16).unwrap();
        assert_eq!(bit.width(), 1);
    }

    #[test]
    fn fault_free_memory_reads_back_writes() {
        let mut mem = FaultyMemory::fault_free(config(8, 8));
        let value = Word::from_bits(0b1100_0011, 8).unwrap();
        mem.write_word(5, value).unwrap();
        assert_eq!(mem.read_word(5).unwrap(), value);
        assert_eq!(mem.stats().writes, 1);
        assert_eq!(mem.stats().reads, 1);
    }

    #[test]
    fn stuck_at_fault_dominates_writes_and_initialization() {
        let saf = Fault::stuck_at(BitAddress::new(2, 3), true);
        let mut mem = FaultyMemory::with_faults(config(4, 8), vec![saf]).unwrap();
        // After construction the stuck cell already holds 1.
        assert!(mem.peek_bit(BitAddress::new(2, 3)).unwrap());
        mem.write_word(2, Word::zeros(8)).unwrap();
        assert!(mem.read_word(2).unwrap().bit(3));
        mem.fill(Word::zeros(8)).unwrap();
        assert!(mem.peek_bit(BitAddress::new(2, 3)).unwrap());
    }

    #[test]
    fn transition_fault_blocks_only_its_direction() {
        let tf = Fault::transition(BitAddress::new(1, 0), Transition::Rising);
        let mut mem = FaultyMemory::with_faults(config(4, 4), vec![tf]).unwrap();
        // 0 -> 1 fails.
        mem.write_word(1, Word::ones(4)).unwrap();
        assert!(!mem.read_word(1).unwrap().bit(0));
        assert!(mem.read_word(1).unwrap().bit(1));
        // Force the cell to 1 via initialization, then 1 -> 0 succeeds.
        mem.fill(Word::ones(4)).unwrap();
        mem.write_word(1, Word::zeros(4)).unwrap();
        assert!(!mem.read_word(1).unwrap().bit(0));
    }

    #[test]
    fn idempotent_coupling_fault_forces_victim_on_trigger() {
        let aggressor = BitAddress::new(0, 0);
        let victim = BitAddress::new(2, 1);
        let cfid = Fault::coupling_idempotent(aggressor, victim, Transition::Rising, true);
        let mut mem = FaultyMemory::with_faults(config(4, 4), vec![cfid]).unwrap();
        // Rising write on the aggressor forces the victim to 1.
        mem.write_word(0, Word::from_bits(0b0001, 4).unwrap())
            .unwrap();
        assert!(mem.peek_bit(victim).unwrap());
        // A second rising transition cannot occur without first falling.
        mem.write_bit(victim, false).unwrap();
        mem.write_word(0, Word::from_bits(0b0001, 4).unwrap())
            .unwrap();
        assert!(
            !mem.peek_bit(victim).unwrap(),
            "no new transition, no activation"
        );
    }

    #[test]
    fn inversion_coupling_fault_inverts_victim_on_trigger() {
        let aggressor = BitAddress::new(3, 2);
        let victim = BitAddress::new(3, 0);
        let cfin = Fault::coupling_inversion(aggressor, victim, Transition::Falling);
        let mut mem = FaultyMemory::with_faults(config(4, 4), vec![cfin]).unwrap();
        mem.fill(Word::ones(4)).unwrap();
        // Falling write on the aggressor inverts the victim (1 -> 0).
        mem.write_word(3, Word::from_bits(0b1011, 4).unwrap())
            .unwrap();
        let read = mem.peek_word(3).unwrap();
        assert!(!read.bit(0), "victim inverted");
        assert!(!read.bit(2), "aggressor written");
    }

    #[test]
    fn state_coupling_fault_holds_victim_while_active() {
        let aggressor = BitAddress::new(0, 1);
        let victim = BitAddress::new(1, 1);
        let cfst = Fault::coupling_state(aggressor, victim, true, false);
        let mut mem = FaultyMemory::with_faults(config(2, 4), vec![cfst]).unwrap();
        // Activate the aggressor.
        mem.write_word(0, Word::from_bits(0b0010, 4).unwrap())
            .unwrap();
        // Any attempt to set the victim to 1 is overridden while active.
        mem.write_word(1, Word::ones(4)).unwrap();
        assert!(!mem.peek_bit(victim).unwrap());
        // Deactivate the aggressor, then the victim can be written.
        mem.write_word(0, Word::zeros(4)).unwrap();
        mem.write_word(1, Word::ones(4)).unwrap();
        assert!(mem.peek_bit(victim).unwrap());
    }

    #[test]
    fn intra_word_coupling_applies_within_a_single_write() {
        // Aggressor bit 0 rising forces victim bit 3 (same word) to 0.
        let aggressor = BitAddress::new(0, 0);
        let victim = BitAddress::new(0, 3);
        let cfid = Fault::coupling_idempotent(aggressor, victim, Transition::Rising, false);
        let mut mem = FaultyMemory::with_faults(config(2, 4), vec![cfid]).unwrap();
        // Write 1 to both bits in one word write: aggressor rises, victim forced back to 0.
        mem.write_word(0, Word::from_bits(0b1001, 4).unwrap())
            .unwrap();
        let read = mem.peek_word(0).unwrap();
        assert!(read.bit(0));
        assert!(!read.bit(3));
    }

    #[test]
    fn coupling_chain_propagates_transitively() {
        // a rising -> b forced to 1; b rising -> c forced to 1.
        let a = BitAddress::new(0, 0);
        let b = BitAddress::new(1, 0);
        let c = BitAddress::new(2, 0);
        let faults = vec![
            Fault::coupling_idempotent(a, b, Transition::Rising, true),
            Fault::coupling_idempotent(b, c, Transition::Rising, true),
        ];
        let mut mem = FaultyMemory::with_faults(config(4, 1), faults).unwrap();
        mem.write_word(0, Word::ones(1)).unwrap();
        assert!(mem.peek_bit(b).unwrap());
        assert!(mem.peek_bit(c).unwrap());
    }

    #[test]
    fn coupling_cycle_terminates() {
        // Two inversion faults coupling each other: propagation must not hang.
        let a = BitAddress::new(0, 0);
        let b = BitAddress::new(1, 0);
        let faults = vec![
            Fault::coupling_inversion(a, b, Transition::Rising),
            Fault::coupling_inversion(b, a, Transition::Rising),
        ];
        let mut mem = FaultyMemory::with_faults(config(2, 1), faults).unwrap();
        mem.write_word(0, Word::ones(1)).unwrap();
        // Reaching this point is the assertion (bounded propagation).
    }

    #[test]
    fn write_rejects_bad_shapes() {
        let mut mem = FaultyMemory::fault_free(config(2, 8));
        assert!(matches!(
            mem.write_word(9, Word::zeros(8)),
            Err(MemError::AddressOutOfRange { .. })
        ));
        assert!(matches!(
            mem.write_word(0, Word::zeros(4)),
            Err(MemError::WidthMismatch { .. })
        ));
        assert!(matches!(
            mem.write_bit(BitAddress::new(0, 9), true),
            Err(MemError::BitOutOfRange { .. })
        ));
    }

    #[test]
    fn tracing_records_accesses() {
        let mut mem = FaultyMemory::fault_free(config(2, 4));
        mem.set_tracing(true);
        mem.write_word(0, Word::ones(4)).unwrap();
        mem.read_word(0).unwrap();
        let trace = mem.take_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.writes().len(), 1);
        assert_eq!(trace.reads().len(), 1);
        assert!(mem.take_trace().is_empty());
    }

    #[test]
    fn fill_random_is_deterministic_and_transparent_baseline() {
        let mut a = FaultyMemory::fault_free(config(16, 8));
        let mut b = FaultyMemory::fault_free(config(16, 8));
        a.fill_random(99);
        b.fill_random(99);
        assert_eq!(a.content(), b.content());
        let mut c = FaultyMemory::fault_free(config(16, 8));
        c.fill_random(100);
        assert_ne!(a.content(), c.content());
    }

    /// Drives a memory through a representative access mix so reuse tests
    /// can compare observable behaviour, not just the initial state.
    fn exercise(mem: &mut FaultyMemory) -> (Vec<Word>, Vec<Word>) {
        let width = mem.width();
        let mut reads = Vec::new();
        for address in 0..mem.words() {
            mem.write_word(address, Word::ones(width)).unwrap();
            reads.push(mem.read_word(address).unwrap());
            mem.write_word(address, Word::zeros(width)).unwrap();
            reads.push(mem.read_word(address).unwrap());
        }
        (reads, mem.content())
    }

    #[test]
    fn reused_memory_is_indistinguishable_from_fresh() {
        let c = config(6, 4);
        let first = vec![
            Fault::stuck_at(BitAddress::new(1, 2), true),
            Fault::coupling_state(BitAddress::new(0, 0), BitAddress::new(3, 1), false, true),
        ];
        let second = Fault::coupling_idempotent(
            BitAddress::new(2, 0),
            BitAddress::new(4, 3),
            Transition::Rising,
            true,
        );

        // Dirty the arena memory thoroughly: faults, content, stats, trace.
        let mut arena = FaultyMemory::with_faults(c, first).unwrap();
        arena.set_tracing(true);
        arena.fill_random(77);
        let _ = exercise(&mut arena);
        assert!(arena.stats().total() > 0);
        assert!(!arena.take_trace().is_empty());
        let _ = exercise(&mut arena);

        // Re-arm with a different fault; compare against a fresh build.
        arena.reset_with_fault(second).unwrap();
        let mut fresh = FaultyMemory::with_faults(c, vec![second]).unwrap();
        fresh.set_tracing(true);
        assert_eq!(arena.content(), fresh.content());
        assert_eq!(arena.stats(), AccessStats::default());
        assert_eq!(arena.faults(), fresh.faults());
        assert!(arena.take_trace().is_empty());
        let (arena_reads, arena_content) = exercise(&mut arena);
        let (fresh_reads, fresh_content) = exercise(&mut fresh);
        assert_eq!(arena_reads, fresh_reads);
        assert_eq!(arena_content, fresh_content);
        assert_eq!(arena.stats(), fresh.stats());
        assert_eq!(arena.take_trace(), fresh.take_trace());
    }

    #[test]
    fn load_image_agrees_with_word_level_load() {
        let c = config(9, 13);
        let saf = Fault::stuck_at(BitAddress::new(4, 7), true);
        // Snapshot a pseudo-random content from a fault-free scratch memory.
        let mut scratch = FaultyMemory::fault_free(c);
        scratch.fill_random(55);
        let image = scratch.snapshot();
        let content = scratch.content();
        // Restoring via the image equals rebuilding word by word.
        let mut by_image = FaultyMemory::with_faults(c, vec![saf]).unwrap();
        by_image.load_image(&image).unwrap();
        let mut by_words = FaultyMemory::with_faults(c, vec![saf]).unwrap();
        by_words.load(&content).unwrap();
        assert_eq!(by_image.content(), by_words.content());
        // Shape mismatches are rejected.
        let other = FaultyMemory::fault_free(config(4, 13)).snapshot();
        assert!(by_image.load_image(&other).is_err());
    }

    #[test]
    fn reset_with_faults_accepts_sets_and_rejects_bad_faults() {
        let c = config(4, 4);
        let mut mem = FaultyMemory::fault_free(c);
        mem.fill_random(3);
        mem.reset_with_faults(vec![Fault::stuck_at(BitAddress::new(0, 0), true)])
            .unwrap();
        assert_eq!(mem.faults().len(), 1);
        assert!(mem.peek_bit(BitAddress::new(0, 0)).unwrap());

        // Invalid faults are rejected and leave the previous state in place.
        assert!(mem
            .reset_with_fault(Fault::stuck_at(BitAddress::new(9, 0), true))
            .is_err());
        assert_eq!(mem.faults().len(), 1);
        assert!(mem
            .reset_with_faults(vec![Fault::coupling_inversion(
                BitAddress::new(1, 1),
                BitAddress::new(1, 1),
                Transition::Rising,
            )])
            .is_err());
        assert_eq!(mem.faults().len(), 1);
    }

    #[test]
    fn reset_content_clears_stats_and_trace_but_keeps_faults() {
        let saf = Fault::stuck_at(BitAddress::new(0, 1), true);
        let mut mem = FaultyMemory::with_faults(config(3, 4), vec![saf]).unwrap();
        mem.set_tracing(true);
        mem.fill_random(9);
        let _ = exercise(&mut mem);
        mem.reset_content();
        assert_eq!(mem.stats(), AccessStats::default());
        assert!(mem.take_trace().is_empty());
        assert_eq!(mem.faults().len(), 1);
        // Zeroed content with the stuck-at re-enforced.
        let fresh = FaultyMemory::with_faults(config(3, 4), vec![saf]).unwrap();
        assert_eq!(mem.content(), fresh.content());
    }

    #[test]
    fn inject_and_clear_faults() {
        let mut mem = FaultyMemory::fault_free(config(2, 4));
        mem.inject(Fault::stuck_at(BitAddress::new(0, 0), true))
            .unwrap();
        assert_eq!(mem.faults().len(), 1);
        assert!(mem.peek_bit(BitAddress::new(0, 0)).unwrap());
        assert!(mem
            .inject(Fault::stuck_at(BitAddress::new(9, 0), true))
            .is_err());
        mem.clear_faults();
        assert!(mem.faults().is_empty());
    }
}
