use serde::{Deserialize, Serialize};

use crate::{MemError, Word};

/// Dense bit-level backing store for a word-oriented memory.
///
/// Bits are stored word-major: cell `(word, bit)` lives at linear index
/// `word * width + bit`. The store itself is fault-free; fault behaviour is
/// layered on top by [`crate::FaultyMemory`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitStorage {
    blocks: Vec<u64>,
    words: usize,
    width: usize,
}

impl BitStorage {
    /// Creates an all-zero store for `words` words of `width` bits.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::EmptyMemory`] if `words` is zero and
    /// [`MemError::InvalidWidth`] if the width is unsupported.
    pub fn new(words: usize, width: usize) -> Result<Self, MemError> {
        if words == 0 {
            return Err(MemError::EmptyMemory);
        }
        if width == 0 || width > crate::MAX_WORD_WIDTH {
            return Err(MemError::InvalidWidth { width });
        }
        let total_bits = words * width;
        let blocks = vec![0u64; total_bits.div_ceil(64)];
        Ok(Self { blocks, words, width })
    }

    /// Number of words.
    #[must_use]
    pub fn words(&self) -> usize {
        self.words
    }

    /// Word width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total number of bits in the store.
    #[must_use]
    pub fn total_bits(&self) -> usize {
        self.words * self.width
    }

    fn check_cell(&self, word: usize, bit: usize) -> Result<(), MemError> {
        if word >= self.words {
            return Err(MemError::AddressOutOfRange {
                address: word,
                words: self.words,
            });
        }
        if bit >= self.width {
            return Err(MemError::BitOutOfRange {
                bit,
                width: self.width,
            });
        }
        Ok(())
    }

    /// Reads a single bit.
    ///
    /// # Errors
    ///
    /// Returns an address or bit range error if the cell does not exist.
    pub fn bit(&self, word: usize, bit: usize) -> Result<bool, MemError> {
        self.check_cell(word, bit)?;
        let index = word * self.width + bit;
        Ok((self.blocks[index / 64] >> (index % 64)) & 1 == 1)
    }

    /// Writes a single bit.
    ///
    /// # Errors
    ///
    /// Returns an address or bit range error if the cell does not exist.
    pub fn set_bit(&mut self, word: usize, bit: usize, value: bool) -> Result<(), MemError> {
        self.check_cell(word, bit)?;
        let index = word * self.width + bit;
        let block = &mut self.blocks[index / 64];
        if value {
            *block |= 1 << (index % 64);
        } else {
            *block &= !(1 << (index % 64));
        }
        Ok(())
    }

    /// Reads a full word.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AddressOutOfRange`] if `word` does not exist.
    pub fn word(&self, word: usize) -> Result<Word, MemError> {
        if word >= self.words {
            return Err(MemError::AddressOutOfRange {
                address: word,
                words: self.words,
            });
        }
        let mut bits = 0u128;
        for bit in 0..self.width {
            let index = word * self.width + bit;
            if (self.blocks[index / 64] >> (index % 64)) & 1 == 1 {
                bits |= 1 << bit;
            }
        }
        Word::from_bits(bits, self.width)
    }

    /// Writes a full word.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AddressOutOfRange`] for a bad address and
    /// [`MemError::WidthMismatch`] if the word width differs from the store
    /// width.
    pub fn set_word(&mut self, word: usize, value: Word) -> Result<(), MemError> {
        if word >= self.words {
            return Err(MemError::AddressOutOfRange {
                address: word,
                words: self.words,
            });
        }
        if value.width() != self.width {
            return Err(MemError::WidthMismatch {
                found: value.width(),
                expected: self.width,
            });
        }
        for bit in 0..self.width {
            self.set_bit(word, bit, value.bit(bit))?;
        }
        Ok(())
    }

    /// Copies the whole contents out as a vector of words.
    #[must_use]
    pub fn to_words(&self) -> Vec<Word> {
        (0..self.words)
            .map(|w| self.word(w).expect("word index in range"))
            .collect()
    }

    /// Fills every word with the same value.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::WidthMismatch`] if the word width differs from the
    /// store width.
    pub fn fill(&mut self, value: Word) -> Result<(), MemError> {
        for w in 0..self.words {
            self.set_word(w, value)?;
        }
        Ok(())
    }

    /// Loads the whole contents from a slice of words.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::LoadLengthMismatch`] if the slice length differs
    /// from the number of words, or [`MemError::WidthMismatch`] for a width
    /// mismatch.
    pub fn load(&mut self, values: &[Word]) -> Result<(), MemError> {
        if values.len() != self.words {
            return Err(MemError::LoadLengthMismatch {
                found: values.len(),
                expected: self.words,
            });
        }
        for (w, value) in values.iter().enumerate() {
            self.set_word(w, *value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_storage_is_all_zero() {
        let s = BitStorage::new(4, 8).unwrap();
        assert_eq!(s.total_bits(), 32);
        for w in 0..4 {
            assert!(s.word(w).unwrap().is_zero());
        }
    }

    #[test]
    fn rejects_empty_or_invalid_shapes() {
        assert_eq!(BitStorage::new(0, 8), Err(MemError::EmptyMemory));
        assert_eq!(BitStorage::new(4, 0), Err(MemError::InvalidWidth { width: 0 }));
        assert_eq!(
            BitStorage::new(4, 129),
            Err(MemError::InvalidWidth { width: 129 })
        );
    }

    #[test]
    fn word_round_trip() {
        let mut s = BitStorage::new(3, 8).unwrap();
        let v = Word::from_bits(0b1010_0110, 8).unwrap();
        s.set_word(1, v).unwrap();
        assert_eq!(s.word(1).unwrap(), v);
        assert!(s.word(0).unwrap().is_zero());
        assert!(s.word(2).unwrap().is_zero());
    }

    #[test]
    fn bit_round_trip_across_block_boundary() {
        // 3 words * 40 bits = 120 bits spans two u64 blocks.
        let mut s = BitStorage::new(3, 40).unwrap();
        s.set_bit(1, 30, true).unwrap();
        s.set_bit(2, 39, true).unwrap();
        assert!(s.bit(1, 30).unwrap());
        assert!(s.bit(2, 39).unwrap());
        assert!(!s.bit(1, 29).unwrap());
        s.set_bit(1, 30, false).unwrap();
        assert!(!s.bit(1, 30).unwrap());
    }

    #[test]
    fn out_of_range_access_is_rejected() {
        let s = BitStorage::new(2, 8).unwrap();
        assert!(matches!(s.bit(2, 0), Err(MemError::AddressOutOfRange { .. })));
        assert!(matches!(s.bit(0, 8), Err(MemError::BitOutOfRange { .. })));
        assert!(matches!(s.word(5), Err(MemError::AddressOutOfRange { .. })));
    }

    #[test]
    fn set_word_rejects_width_mismatch() {
        let mut s = BitStorage::new(2, 8).unwrap();
        assert!(matches!(
            s.set_word(0, Word::zeros(4)),
            Err(MemError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn fill_and_load_round_trip() {
        let mut s = BitStorage::new(3, 4).unwrap();
        s.fill(Word::from_bits(0b0101, 4).unwrap()).unwrap();
        assert!(s.to_words().iter().all(|w| w.to_bits() == 0b0101));

        let new_contents = vec![
            Word::from_bits(0b0001, 4).unwrap(),
            Word::from_bits(0b0010, 4).unwrap(),
            Word::from_bits(0b0100, 4).unwrap(),
        ];
        s.load(&new_contents).unwrap();
        assert_eq!(s.to_words(), new_contents);

        assert!(matches!(
            s.load(&new_contents[..2]),
            Err(MemError::LoadLengthMismatch { .. })
        ));
    }

    #[test]
    fn wide_words_round_trip() {
        let mut s = BitStorage::new(2, 128).unwrap();
        let v = Word::from_bits(u128::MAX - 12345, 128).unwrap();
        s.set_word(1, v).unwrap();
        assert_eq!(s.word(1).unwrap(), v);
    }
}
