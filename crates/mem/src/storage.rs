use serde::{Deserialize, Serialize};

use crate::{MemError, Word};

/// Dense bit-level backing store for a word-oriented memory.
///
/// Bits are stored word-major: cell `(word, bit)` lives at linear index
/// `word * width + bit`. The store itself is fault-free; fault behaviour is
/// layered on top by [`crate::FaultyMemory`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitStorage {
    blocks: Vec<u64>,
    words: usize,
    width: usize,
}

impl BitStorage {
    /// Creates an all-zero store for `words` words of `width` bits.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::EmptyMemory`] if `words` is zero and
    /// [`MemError::InvalidWidth`] if the width is unsupported.
    pub fn new(words: usize, width: usize) -> Result<Self, MemError> {
        if words == 0 {
            return Err(MemError::EmptyMemory);
        }
        if width == 0 || width > crate::MAX_WORD_WIDTH {
            return Err(MemError::InvalidWidth { width });
        }
        let total_bits = words * width;
        let blocks = vec![0u64; total_bits.div_ceil(64)];
        Ok(Self {
            blocks,
            words,
            width,
        })
    }

    /// Number of words.
    #[must_use]
    pub fn words(&self) -> usize {
        self.words
    }

    /// Word width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total number of bits in the store.
    #[must_use]
    pub fn total_bits(&self) -> usize {
        self.words * self.width
    }

    fn check_cell(&self, word: usize, bit: usize) -> Result<(), MemError> {
        if word >= self.words {
            return Err(MemError::AddressOutOfRange {
                address: word,
                words: self.words,
            });
        }
        if bit >= self.width {
            return Err(MemError::BitOutOfRange {
                bit,
                width: self.width,
            });
        }
        Ok(())
    }

    /// Reads a single bit.
    ///
    /// # Errors
    ///
    /// Returns an address or bit range error if the cell does not exist.
    pub fn bit(&self, word: usize, bit: usize) -> Result<bool, MemError> {
        self.check_cell(word, bit)?;
        let index = word * self.width + bit;
        Ok((self.blocks[index / 64] >> (index % 64)) & 1 == 1)
    }

    /// Writes a single bit.
    ///
    /// # Errors
    ///
    /// Returns an address or bit range error if the cell does not exist.
    pub fn set_bit(&mut self, word: usize, bit: usize, value: bool) -> Result<(), MemError> {
        self.check_cell(word, bit)?;
        let index = word * self.width + bit;
        let block = &mut self.blocks[index / 64];
        if value {
            *block |= 1 << (index % 64);
        } else {
            *block &= !(1 << (index % 64));
        }
        Ok(())
    }

    /// Reads a full word.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AddressOutOfRange`] if `word` does not exist.
    pub fn word(&self, word: usize) -> Result<Word, MemError> {
        if word >= self.words {
            return Err(MemError::AddressOutOfRange {
                address: word,
                words: self.words,
            });
        }
        Word::from_bits(self.word_bits(word), self.width)
    }

    /// Raw bits of a word, assembled with block-masked `u64` operations
    /// instead of per-bit probing. A word of width ≤ 128 spans at most three
    /// consecutive blocks.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range; use [`BitStorage::word`] for a
    /// fallible variant.
    #[must_use]
    pub fn word_bits(&self, word: usize) -> u128 {
        assert!(
            word < self.words,
            "word {word} out of range for {}-word store",
            self.words
        );
        let start = word * self.width;
        let mut bits = 0u128;
        let mut got = 0usize;
        let mut block = start / 64;
        let mut offset = start % 64;
        while got < self.width {
            let take = (64 - offset).min(self.width - got);
            let chunk = (self.blocks[block] >> offset) as u128 & mask128(take);
            bits |= chunk << got;
            got += take;
            block += 1;
            offset = 0;
        }
        bits
    }

    /// Overwrites the raw bits of a word with block-masked `u64` operations.
    /// Bits above the store width are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range; use [`BitStorage::set_word`] for a
    /// fallible variant.
    pub fn set_word_bits(&mut self, word: usize, bits: u128) {
        assert!(
            word < self.words,
            "word {word} out of range for {}-word store",
            self.words
        );
        let start = word * self.width;
        let mut put = 0usize;
        let mut block = start / 64;
        let mut offset = start % 64;
        while put < self.width {
            let take = (64 - offset).min(self.width - put);
            let chunk = ((bits >> put) as u64) & mask64(take);
            let slot = &mut self.blocks[block];
            *slot = (*slot & !(mask64(take) << offset)) | (chunk << offset);
            put += take;
            block += 1;
            offset = 0;
        }
    }

    /// Writes a full word.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AddressOutOfRange`] for a bad address and
    /// [`MemError::WidthMismatch`] if the word width differs from the store
    /// width.
    pub fn set_word(&mut self, word: usize, value: Word) -> Result<(), MemError> {
        if word >= self.words {
            return Err(MemError::AddressOutOfRange {
                address: word,
                words: self.words,
            });
        }
        if value.width() != self.width {
            return Err(MemError::WidthMismatch {
                found: value.width(),
                expected: self.width,
            });
        }
        self.set_word_bits(word, value.to_bits());
        Ok(())
    }

    /// Copies the whole contents out as a vector of words.
    #[must_use]
    pub fn to_words(&self) -> Vec<Word> {
        (0..self.words)
            .map(|w| self.word(w).expect("word index in range"))
            .collect()
    }

    /// Fills every word with the same value.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::WidthMismatch`] if the word width differs from the
    /// store width.
    pub fn fill(&mut self, value: Word) -> Result<(), MemError> {
        for w in 0..self.words {
            self.set_word(w, value)?;
        }
        Ok(())
    }

    /// Overwrites this store's bits with another store's, block by block —
    /// a restore that is O(blocks) `u64` copies instead of O(words)
    /// word-rebuild operations, which is what makes shared-content restore
    /// cheap for fault-injection arenas.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::LoadLengthMismatch`] /
    /// [`MemError::WidthMismatch`] if the shapes differ.
    pub fn copy_from(&mut self, other: &BitStorage) -> Result<(), MemError> {
        if other.words != self.words {
            return Err(MemError::LoadLengthMismatch {
                found: other.words,
                expected: self.words,
            });
        }
        if other.width != self.width {
            return Err(MemError::WidthMismatch {
                found: other.width,
                expected: self.width,
            });
        }
        self.blocks.copy_from_slice(&other.blocks);
        Ok(())
    }

    /// Resets every bit to zero without touching the allocation.
    ///
    /// This is the arena-reuse primitive behind
    /// [`crate::FaultyMemory::reset_content`]: a cleared store is
    /// indistinguishable from a freshly constructed one, but the block
    /// vector (and therefore the heap allocation) is retained.
    pub fn clear(&mut self) {
        self.blocks.fill(0);
    }

    /// Loads the whole contents from a slice of words.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::LoadLengthMismatch`] if the slice length differs
    /// from the number of words, or [`MemError::WidthMismatch`] for a width
    /// mismatch.
    pub fn load(&mut self, values: &[Word]) -> Result<(), MemError> {
        if values.len() != self.words {
            return Err(MemError::LoadLengthMismatch {
                found: values.len(),
                expected: self.words,
            });
        }
        for (w, value) in values.iter().enumerate() {
            self.set_word(w, *value)?;
        }
        Ok(())
    }
}

fn mask128(bits: usize) -> u128 {
    if bits >= 128 {
        u128::MAX
    } else {
        (1u128 << bits) - 1
    }
}

fn mask64(bits: usize) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_storage_is_all_zero() {
        let s = BitStorage::new(4, 8).unwrap();
        assert_eq!(s.total_bits(), 32);
        for w in 0..4 {
            assert!(s.word(w).unwrap().is_zero());
        }
    }

    #[test]
    fn rejects_empty_or_invalid_shapes() {
        assert_eq!(BitStorage::new(0, 8), Err(MemError::EmptyMemory));
        assert_eq!(
            BitStorage::new(4, 0),
            Err(MemError::InvalidWidth { width: 0 })
        );
        assert_eq!(
            BitStorage::new(4, 129),
            Err(MemError::InvalidWidth { width: 129 })
        );
    }

    #[test]
    fn word_round_trip() {
        let mut s = BitStorage::new(3, 8).unwrap();
        let v = Word::from_bits(0b1010_0110, 8).unwrap();
        s.set_word(1, v).unwrap();
        assert_eq!(s.word(1).unwrap(), v);
        assert!(s.word(0).unwrap().is_zero());
        assert!(s.word(2).unwrap().is_zero());
    }

    #[test]
    fn bit_round_trip_across_block_boundary() {
        // 3 words * 40 bits = 120 bits spans two u64 blocks.
        let mut s = BitStorage::new(3, 40).unwrap();
        s.set_bit(1, 30, true).unwrap();
        s.set_bit(2, 39, true).unwrap();
        assert!(s.bit(1, 30).unwrap());
        assert!(s.bit(2, 39).unwrap());
        assert!(!s.bit(1, 29).unwrap());
        s.set_bit(1, 30, false).unwrap();
        assert!(!s.bit(1, 30).unwrap());
    }

    #[test]
    fn out_of_range_access_is_rejected() {
        let s = BitStorage::new(2, 8).unwrap();
        assert!(matches!(
            s.bit(2, 0),
            Err(MemError::AddressOutOfRange { .. })
        ));
        assert!(matches!(s.bit(0, 8), Err(MemError::BitOutOfRange { .. })));
        assert!(matches!(s.word(5), Err(MemError::AddressOutOfRange { .. })));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn raw_word_read_out_of_range_panics() {
        // Address 5 of a 2x3 store still lands inside the first allocated
        // block, so without an explicit check it would silently misread
        // padding instead of panicking.
        let s = BitStorage::new(2, 3).unwrap();
        let _ = s.word_bits(5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn raw_word_write_out_of_range_panics() {
        let mut s = BitStorage::new(2, 3).unwrap();
        s.set_word_bits(5, 0b111);
    }

    #[test]
    fn set_word_rejects_width_mismatch() {
        let mut s = BitStorage::new(2, 8).unwrap();
        assert!(matches!(
            s.set_word(0, Word::zeros(4)),
            Err(MemError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn fill_and_load_round_trip() {
        let mut s = BitStorage::new(3, 4).unwrap();
        s.fill(Word::from_bits(0b0101, 4).unwrap()).unwrap();
        assert!(s.to_words().iter().all(|w| w.to_bits() == 0b0101));

        let new_contents = vec![
            Word::from_bits(0b0001, 4).unwrap(),
            Word::from_bits(0b0010, 4).unwrap(),
            Word::from_bits(0b0100, 4).unwrap(),
        ];
        s.load(&new_contents).unwrap();
        assert_eq!(s.to_words(), new_contents);

        assert!(matches!(
            s.load(&new_contents[..2]),
            Err(MemError::LoadLengthMismatch { .. })
        ));
    }

    #[test]
    fn block_masked_word_ops_agree_with_per_bit_ops() {
        // Odd widths make words straddle u64 block boundaries at varying
        // offsets; the block-masked path must agree with per-bit access for
        // every word and every bit.
        for width in [1usize, 3, 7, 13, 40, 63, 64, 65, 100, 127, 128] {
            let words = 9;
            let mut s = BitStorage::new(words, width).unwrap();
            let mut reference = vec![0u128; words];
            let mut state = 0x1234_5678_9ABC_DEF0u128;
            for (w, slot) in reference.iter_mut().enumerate() {
                state = state
                    .wrapping_mul(0x2545_F491_4F6C_DD1D)
                    .wrapping_add(w as u128);
                let value = state
                    & if width >= 128 {
                        u128::MAX
                    } else {
                        (1 << width) - 1
                    };
                s.set_word_bits(w, value);
                *slot = value;
            }
            for (w, &expected) in reference.iter().enumerate() {
                assert_eq!(s.word_bits(w), expected, "width {width}, word {w}");
                for b in 0..width {
                    assert_eq!(
                        s.bit(w, b).unwrap(),
                        (expected >> b) & 1 == 1,
                        "width {width}, word {w}, bit {b}"
                    );
                }
            }
            // Per-bit writes are observed by the block-masked reader too.
            s.set_bit(words - 1, width - 1, !s.bit(words - 1, width - 1).unwrap())
                .unwrap();
            assert_eq!(
                s.word_bits(words - 1) >> (width - 1) & 1 == 1,
                s.bit(words - 1, width - 1).unwrap()
            );
        }
    }

    #[test]
    fn copy_from_restores_content_and_rejects_shape_mismatch() {
        let mut source = BitStorage::new(3, 40).unwrap();
        source.set_word_bits(1, 0xAB_CDEF);
        let mut target = BitStorage::new(3, 40).unwrap();
        target.set_word_bits(0, 0xFF);
        target.copy_from(&source).unwrap();
        assert_eq!(target, source);

        let mut short = BitStorage::new(2, 40).unwrap();
        assert!(matches!(
            short.copy_from(&source),
            Err(MemError::LoadLengthMismatch { .. })
        ));
        let mut narrow = BitStorage::new(3, 20).unwrap();
        assert!(matches!(
            narrow.copy_from(&source),
            Err(MemError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn clear_zeroes_without_reallocating() {
        let mut s = BitStorage::new(3, 40).unwrap();
        s.set_word_bits(0, 0xFF_FFFF_FFFF);
        s.set_word_bits(2, 0xAB);
        s.clear();
        assert_eq!(s, BitStorage::new(3, 40).unwrap());
    }

    #[test]
    fn wide_words_round_trip() {
        let mut s = BitStorage::new(2, 128).unwrap();
        let v = Word::from_bits(u128::MAX - 12345, 128).unwrap();
        s.set_word(1, v).unwrap();
        assert_eq!(s.word(1).unwrap(), v);
    }
}
