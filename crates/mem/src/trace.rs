use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Word;

/// The kind of access recorded in a trace entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceOp {
    /// A word read.
    Read,
    /// A word write.
    Write,
}

impl fmt::Display for TraceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceOp::Read => f.write_str("r"),
            TraceOp::Write => f.write_str("w"),
        }
    }
}

/// One recorded memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Whether the access was a read or a write.
    pub op: TraceOp,
    /// Word address accessed.
    pub address: usize,
    /// Data read from or written to the memory (post-fault value for writes).
    pub data: Word,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]={}", self.op, self.address, self.data)
    }
}

/// A recorded sequence of memory accesses.
///
/// Traces are produced by [`crate::FaultyMemory`] when tracing is enabled and
/// are used by the BIST crate to reconstruct read streams (for example when
/// rendering the paper's Table 1).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry.
    pub fn push(&mut self, entry: TraceEntry) {
        self.entries.push(entry);
    }

    /// Number of recorded accesses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the recorded accesses in order.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Only the read accesses, in order.
    #[must_use]
    pub fn reads(&self) -> Vec<TraceEntry> {
        self.entries
            .iter()
            .copied()
            .filter(|e| e.op == TraceOp::Read)
            .collect()
    }

    /// Only the write accesses, in order.
    #[must_use]
    pub fn writes(&self) -> Vec<TraceEntry> {
        self.entries
            .iter()
            .copied()
            .filter(|e| e.op == TraceOp::Write)
            .collect()
    }

    /// Clears all recorded accesses.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl IntoIterator for Trace {
    type Item = TraceEntry;
    type IntoIter = std::vec::IntoIter<TraceEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl FromIterator<TraceEntry> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceEntry>>(iter: I) -> Self {
        Self {
            entries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(op: TraceOp, address: usize, bits: u128) -> TraceEntry {
        TraceEntry {
            op,
            address,
            data: Word::from_bits(bits, 8).unwrap(),
        }
    }

    #[test]
    fn push_and_filter() {
        let mut trace = Trace::new();
        assert!(trace.is_empty());
        trace.push(entry(TraceOp::Write, 0, 0x00));
        trace.push(entry(TraceOp::Read, 0, 0x00));
        trace.push(entry(TraceOp::Read, 1, 0xFF));
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.reads().len(), 2);
        assert_eq!(trace.writes().len(), 1);
        assert_eq!(trace.reads()[1].address, 1);
    }

    #[test]
    fn display_is_compact() {
        let e = entry(TraceOp::Read, 3, 0b0101_0101);
        assert_eq!(e.to_string(), "r[3]=01010101");
    }

    #[test]
    fn clear_and_collect() {
        let mut trace: Trace = vec![entry(TraceOp::Read, 0, 1), entry(TraceOp::Write, 1, 2)]
            .into_iter()
            .collect();
        assert_eq!(trace.len(), 2);
        trace.clear();
        assert!(trace.is_empty());
    }
}
