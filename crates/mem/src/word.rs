use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

use serde::{Deserialize, Serialize};

use crate::MemError;

/// Maximum supported word width in bits.
///
/// Words are stored in a `u128`, so widths from 1 to 128 bits are supported,
/// which covers the word sizes evaluated in the paper (up to 128 bits,
/// Table 3).
pub const MAX_WORD_WIDTH: usize = 128;

/// A fixed-width word of memory data.
///
/// A [`Word`] couples a raw bit pattern with its width so that bitwise
/// operators, complements and formatting always stay confined to the
/// configured word size. Bit 0 is the least-significant bit.
///
/// ```
/// use twm_mem::Word;
///
/// # fn main() -> Result<(), twm_mem::MemError> {
/// let background = Word::from_bits(0b0101_0101, 8)?;
/// assert_eq!((!background).to_bits(), 0b1010_1010);
/// assert_eq!(background.bit(0), true);
/// assert_eq!(background.count_ones(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Word {
    bits: u128,
    width: u8,
}

impl Word {
    /// Creates a word from raw bits, masking to `width` bits.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidWidth`] if `width` is zero or greater than
    /// [`MAX_WORD_WIDTH`].
    pub fn from_bits(bits: u128, width: usize) -> Result<Self, MemError> {
        if width == 0 || width > MAX_WORD_WIDTH {
            return Err(MemError::InvalidWidth { width });
        }
        Ok(Self {
            bits: bits & Self::mask_for(width),
            width: width as u8,
        })
    }

    /// Creates an all-zero word of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than [`MAX_WORD_WIDTH`]; use
    /// [`Word::from_bits`] for a fallible constructor.
    #[must_use]
    pub fn zeros(width: usize) -> Self {
        Self::from_bits(0, width).expect("valid word width")
    }

    /// Creates an all-one word of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than [`MAX_WORD_WIDTH`].
    #[must_use]
    pub fn ones(width: usize) -> Self {
        Self::from_bits(u128::MAX, width).expect("valid word width")
    }

    /// Creates a single-bit word (width 1) from a boolean.
    #[must_use]
    pub fn from_bool(value: bool) -> Self {
        Self {
            bits: u128::from(value),
            width: 1,
        }
    }

    /// Builds a word from an iterator of bits, least-significant first.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidWidth`] if the iterator yields zero bits or
    /// more than [`MAX_WORD_WIDTH`] bits.
    pub fn from_bit_iter<I: IntoIterator<Item = bool>>(bits: I) -> Result<Self, MemError> {
        let mut value = 0u128;
        let mut width = 0usize;
        for (index, bit) in bits.into_iter().enumerate() {
            if index >= MAX_WORD_WIDTH {
                return Err(MemError::InvalidWidth { width: index + 1 });
            }
            if bit {
                value |= 1 << index;
            }
            width = index + 1;
        }
        Self::from_bits(value, width)
    }

    fn mask_for(width: usize) -> u128 {
        if width >= 128 {
            u128::MAX
        } else {
            (1u128 << width) - 1
        }
    }

    /// The raw bit pattern (always masked to the word width).
    #[must_use]
    pub fn to_bits(self) -> u128 {
        self.bits
    }

    /// The word width in bits.
    #[must_use]
    pub fn width(self) -> usize {
        usize::from(self.width)
    }

    /// Value of bit `bit` (0 = least-significant).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= self.width()`.
    #[must_use]
    pub fn bit(self, bit: usize) -> bool {
        assert!(
            bit < self.width(),
            "bit {bit} out of range for {}-bit word",
            self.width()
        );
        (self.bits >> bit) & 1 == 1
    }

    /// Returns a copy of the word with bit `bit` set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= self.width()`.
    #[must_use]
    pub fn with_bit(self, bit: usize, value: bool) -> Self {
        assert!(
            bit < self.width(),
            "bit {bit} out of range for {}-bit word",
            self.width()
        );
        let bits = if value {
            self.bits | (1 << bit)
        } else {
            self.bits & !(1 << bit)
        };
        Self {
            bits,
            width: self.width,
        }
    }

    /// Number of bits set to one.
    #[must_use]
    pub fn count_ones(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Iterates over the bits, least-significant first.
    pub fn bits(self) -> impl Iterator<Item = bool> {
        (0..self.width()).map(move |i| (self.bits >> i) & 1 == 1)
    }

    /// Whether every bit is zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.bits == 0
    }

    /// Whether every bit is one.
    #[must_use]
    pub fn is_ones(self) -> bool {
        self.bits == Self::mask_for(self.width())
    }

    /// Bitwise complement confined to the word width.
    #[must_use]
    pub fn complement(self) -> Self {
        Self {
            bits: !self.bits & Self::mask_for(self.width()),
            width: self.width,
        }
    }

    /// XOR with another word of the same width.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ; use [`Word::checked_xor`] for a fallible
    /// variant.
    #[must_use]
    pub fn xor(self, other: Self) -> Self {
        self.checked_xor(other).expect("word widths must match")
    }

    /// XOR with another word, failing on width mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::WidthMismatch`] if the widths differ.
    pub fn checked_xor(self, other: Self) -> Result<Self, MemError> {
        if self.width != other.width {
            return Err(MemError::WidthMismatch {
                found: other.width(),
                expected: self.width(),
            });
        }
        Ok(Self {
            bits: self.bits ^ other.bits,
            width: self.width,
        })
    }

    /// Renders the word as a fixed-width binary string, most-significant bit
    /// first (the order used in the paper's tables).
    #[must_use]
    pub fn to_binary_string(self) -> String {
        (0..self.width())
            .rev()
            .map(|i| if self.bit(i) { '1' } else { '0' })
            .collect()
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_binary_string())
    }
}

impl fmt::Binary for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.bits, f)
    }
}

impl fmt::LowerHex for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.bits, f)
    }
}

impl fmt::UpperHex for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.bits, f)
    }
}

impl Not for Word {
    type Output = Word;

    fn not(self) -> Word {
        self.complement()
    }
}

impl BitXor for Word {
    type Output = Word;

    fn bitxor(self, rhs: Word) -> Word {
        self.xor(rhs)
    }
}

impl BitAnd for Word {
    type Output = Word;

    fn bitand(self, rhs: Word) -> Word {
        assert_eq!(self.width, rhs.width, "word widths must match");
        Word {
            bits: self.bits & rhs.bits,
            width: self.width,
        }
    }
}

impl BitOr for Word {
    type Output = Word;

    fn bitor(self, rhs: Word) -> Word {
        assert_eq!(self.width, rhs.width, "word widths must match");
        Word {
            bits: self.bits | rhs.bits,
            width: self.width,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bits_masks_to_width() {
        let w = Word::from_bits(0xFFFF, 8).unwrap();
        assert_eq!(w.to_bits(), 0xFF);
        assert_eq!(w.width(), 8);
    }

    #[test]
    fn from_bits_rejects_bad_widths() {
        assert_eq!(
            Word::from_bits(0, 0),
            Err(MemError::InvalidWidth { width: 0 })
        );
        assert_eq!(
            Word::from_bits(0, 129),
            Err(MemError::InvalidWidth { width: 129 })
        );
    }

    #[test]
    fn full_width_words_are_supported() {
        let w = Word::ones(128);
        assert_eq!(w.count_ones(), 128);
        assert!(w.is_ones());
        assert!((!w).is_zero());
    }

    #[test]
    fn zeros_and_ones_are_complements() {
        for width in [1usize, 2, 7, 8, 16, 31, 64, 128] {
            assert_eq!(!Word::zeros(width), Word::ones(width));
            assert_eq!(!Word::ones(width), Word::zeros(width));
        }
    }

    #[test]
    fn bit_access_and_update() {
        let w = Word::zeros(8).with_bit(3, true);
        assert!(w.bit(3));
        assert!(!w.bit(2));
        assert_eq!(w.count_ones(), 1);
        assert_eq!(w.with_bit(3, false), Word::zeros(8));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        let _ = Word::zeros(4).bit(4);
    }

    #[test]
    fn xor_requires_matching_width() {
        let a = Word::zeros(8);
        let b = Word::zeros(4);
        assert_eq!(
            a.checked_xor(b),
            Err(MemError::WidthMismatch {
                found: 4,
                expected: 8
            })
        );
    }

    #[test]
    fn xor_is_its_own_inverse() {
        let a = Word::from_bits(0b1010_1100, 8).unwrap();
        let b = Word::from_bits(0b0110_0101, 8).unwrap();
        assert_eq!(a ^ b ^ b, a);
    }

    #[test]
    fn binary_string_is_msb_first() {
        let w = Word::from_bits(0b0000_1111, 8).unwrap();
        assert_eq!(w.to_binary_string(), "00001111");
        assert_eq!(w.to_string(), "00001111");
    }

    #[test]
    fn from_bit_iter_round_trips() {
        let w = Word::from_bits(0b1011, 4).unwrap();
        let rebuilt = Word::from_bit_iter(w.bits()).unwrap();
        assert_eq!(rebuilt, w);
    }

    #[test]
    fn from_bool_is_single_bit() {
        assert_eq!(Word::from_bool(true), Word::ones(1));
        assert_eq!(Word::from_bool(false), Word::zeros(1));
    }
}
