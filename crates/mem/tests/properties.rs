//! Property-based tests for the memory substrate.

use proptest::prelude::*;

use twm_mem::{BitAddress, Fault, FaultyMemory, MemoryBuilder, MemoryConfig, Transition, Word};

fn arb_width() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(1usize),
        Just(2),
        Just(4),
        Just(8),
        Just(16),
        Just(32),
        Just(64),
        Just(128)
    ]
}

proptest! {
    /// XOR-ing a word with another twice always returns the original word
    /// (the algebraic property the transparent transformation relies on).
    #[test]
    fn word_xor_involution(width in arb_width(), a in any::<u128>(), b in any::<u128>()) {
        let a = Word::from_bits(a, width).unwrap();
        let b = Word::from_bits(b, width).unwrap();
        prop_assert_eq!(a ^ b ^ b, a);
    }

    /// Complement is an involution and flips every bit.
    #[test]
    fn word_complement_involution(width in arb_width(), bits in any::<u128>()) {
        let w = Word::from_bits(bits, width).unwrap();
        prop_assert_eq!(!(!w), w);
        prop_assert_eq!(w.count_ones() + (!w).count_ones(), width);
    }

    /// A fault-free memory always reads back exactly what was written, in
    /// any order of writes.
    #[test]
    fn fault_free_memory_is_transparent(
        width in arb_width(),
        words in 1usize..32,
        ops in prop::collection::vec((any::<usize>(), any::<u128>()), 1..64),
    ) {
        let config = MemoryConfig::new(words, width).unwrap();
        let mut mem = FaultyMemory::fault_free(config);
        let mut model = vec![Word::zeros(width); words];
        for (addr, bits) in ops {
            let addr = addr % words;
            let value = Word::from_bits(bits, width).unwrap();
            mem.write_word(addr, value).unwrap();
            model[addr] = value;
        }
        prop_assert_eq!(mem.content(), model);
    }

    /// A stuck-at cell holds its stuck value after arbitrary write sequences.
    #[test]
    fn stuck_at_cell_never_changes(
        width in arb_width(),
        words in 1usize..16,
        stuck_word in any::<usize>(),
        stuck_bit in any::<usize>(),
        stuck_value in any::<bool>(),
        ops in prop::collection::vec((any::<usize>(), any::<u128>()), 1..48),
    ) {
        let stuck_cell = BitAddress::new(stuck_word % words, stuck_bit % width);
        let mem = MemoryBuilder::new(words, width)
            .fault(Fault::stuck_at(stuck_cell, stuck_value))
            .build();
        let mut mem = mem.unwrap();
        for (addr, bits) in ops {
            mem.write_word(addr % words, Word::from_bits(bits, width).unwrap()).unwrap();
            prop_assert_eq!(mem.peek_bit(stuck_cell).unwrap(), stuck_value);
        }
    }

    /// A transition-faulty cell can never be observed in the state that the
    /// blocked transition leads to, once it starts from the opposite state
    /// and only word writes are applied.
    #[test]
    fn transition_fault_blocks_direction(
        words in 1usize..8,
        width in prop_oneof![Just(4usize), Just(8)],
        cell_word in any::<usize>(),
        cell_bit in any::<usize>(),
        rising in any::<bool>(),
        ops in prop::collection::vec((any::<usize>(), any::<u128>()), 1..32),
    ) {
        let cell = BitAddress::new(cell_word % words, cell_bit % width);
        let direction = if rising { Transition::Rising } else { Transition::Falling };
        let mut mem = MemoryBuilder::new(words, width)
            .fault(Fault::transition(cell, direction))
            .build()
            .unwrap();
        // Start from the state the blocked transition departs from: a cell
        // that cannot rise starts at 0, a cell that cannot fall starts at 1.
        let initial = matches!(direction, Transition::Falling);
        let fill = if initial { Word::ones(width) } else { Word::zeros(width) };
        mem.fill(fill).unwrap();
        for (addr, bits) in ops {
            mem.write_word(addr % words, Word::from_bits(bits, width).unwrap()).unwrap();
            // The only way to leave the initial state is the blocked
            // transition, so the cell must still hold its initial value.
            prop_assert_eq!(mem.peek_bit(cell).unwrap(), initial);
        }
    }

    /// Reads never modify memory content, with or without faults.
    #[test]
    fn reads_are_non_destructive(
        words in 1usize..16,
        width in prop_oneof![Just(1usize), Just(8), Just(16)],
        seed in any::<u64>(),
        addrs in prop::collection::vec(any::<usize>(), 1..64),
    ) {
        let mut mem = MemoryBuilder::new(words, width)
            .random_content(seed)
            .fault(Fault::stuck_at(BitAddress::new(0, 0), true))
            .build()
            .unwrap();
        let before = mem.content();
        for addr in addrs {
            mem.read_word(addr % words).unwrap();
        }
        prop_assert_eq!(mem.content(), before);
    }

    /// A memory re-armed through `reset_with_fault` behaves bit-for-bit like
    /// a freshly constructed one for any dirtying history and any subsequent
    /// operation sequence — the contract arena reuse in the coverage engine
    /// relies on.
    #[test]
    fn rearmed_memory_matches_fresh_memory(
        words in 2usize..8,
        width in prop_oneof![Just(1usize), Just(4), Just(8)],
        dirty_seed in any::<u64>(),
        dirty_ops in prop::collection::vec((any::<usize>(), any::<u128>()), 0..24),
        ops in prop::collection::vec((any::<usize>(), any::<u128>()), 1..24),
        fault_bit in any::<usize>(),
    ) {
        let config = MemoryConfig::new(words, width).unwrap();
        let fault = Fault::transition(
            BitAddress::new(fault_bit % words, fault_bit % width),
            Transition::Rising,
        );

        // Dirty an arena memory with a different fault and random traffic.
        let mut arena = FaultyMemory::with_faults(
            config,
            vec![Fault::stuck_at(BitAddress::new(0, 0), true)],
        ).unwrap();
        arena.fill_random(dirty_seed);
        for &(addr, bits) in &dirty_ops {
            let value = Word::from_bits(bits, width).unwrap();
            arena.write_word(addr % words, value).unwrap();
            arena.read_word(addr % words).unwrap();
        }

        arena.reset_with_fault(fault).unwrap();
        let mut fresh = FaultyMemory::with_faults(config, vec![fault]).unwrap();
        prop_assert_eq!(arena.content(), fresh.content());

        for &(addr, bits) in &ops {
            let value = Word::from_bits(bits, width).unwrap();
            arena.write_word(addr % words, value).unwrap();
            fresh.write_word(addr % words, value).unwrap();
            prop_assert_eq!(
                arena.read_word(addr % words).unwrap(),
                fresh.read_word(addr % words).unwrap()
            );
        }
        prop_assert_eq!(arena.content(), fresh.content());
        prop_assert_eq!(arena.stats(), fresh.stats());
    }

    /// Access statistics count every read and write exactly once.
    #[test]
    fn stats_count_accesses(
        words in 1usize..8,
        reads in 0usize..32,
        writes in 0usize..32,
    ) {
        let config = MemoryConfig::new(words, 8).unwrap();
        let mut mem = FaultyMemory::fault_free(config);
        for i in 0..writes {
            mem.write_word(i % words, Word::zeros(8)).unwrap();
        }
        for i in 0..reads {
            mem.read_word(i % words).unwrap();
        }
        prop_assert_eq!(mem.stats().writes, writes as u64);
        prop_assert_eq!(mem.stats().reads, reads as u64);
        prop_assert_eq!(mem.stats().total(), (reads + writes) as u64);
    }
}
