//! A minimal std-only HTTP/1.1 front for the metrics registry, so a
//! stock Prometheus (or plain `GET`) scrapes a live process without
//! speaking the fleet's frame protocol.
//!
//! [`MetricsServer`] serves exactly two paths:
//!
//! * `GET /metrics` — the Prometheus text exposition of one
//!   [`Registry::snapshot`]. Handling a scrape performs **no mutation**
//!   of the served registry (the server's own traffic counters are
//!   standalone, deliberately unregistered), so in a quiescent process
//!   an HTTP scrape and a wire scrape of the same registry return
//!   byte-identical text — the equality the fleet's integration tests
//!   pin.
//! * `GET /healthz` — a small JSON liveness body. This is the one
//!   handler that touches the registry: it refreshes the
//!   `twm_obs_http_uptime_seconds` gauge registered at bind time next
//!   to the `twm_build_info{package,version}` constant gauge.
//!
//! Anything else is answered with a typed error: `405` (with `Allow:
//! GET`) for a wrong method on a known path, `404` for an unknown
//! path, `400` for an oversized, non-UTF-8 or malformed request head.
//! Connections are HTTP/1.1 `Connection: close` — one request each —
//! and served either serially ([`MetricsServer::run`]) or
//! thread-per-connection ([`MetricsServer::run_concurrent`]), the same
//! split the fleet's TCP front uses.
//!
//! This module retires wholesale once the workspace can depend on a
//! real HTTP stack again (see `vendor/README.md`).

use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::metrics::{Counter, Gauge, Registry};

/// Upper bound on the request head (request line + headers) in bytes;
/// more is answered with `400`.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// How long a connection may dribble its request head before the
/// server gives up on it.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// The exposition content type Prometheus expects.
const EXPOSITION_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Which registry a server renders on `/metrics`.
#[derive(Debug)]
enum Served {
    /// The process-wide registry ([`crate::metrics::global`]).
    Global,
    /// A caller-owned registry (isolated tests).
    Owned(Arc<Registry>),
}

impl Served {
    fn registry(&self) -> &Registry {
        match self {
            Served::Global => crate::metrics::global(),
            Served::Owned(registry) => registry,
        }
    }
}

/// Point-in-time counts of one server's HTTP traffic, from
/// [`MetricsServer::stats`]. These live outside the served registry so
/// scrapes never observe themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Successful `GET /metrics` responses.
    pub scrapes: u64,
    /// Successful `GET /healthz` responses.
    pub health_checks: u64,
    /// `404` responses.
    pub not_found: u64,
    /// `405` responses.
    pub method_not_allowed: u64,
    /// `400` responses.
    pub bad_requests: u64,
}

/// A blocking HTTP/1.1 listener exposing a [`Registry`] on `/metrics`
/// and liveness on `/healthz`. See the [module docs](self) for the
/// exact contract.
#[derive(Debug)]
pub struct MetricsServer {
    listener: TcpListener,
    served: Served,
    started: Instant,
    uptime: Gauge,
    connections: Counter,
    scrapes: Counter,
    health_checks: Counter,
    not_found: Counter,
    method_not_allowed: Counter,
    bad_requests: Counter,
}

impl MetricsServer {
    /// Binds a server over the process-wide registry. Use port `0` to
    /// let the OS pick (read it back with [`MetricsServer::local_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::bind_served(addr, Served::Global)
    }

    /// Binds a server over a caller-owned registry — isolated tests,
    /// or serving a snapshot domain other than the process's.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_registry(addr: impl ToSocketAddrs, registry: Arc<Registry>) -> io::Result<Self> {
        Self::bind_served(addr, Served::Owned(registry))
    }

    fn bind_served(addr: impl ToSocketAddrs, served: Served) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        // The two gauges the endpoint owns, registered once at bind:
        // build info is constant, uptime refreshes on each /healthz
        // (never on /metrics — scrapes stay pure).
        let registry = served.registry();
        let uptime = registry.gauge("twm_obs_http_uptime_seconds", &[]);
        registry
            .gauge(
                "twm_build_info",
                &[
                    ("package", env!("CARGO_PKG_NAME")),
                    ("version", env!("CARGO_PKG_VERSION")),
                ],
            )
            .set(1);
        Ok(Self {
            listener,
            served,
            started: Instant::now(),
            uptime,
            connections: Counter::new(),
            scrapes: Counter::new(),
            health_checks: Counter::new(),
            not_found: Counter::new(),
            method_not_allowed: Counter::new(),
            bad_requests: Counter::new(),
        })
    }

    /// The bound address (resolves port `0` binds).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// This server's own traffic counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.get(),
            scrapes: self.scrapes.get(),
            health_checks: self.health_checks.get(),
            not_found: self.not_found.get(),
            method_not_allowed: self.method_not_allowed.get(),
            bad_requests: self.bad_requests.get(),
        }
    }

    /// Accepts and serves exactly one connection (tests, manual loops).
    ///
    /// # Errors
    ///
    /// Propagates the accept failure; errors on an accepted connection
    /// are absorbed (the client is gone — there is nobody to tell).
    pub fn accept_one(&self) -> io::Result<()> {
        let (stream, _peer) = self.listener.accept()?;
        self.serve_connection(stream);
        Ok(())
    }

    /// Serves connections forever, one at a time.
    ///
    /// # Errors
    ///
    /// Returns the first accept failure.
    pub fn run(&self) -> io::Result<()> {
        loop {
            self.accept_one()?;
        }
    }

    /// Serves connections forever, one scoped thread per connection —
    /// the same shape as the fleet TCP front's concurrent dispatcher.
    ///
    /// # Errors
    ///
    /// Returns the first accept failure (after live connection threads
    /// finish).
    pub fn run_concurrent(&self) -> io::Result<()> {
        std::thread::scope(|scope| loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    scope.spawn(move || self.serve_connection(stream));
                }
                Err(error) => return Err(error),
            }
        })
    }

    /// Serves one already-accepted connection: reads a single request,
    /// writes a single `Connection: close` response. I/O failures are
    /// absorbed — the peer has hung up, and a metrics endpoint never
    /// takes the process down with it.
    pub fn serve_connection(&self, stream: TcpStream) {
        self.connections.incr();
        let _ = self.try_serve(stream);
    }

    fn try_serve(&self, mut stream: TcpStream) -> io::Result<()> {
        let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
        let head = match read_head(&mut stream) {
            Ok(head) => head,
            Err(HeadError::Io(error)) => return Err(error),
            Err(HeadError::TooLarge) => {
                self.bad_requests.incr();
                let result = respond(
                    &mut stream,
                    400,
                    "Bad Request",
                    b"request head too large\n",
                    &[],
                );
                // Unread request bytes at close would turn the FIN into
                // an RST and could destroy the 400 in the peer's
                // receive buffer; briefly drain what the client already
                // sent so the refusal actually arrives.
                drain(&mut stream);
                return result;
            }
            Err(HeadError::NotUtf8) => {
                self.bad_requests.incr();
                return respond(
                    &mut stream,
                    400,
                    "Bad Request",
                    b"request head is not valid UTF-8\n",
                    &[],
                );
            }
        };
        let Some((method, target)) = parse_request_line(&head) else {
            self.bad_requests.incr();
            return respond(
                &mut stream,
                400,
                "Bad Request",
                b"malformed request line\n",
                &[],
            );
        };
        let path = target.split('?').next().unwrap_or("");
        match (path, method) {
            ("/metrics", "GET") => {
                self.scrapes.incr();
                let body = self.served.registry().snapshot().expose();
                respond_with_type(
                    &mut stream,
                    200,
                    "OK",
                    EXPOSITION_CONTENT_TYPE,
                    body.as_bytes(),
                    &[],
                )
            }
            ("/healthz", "GET") => {
                self.health_checks.incr();
                let uptime_seconds = self.started.elapsed().as_secs();
                self.uptime
                    .set(i64::try_from(uptime_seconds).unwrap_or(i64::MAX));
                let body = format!(
                    "{{\"status\":\"ok\",\"package\":\"{}\",\"version\":\"{}\",\"uptime_seconds\":{uptime_seconds}}}\n",
                    env!("CARGO_PKG_NAME"),
                    env!("CARGO_PKG_VERSION"),
                );
                respond_with_type(
                    &mut stream,
                    200,
                    "OK",
                    "application/json",
                    body.as_bytes(),
                    &[],
                )
            }
            ("/metrics" | "/healthz", _) => {
                self.method_not_allowed.incr();
                respond(
                    &mut stream,
                    405,
                    "Method Not Allowed",
                    b"only GET is supported\n",
                    &[("Allow", "GET")],
                )
            }
            _ => {
                self.not_found.incr();
                respond(
                    &mut stream,
                    404,
                    "Not Found",
                    b"unknown path; try /metrics or /healthz\n",
                    &[],
                )
            }
        }
    }
}

enum HeadError {
    Io(io::Error),
    TooLarge,
    NotUtf8,
}

/// Discards whatever the peer is still sending, bounded in both bytes
/// and time, so closing the socket sends a clean FIN instead of an RST.
fn drain(stream: &mut TcpStream) {
    const DRAIN_CAP_BYTES: usize = 1 << 20;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut discarded = 0usize;
    let mut chunk = [0u8; 4096];
    while discarded < DRAIN_CAP_BYTES {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(read) => discarded += read,
        }
    }
}

/// Reads the request head (through the blank line). Stops early if the
/// client closes; the cap keeps a hostile peer from ballooning memory.
fn read_head(stream: &mut TcpStream) -> Result<String, HeadError> {
    let mut head = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    while !head.windows(4).any(|window| window == b"\r\n\r\n") {
        if head.len() > MAX_HEAD_BYTES {
            return Err(HeadError::TooLarge);
        }
        let read = stream.read(&mut chunk).map_err(HeadError::Io)?;
        if read == 0 {
            break;
        }
        head.extend_from_slice(&chunk[..read]);
    }
    String::from_utf8(head).map_err(|_| HeadError::NotUtf8)
}

/// `"GET /metrics HTTP/1.1" -> ("GET", "/metrics")`, or `None` for
/// anything that is not a three-token HTTP/1.x request line with an
/// origin-form target.
fn parse_request_line(head: &str) -> Option<(&str, &str)> {
    let line = head.lines().next()?;
    let mut parts = line.split(' ');
    let method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    let well_formed = parts.next().is_none()
        && version.starts_with("HTTP/1.")
        && !method.is_empty()
        && target.starts_with('/');
    well_formed.then_some((method, target))
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &[u8],
    extra_headers: &[(&str, &str)],
) -> io::Result<()> {
    respond_with_type(
        stream,
        status,
        reason,
        "text/plain; charset=utf-8",
        body,
        extra_headers,
    )
}

fn respond_with_type(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, &str)],
) -> io::Result<()> {
    use std::fmt::Write as _;
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len(),
    );
    for (name, value) in extra_headers {
        let _ = write!(head, "{name}: {value}\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_parse_strictly() {
        assert_eq!(
            parse_request_line("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"),
            Some(("GET", "/metrics"))
        );
        assert_eq!(
            parse_request_line("POST /healthz?probe=1 HTTP/1.0\r\n\r\n"),
            Some(("POST", "/healthz?probe=1"))
        );
        for bad in [
            "",
            "GARBAGE",
            "GET /metrics",
            "GET /metrics HTTP/2",
            "GET metrics HTTP/1.1",
            "GET /metrics HTTP/1.1 extra",
            " /metrics HTTP/1.1",
        ] {
            assert_eq!(parse_request_line(bad), None, "accepted: {bad:?}");
        }
    }
}
