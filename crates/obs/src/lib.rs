//! # twm-obs — workspace-wide observability
//!
//! A std-only, zero-external-dependency observability layer for the
//! twm workspace: the fleet north star (heavy traffic from millions of
//! devices) is unreachable without per-request latency, cache and
//! fan-out visibility at runtime, and operating the TCP front needs an
//! access log and saturation metrics.
//!
//! The pieces, deliberately small:
//!
//! * [`metrics`] — a process-wide [`Registry`] of atomic [`Counter`]s,
//!   [`Gauge`]s and fixed-bucket [`Histogram`]s. The hot path is
//!   lock-free (one relaxed `fetch_add` per count, a bucket scan plus
//!   three `fetch_add`s per histogram observation) and cheap enough to
//!   leave on in production. [`Registry::snapshot`] freezes everything
//!   into a serde-serialisable [`MetricsReport`], and
//!   [`MetricsReport::expose`] renders the Prometheus text format —
//!   both orderings are deterministic, so a snapshot shipped over the
//!   wire re-renders to the identical exposition.
//! * [`trace`] — hierarchical [`Span`]s and point [`event`]s behind a
//!   **static gate**: when tracing is disabled (the default) a span
//!   costs exactly one relaxed atomic load. Completed spans and events
//!   are pushed to a pluggable process-wide [`Sink`] — [`JsonLinesSink`]
//!   for log shipping, [`RingSink`] (bounded, drop-oldest) for tests,
//!   [`NoopSink`] by default — and a one-in-N sampling knob bounds the
//!   volume under load. Lossy sinks count their losses
//!   (`twm_obs_sink_write_errors_total`, `twm_obs_ring_dropped_records`)
//!   so dropped records are visible on any scrape.
//! * [`http`] — a minimal std-only HTTP/1.1 [`MetricsServer`] serving
//!   `GET /metrics` (the exposition of one snapshot, with **zero**
//!   registry mutation per scrape) and `GET /healthz` (uptime +
//!   build-info gauges), with typed 400/404/405 handling — a stock
//!   Prometheus scrapes a live process without the fleet's frame
//!   protocol.
//! * [`profile`] — a [`ProfilerSink`] folding the span stream into
//!   per-span-name **self-time** (elapsed minus direct children),
//!   call counts and min/max/total wall time, snapshotting to a serde
//!   [`ProfileReport`] — "where does the time go", with no record
//!   shipping.
//! * Quantiles — [`HistogramSnapshot::quantile`] interpolates within
//!   buckets (exact at bucket edges), and
//!   [`HistogramSnapshot::summary`] rolls p50/p90/p99 into a
//!   [`QuantileSummary`] for reports and fleet statistics.
//! * The **non-interference invariant**: instrumentation only observes.
//!   Enabling or disabling any of it never changes a computed result —
//!   coverage reports, batch diagnoses and dictionary lookups are
//!   bit-identical with observability on or off (property-tested in the
//!   facade crate).
//!
//! ## Counting and scraping
//!
//! ```
//! use twm_obs::{global, latency_bounds};
//!
//! let requests = global().counter("doc_requests_total", &[("kind", "demo")]);
//! let latency = global().histogram("doc_latency_ns", &[], &latency_bounds());
//! requests.incr();
//! latency.observe(1_500);
//!
//! let report = global().snapshot();
//! let text = report.expose();
//! assert!(text.contains("doc_requests_total{kind=\"demo\"} 1"));
//! ```
//!
//! ## Tracing into a ring buffer
//!
//! ```
//! use std::sync::Arc;
//! use twm_obs::{trace, RingSink};
//!
//! let ring = Arc::new(RingSink::new(16));
//! trace::set_sink(ring.clone());
//! trace::set_enabled(true);
//! {
//!     let mut span = trace::span("doc.work");
//!     span.field("items", 3);
//!     trace::event("doc.step", &[("at", "half")]);
//! } // span records on drop
//! trace::set_enabled(false);
//! let records = ring.take();
//! assert_eq!(records.len(), 2);
//! ```
//!
//! ## Scraping over HTTP and summarising latency
//!
//! ```no_run
//! use twm_obs::{global, latency_bounds, MetricsServer};
//!
//! let latency = global().histogram("doc_http_latency_ns", &[], &latency_bounds());
//! latency.observe(2_000);
//! let p99 = latency.snapshot().quantile(0.99).unwrap();
//! assert!(p99 >= 1_000.0);
//!
//! // `GET http://127.0.0.1:9090/metrics` now returns the exposition.
//! let server = MetricsServer::bind("127.0.0.1:9090").unwrap();
//! server.run_concurrent().unwrap();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod http;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use http::{MetricsServer, ServerStats};
pub use metrics::{
    exponential_bounds, global, latency_bounds, Counter, Gauge, Histogram, HistogramSnapshot,
    Label, MetricSample, MetricValue, MetricsReport, QuantileSummary, Registry,
};
pub use profile::{ProfileReport, ProfilerSink, SpanProfile};
pub use trace::{event, span, JsonLinesSink, NoopSink, Record, RingSink, Sink, Span};
