//! The metrics registry: atomic counters, gauges and fixed-bucket
//! histograms behind stable `(name, labels)` keys, with deterministic
//! snapshots and Prometheus-style text exposition.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-backed:
//! registration takes the registry lock once, after which every update
//! is a relaxed atomic operation — no lock, no allocation. Values are
//! integers throughout (count, sum and bucket bounds are `u64`; gauges
//! are `i64`), so a [`MetricsReport`] survives any serialisation
//! round-trip bit-exactly — the property the fleet's remote scrape
//! equality test rests on.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};

/// A monotonically increasing counter (relaxed atomic adds).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A standalone counter, not attached to any registry — for
    /// per-instance metrics mirrored into global counters by their
    /// owner (see the store pager and the fleet runtime cache).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge (current value, not a rate).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A standalone gauge, not attached to any registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn decr(&self) {
        self.add(-1);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Inclusive upper bounds of the finite buckets, strictly
    /// increasing; an implicit `+Inf` bucket follows.
    bounds: Vec<u64>,
    /// One slot per finite bound plus the `+Inf` overflow slot.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram of integer observations (nanoseconds,
/// bytes, counts — the unit is the caller's naming convention).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// A standalone histogram over `bounds` (deduplicated and sorted;
    /// an implicit `+Inf` bucket is always appended).
    #[must_use]
    pub fn new(bounds: &[u64]) -> Self {
        let mut bounds = bounds.to_vec();
        bounds.sort_unstable();
        bounds.dedup();
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self(Arc::new(HistogramInner {
            bounds,
            counts,
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }

    /// Records one observation into the first bucket whose bound is
    /// `>= value` (the `+Inf` slot when none is).
    pub fn observe(&self, value: u64) {
        let inner = &self.0;
        let slot = inner
            .bounds
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(inner.bounds.len());
        inner.counts[slot].fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the buckets. Concurrent observers may
    /// land between the bucket reads; each scrape is still internally
    /// monotonic with the previous one.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.0.bounds.clone(),
            counts: self
                .0
                .counts
                .iter()
                .map(|count| count.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum(),
            count: self.count(),
        }
    }
}

/// Strictly increasing bounds `start, start*factor, ...` (`count` of
/// them), saturating at `u64::MAX`.
#[must_use]
pub fn exponential_bounds(start: u64, factor: u64, count: usize) -> Vec<u64> {
    let mut bounds = Vec::with_capacity(count);
    let mut bound = start.max(1);
    for _ in 0..count {
        bounds.push(bound);
        bound = bound.saturating_mul(factor.max(2));
    }
    bounds
}

/// The workspace's default latency buckets: 1 µs to ~67 s in powers of
/// four, in nanoseconds.
#[must_use]
pub fn latency_bounds() -> Vec<u64> {
    exponential_bounds(1_000, 4, 13)
}

/// One metric label (a `name="value"` pair in the exposition).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Label {
    /// The label name.
    pub name: String,
    /// The label value (escaped on exposition).
    pub value: String,
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<Label>,
}

#[derive(Debug, Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

/// A registry of named metrics. Registration is idempotent: asking for
/// an existing `(name, labels)` key returns a clone of the original
/// handle, so any number of call sites share one underlying atomic.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<MetricKey, Handle>>,
}

fn key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    MetricKey {
        name: name.to_string(),
        labels: labels
            .iter()
            .map(|(name, value)| Label {
                name: (*name).to_string(),
                value: (*value).to_string(),
            })
            .collect(),
    }
}

impl Registry {
    /// An empty registry (tests; production code uses [`global`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `(name, labels)`, created on first
    /// use.
    ///
    /// # Panics
    ///
    /// When the key is already registered as a different metric kind —
    /// a programming error, caught loudly.
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let mut metrics = self.metrics.lock().expect("registry lock");
        let handle = metrics
            .entry(key(name, labels))
            .or_insert_with(|| Handle::Counter(Counter::new()));
        match handle {
            Handle::Counter(counter) => counter.clone(),
            other => panic!("metric `{name}` is registered as a {}", other.kind()),
        }
    }

    /// The gauge registered under `(name, labels)`, created on first
    /// use.
    ///
    /// # Panics
    ///
    /// As [`Registry::counter`], on a kind mismatch.
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let mut metrics = self.metrics.lock().expect("registry lock");
        let handle = metrics
            .entry(key(name, labels))
            .or_insert_with(|| Handle::Gauge(Gauge::new()));
        match handle {
            Handle::Gauge(gauge) => gauge.clone(),
            other => panic!("metric `{name}` is registered as a {}", other.kind()),
        }
    }

    /// The histogram registered under `(name, labels)`, created over
    /// `bounds` on first use (later registrations share the original
    /// buckets — their `bounds` argument is ignored).
    ///
    /// # Panics
    ///
    /// As [`Registry::counter`], on a kind mismatch.
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64]) -> Histogram {
        let mut metrics = self.metrics.lock().expect("registry lock");
        let handle = metrics
            .entry(key(name, labels))
            .or_insert_with(|| Handle::Histogram(Histogram::new(bounds)));
        match handle {
            Handle::Histogram(histogram) => histogram.clone(),
            other => panic!("metric `{name}` is registered as a {}", other.kind()),
        }
    }

    /// Freezes every registered metric into a report, in deterministic
    /// `(name, labels)` order.
    #[must_use]
    pub fn snapshot(&self) -> MetricsReport {
        let metrics = self.metrics.lock().expect("registry lock");
        MetricsReport {
            metrics: metrics
                .iter()
                .map(|(key, handle)| MetricSample {
                    name: key.name.clone(),
                    labels: key.labels.clone(),
                    value: match handle {
                        Handle::Counter(counter) => MetricValue::Counter(counter.get()),
                        Handle::Gauge(gauge) => MetricValue::Gauge(gauge.get()),
                        Handle::Histogram(histogram) => {
                            MetricValue::Histogram(histogram.snapshot())
                        }
                    },
                })
                .collect(),
        }
    }

    /// Renders the registry in the Prometheus text format —
    /// shorthand for `self.snapshot().expose()`.
    #[must_use]
    pub fn expose(&self) -> String {
        self.snapshot().expose()
    }
}

/// The process-wide registry every twm crate instruments into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// One metric's frozen value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// A counter's running total.
    Counter(u64),
    /// A gauge's current value.
    Gauge(i64),
    /// A histogram's buckets.
    Histogram(HistogramSnapshot),
}

/// A histogram frozen at snapshot time. `counts` are **per-bucket**
/// (not cumulative); the last slot is the `+Inf` overflow bucket.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds of the finite buckets.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts (`bounds.len() + 1` slots).
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Total observations.
    pub count: u64,
}

/// The p50/p90/p99 view of one histogram, estimated from its buckets
/// by [`HistogramSnapshot::summary`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantileSummary {
    /// Total observations behind the estimates.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`q` is clamped into `[0, 1]`) by
    /// linear interpolation within the bucket holding the target rank —
    /// the `histogram_quantile` rule. Bucket counts are integers, so a
    /// rank landing exactly on a cumulative bucket boundary yields an
    /// interpolation fraction of exactly `0.0` or `1.0`: quantiles at
    /// bucket edges are **exact**, not approximate.
    ///
    /// Returns `None` for an empty histogram, a malformed snapshot
    /// (`counts` must have `bounds.len() + 1` slots), a non-finite `q`,
    /// or when the target rank falls in the `+Inf` bucket of a
    /// histogram with no finite bounds. A rank in the `+Inf` bucket of
    /// a histogram that *has* finite bounds reports the largest finite
    /// bound — the best available lower estimate.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if !q.is_finite() || self.counts.len() != self.bounds.len() + 1 {
            return None;
        }
        // Rank against the sum of the bucket counts, not the `count`
        // field: a concurrent snapshot may tear between the two, and
        // internal consistency is what keeps the scan total.
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = q.clamp(0.0, 1.0) * total as f64;
        let mut cumulative = 0u64;
        for (at, &bucket) in self.counts.iter().enumerate() {
            if bucket == 0 {
                continue;
            }
            let previous = cumulative;
            cumulative += bucket;
            if (cumulative as f64) < rank {
                continue;
            }
            let lower = if at == 0 {
                0.0
            } else {
                self.bounds[at - 1] as f64
            };
            let Some(&bound) = self.bounds.get(at) else {
                // The +Inf bucket has no upper edge to interpolate to.
                return self.bounds.last().map(|&last| last as f64);
            };
            let fraction = ((rank - previous as f64) / bucket as f64).clamp(0.0, 1.0);
            return Some(lower + (bound as f64 - lower) * fraction);
        }
        // Unreachable: rank <= total and the last non-empty bucket's
        // cumulative count is exactly `total`.
        None
    }

    /// The p50/p90/p99 summary, or `None` when [`Self::quantile`]
    /// cannot produce all three (empty or malformed histogram).
    #[must_use]
    pub fn summary(&self) -> Option<QuantileSummary> {
        Some(QuantileSummary {
            count: self.count,
            sum: self.sum,
            p50: self.quantile(0.5)?,
            p90: self.quantile(0.9)?,
            p99: self.quantile(0.99)?,
        })
    }

    /// Adds `other`'s observations into this snapshot bucket-by-bucket.
    /// Returns `false` (leaving `self` untouched) when the bucket
    /// layouts differ — merging histograms is only meaningful over
    /// identical bounds.
    pub fn accumulate(&mut self, other: &HistogramSnapshot) -> bool {
        if self.bounds != other.bounds || self.counts.len() != other.counts.len() {
            return false;
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine = mine.wrapping_add(*theirs);
        }
        self.sum = self.sum.wrapping_add(other.sum);
        self.count = self.count.wrapping_add(other.count);
        true
    }
}

/// One sample of a [`MetricsReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSample {
    /// The metric name.
    pub name: String,
    /// Its labels, sorted.
    pub labels: Vec<Label>,
    /// Its frozen value.
    pub value: MetricValue,
}

/// A whole registry frozen at one instant. All-integer, so any
/// serialisation round-trip reproduces it bit-exactly, and
/// [`MetricsReport::expose`] renders the identical text on both sides
/// of a wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Every registered metric, in deterministic `(name, labels)`
    /// order.
    pub metrics: Vec<MetricSample>,
}

/// Escapes a label value for the exposition format: backslash, double
/// quote and newline.
fn escape_label(value: &str, out: &mut String) {
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
}

fn render_labels(labels: &[Label], extra: Option<(&str, &str)>, out: &mut String) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for label in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&label.name);
        out.push_str("=\"");
        escape_label(&label.value, out);
        out.push('"');
    }
    if let Some((name, value)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(name);
        out.push_str("=\"");
        escape_label(value, out);
        out.push('"');
    }
    out.push('}');
}

impl MetricsReport {
    /// The quantile summary of every histogram in the report that holds
    /// at least one observation, in the report's deterministic
    /// `(name, labels)` order.
    #[must_use]
    pub fn quantiles(&self) -> Vec<(String, Vec<Label>, QuantileSummary)> {
        self.metrics
            .iter()
            .filter_map(|sample| match &sample.value {
                MetricValue::Histogram(snapshot) => snapshot
                    .summary()
                    .map(|summary| (sample.name.clone(), sample.labels.clone(), summary)),
                _ => None,
            })
            .collect()
    }

    /// Renders the report in the Prometheus text exposition format.
    /// Histogram buckets are emitted cumulatively with `le` labels (the
    /// last as `+Inf`), followed by `_sum` and `_count` series.
    #[must_use]
    pub fn expose(&self) -> String {
        let mut out = String::new();
        let mut previous: Option<&str> = None;
        for sample in &self.metrics {
            if previous != Some(sample.name.as_str()) {
                let kind = match &sample.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# TYPE {} {kind}", sample.name);
                previous = Some(sample.name.as_str());
            }
            match &sample.value {
                MetricValue::Counter(value) => {
                    out.push_str(&sample.name);
                    render_labels(&sample.labels, None, &mut out);
                    let _ = writeln!(out, " {value}");
                }
                MetricValue::Gauge(value) => {
                    out.push_str(&sample.name);
                    render_labels(&sample.labels, None, &mut out);
                    let _ = writeln!(out, " {value}");
                }
                MetricValue::Histogram(snapshot) => {
                    let mut cumulative = 0u64;
                    for (at, count) in snapshot.counts.iter().enumerate() {
                        cumulative += count;
                        let bound = snapshot
                            .bounds
                            .get(at)
                            .map_or_else(|| "+Inf".to_string(), u64::to_string);
                        out.push_str(&sample.name);
                        out.push_str("_bucket");
                        render_labels(&sample.labels, Some(("le", &bound)), &mut out);
                        let _ = writeln!(out, " {cumulative}");
                    }
                    out.push_str(&sample.name);
                    out.push_str("_sum");
                    render_labels(&sample.labels, None, &mut out);
                    let _ = writeln!(out, " {}", snapshot.sum);
                    out.push_str(&sample.name);
                    out.push_str("_count");
                    render_labels(&sample.labels, None, &mut out);
                    let _ = writeln!(out, " {}", snapshot.count);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_handles_by_key() {
        let registry = Registry::new();
        let a = registry.counter("requests_total", &[("kind", "x")]);
        let b = registry.counter("requests_total", &[("kind", "x")]);
        let other = registry.counter("requests_total", &[("kind", "y")]);
        a.incr();
        b.add(2);
        other.incr();
        assert_eq!(a.get(), 3);
        assert_eq!(other.get(), 1);

        let gauge = registry.gauge("depth", &[]);
        gauge.incr();
        gauge.incr();
        gauge.decr();
        assert_eq!(registry.gauge("depth", &[]).get(), 1);
        gauge.set(-4);
        assert_eq!(gauge.get(), -4);
    }

    #[test]
    #[should_panic(expected = "registered as a counter")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        let _ = registry.counter("x", &[]);
        let _ = registry.gauge("x", &[]);
    }

    /// Bucket edges are inclusive: a value equal to a bound lands in
    /// that bound's bucket, one past it in the next, and anything
    /// beyond the last bound in `+Inf`.
    #[test]
    fn histogram_bucket_edges_are_inclusive() {
        let histogram = Histogram::new(&[10, 100]);
        histogram.observe(0);
        histogram.observe(10); // edge: still the first bucket
        histogram.observe(11); // first past the edge
        histogram.observe(100); // edge of the second
        histogram.observe(101); // overflow
        histogram.observe(u64::MAX); // deep overflow
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.counts, vec![2, 2, 2]);
        assert_eq!(snapshot.count, 6);
        // The sum is a relaxed accumulator: it wraps on overflow.
        assert_eq!(
            snapshot.sum,
            (10u64 + 11 + 100 + 101).wrapping_add(u64::MAX)
        );
    }

    #[test]
    fn histogram_bounds_are_sorted_and_deduplicated() {
        let histogram = Histogram::new(&[100, 10, 100, 1]);
        assert_eq!(histogram.snapshot().bounds, vec![1, 10, 100]);
    }

    #[test]
    fn exponential_bounds_saturate() {
        assert_eq!(exponential_bounds(1_000, 4, 3), vec![1_000, 4_000, 16_000]);
        let saturated = exponential_bounds(u64::MAX / 2, 4, 3);
        assert_eq!(saturated[1], u64::MAX);
        assert_eq!(saturated[2], u64::MAX);
        assert_eq!(latency_bounds().len(), 13);
    }

    /// Exposition escapes label values and renders histograms with
    /// cumulative buckets.
    #[test]
    fn exposition_format_and_escaping() {
        let registry = Registry::new();
        registry
            .counter("odd_total", &[("path", "a\\b\"c\nd")])
            .add(7);
        let histogram = registry.histogram("lat", &[], &[5, 50]);
        histogram.observe(3);
        histogram.observe(30);
        histogram.observe(300);
        let text = registry.expose();
        assert!(text.contains("# TYPE odd_total counter\n"));
        assert!(
            text.contains("odd_total{path=\"a\\\\b\\\"c\\nd\"} 7\n"),
            "escaping failed: {text}"
        );
        assert!(text.contains("lat_bucket{le=\"5\"} 1\n"));
        assert!(text.contains("lat_bucket{le=\"50\"} 2\n"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_sum 333\n"));
        assert!(text.contains("lat_count 3\n"));
    }

    /// Quantiles landing exactly on cumulative bucket boundaries return
    /// the bucket edge exactly (binary-exact `q` values, so no float
    /// slop is tolerated in the assertions).
    #[test]
    fn quantiles_are_exact_at_bucket_edges() {
        let histogram = Histogram::new(&[10, 100, 1000]);
        // 4 observations in (0,10], 2 in (10,100], 2 in (100,1000].
        for value in [1, 2, 3, 4, 50, 60, 500, 600] {
            histogram.observe(value);
        }
        let snapshot = histogram.snapshot();
        // Ranks 4 and 6 of 8 sit exactly on bucket boundaries.
        assert_eq!(snapshot.quantile(0.5), Some(10.0));
        assert_eq!(snapshot.quantile(0.75), Some(100.0));
        assert_eq!(snapshot.quantile(1.0), Some(1000.0));
        // q = 0 is the lower edge of the first non-empty bucket.
        assert_eq!(snapshot.quantile(0.0), Some(0.0));
        // Midway through the second bucket: rank 5 of 8, one of the two
        // observations in (10, 100] -> 10 + 100/2... interpolated.
        assert_eq!(snapshot.quantile(0.625), Some(55.0));
        // Out-of-range q clamps instead of failing.
        assert_eq!(snapshot.quantile(7.5), snapshot.quantile(1.0));
        assert_eq!(snapshot.quantile(-1.0), snapshot.quantile(0.0));
        assert_eq!(snapshot.quantile(f64::NAN), None);
    }

    #[test]
    fn quantiles_handle_overflow_and_empty_histograms() {
        let empty = Histogram::new(&[10]).snapshot();
        assert_eq!(empty.quantile(0.5), None);
        assert_eq!(empty.summary(), None);

        // Every observation in +Inf: report the largest finite bound.
        let overflowing = Histogram::new(&[10, 100]);
        overflowing.observe(5_000);
        assert_eq!(overflowing.snapshot().quantile(0.99), Some(100.0));

        // No finite bounds at all: nothing to estimate with.
        let unbounded = Histogram::new(&[]);
        unbounded.observe(5);
        assert_eq!(unbounded.snapshot().quantile(0.5), None);

        let summary = overflowing.snapshot().summary().unwrap();
        assert_eq!(summary.count, 1);
        assert_eq!(summary.sum, 5_000);
        assert_eq!(
            (summary.p50, summary.p90, summary.p99),
            (100.0, 100.0, 100.0)
        );
    }

    /// Merging snapshots is bucket-wise addition over identical bounds
    /// and a refusal otherwise.
    #[test]
    fn snapshot_accumulate_requires_matching_bounds() {
        let a = Histogram::new(&[10, 100]);
        a.observe(5);
        a.observe(50);
        let b = Histogram::new(&[10, 100]);
        b.observe(500);
        let mut merged = a.snapshot();
        assert!(merged.accumulate(&b.snapshot()));
        assert_eq!(merged.counts, vec![1, 1, 1]);
        assert_eq!(merged.count, 3);
        assert_eq!(merged.sum, 555);

        let mismatched = Histogram::new(&[10]).snapshot();
        let before = merged.clone();
        assert!(!merged.accumulate(&mismatched));
        assert_eq!(merged, before);
    }

    #[test]
    fn report_quantiles_skip_empty_histograms() {
        let registry = Registry::new();
        registry.counter("c_total", &[]).incr();
        let _empty = registry.histogram("h_empty", &[], &[10]);
        registry
            .histogram("h_used", &[("k", "v")], &[10, 100])
            .observe(7);
        let quantiles = registry.snapshot().quantiles();
        assert_eq!(quantiles.len(), 1);
        let (name, labels, summary) = &quantiles[0];
        assert_eq!(name, "h_used");
        assert_eq!(labels[0].value, "v");
        assert_eq!(summary.count, 1);
        // One observation in (0, 10]: the median interpolates to the
        // bucket midpoint, not the raw value (which a snapshot no
        // longer has).
        assert_eq!(summary.p50, 5.0);
    }

    /// The snapshot is deterministic and re-renders to the identical
    /// text — the property the remote scrape test rests on.
    #[test]
    fn snapshot_rerenders_identically() {
        let registry = Registry::new();
        registry.counter("b_total", &[]).add(2);
        registry.counter("a_total", &[("z", "1")]).add(1);
        registry.gauge("depth", &[]).set(5);
        registry.histogram("h", &[], &[1, 2]).observe(2);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.expose(), registry.expose());
        assert_eq!(snapshot, registry.snapshot());
        // Samples are ordered by name: a_total, b_total, depth, h.
        let names: Vec<&str> = snapshot
            .metrics
            .iter()
            .map(|sample| sample.name.as_str())
            .collect();
        assert_eq!(names, vec!["a_total", "b_total", "depth", "h"]);
    }
}
