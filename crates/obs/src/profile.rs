//! A profiling [`Sink`]: aggregates the span stream into per-span-name
//! **self-time** (elapsed minus the elapsed of direct children), call
//! counts and min/max/total wall time, answering "where does the time
//! actually go" without shipping individual records anywhere.
//!
//! The trace layer emits children before their parents (spans record on
//! drop), and every [`Record::Span`] carries its parent's id. The
//! profiler exploits exactly that: when a span closes, its elapsed time
//! is charged to its parent's pending child-time slot, and whatever the
//! span itself had accumulated from *its* children is subtracted from
//! its own elapsed to give self-time. Both tables are lock-striped so
//! concurrent workloads don't serialise on one mutex; a span and its
//! parent live on the same thread (the parent stack is thread-local),
//! but different subtrees profile in parallel.
//!
//! Like every sink, the profiler only observes: it never influences
//! results (the non-interference invariant), and with tracing disabled
//! it costs nothing because no records are produced at all.
//!
//! ```
//! use std::sync::Arc;
//! use twm_obs::{trace, ProfilerSink};
//!
//! let profiler = Arc::new(ProfilerSink::new());
//! trace::set_sink(profiler.clone());
//! trace::set_enabled(true);
//! {
//!     let _outer = trace::span("doc.outer");
//!     let _inner = trace::span("doc.inner");
//! }
//! trace::set_enabled(false);
//! let report = profiler.snapshot();
//! assert_eq!(report.spans.len(), 2);
//! trace::set_sink(Arc::new(twm_obs::NoopSink));
//! ```

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::trace::{Record, Sink};

/// Number of independently locked shards in each profiler table.
const STRIPES: usize = 16;

/// Stripe index for a span id (Fibonacci hashing: sequential ids spread
/// evenly instead of clustering in one stripe).
fn id_stripe(id: u64) -> usize {
    (id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize % STRIPES
}

/// Stripe index for a span name (FNV-1a).
fn name_stripe(name: &str) -> usize {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (hash >> 32) as usize % STRIPES
}

#[derive(Debug, Default, Clone, Copy)]
struct SpanAggregate {
    calls: u64,
    total_ns: u64,
    self_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

/// A [`Sink`] that folds the span stream into per-name self-time
/// aggregates. Point events are ignored — the profiler is about where
/// wall time goes, and only spans carry elapsed time.
#[derive(Debug)]
pub struct ProfilerSink {
    /// `span id -> child time accumulated so far`, for spans whose own
    /// record has not yet arrived. Keyed by the *parent* id of closing
    /// children; drained when the parent itself closes.
    pending: Vec<Mutex<HashMap<u64, u64>>>,
    /// Per-span-name aggregates.
    names: Vec<Mutex<BTreeMap<&'static str, SpanAggregate>>>,
}

impl Default for ProfilerSink {
    fn default() -> Self {
        Self::new()
    }
}

impl ProfilerSink {
    /// An empty profiler.
    #[must_use]
    pub fn new() -> Self {
        Self {
            pending: (0..STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
            names: (0..STRIPES).map(|_| Mutex::new(BTreeMap::new())).collect(),
        }
    }

    /// Freezes the aggregates into a report, sorted by self-time
    /// descending (name ascending as the tiebreak).
    #[must_use]
    pub fn snapshot(&self) -> ProfileReport {
        let mut spans: Vec<SpanProfile> = Vec::new();
        for stripe in &self.names {
            for (name, aggregate) in stripe.lock().expect("profiler stripe").iter() {
                spans.push(SpanProfile {
                    name: (*name).to_string(),
                    calls: aggregate.calls,
                    total_ns: aggregate.total_ns,
                    self_ns: aggregate.self_ns,
                    min_ns: aggregate.min_ns,
                    max_ns: aggregate.max_ns,
                });
            }
        }
        spans.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.name.cmp(&b.name)));
        let open_parents = self
            .pending
            .iter()
            .map(|stripe| stripe.lock().expect("profiler stripe").len() as u64)
            .sum();
        ProfileReport {
            spans,
            open_parents,
        }
    }

    /// Clears every aggregate and pending slot.
    pub fn reset(&self) {
        for stripe in &self.pending {
            stripe.lock().expect("profiler stripe").clear();
        }
        for stripe in &self.names {
            stripe.lock().expect("profiler stripe").clear();
        }
    }
}

impl Sink for ProfilerSink {
    fn record(&self, record: Record) {
        let Record::Span {
            id,
            parent,
            name,
            elapsed_ns,
            ..
        } = record
        else {
            return;
        };
        // Children recorded before this span charged their elapsed time
        // to our pending slot; claim it (and free the slot).
        let child_ns = self.pending[id_stripe(id)]
            .lock()
            .expect("profiler stripe")
            .remove(&id)
            .unwrap_or(0);
        // Charge our own elapsed time to the parent, who is still open.
        if parent != 0 {
            let mut stripe = self.pending[id_stripe(parent)]
                .lock()
                .expect("profiler stripe");
            let slot = stripe.entry(parent).or_insert(0);
            *slot = slot.saturating_add(elapsed_ns);
        }
        let self_ns = elapsed_ns.saturating_sub(child_ns);
        let mut names = self.names[name_stripe(name)]
            .lock()
            .expect("profiler stripe");
        let aggregate = names.entry(name).or_default();
        aggregate.min_ns = if aggregate.calls == 0 {
            elapsed_ns
        } else {
            aggregate.min_ns.min(elapsed_ns)
        };
        aggregate.max_ns = aggregate.max_ns.max(elapsed_ns);
        aggregate.calls += 1;
        aggregate.total_ns = aggregate.total_ns.saturating_add(elapsed_ns);
        aggregate.self_ns = aggregate.self_ns.saturating_add(self_ns);
    }
}

/// One span name's aggregate in a [`ProfileReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanProfile {
    /// The span name.
    pub name: String,
    /// Completed spans under this name.
    pub calls: u64,
    /// Total wall time across all calls.
    pub total_ns: u64,
    /// Wall time not accounted to direct children — the profiler's
    /// ranking key.
    pub self_ns: u64,
    /// Fastest single call.
    pub min_ns: u64,
    /// Slowest single call.
    pub max_ns: u64,
}

/// A frozen profile: span aggregates sorted by self-time descending.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Per-name aggregates, hottest self-time first.
    pub spans: Vec<SpanProfile>,
    /// Parents that had accumulated child time but had not themselves
    /// closed at snapshot time (non-zero while workloads are live, or
    /// when the sink was swapped out mid-span).
    pub open_parents: u64,
}

impl ProfileReport {
    /// The `n` hottest spans by self-time.
    #[must_use]
    pub fn top(&self, n: usize) -> &[SpanProfile] {
        &self.spans[..n.min(self.spans.len())]
    }

    /// Total self-time across every span name — the profile's wall-time
    /// denominator (child time is never double-counted in self-time, so
    /// this approximates the traced wall time).
    #[must_use]
    pub fn total_self_ns(&self) -> u64 {
        self.spans
            .iter()
            .fold(0u64, |sum, span| sum.saturating_add(span.self_ns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: u64, name: &'static str, elapsed_ns: u64) -> Record {
        Record::Span {
            id,
            parent,
            name,
            elapsed_ns,
            fields: Vec::new(),
        }
    }

    fn profile<'report>(report: &'report ProfileReport, name: &str) -> &'report SpanProfile {
        report
            .spans
            .iter()
            .find(|span| span.name == name)
            .unwrap_or_else(|| panic!("span `{name}` missing from {report:?}"))
    }

    /// Self-time is elapsed minus the direct children's elapsed —
    /// grandchildren are charged to their own parent, not to the root.
    #[test]
    fn self_time_subtracts_direct_children_only() {
        let profiler = ProfilerSink::new();
        // Drop order: grandchild, two children, then the root.
        profiler.record(span(4, 2, "grandchild", 10));
        profiler.record(span(2, 1, "child", 30));
        profiler.record(span(3, 1, "child", 20));
        profiler.record(span(1, 0, "root", 100));
        let report = profiler.snapshot();
        assert_eq!(report.open_parents, 0);

        let root = profile(&report, "root");
        assert_eq!((root.calls, root.total_ns, root.self_ns), (1, 100, 50));
        let child = profile(&report, "child");
        // Two calls: 30 (minus grandchild's 10) + 20 = 40 self.
        assert_eq!((child.calls, child.total_ns, child.self_ns), (2, 50, 40));
        assert_eq!((child.min_ns, child.max_ns), (20, 30));
        let grandchild = profile(&report, "grandchild");
        assert_eq!(grandchild.self_ns, 10);
        assert_eq!(report.total_self_ns(), 100);
    }

    /// The report ranks by self-time descending and `top` truncates.
    #[test]
    fn report_is_sorted_by_self_time() {
        let profiler = ProfilerSink::new();
        profiler.record(span(1, 0, "cold", 5));
        profiler.record(span(2, 0, "hot", 500));
        profiler.record(span(3, 0, "warm", 50));
        let report = profiler.snapshot();
        let names: Vec<&str> = report.spans.iter().map(|span| span.name.as_str()).collect();
        assert_eq!(names, vec!["hot", "warm", "cold"]);
        assert_eq!(report.top(2).len(), 2);
        assert_eq!(report.top(2)[0].name, "hot");
        assert_eq!(report.top(99).len(), 3);
    }

    #[test]
    fn events_are_ignored_and_reset_clears() {
        let profiler = ProfilerSink::new();
        profiler.record(Record::Event {
            span: 1,
            name: "tick",
            fields: Vec::new(),
        });
        assert!(profiler.snapshot().spans.is_empty());

        profiler.record(span(2, 1, "child", 10));
        let mid = profiler.snapshot();
        assert_eq!(mid.spans.len(), 1);
        // The parent's pending slot is open until span 1 closes.
        assert_eq!(mid.open_parents, 1);

        profiler.reset();
        let cleared = profiler.snapshot();
        assert!(cleared.spans.is_empty());
        assert_eq!(cleared.open_parents, 0);
    }

    /// A child whose clock outran its parent's (timer skew) saturates
    /// to zero self-time instead of wrapping.
    #[test]
    fn skewed_child_time_saturates() {
        let profiler = ProfilerSink::new();
        profiler.record(span(2, 1, "child", 150));
        profiler.record(span(1, 0, "parent", 100));
        let report = profiler.snapshot();
        assert_eq!(profile(&report, "parent").self_ns, 0);
        assert_eq!(profile(&report, "parent").total_ns, 100);
    }

    /// The report serialises and round-trips through serde.
    #[test]
    fn report_round_trips_through_serde() {
        let profiler = ProfilerSink::new();
        profiler.record(span(1, 0, "only", 42));
        let report = profiler.snapshot();
        let tree = serde::to_value(&report);
        let back: ProfileReport = serde::from_value(&tree).unwrap();
        assert_eq!(back, report);
    }
}
