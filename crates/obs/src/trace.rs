//! Hierarchical spans and point events behind a static gate, recorded
//! to a pluggable process-wide sink.
//!
//! The gate is the whole cost model: with tracing disabled (the
//! default), [`span`] and [`event`] cost exactly **one relaxed atomic
//! load** and produce nothing — instrumentation can stay in hot paths
//! permanently. Enabled, a [`Span`] stamps its start time, tracks its
//! parent through a thread-local stack and emits one [`Record`] to the
//! sink when dropped; [`event`] emits immediately under the innermost
//! live span. A one-in-N sampling knob ([`set_sample_one_in`]) bounds
//! record volume under load without touching call sites.
//!
//! Sinks never influence results (the non-interference invariant): a
//! failing [`JsonLinesSink`] writer drops records, and the bounded
//! [`RingSink`] drops its oldest records on overflow — but neither
//! loses them *silently*: write failures count into the
//! `twm_obs_sink_write_errors_total` counter and ring drops into the
//! `twm_obs_ring_dropped_records` gauge, so span loss is visible on
//! any scrape.

use std::collections::VecDeque;
use std::fmt::Display;
use std::fmt::Write as _;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::metrics::{global, Counter, Gauge};

static ENABLED: AtomicBool = AtomicBool::new(false);
static SAMPLE_ONE_IN: AtomicU64 = AtomicU64::new(1);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

std::thread_local! {
    static SPAN_STACK: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Whether tracing is on — one relaxed atomic load, the entire cost of
/// every disabled span and event.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the trace gate on or off (process-wide).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Keeps one span in `n` (with its events); `0` and `1` both mean
/// "every span". Sampling decides at span creation, so a sampled-out
/// span's whole subtree is skipped coherently.
pub fn set_sample_one_in(n: u64) {
    SAMPLE_ONE_IN.store(n.max(1), Ordering::Relaxed);
}

/// One completed span or point event, as delivered to a [`Sink`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A span that completed (records are emitted on drop, so children
    /// arrive before their parents).
    Span {
        /// The span id (unique within the process run).
        id: u64,
        /// The enclosing span's id, `0` for a root.
        parent: u64,
        /// The span name.
        name: &'static str,
        /// Wall time between creation and drop.
        elapsed_ns: u64,
        /// Fields attached with [`Span::field`], in attachment order.
        fields: Vec<(&'static str, String)>,
    },
    /// A point event.
    Event {
        /// The innermost live span's id, `0` outside any span.
        span: u64,
        /// The event name.
        name: &'static str,
        /// The event's fields.
        fields: Vec<(&'static str, String)>,
    },
}

fn escape_json(value: &str, out: &mut String) {
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            control if (control as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", control as u32);
            }
            other => out.push(other),
        }
    }
}

fn render_fields(fields: &[(&'static str, String)], out: &mut String) {
    out.push('{');
    for (at, (name, value)) in fields.iter().enumerate() {
        if at > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(name, out);
        out.push_str("\":\"");
        escape_json(value, out);
        out.push('"');
    }
    out.push('}');
}

impl Record {
    /// Renders the record as one JSON object (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        match self {
            Record::Span {
                id,
                parent,
                name,
                elapsed_ns,
                fields,
            } => {
                let _ = write!(
                    out,
                    "{{\"kind\":\"span\",\"id\":{id},\"parent\":{parent},\"name\":\""
                );
                escape_json(name, &mut out);
                let _ = write!(out, "\",\"elapsed_ns\":{elapsed_ns},\"fields\":");
                render_fields(fields, &mut out);
                out.push('}');
            }
            Record::Event { span, name, fields } => {
                let _ = write!(out, "{{\"kind\":\"event\",\"span\":{span},\"name\":\"");
                escape_json(name, &mut out);
                out.push_str("\",\"fields\":");
                render_fields(fields, &mut out);
                out.push('}');
            }
        }
        out
    }
}

/// Where trace records go. Implementations must tolerate concurrent
/// calls and must never fail the caller.
pub trait Sink: Send + Sync {
    /// Accepts one record.
    fn record(&self, record: Record);
}

/// The default sink: discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn record(&self, _record: Record) {}
}

#[derive(Debug, Default)]
struct RingState {
    records: VecDeque<Record>,
    dropped: u64,
}

/// A bounded in-memory sink for tests: keeps the newest `capacity`
/// records, dropping the oldest on overflow (and counting the drops —
/// per instance via [`RingSink::dropped`], and cumulatively across all
/// rings in the process via the `twm_obs_ring_dropped_records` gauge).
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    state: Mutex<RingState>,
    dropped_gauge: Gauge,
}

impl RingSink {
    /// A ring holding at most `capacity` records (at least one).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            state: Mutex::new(RingState::default()),
            dropped_gauge: global().gauge("twm_obs_ring_dropped_records", &[]),
        }
    }

    /// Removes and returns everything buffered, oldest first.
    #[must_use]
    pub fn take(&self) -> Vec<Record> {
        let mut state = self.state.lock().expect("ring lock");
        state.records.drain(..).collect()
    }

    /// Records currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().expect("ring lock").records.len()
    }

    /// Whether nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records dropped to stay under the bound, so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.state.lock().expect("ring lock").dropped
    }
}

impl Sink for RingSink {
    fn record(&self, record: Record) {
        let mut state = self.state.lock().expect("ring lock");
        if state.records.len() == self.capacity {
            state.records.pop_front();
            state.dropped += 1;
            self.dropped_gauge.incr();
        }
        state.records.push_back(record);
    }
}

/// A sink writing each record as one JSON line. Write failures never
/// reach the caller — observability never fails the application — but
/// each one counts into the `twm_obs_sink_write_errors_total` counter
/// so lost records are visible on any scrape.
pub struct JsonLinesSink<W: Write + Send> {
    writer: Mutex<W>,
    write_errors: Counter,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps a writer (a file, a `Vec<u8>` in tests, a socket).
    pub fn new(writer: W) -> Self {
        Self {
            writer: Mutex::new(writer),
            write_errors: global().counter("twm_obs_sink_write_errors_total", &[]),
        }
    }

    /// Write failures swallowed (and counted) so far, process-wide:
    /// the counter is shared by every `JsonLinesSink` in the registry.
    #[must_use]
    pub fn write_errors(&self) -> u64 {
        self.write_errors.get()
    }

    /// Unwraps the writer (flushing is the writer's own business).
    pub fn into_inner(self) -> W {
        self.writer.into_inner().expect("jsonl lock")
    }
}

impl<W: Write + Send> Sink for JsonLinesSink<W> {
    fn record(&self, record: Record) {
        let mut line = record.to_json();
        line.push('\n');
        let mut writer = self.writer.lock().expect("jsonl lock");
        if writer.write_all(line.as_bytes()).is_err() {
            self.write_errors.incr();
        }
    }
}

fn sink_slot() -> &'static Mutex<Arc<dyn Sink>> {
    static SINK: OnceLock<Mutex<Arc<dyn Sink>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Arc::new(NoopSink)))
}

/// Installs the process-wide sink (replacing the previous one).
pub fn set_sink(sink: Arc<dyn Sink>) {
    *sink_slot().lock().expect("sink lock") = sink;
}

fn current_sink() -> Arc<dyn Sink> {
    Arc::clone(&sink_slot().lock().expect("sink lock"))
}

struct SpanState {
    id: u64,
    parent: u64,
    name: &'static str,
    start: Instant,
    fields: Vec<(&'static str, String)>,
}

/// A live span guard: records itself to the sink when dropped. Inert
/// (zero further cost) when tracing is off or the span was sampled
/// out.
pub struct Span {
    state: Option<SpanState>,
}

impl Span {
    /// The span id; `0` when inert.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.state.as_ref().map_or(0, |state| state.id)
    }

    /// Attaches a field (no-op when inert, so callers can attach
    /// unconditionally).
    pub fn field(&mut self, name: &'static str, value: impl Display) {
        if let Some(state) = &mut self.state {
            state.fields.push((name, value.to_string()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else {
            return;
        };
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if stack.last() == Some(&state.id) {
                stack.pop();
            } else {
                // Out-of-order drop (moved guard): remove wherever it is.
                stack.retain(|&id| id != state.id);
            }
        });
        let elapsed_ns = u64::try_from(state.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        current_sink().record(Record::Span {
            id: state.id,
            parent: state.parent,
            name: state.name,
            elapsed_ns,
            fields: state.fields,
        });
    }
}

/// Opens a span. With tracing disabled this is one relaxed load and an
/// inert guard; enabled, the span samples itself, stamps its start
/// time and nests under the innermost live span of this thread.
#[must_use]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { state: None };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let one_in = SAMPLE_ONE_IN.load(Ordering::Relaxed).max(1);
    if !id.is_multiple_of(one_in) {
        return Span { state: None };
    }
    let parent = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied().unwrap_or(0);
        stack.push(id);
        parent
    });
    Span {
        state: Some(SpanState {
            id,
            parent,
            name,
            start: Instant::now(),
            fields: Vec::new(),
        }),
    }
}

/// Emits a point event under the innermost live span. One relaxed load
/// when tracing is disabled.
pub fn event(name: &'static str, fields: &[(&'static str, &str)]) {
    if !enabled() {
        return;
    }
    let span = SPAN_STACK.with(|stack| stack.borrow().last().copied().unwrap_or(0));
    current_sink().record(Record::Event {
        span,
        name,
        fields: fields
            .iter()
            .map(|(name, value)| (*name, (*value).to_string()))
            .collect(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trace gate and sink are process-wide: every test that flips
    /// them runs under this lock so assertions never see a sibling
    /// test's records.
    fn gate() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_tracing_is_inert() {
        let _gate = gate();
        let ring = Arc::new(RingSink::new(8));
        set_sink(ring.clone());
        set_enabled(false);
        {
            let mut span = span("quiet");
            span.field("ignored", 1);
            assert_eq!(span.id(), 0);
            event("quiet.event", &[("a", "b")]);
        }
        assert!(ring.is_empty());
        set_sink(Arc::new(NoopSink));
    }

    #[test]
    fn spans_nest_and_events_attach_to_the_innermost() {
        let _gate = gate();
        let ring = Arc::new(RingSink::new(8));
        set_sink(ring.clone());
        set_sample_one_in(1);
        set_enabled(true);
        let (outer_id, inner_id);
        {
            let mut outer = span("outer");
            outer.field("batch", 42);
            outer_id = outer.id();
            {
                let inner = span("inner");
                inner_id = inner.id();
                event("tick", &[("at", "inner")]);
            }
            event("tock", &[]);
        }
        set_enabled(false);
        set_sink(Arc::new(NoopSink));
        let records = ring.take();
        assert_eq!(records.len(), 4);
        // Children complete first; the events carry their span ids.
        assert_eq!(
            records[0],
            Record::Event {
                span: inner_id,
                name: "tick",
                fields: vec![("at", "inner".to_string())],
            }
        );
        let Record::Span {
            id, parent, name, ..
        } = &records[1]
        else {
            panic!("expected the inner span: {records:?}");
        };
        assert_eq!((*id, *parent, *name), (inner_id, outer_id, "inner"));
        assert_eq!(
            records[2],
            Record::Event {
                span: outer_id,
                name: "tock",
                fields: Vec::new(),
            }
        );
        let Record::Span {
            id, parent, fields, ..
        } = &records[3]
        else {
            panic!("expected the outer span: {records:?}");
        };
        assert_eq!((*id, *parent), (outer_id, 0));
        assert_eq!(fields, &vec![("batch", "42".to_string())]);
    }

    /// The ring keeps the newest records and counts what it dropped.
    #[test]
    fn ring_overflow_drops_oldest() {
        let ring = RingSink::new(2);
        for at in 0..5 {
            ring.record(Record::Event {
                span: at,
                name: "e",
                fields: Vec::new(),
            });
        }
        assert_eq!(ring.dropped(), 3);
        let records = ring.take();
        assert_eq!(records.len(), 2);
        let spans: Vec<u64> = records
            .iter()
            .map(|record| match record {
                Record::Event { span, .. } => *span,
                Record::Span { .. } => unreachable!(),
            })
            .collect();
        assert_eq!(spans, vec![3, 4]);
        assert!(ring.is_empty());
    }

    #[test]
    fn sampling_keeps_one_in_n() {
        let _gate = gate();
        let ring = Arc::new(RingSink::new(64));
        set_sink(ring.clone());
        set_sample_one_in(4);
        set_enabled(true);
        for _ in 0..16 {
            let _span = span("sampled");
        }
        set_enabled(false);
        set_sample_one_in(1);
        set_sink(Arc::new(NoopSink));
        let kept = ring.take().len();
        // Ids advance globally (other tests may interleave), so exact
        // counts are not guaranteed — but one-in-four over sixteen
        // spans keeps roughly a quarter, never all.
        assert!((2..=6).contains(&kept), "kept {kept} of 16 at 1-in-4");
    }

    /// A failing writer never reaches the caller but leaves a count in
    /// the process-wide write-error counter.
    #[test]
    fn json_lines_write_failures_are_counted() {
        struct FailingWriter;
        impl Write for FailingWriter {
            fn write(&mut self, _buffer: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonLinesSink::new(FailingWriter);
        let before = sink.write_errors();
        sink.record(Record::Event {
            span: 0,
            name: "lost",
            fields: Vec::new(),
        });
        sink.record(Record::Event {
            span: 0,
            name: "also-lost",
            fields: Vec::new(),
        });
        // The counter is process-global (other tests may bump it), so
        // assert the delta, not the absolute value.
        assert_eq!(sink.write_errors() - before, 2);
        assert_eq!(
            global()
                .counter("twm_obs_sink_write_errors_total", &[])
                .get(),
            sink.write_errors()
        );
    }

    /// Ring overflow mirrors its per-instance drop count into the
    /// process-wide gauge.
    #[test]
    fn ring_drops_are_mirrored_into_the_registry_gauge() {
        let gauge = global().gauge("twm_obs_ring_dropped_records", &[]);
        let before = gauge.get();
        let ring = RingSink::new(1);
        for at in 0..4 {
            ring.record(Record::Event {
                span: at,
                name: "spill",
                fields: Vec::new(),
            });
        }
        assert_eq!(ring.dropped(), 3);
        assert!(gauge.get() - before >= 3, "gauge missed the ring's drops");
    }

    #[test]
    fn json_lines_escape_and_terminate() {
        let record = Record::Event {
            span: 7,
            name: "odd",
            fields: vec![("path", "a\"b\\c\nd\u{1}".to_string())],
        };
        assert_eq!(
            record.to_json(),
            "{\"kind\":\"event\",\"span\":7,\"name\":\"odd\",\"fields\":{\"path\":\"a\\\"b\\\\c\\nd\\u0001\"}}"
        );
        let sink = JsonLinesSink::new(Vec::new());
        sink.record(record.clone());
        sink.record(Record::Span {
            id: 1,
            parent: 0,
            name: "s",
            elapsed_ns: 5,
            fields: Vec::new(),
        });
        let written = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = written.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], record.to_json());
        assert!(lines[1].contains("\"elapsed_ns\":5"));
    }
}
