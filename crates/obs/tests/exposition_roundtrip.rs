//! A strict parser for the Prometheus text exposition, used to prove
//! `MetricsReport::expose()` round-trips: `parse(report.expose()) ==
//! report` over proptest-generated registries. The parser rejects
//! missing TYPE lines, non-cumulative `le` buckets, a `_count` that
//! disagrees with the `+Inf` bucket, bad escapes — so the property
//! also pins the format details the renderer promises.

use proptest::prelude::*;
use twm_obs::{
    Histogram, HistogramSnapshot, Label, MetricSample, MetricValue, MetricsReport, Registry,
};

// ---------------------------------------------------------------------------
// The parser
// ---------------------------------------------------------------------------

type ParseResult<T> = Result<T, String>;

/// Splits `name{labels} value` into its three parts, unescaping label
/// values.
fn parse_sample_line(line: &str) -> ParseResult<(String, Vec<Label>, String)> {
    let name_end = line
        .find(['{', ' '])
        .ok_or_else(|| format!("no value on line {line:?}"))?;
    let name = line[..name_end].to_string();
    if name.is_empty() {
        return Err(format!("empty metric name in {line:?}"));
    }
    let rest = &line[name_end..];
    let (labels, rest) = if let Some(inner) = rest.strip_prefix('{') {
        parse_labels(inner)?
    } else {
        (Vec::new(), rest)
    };
    let value = rest
        .strip_prefix(' ')
        .ok_or_else(|| format!("expected ` value` after labels in {line:?}"))?;
    if value.is_empty() || value.contains(' ') {
        return Err(format!("malformed value {value:?} in {line:?}"));
    }
    Ok((name, labels, value.to_string()))
}

/// Parses `name="value",...}` (the opening brace already consumed),
/// returning the labels and the remainder after the closing brace.
fn parse_labels(mut input: &str) -> ParseResult<(Vec<Label>, &str)> {
    let mut labels = Vec::new();
    loop {
        let equals = input
            .find('=')
            .ok_or_else(|| format!("label without `=` near {input:?}"))?;
        let name = input[..equals].to_string();
        if name.is_empty()
            || !name
                .chars()
                .all(|ch| ch.is_ascii_alphanumeric() || ch == '_')
        {
            return Err(format!("bad label name {name:?}"));
        }
        let after_quote = input[equals + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("label value not quoted near {input:?}"))?;
        let mut value = String::new();
        let mut chars = after_quote.char_indices();
        let after_value = loop {
            let (at, ch) = chars
                .next()
                .ok_or_else(|| format!("unterminated label value near {after_quote:?}"))?;
            match ch {
                '"' => break &after_quote[at + 1..],
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => return Err(format!("bad escape {other:?} in label value")),
                },
                other => value.push(other),
            }
        };
        labels.push(Label { name, value });
        match after_value.strip_prefix(',') {
            Some(rest) => input = rest,
            None => {
                let rest = after_value
                    .strip_prefix('}')
                    .ok_or_else(|| format!("expected `}}` or `,` near {after_value:?}"))?;
                return Ok((labels, rest));
            }
        }
    }
}

/// One histogram label-set being accumulated from its exposition
/// block.
struct HistogramBlock {
    name: String,
    labels: Vec<Label>,
    bounds: Vec<u64>,
    cumulative: Vec<u64>,
    saw_inf: bool,
    sum: Option<u64>,
}

impl HistogramBlock {
    fn finish(self, count: u64) -> ParseResult<MetricSample> {
        if !self.saw_inf {
            return Err(format!("histogram {} ended without +Inf bucket", self.name));
        }
        let total = *self.cumulative.last().expect("+Inf bucket present");
        if total != count {
            return Err(format!(
                "histogram {}: _count {count} != +Inf cumulative {total}",
                self.name
            ));
        }
        let sum = self
            .sum
            .ok_or_else(|| format!("histogram {} has no _sum", self.name))?;
        let mut counts = Vec::with_capacity(self.cumulative.len());
        let mut previous = 0u64;
        for &cumulative in &self.cumulative {
            counts.push(cumulative - previous);
            previous = cumulative;
        }
        Ok(MetricSample {
            name: self.name,
            labels: self.labels,
            value: MetricValue::Histogram(HistogramSnapshot {
                bounds: self.bounds,
                counts,
                sum,
                count,
            }),
        })
    }
}

/// Parses a full exposition strictly; see the module docs for what is
/// rejected.
fn parse_exposition(text: &str) -> ParseResult<MetricsReport> {
    let mut types: std::collections::BTreeMap<String, String> = std::collections::BTreeMap::new();
    let mut metrics: Vec<MetricSample> = Vec::new();
    let mut block: Option<HistogramBlock> = None;

    for line in text.lines() {
        if let Some(type_line) = line.strip_prefix("# TYPE ") {
            let mut parts = type_line.split(' ');
            let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(format!("malformed TYPE line {line:?}"));
            };
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("unknown kind {kind:?}"));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("duplicate TYPE for {name:?}"));
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("unexpected comment {line:?}"));
        }
        let (full_name, mut labels, value) = parse_sample_line(line)?;

        // Histogram series? The suffixed name must resolve to a base
        // with a declared histogram TYPE.
        let histogram_part = ["_bucket", "_sum", "_count"].into_iter().find(|suffix| {
            full_name
                .strip_suffix(suffix)
                .is_some_and(|base| types.get(base).map(String::as_str) == Some("histogram"))
        });
        if let Some(suffix) = histogram_part {
            let base = full_name
                .strip_suffix(suffix)
                .expect("suffix just matched")
                .to_string();
            match suffix {
                "_bucket" => {
                    let le_at = labels
                        .iter()
                        .position(|label| label.name == "le")
                        .ok_or_else(|| format!("bucket without le label: {line:?}"))?;
                    if le_at != labels.len() - 1 {
                        return Err(format!("le is not the last label: {line:?}"));
                    }
                    let le = labels.remove(le_at);
                    let cumulative: u64 = value
                        .parse()
                        .map_err(|_| format!("bad bucket count {value:?}"))?;
                    let current = match &mut block {
                        Some(current) if current.name == base && current.labels == labels => {
                            current
                        }
                        Some(unfinished) => {
                            return Err(format!(
                                "histogram {} interrupted by bucket of {base}",
                                unfinished.name
                            ));
                        }
                        None => block.insert(HistogramBlock {
                            name: base,
                            labels,
                            bounds: Vec::new(),
                            cumulative: Vec::new(),
                            saw_inf: false,
                            sum: None,
                        }),
                    };
                    if current.saw_inf {
                        return Err(format!("bucket after +Inf in {}", current.name));
                    }
                    if current
                        .cumulative
                        .last()
                        .is_some_and(|&last| cumulative < last)
                    {
                        return Err(format!("non-cumulative buckets in {}", current.name));
                    }
                    if le.value == "+Inf" {
                        current.saw_inf = true;
                    } else {
                        let bound: u64 = le
                            .value
                            .parse()
                            .map_err(|_| format!("bad le bound {:?}", le.value))?;
                        if current.bounds.last().is_some_and(|&last| bound <= last) {
                            return Err(format!("le bounds not increasing in {}", current.name));
                        }
                        current.bounds.push(bound);
                    }
                    current.cumulative.push(cumulative);
                }
                "_sum" => {
                    let current = block
                        .as_mut()
                        .filter(|current| current.name == base && current.labels == labels)
                        .ok_or_else(|| format!("_sum without buckets: {line:?}"))?;
                    if current.sum.is_some() {
                        return Err(format!("duplicate _sum for {base}"));
                    }
                    current.sum = Some(value.parse().map_err(|_| format!("bad sum {value:?}"))?);
                }
                _count => {
                    let current = block
                        .take()
                        .filter(|current| current.name == base && current.labels == labels)
                        .ok_or_else(|| format!("_count without buckets: {line:?}"))?;
                    let count: u64 = value.parse().map_err(|_| format!("bad count {value:?}"))?;
                    metrics.push(current.finish(count)?);
                }
            }
            continue;
        }

        if block.is_some() {
            return Err(format!("histogram block interrupted by {line:?}"));
        }
        let sample_value = match types.get(&full_name).map(String::as_str) {
            Some("counter") => MetricValue::Counter(
                value
                    .parse()
                    .map_err(|_| format!("bad counter value {value:?}"))?,
            ),
            Some("gauge") => MetricValue::Gauge(
                value
                    .parse()
                    .map_err(|_| format!("bad gauge value {value:?}"))?,
            ),
            Some("histogram") => {
                return Err(format!("bare sample for histogram {full_name:?}"));
            }
            _ => return Err(format!("sample without TYPE: {full_name:?}")),
        };
        metrics.push(MetricSample {
            name: full_name,
            labels,
            value: sample_value,
        });
    }
    if let Some(unfinished) = block {
        return Err(format!("histogram {} never finished", unfinished.name));
    }
    Ok(MetricsReport { metrics })
}

// ---------------------------------------------------------------------------
// Deterministic cases
// ---------------------------------------------------------------------------

/// A hand-built registry covering the sharp edges: escaping, shared
/// names over multiple label sets, an empty-bounds histogram.
#[test]
fn hand_picked_registry_round_trips() {
    let registry = Registry::new();
    registry
        .counter(
            "c_requests_total",
            &[("path", "a\\b\"c\nd"), ("zone", "eu")],
        )
        .add(7);
    registry
        .counter("c_requests_total", &[("path", "plain")])
        .add(2);
    registry.gauge("g_depth", &[]).set(-41);
    let shared = registry.histogram("h_lat_ns", &[("kind", "x")], &[10, 100]);
    shared.observe(5);
    shared.observe(50);
    shared.observe(5_000);
    let other = registry.histogram("h_lat_ns", &[("kind", "y")], &[10, 100]);
    other.observe(101);
    let _empty_bounds = registry.histogram("h_unbounded", &[], &[]);
    registry.histogram("h_unbounded", &[], &[]).observe(9);

    let report = registry.snapshot();
    let parsed = parse_exposition(&report.expose()).expect("strict parse");
    assert_eq!(parsed, report);
}

/// The parser actually rejects broken expositions (so the round-trip
/// property is not vacuously satisfied by a permissive parser).
#[test]
fn parser_rejects_malformed_expositions() {
    for (text, why) in [
        ("x_total 3\n", "sample without TYPE"),
        ("# TYPE x_total counter\nx_total 3 4\n", "two values"),
        ("# TYPE x_total counter\nx_total -3\n", "negative counter"),
        (
            "# TYPE h histogram\nh_bucket{le=\"10\"} 2\nh_bucket{le=\"+Inf\"} 1\nh_sum 0\nh_count 1\n",
            "non-cumulative buckets",
        ),
        (
            "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 0\nh_count 2\n",
            "_count disagrees with +Inf",
        ),
        (
            "# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_sum 0\nh_count 1\n",
            "no +Inf bucket",
        ),
        (
            "# TYPE h histogram\nh_bucket{le=\"10\"} 1\n",
            "unfinished histogram",
        ),
        (
            "# TYPE x counter\nx{k=\"bad\\t\"} 1\n",
            "unknown escape",
        ),
        ("# TYPE x counter\n# TYPE x counter\nx 1\n", "duplicate TYPE"),
    ] {
        assert!(
            parse_exposition(text).is_err(),
            "parser accepted {why}: {text:?}"
        );
    }
}

/// Adversarial label values survive: every byte of the palette the
/// fuzzer uses, in one value.
#[test]
fn escaping_torture_value_round_trips() {
    let registry = Registry::new();
    let value: String = PALETTE.iter().collect();
    registry.counter("c_odd_total", &[("k0", &value)]).incr();
    let report = registry.snapshot();
    assert_eq!(parse_exposition(&report.expose()).unwrap(), report);
}

// ---------------------------------------------------------------------------
// The property
// ---------------------------------------------------------------------------

/// Characters label values are built from: ASCII plus everything the
/// escaper and the label grammar could trip on.
const PALETTE: &[char] = &[
    'a', 'b', 'z', 'A', '0', '9', '_', ' ', '"', '\\', '\n', '{', '}', '=', ',', 'λ', '→',
];

fn label_value(bytes: &[u8]) -> String {
    bytes
        .iter()
        .map(|&byte| PALETTE[byte as usize % PALETTE.len()])
        .collect()
}

/// `(kind, label value seeds)` + `(scalar, bounds, observations)` —
/// everything needed to register one metric.
type MetricSpec = ((u8, Vec<Vec<u8>>), (u64, Vec<u64>, Vec<u64>));

fn register(registry: &Registry, at: usize, spec: &MetricSpec) {
    let ((kind, label_seeds), (scalar, bounds, observations)) = spec;
    let values: Vec<String> = label_seeds.iter().map(|seed| label_value(seed)).collect();
    let names: Vec<String> = (0..values.len()).map(|at| format!("k{at}")).collect();
    let labels: Vec<(&str, &str)> = names
        .iter()
        .map(String::as_str)
        .zip(values.iter().map(String::as_str))
        .collect();
    match kind % 3 {
        0 => registry
            .counter(&format!("c_{at}_total"), &labels)
            .add(*scalar),
        1 => registry
            .gauge(&format!("g_{at}"), &labels)
            .set(*scalar as i64),
        _ => {
            let histogram = registry.histogram(&format!("h_{at}_ns"), &labels, bounds);
            for &observation in observations {
                histogram.observe(observation);
            }
        }
    }
}

proptest! {
    /// expose() -> strict parse reproduces the report exactly, for any
    /// mix of metric kinds, hostile label values and bucket layouts.
    #[test]
    fn generated_registries_round_trip(
        specs in collection::vec(
            (
                (0u8..3, collection::vec(collection::vec(any::<u8>(), 0..10), 0..3)),
                (0u64..1_000_000, collection::vec(1u64..50_000, 0..6), collection::vec(0u64..60_000, 0..12)),
            ),
            1..7,
        )
    ) {
        let registry = Registry::new();
        for (at, spec) in specs.iter().enumerate() {
            register(&registry, at, spec);
        }
        let report = registry.snapshot();
        let text = report.expose();
        let parsed = parse_exposition(&text)
            .unwrap_or_else(|error| panic!("strict parse failed: {error}\n--- exposition ---\n{text}"));
        prop_assert_eq!(parsed, report);
    }

    /// Rendered histogram buckets are cumulative and end at `_count`
    /// (checked directly on the text, independent of the parser).
    #[test]
    fn rendered_buckets_are_cumulative(
        bounds in collection::vec(1u64..10_000, 0..6),
        observations in collection::vec(0u64..12_000, 1..40),
    ) {
        let histogram = Histogram::new(&bounds);
        for &observation in &observations {
            histogram.observe(observation);
        }
        // Render through a report holding just this histogram.
        let report = MetricsReport {
            metrics: vec![MetricSample {
                name: "h_ns".to_string(),
                labels: Vec::new(),
                value: MetricValue::Histogram(histogram.snapshot()),
            }],
        };
        let text = report.expose();
        let mut previous = 0u64;
        let mut inf = None;
        for line in text.lines().filter(|line| line.starts_with("h_ns_bucket")) {
            let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            prop_assert!(value >= previous, "non-cumulative: {text}");
            previous = value;
            if line.contains("le=\"+Inf\"") {
                inf = Some(value);
            }
        }
        prop_assert_eq!(inf, Some(observations.len() as u64));
        let count_line = text.lines().find(|line| line.starts_with("h_ns_count")).unwrap();
        prop_assert_eq!(count_line, format!("h_ns_count {}", observations.len()).as_str());
    }
}
